"""Shared fixtures: a bootstrapped VM (memory + interpreter + builder)."""

from __future__ import annotations

from dataclasses import dataclass

import pytest


@pytest.fixture(autouse=True)
def _hermetic_result_cache(tmp_path, monkeypatch):
    """Point the persistent result store at a per-test directory.

    The CLI enables the cross-run cache by default
    (docs/INCREMENTAL.md), so without this every test invoking
    ``repro campaign`` would read and write the developer's real
    ``~/.cache/repro`` — non-hermetic both ways.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "result-cache"))

from repro.bytecode.methods import MethodBuilder, SymbolTable
from repro.interpreter.interpreter import Interpreter
from repro.memory.bootstrap import WellKnown, bootstrap_memory
from repro.memory.object_memory import ObjectMemory


@dataclass
class VM:
    """Everything a test needs to execute code."""

    memory: ObjectMemory
    known: WellKnown
    interpreter: Interpreter
    symbols: SymbolTable

    def builder(self) -> MethodBuilder:
        return MethodBuilder(self.memory, self.symbols)

    def int_oop(self, value: int) -> int:
        return self.memory.integer_object_of(value)

    def float_oop(self, value: float) -> int:
        return self.memory.float_object_of(value)


@pytest.fixture
def vm() -> VM:
    memory, known = bootstrap_memory(heap_words=64 * 1024)
    symbols = SymbolTable(memory)
    interpreter = Interpreter(memory, symbols)
    return VM(memory, known, interpreter, symbols)
