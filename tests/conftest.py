"""Shared fixtures: a bootstrapped VM (memory + interpreter + builder)."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.bytecode.methods import MethodBuilder, SymbolTable
from repro.interpreter.interpreter import Interpreter
from repro.memory.bootstrap import WellKnown, bootstrap_memory
from repro.memory.object_memory import ObjectMemory


@dataclass
class VM:
    """Everything a test needs to execute code."""

    memory: ObjectMemory
    known: WellKnown
    interpreter: Interpreter
    symbols: SymbolTable

    def builder(self) -> MethodBuilder:
        return MethodBuilder(self.memory, self.symbols)

    def int_oop(self, value: int) -> int:
        return self.memory.integer_object_of(value)

    def float_oop(self, value: float) -> int:
        return self.memory.float_object_of(value)


@pytest.fixture
def vm() -> VM:
    memory, known = bootstrap_memory(heap_words=64 * 1024)
    symbols = SymbolTable(memory)
    interpreter = Interpreter(memory, symbols)
    return VM(memory, known, interpreter, symbols)
