"""Property-based differential equivalence on defect-free instructions.

The strongest invariant in the system: for every instruction *without* a
seeded defect, the interpreter and the compiled code must agree on
*arbitrary* inputs — not only on the solver's witnesses.  Hypothesis
drives the random-input generator through the full differential harness.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bytecode.opcodes import bytecode_named
from repro.concolic.explorer import BytecodeInstructionSpec, NativeMethodSpec
from repro.difftest.fuzz import RandomInputGenerator
from repro.difftest.harness import DifferentialTester, Status
from repro.interpreter.primitives import primitive_named
from repro.jit.machine.x86 import X86Backend
from repro.jit.native_templates import NativeMethodCompiler
from repro.jit.stack_to_register import StackToRegisterCogit
from repro.concolic.solver.model import SolverContext

#: Instructions with no seeded defect on the given compiler: any
#: disagreement here is a genuine bug in this reproduction.
CLEAN_BYTECODES = (
    "pushTrue", "pushReceiver", "duplicateTop", "popStackTop",
    "storeTemporaryVariable1", "popIntoTemporaryVariable0", "returnTop",
    "shortJumpIfFalse2", "bytecodePrimIdenticalTo", "sendAt",
)
CLEAN_NATIVES = (
    "primitiveAdd", "primitiveSubtract", "primitiveLessThan",
    "primitiveMultiply", "primitiveDiv", "primitiveAt", "primitiveSize",
    "primitiveIdentical", "primitiveClass", "primitiveNegated",
)


class _Path:
    """Minimal stand-in for a PathResult: the harness needs .model."""

    def __init__(self, model):
        self.model = model
        self.constraints = []


def run_random_inputs(spec, compiler_class, seed, count=6):
    tester = DifferentialTester(spec, X86Backend(), compiler_class)
    context = SolverContext.from_memory(tester.memory)
    generator = RandomInputGenerator(context, seed=seed)
    outcomes = []
    for _ in range(count):
        model = generator.random_model()
        outcomes.append(tester.run_path(_Path(model)))
    return outcomes


class TestRandomisedEquivalence:
    @pytest.mark.parametrize("name", CLEAN_BYTECODES)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_clean_bytecodes_never_differ(self, name, seed):
        spec = BytecodeInstructionSpec(bytecode_named(name))
        for outcome in run_random_inputs(spec, StackToRegisterCogit, seed):
            assert outcome.status != Status.DIFFERENCE, outcome.describe()

    @pytest.mark.parametrize("name", CLEAN_NATIVES)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_clean_natives_never_differ(self, name, seed):
        spec = NativeMethodSpec(primitive_named(name))
        for outcome in run_random_inputs(spec, NativeMethodCompiler, seed):
            assert outcome.status != Status.DIFFERENCE, outcome.describe()
