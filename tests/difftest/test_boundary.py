"""Boundary-witness enrichment unit tests."""

from __future__ import annotations

import pytest

from repro.bytecode.opcodes import bytecode_named
from repro.concolic.explorer import BytecodeInstructionSpec, explore_bytecode
from repro.concolic.solver import SolverContext
from repro.difftest.boundary import (
    MAX_BOUNDARY_WITNESSES,
    _positive_small_int_vars,
    boundary_models,
)
from repro.difftest.runner import CampaignConfig
from repro.difftest.runner import test_instruction as run_instruction_test
from repro.jit.machine.x86 import X86Backend
from repro.jit.stack_to_register import StackToRegisterCogit
from repro.memory.bootstrap import bootstrap_memory


@pytest.fixture(scope="module")
def context():
    memory, _ = bootstrap_memory(heap_words=512)
    return SolverContext.from_memory(memory)


def int_success_path(name="bytecodePrimLessThan"):
    result = explore_bytecode(bytecode_named(name))
    for path in result.paths:
        rendered = [str(c) for c in path.constraints]
        if (
            "is_small_int(stack0)" in rendered
            and "is_small_int(stack1)" in rendered
        ):
            return path
    raise AssertionError("no integer path found")


class TestBoundaryModels:
    def test_int_vars_extracted(self):
        path = int_success_path()
        assert set(_positive_small_int_vars(path)) == {"stack0", "stack1"}

    def test_models_satisfy_path(self, context):
        path = int_success_path()
        literals = [c.literal for c in path.constraints]
        models = boundary_models(path, context)
        assert models
        for model in models:
            assert model.satisfies(literals)

    def test_equality_boundary_is_sampled(self, context):
        path = int_success_path()
        models = boundary_models(path, context)
        assert any(
            model.kind_of("stack0").value == model.kind_of("stack1").value
            for model in models
        )

    def test_capped(self, context):
        path = int_success_path()
        assert len(boundary_models(path, context)) <= MAX_BOUNDARY_WITNESSES

    def test_models_differ_from_original(self, context):
        path = int_success_path()
        original = repr(path.model.to_dict())
        for model in boundary_models(path, context):
            assert repr(model.to_dict()) != original

    def test_no_int_vars_means_no_models(self, context):
        result = explore_bytecode(bytecode_named("pushTrue"))
        assert boundary_models(result.paths[0], context) == []


class TestEnrichedRuns:
    def test_clean_instruction_stays_clean_with_enrichment(self):
        config = CampaignConfig(
            backends=(X86Backend,), boundary_witnesses=True
        )
        spec = BytecodeInstructionSpec(bytecode_named("bytecodePrimEqual"))
        result = run_instruction_test(spec, StackToRegisterCogit, config)
        unexpected = [
            c for c in result.differences()
            if "trampoline send" not in (c.detail or "")
        ]
        assert not unexpected
        # Enrichment actually added executions.
        plain = run_instruction_test(
            spec, StackToRegisterCogit, CampaignConfig(backends=(X86Backend,))
        )
        assert len(result.comparisons) > len(plain.comparisons)
