"""Differential harness tests: per-instruction verdicts.

These are the integration tests of the whole pipeline: concolic
exploration -> solving -> materialization -> interpreter execution ->
compilation -> machine execution -> comparison.
"""

from __future__ import annotations

import pytest

from repro.bytecode.opcodes import bytecode_named
from repro.concolic.explorer import BytecodeInstructionSpec, NativeMethodSpec
from repro.difftest.harness import Status
from repro.difftest.runner import CampaignConfig
from repro.difftest.runner import test_instruction as run_instruction_test
from repro.interpreter.primitives import primitive_named
from repro.jit.machine.arm32 import Arm32Backend
from repro.jit.machine.x86 import X86Backend
from repro.jit.native_templates import NativeMethodCompiler
from repro.jit.register_allocating import RegisterAllocatingCogit
from repro.jit.simple_stack import SimpleStackBasedCogit
from repro.jit.stack_to_register import StackToRegisterCogit

X86_ONLY = CampaignConfig(backends=(X86Backend,))


def run(name, compiler, kind="bytecode", config=X86_ONLY):
    if kind == "bytecode":
        spec = BytecodeInstructionSpec(bytecode_named(name))
    else:
        spec = NativeMethodSpec(primitive_named(name))
    return run_instruction_test(spec, compiler, config)


def statuses(result):
    counts = {}
    for comparison in result.comparisons:
        counts[comparison.status] = counts.get(comparison.status, 0) + 1
    return counts


class TestEquivalentInstructions:
    """Instructions without seeded defects must match on every path."""

    @pytest.mark.parametrize("name", [
        "pushTrue", "pushReceiver", "duplicateTop", "popStackTop",
        "storeReceiverVariable1", "popIntoTemporaryVariable0",
        "returnTop", "returnNil", "shortJump2", "longJumpIfTrue",
        "bytecodePrimIdenticalTo", "bytecodePrimBitShift", "sendAtPut",
        "sendLiteralSelector1Arg0", "nop",
    ])
    @pytest.mark.parametrize(
        "compiler",
        [SimpleStackBasedCogit, StackToRegisterCogit, RegisterAllocatingCogit],
        ids=lambda c: c.name,
    )
    def test_no_differences(self, name, compiler):
        result = run(name, compiler)
        assert result.differing_paths == 0

    @pytest.mark.parametrize("name", [
        "primitiveAdd", "primitiveSubtract", "primitiveLessThan",
        "primitiveMultiply", "primitiveDivide", "primitiveDiv",
        "primitiveQuo", "primitiveNegated", "primitiveSign",
        "primitiveAt", "primitiveAtPut", "primitiveSize",
        "primitiveStringAt", "primitiveNew", "primitiveNewWithArg",
        "primitiveInstVarAt", "primitiveIdentical", "primitiveClass",
    ])
    def test_correct_native_templates_match(self, name):
        result = run(name, NativeMethodCompiler, kind="native")
        assert result.differing_paths == 0, [
            c.describe() for c in result.differences()
        ]


class TestSeededDefectsAreFound:
    def test_float_arithmetic_not_inlined(self):
        result = run("bytecodePrimAdd", StackToRegisterCogit)
        diffs = result.differences()
        assert len(diffs) == 1
        assert "trampoline send:+/1" in diffs[0].detail

    def test_simple_misses_integer_prediction_too(self):
        result = run("bytecodePrimAdd", SimpleStackBasedCogit)
        assert result.differing_paths == 2  # int path + float path

    def test_as_float_missing_interpreter_check(self):
        result = run("primitiveAsFloat", NativeMethodCompiler, kind="native")
        diffs = result.differences()
        assert len(diffs) == 1
        assert diffs[0].difference_kind == "exit_mismatch"
        assert "interpreter succeeded" in diffs[0].detail

    def test_float_add_missing_compiled_check_faults(self):
        result = run("primitiveFloatAdd", NativeMethodCompiler, kind="native")
        kinds = {d.difference_kind for d in result.differences()}
        assert "machine_fault" in kinds

    def test_bitand_behavioural_difference(self):
        result = run("primitiveBitAnd", NativeMethodCompiler, kind="native")
        diffs = result.differences()
        assert diffs
        assert all("machine returned" in d.detail for d in diffs)

    def test_mod_wrong_results(self):
        result = run("primitiveMod", NativeMethodCompiler, kind="native")
        kinds = {d.difference_kind for d in result.differences()}
        assert "output_mismatch" in kinds

    def test_ffi_missing_functionality(self):
        result = run("primitiveFFIReadInt32", NativeMethodCompiler, kind="native")
        diffs = result.differences()
        assert diffs
        assert all(d.difference_kind == "compile_missing" for d in diffs)

    def test_simulation_error_with_seeded_describer_gap(self):
        """With the historical R10/R11 describer defect re-seeded, the
        truncation template's wild access surfaces as simulation_error."""
        config = CampaignConfig(backends=(X86Backend,),
                                fault_describer_gaps=("R10", "R11"))
        result = run("primitiveFloatTruncated", NativeMethodCompiler,
                     kind="native", config=config)
        kinds = {d.difference_kind for d in result.differences()}
        assert "simulation_error" in kinds

    def test_machine_fault_on_truncated_with_fixed_describer(self):
        """With the default (fixed) describer table the same defect is
        reported as an ordinary described machine fault."""
        result = run("primitiveFloatTruncated", NativeMethodCompiler,
                     kind="native")
        kinds = {d.difference_kind for d in result.differences()}
        assert "machine_fault" in kinds


class TestExpectedFailures:
    def test_invalid_frame_paths_not_compared(self):
        result = run("duplicateTop", StackToRegisterCogit)
        assert Status.EXPECTED_FAILURE in statuses(result)

    def test_invalid_memory_paths_not_compared(self):
        result = run("pushReceiverVariable3", StackToRegisterCogit)
        assert Status.EXPECTED_FAILURE in statuses(result)


class TestCrossISA:
    def test_differences_shared_across_backends(self):
        """Front-end bugs fail on both back-ends (paper Section 5.3)."""
        config = CampaignConfig(backends=(X86Backend, Arm32Backend))
        result = run("bytecodePrimAdd", StackToRegisterCogit, config=config)
        by_backend = {}
        for comparison in result.comparisons:
            if comparison.is_difference:
                by_backend.setdefault(comparison.backend, 0)
                by_backend[comparison.backend] += 1
        assert by_backend.get("x86") == by_backend.get("arm32") == 1
