"""Curation rules and report assembly tests."""

from __future__ import annotations

import pytest

from repro.bytecode.opcodes import bytecode_named
from repro.concolic.explorer import (
    BytecodeInstructionSpec,
    ExplorationResult,
    explore_bytecode,
)
from repro import perf
from repro.difftest.curation import curate_paths, is_curated_in
from repro.difftest.report import (
    Distribution,
    exploration_times,
    format_distributions,
    format_retries,
    format_table2,
    format_table3,
    paths_per_instruction,
    retried_cells,
    table2,
    table3,
)
from repro.difftest.runner import CampaignConfig, CompilerReport, run_campaign
from repro.jit.machine.x86 import X86Backend


class TestCuration:
    def test_real_paths_are_curated_in(self):
        result = explore_bytecode(bytecode_named("bytecodePrimAdd"))
        curated = curate_paths(result.paths)
        assert len(curated) == len(result.paths)

    def test_unsatisfiable_model_curated_out(self):
        result = explore_bytecode(bytecode_named("bytecodePrimAdd"))
        path = result.paths[1]
        # Corrupt the model so it no longer satisfies the constraints.
        path.model.int_values["stack_size"] = 0
        assert not is_curated_in(path)

    def test_unresolvable_selector_curated_out(self):
        from repro.interpreter.exits import ExitResult

        result = explore_bytecode(bytecode_named("pushTrue"))
        path = result.paths[0]
        object.__setattr__(path, "exit",
                           ExitResult.message_send("selector@0x123", 0))
        assert not is_curated_in(path)

    def test_dropped_paths_are_counted_not_silent(self):
        """Curation discards paths by design, but the discard must be
        observable: the `curation_dropped` perf counter records it."""
        result = explore_bytecode(bytecode_named("bytecodePrimAdd"))
        result.paths[1].model.int_values["stack_size"] = 0
        perf.enable()
        try:
            curated = curate_paths(result.paths)
            snap = perf.snapshot()
        finally:
            perf.disable()
        assert len(curated) == len(result.paths) - 1
        assert snap["counters"]["curation_dropped"] == 1

    def test_nothing_dropped_counts_nothing(self):
        result = explore_bytecode(bytecode_named("bytecodePrimAdd"))
        perf.enable()
        try:
            curate_paths(result.paths)
            snap = perf.snapshot()
        finally:
            perf.disable()
        assert "curation_dropped" not in snap["counters"]


@pytest.fixture(scope="module")
def small_campaign():
    config = CampaignConfig(
        max_bytecodes=12, max_natives=8, backends=(X86Backend,)
    )
    return run_campaign(config)


class TestReports:
    def test_table2_has_totals_row(self, small_campaign):
        rows = table2(small_campaign)
        assert len(rows) == 5
        assert rows[-1][0] == "Total"
        assert rows[-1][1] == sum(r.tested_instructions for r in small_campaign)

    def test_table2_formatting(self, small_campaign):
        text = format_table2(small_campaign)
        assert "Native Methods (primitives)" in text
        assert "Total" in text

    def test_table3_total_is_cause_sum(self, small_campaign):
        rows = table3(small_campaign)
        assert rows[-1][0] == "Total"
        assert rows[-1][1] == sum(count for _, count in rows[:-1])

    def test_table3_formatting(self, small_campaign):
        text = format_table3(small_campaign)
        assert "behavioural difference" in text

    def test_paths_per_instruction_partitions_by_kind(self, small_campaign):
        explorations = [
            result.exploration
            for report in small_campaign
            for result in report.results
        ]
        distributions = paths_per_instruction(explorations)
        assert set(distributions) == {"bytecode", "native"}
        assert distributions["native"].values

    def test_exploration_times_non_negative(self, small_campaign):
        explorations = [
            result.exploration
            for report in small_campaign
            for result in report.results
        ]
        for dist in exploration_times(explorations).values():
            assert all(value >= 0 for value in dist.values)


class TestDistribution:
    def test_statistics(self):
        dist = Distribution("d", [1, 2, 3, 10])
        assert dist.mean == 4.0
        assert dist.median == 2.5
        assert dist.minimum == 1
        assert dist.maximum == 10

    def test_empty_distribution(self):
        dist = Distribution("d")
        assert dist.mean == 0.0
        assert dist.median == 0.0

    def test_formatting(self):
        text = format_distributions("T", {"a": Distribution("a", [1.0])})
        assert text.startswith("T")
        assert "n=   1" in text


class TestRetrySection:
    @staticmethod
    def fake_reports(*cells):
        from types import SimpleNamespace

        return [SimpleNamespace(results=[
            SimpleNamespace(instruction=instr, compiler=comp, retries=retries)
            for instr, comp, retries in cells
        ])]

    def test_no_retries_renders_empty(self, small_campaign):
        # The clean scoped campaign retried nothing: section is silent.
        assert retried_cells(small_campaign) == []
        assert format_retries(small_campaign) == ""

    def test_retried_cells_are_listed(self):
        reports = self.fake_reports(
            ("primitiveAdd", "native", 0),
            ("primitiveMod", "native", 1),
            ("pushTrue", "SimpleStackBasedCogit", 2),
        )
        assert retried_cells(reports) == [
            ("primitiveMod", "native", 1),
            ("pushTrue", "SimpleStackBasedCogit", 2),
        ]
        text = format_retries(reports)
        assert "Retried cells: 2 (3 reduced-budget retries)" in text
        assert "primitiveMod [native] retries=1" in text
        assert "pushTrue [SimpleStackBasedCogit] retries=2" in text
        assert "primitiveAdd" not in text

    def test_results_without_retry_field_are_tolerated(self):
        """Pre-PR-5 journal replays rebuild results without the field."""
        from types import SimpleNamespace

        reports = [SimpleNamespace(results=[
            SimpleNamespace(instruction="pushTrue", compiler="native")
        ])]
        assert retried_cells(reports) == []


class TestCompilerReport:
    def test_percentage(self):
        report = CompilerReport("c", curated_paths=200, differing_paths=10)
        assert report.difference_percentage == 5.0

    def test_zero_paths(self):
        report = CompilerReport("c")
        assert report.difference_percentage == 0.0

    def test_row_rendering(self):
        report = CompilerReport(
            "c", tested_instructions=1, interpreter_paths=2,
            curated_paths=2, differing_paths=1,
        )
        assert report.row() == ("c", 1, 2, 2, "1 (50.00%)")
