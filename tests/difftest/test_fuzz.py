"""Random-input baseline tests."""

from __future__ import annotations

import pytest

from repro.bytecode.opcodes import bytecode_named
from repro.concolic.explorer import BytecodeInstructionSpec, NativeMethodSpec
from repro.concolic.solver.model import KindTag, SolverContext
from repro.difftest.fuzz import (
    CoverageReport,
    RandomInputGenerator,
    measure_path_coverage,
)
from repro.interpreter.primitives import primitive_named
from repro.memory.bootstrap import bootstrap_memory


@pytest.fixture(scope="module")
def context():
    memory, _ = bootstrap_memory(heap_words=256)
    return SolverContext.from_memory(memory)


class TestGenerator:
    def test_deterministic_with_seed(self, context):
        first = RandomInputGenerator(context, seed=7).random_model()
        second = RandomInputGenerator(context, seed=7).random_model()
        assert first.to_dict() == second.to_dict()

    def test_models_have_frame_shape(self, context):
        model = RandomInputGenerator(context, seed=1).random_model()
        assert "stack_size" in model.int_values
        assert "recv" in model.kinds

    def test_kind_variety(self, context):
        generator = RandomInputGenerator(context, seed=3)
        tags = set()
        for _ in range(60):
            model = generator.random_model()
            tags.update(kind.tag for kind in model.kinds.values())
        assert KindTag.SMALL_INT in tags
        assert KindTag.OBJECT in tags
        assert KindTag.FLOAT in tags

    def test_object_slots_within_bounds(self, context):
        generator = RandomInputGenerator(context, seed=5)
        for _ in range(40):
            model = generator.random_model()
            for name, kind in model.kinds.items():
                if "." in name:
                    parent = model.kinds[name.split(".")[0]]
                    index = int(name.split("slot")[1])
                    assert index < parent.num_slots


class TestCoverage:
    def test_trivial_instruction_fully_covered(self):
        spec = BytecodeInstructionSpec(bytecode_named("pushTrue"))
        report = measure_path_coverage(spec, random_tests=5)
        assert report.coverage == 1.0

    def test_random_misses_guarded_paths(self):
        """Aligned FFI reads are nearly unreachable by chance."""
        spec = NativeMethodSpec(primitive_named("primitiveFFIReadInt16"))
        report = measure_path_coverage(spec, random_tests=60)
        assert report.coverage < 1.0
        assert report.concolic_paths >= 8

    def test_random_never_finds_unknown_paths(self):
        """Exhaustiveness: concolic enumerated every reachable path."""
        for name in ("primitiveAdd", "primitiveAt", "primitiveSize"):
            spec = NativeMethodSpec(primitive_named(name))
            report = measure_path_coverage(spec, random_tests=80)
            assert report.new_signatures == 0, name

    def test_report_math(self):
        report = CoverageReport(
            instruction="x", concolic_paths=10, concolic_iterations=20,
            random_tests=50, covered_paths=4,
        )
        assert report.coverage == 0.4
