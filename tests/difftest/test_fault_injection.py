"""Fault injection: does the tester catch defects it has never seen?

Mutation-style validation of the differential tester itself: we break a
compiler (or the interpreter) in ways *not* present in the seeded
defect corpus and assert the pipeline reports a difference.  If any of
these mutants survived, the tool would be blind to that defect class.
"""

from __future__ import annotations

import pytest

from repro.bytecode.opcodes import bytecode_named
from repro.concolic.explorer import BytecodeInstructionSpec, NativeMethodSpec
from repro.difftest.runner import CampaignConfig
from repro.difftest.runner import test_instruction as run_instruction_test
from repro.interpreter.primitives import primitive_named
from repro.jit.compiler import BytecodeCogit
from repro.jit.machine.x86 import X86Backend
from repro.jit.native_templates import NativeMethodCompiler
from repro.jit.stack_to_register import StackToRegisterCogit
from repro.memory.layout import MAX_SMALL_INT

X86_ONLY = CampaignConfig(backends=(X86Backend,))


def differences_of(spec, compiler_class):
    result = run_instruction_test(spec, compiler_class, X86_ONLY)
    return result.differences()


class TestCompilerMutants:
    def test_inverted_comparison_is_caught(self, monkeypatch):
        """Mutant: compiled `<` actually computes `>`."""
        original = BytecodeCogit._gen_int_comparison

        def mutant(self, selector, condition):
            if condition == "lt":
                condition = "gt"
            return original(self, selector, condition)

        monkeypatch.setattr(BytecodeCogit, "_gen_int_comparison", mutant)
        spec = BytecodeInstructionSpec(bytecode_named("bytecodePrimLessThan"))
        diffs = differences_of(spec, StackToRegisterCogit)
        assert any(d.difference_kind == "output_mismatch" for d in diffs)

    def test_boundary_comparison_mutant_needs_enriched_witnesses(
        self, monkeypatch
    ):
        """`<` mutated to `<=` escapes the plain one-witness-per-path
        testing (the interpreter never branches on a comparison result,
        so no path condition pins the equality boundary — the paper's
        witness granularity has the same blind spot) but is killed by
        the boundary-witness extension (repro.difftest.boundary)."""
        original = BytecodeCogit._gen_int_comparison

        def mutant(self, selector, condition):
            if condition == "lt":
                condition = "le"
            return original(self, selector, condition)

        monkeypatch.setattr(BytecodeCogit, "_gen_int_comparison", mutant)
        spec = BytecodeInstructionSpec(bytecode_named("bytecodePrimLessThan"))

        plain = run_instruction_test(spec, StackToRegisterCogit, X86_ONLY)
        assert not [
            d for d in plain.differences()
            if d.difference_kind == "output_mismatch"
        ], "plain witnesses sampling the boundary? update the docs"

        enriched_config = CampaignConfig(
            backends=(X86Backend,), boundary_witnesses=True
        )
        enriched = run_instruction_test(
            spec, StackToRegisterCogit, enriched_config
        )
        assert [
            d for d in enriched.differences()
            if d.difference_kind == "output_mismatch"
        ], "boundary witnesses must kill the off-by-one comparison mutant"

    def test_missing_overflow_check_is_caught(self, monkeypatch):
        """Mutant: compiled + skips the MAX_SMALL_INT range check."""
        original = BytecodeCogit._gen_int_binary_arith

        def mutant(self, selector, alu_op):
            if not self.inline_int_arithmetic:
                self._send(selector, 1)
                return
            self.gen_flush()
            ir = self.ir
            slow = ir.fresh_label("slow")
            done = ir.fresh_label("done")
            self.gen_top_now(self.ARG, 0)
            self.gen_top_now(self.RCVR, 1)
            ir.check_small_int(self.RCVR, slow)
            ir.check_small_int(self.ARG, slow)
            ir.move(self.TMP_A, self.RCVR)
            ir.untag(self.TMP_A)
            ir.move(self.TMP_B, self.ARG)
            ir.untag(self.TMP_B)
            ir.alu(alu_op, self.TMP_A, self.TMP_B)
            # MUTATION: no overflow check at all.
            ir.tag(self.TMP_A)
            self.gen_drop_now(2)
            self.gen_push_register_now(self.TMP_A)
            ir.jump(done)
            ir.label(slow)
            self._send(selector, 1)
            ir.label(done)

        monkeypatch.setattr(BytecodeCogit, "_gen_int_binary_arith", mutant)
        spec = BytecodeInstructionSpec(bytecode_named("bytecodePrimAdd"))
        diffs = differences_of(spec, StackToRegisterCogit)
        # Overflow paths: interpreter sends, mutant falls through with a
        # wrapped result.
        assert any(d.difference_kind == "exit_mismatch" for d in diffs)

    def test_wrong_constant_is_caught(self, monkeypatch):
        """Mutant: pushTrue compiles to pushing false."""
        def mutant(self, unit):
            self.gen_push_literal(self.memory.false_object)

        monkeypatch.setattr(BytecodeCogit, "gen_pushTrue", mutant)
        spec = BytecodeInstructionSpec(bytecode_named("pushTrue"))
        diffs = differences_of(spec, StackToRegisterCogit)
        assert diffs and diffs[0].difference_kind == "output_mismatch"

    def test_off_by_one_slot_index_is_caught(self, monkeypatch):
        """Mutant: pushReceiverVariable reads the *next* slot."""
        def mutant(self, unit):
            self._load_receiver(self.RCVR)
            self.ir.load_slot(
                self.TMP_A, self.RCVR, unit.bytecode.embedded_index + 1
            )
            self.gen_push_register(self.TMP_A)

        monkeypatch.setattr(BytecodeCogit, "gen_pushReceiverVariable", mutant)
        spec = BytecodeInstructionSpec(bytecode_named("pushReceiverVariable0"))
        diffs = differences_of(spec, StackToRegisterCogit)
        assert diffs, "reading a neighbouring slot must differ observably"


class TestNativeTemplateMutants:
    def test_swapped_alu_operation_is_caught(self, monkeypatch):
        """Mutant: the add template subtracts."""
        def mutant(self):
            self._int_binary("sub")

        monkeypatch.setattr(NativeMethodCompiler, "tpl_primitiveAdd", mutant)
        spec = NativeMethodSpec(primitive_named("primitiveAdd"))
        diffs = differences_of(spec, NativeMethodCompiler)
        assert any(d.difference_kind == "output_mismatch" for d in diffs)

    def test_missing_argument_check_is_caught(self, monkeypatch):
        """Mutant: primitiveSize skips the indexable-format check."""
        def mutant(self):
            self.ir.load_num_slots("R5", "R0")
            self._return_tagged("R5")

        monkeypatch.setattr(NativeMethodCompiler, "tpl_primitiveSize", mutant)
        spec = NativeMethodSpec(primitive_named("primitiveSize"))
        diffs = differences_of(spec, NativeMethodCompiler)
        # Fixed-format receivers: interpreter fails, mutant returns.
        assert any(d.difference_kind in ("exit_mismatch", "machine_fault")
                   for d in diffs)

    def test_inverted_boolean_is_caught(self, monkeypatch):
        """Mutant: identity comparison answers the opposite."""
        def mutant(self):
            self.ir.compare("R0", "R1")
            self._return_boolean_of_flags("ne")  # should be "eq"

        monkeypatch.setattr(NativeMethodCompiler, "tpl_primitiveIdentical",
                            mutant)
        spec = NativeMethodSpec(primitive_named("primitiveIdentical"))
        diffs = differences_of(spec, NativeMethodCompiler)
        assert any(d.difference_kind == "output_mismatch" for d in diffs)


class TestInterpreterMutants:
    def test_interpreter_mutation_is_caught_too(self, monkeypatch):
        """Differential testing is symmetric: breaking the *interpreter*
        must also surface (the paper found interpreter bugs this way)."""
        from repro.interpreter.interpreter import Interpreter

        original = Interpreter.bc_pushZero

        def mutant(self, frame, bytecode, operands):
            frame.push(self.memory.integer_object_of(1))  # wrong constant
            from repro.interpreter.exits import ExitResult

            return ExitResult.success()

        monkeypatch.setattr(Interpreter, "bc_pushZero", mutant)
        spec = BytecodeInstructionSpec(bytecode_named("pushZero"))
        diffs = differences_of(spec, StackToRegisterCogit)
        assert diffs and diffs[0].difference_kind == "output_mismatch"
