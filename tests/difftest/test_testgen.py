"""Test generation: serialized models, rendered modules, round trips."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

from repro.bytecode.opcodes import bytecode_named
from repro.concolic.explorer import BytecodeInstructionSpec, NativeMethodSpec
from repro.concolic.solver.model import Kind, KindTag, Model, SolverContext
from repro.difftest.testgen import (
    GeneratedSuite,
    generate_test_module,
    write_test_suite,
)
from repro.interpreter.primitives import primitive_named
from repro.jit.native_templates import NativeMethodCompiler
from repro.jit.stack_to_register import StackToRegisterCogit
from repro.memory.bootstrap import bootstrap_memory


class TestModelSerialization:
    def test_round_trip(self):
        memory, known = bootstrap_memory(heap_words=256)
        context = SolverContext.from_memory(memory)
        model = Model(
            context=context,
            kinds={
                "recv": Kind(KindTag.SMALL_INT, value=-3),
                "stack0": Kind(KindTag.OBJECT, class_index=known.array.index,
                               num_slots=2),
                "stack1": Kind(KindTag.FLOAT),
            },
            float_values={"stack1": 2.5},
            int_values={"stack_size": 2},
            aliases={"b": "recv"},
        )
        rebuilt = Model.from_dict(context, model.to_dict())
        assert rebuilt.kinds == model.kinds
        assert rebuilt.float_values == model.float_values
        assert rebuilt.int_values == model.int_values
        assert rebuilt.representative("b") == "recv"

    def test_dict_is_literal(self):
        memory, _ = bootstrap_memory(heap_words=256)
        context = SolverContext.from_memory(memory)
        model = Model(context=context,
                      kinds={"a": Kind(KindTag.SMALL_INT, value=1)})
        data = model.to_dict()
        assert eval(repr(data)) == data  # embeddable in generated source


class TestGeneration:
    def test_bytecode_module(self):
        spec = BytecodeInstructionSpec(bytecode_named("bytecodePrimAdd"))
        suite = generate_test_module(spec, StackToRegisterCogit)
        assert suite.test_count >= 5
        assert suite.xfail_count >= 1  # the float optimisation difference
        assert "def test_path_000" in suite.source
        assert "xfail" in suite.source
        compile(suite.source, "<generated>", "exec")  # valid Python

    def test_native_module(self):
        spec = NativeMethodSpec(primitive_named("primitiveAdd"))
        suite = generate_test_module(spec, NativeMethodCompiler)
        assert suite.xfail_count == 0  # no seeded defect in primitiveAdd
        compile(suite.source, "<generated>", "exec")

    def test_write_suite_creates_files(self, tmp_path):
        suites = write_test_suite(
            tmp_path,
            [BytecodeInstructionSpec(bytecode_named("pushTrue"))],
            [StackToRegisterCogit],
        )
        assert len(suites) == 1
        files = list(tmp_path.glob("test_*.py"))
        assert len(files) == 1
        assert (tmp_path / "__init__.py").exists()

    def test_generated_suite_passes_under_pytest(self, tmp_path):
        """End-to-end: a generated module runs green under pytest."""
        write_test_suite(
            tmp_path,
            [NativeMethodSpec(primitive_named("primitiveBitAnd"))],
            [NativeMethodCompiler],
        )
        completed = subprocess.run(
            [sys.executable, "-m", "pytest", str(tmp_path), "-q",
             "--no-header", "-p", "no:cacheprovider"],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
        assert "xfailed" in completed.stdout  # defects surfaced as xfail
