"""Defect classification tests: the encoded manual analysis."""

from __future__ import annotations

import pytest

from repro.concolic.explorer import PathResult
from repro.concolic.solver.model import Model, SolverContext
from repro.concolic.snapshots import OutputSnapshot
from repro.difftest.defects import (
    DefectCategory,
    category_summary,
    classify,
    group_causes,
)
from repro.difftest.harness import ComparisonResult, Status
from repro.interpreter.exits import ExitResult
from repro.jit.machine.simulator import MachineOutcome, OutcomeKind
from repro.memory.bootstrap import bootstrap_memory


@pytest.fixture(scope="module")
def context():
    memory, _ = bootstrap_memory(heap_words=256)
    return SolverContext.from_memory(memory)


def make_path(context, constraints=()):
    from repro.concolic.trace import PathConstraint
    from repro.concolic.terms import Sort, kind_predicate, var

    recorded = [
        PathConstraint(kind_predicate(pred, var(name, Sort.OOP)), taken)
        for pred, name, taken in constraints
    ]
    return PathResult(
        instruction="x",
        kind="bytecode",
        constraints=recorded,
        model=Model(context=context),
        exit=ExitResult.success(),
        output=OutputSnapshot(),
    )


def comparison(kind, difference_kind, interp=None, machine=None, detail="",
               instruction="primitiveFoo", path=None):
    return ComparisonResult(
        instruction=instruction,
        kind=kind,
        compiler="c",
        backend="x86",
        status=Status.DIFFERENCE,
        difference_kind=difference_kind,
        interpreter_exit=interp,
        machine_outcome=machine,
        detail=detail,
        path=path,
    )


class TestClassification:
    def test_compile_missing(self):
        defect = classify(
            comparison("native", "compile_missing",
                       instruction="primitiveFFIReadInt8")
        )
        assert defect.category == DefectCategory.MISSING_FUNCTIONALITY
        assert defect.cause == "primitiveFFIReadInt8"

    def test_simulation_error_extracts_register(self):
        defect = classify(
            comparison(
                "native", "simulation_error",
                detail="fault describer has no reflective getter for R11",
            )
        )
        assert defect.category == DefectCategory.SIMULATION_ERROR
        assert defect.cause == "missing-getter:R11"

    def test_machine_fault_is_missing_compiled_check(self):
        defect = classify(
            comparison(
                "native", "machine_fault",
                interp=ExitResult.failure("receiver must be a Float"),
                machine=MachineOutcome(OutcomeKind.FAULT),
            )
        )
        assert defect.category == DefectCategory.MISSING_COMPILED_TYPE_CHECK

    def test_interpreter_laxer_than_compiled(self):
        defect = classify(
            comparison(
                "native", "exit_mismatch",
                interp=ExitResult.success(),
                machine=MachineOutcome(OutcomeKind.STOPPED, marker=1),
                instruction="primitiveAsFloat",
            )
        )
        assert defect.category == DefectCategory.MISSING_INTERPRETER_TYPE_CHECK

    def test_compiled_accepts_more(self):
        defect = classify(
            comparison(
                "native", "exit_mismatch",
                interp=ExitResult.failure("negative operands"),
                machine=MachineOutcome(OutcomeKind.RETURNED),
                instruction="primitiveBitAnd",
            )
        )
        assert defect.category == DefectCategory.BEHAVIOURAL_DIFFERENCE

    def test_wrong_result_is_behavioural(self):
        defect = classify(
            comparison(
                "native", "output_mismatch",
                interp=ExitResult.success(),
                machine=MachineOutcome(OutcomeKind.RETURNED),
                instruction="primitiveMod",
            )
        )
        assert defect.category == DefectCategory.BEHAVIOURAL_DIFFERENCE

    def test_bytecode_send_instead_of_inline(self, context):
        path = make_path(
            context, [("is_small_int", "stack0", True)]
        )
        defect = classify(
            comparison(
                "bytecode", "exit_mismatch",
                interp=ExitResult.success(),
                machine=MachineOutcome(OutcomeKind.TRAMPOLINE,
                                       trampoline="send:+/1"),
                instruction="bytecodePrimAdd",
                path=path,
            )
        )
        assert defect.category == DefectCategory.OPTIMISATION_DIFFERENCE
        assert defect.cause == "bytecodePrimAdd:int-not-inlined"

    def test_bytecode_float_shape(self, context):
        path = make_path(context, [("is_float", "stack0", True)])
        defect = classify(
            comparison(
                "bytecode", "exit_mismatch",
                interp=ExitResult.success(),
                machine=MachineOutcome(OutcomeKind.TRAMPOLINE,
                                       trampoline="send:+/1"),
                instruction="bytecodePrimAdd",
                path=path,
            )
        )
        assert defect.cause == "bytecodePrimAdd:float-not-inlined"

    def test_family_strips_embedded_index(self, context):
        path = make_path(context)
        defect = classify(
            comparison(
                "bytecode", "exit_mismatch",
                interp=ExitResult.success(),
                machine=MachineOutcome(OutcomeKind.TRAMPOLINE,
                                       trampoline="send:x/0"),
                instruction="someFamily7",
                path=path,
            )
        )
        assert defect.cause.startswith("someFamily:")

    def test_match_cannot_be_classified(self):
        result = comparison("native", None)
        result.status = Status.MATCH
        with pytest.raises(ValueError):
            classify(result)


class TestGrouping:
    def test_same_cause_counted_once(self):
        results = [
            comparison("native", "compile_missing", instruction="p")
            for _ in range(5)
        ]
        causes = group_causes(results)
        assert len(causes) == 1
        (defect, grouped), = causes.items()
        assert len(grouped) == 5

    def test_category_summary_counts_causes_not_paths(self):
        results = [
            comparison("native", "compile_missing", instruction="p1"),
            comparison("native", "compile_missing", instruction="p1"),
            comparison("native", "compile_missing", instruction="p2"),
        ]
        summary = category_summary(results)
        assert summary[DefectCategory.MISSING_FUNCTIONALITY] == 2

    def test_non_differences_ignored(self):
        result = comparison("native", None)
        result.status = Status.MATCH
        assert group_causes([result]) == {}


class TestRecordRoundTrip:
    """Classification must survive the journal / worker-pipe format."""

    def _difference(self):
        return ComparisonResult(
            instruction="bytecodePrimAdd",
            kind="bytecode",
            compiler="StackToRegisterCogit",
            backend="x86",
            status=Status.DIFFERENCE,
            difference_kind="exit_mismatch",
            interpreter_exit=ExitResult.success(),
            machine_outcome=MachineOutcome(
                kind=OutcomeKind.TRAMPOLINE, trampoline="ceSend"
            ),
            detail="interp success vs trampoline",
        )

    def test_classify_equal_after_round_trip(self):
        original = self._difference()
        replayed = ComparisonResult.from_record(
            original.to_record(),
            instruction=original.instruction,
            kind=original.kind,
            compiler=original.compiler,
        )
        assert classify(replayed) == classify(original)

    def test_pre_existing_records_without_exit_fields_still_load(self):
        """Journals written before the exit fields existed must replay."""
        legacy = {
            "backend": "x86",
            "status": "difference",
            "difference_kind": "exit_mismatch",
            "detail": "old journal line",
        }
        replayed = ComparisonResult.from_record(
            legacy, instruction="bytecodePrimAdd", kind="bytecode",
            compiler="StackToRegisterCogit",
        )
        assert replayed.is_difference
        assert replayed.interpreter_exit is None
        assert replayed.machine_outcome is None
        assert replayed.operand_shape() == "unknown"
