"""The torn-run chaos harness, exercised for real.

These tests SIGKILL live campaign subprocesses immediately before
durable writes and require byte-identical resumed reports — the same
gate the CI ``chaos-smoke`` job runs at 20 points with fixed seeds.
``REPRO_CHAOS_POINTS`` scales the in-suite sweep (default: 3, one per
write site).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

from repro.robustness.chaos import (
    SITES,
    normalize_report,
    run_torn_campaign,
)


class TestWritePointHooks:
    def _run_child(self, tmp_path, env_extra, script):
        src = str(Path(__file__).resolve().parents[2] / "src")
        env = dict(os.environ, PYTHONPATH=src, **env_extra)
        return subprocess.run([sys.executable, "-c", script], env=env,
                              cwd=tmp_path, capture_output=True, text=True,
                              timeout=60)

    SCRIPT = (
        "from repro.robustness.chaos import write_point\n"
        "write_point('journal', 'sink.txt', b'record one\\n')\n"
        "write_point('store', 'sink.txt', b'record two\\n')\n"
        "write_point('journal', 'sink.txt', b'record three\\n')\n"
        "print('survived')\n"
    )

    def test_disarmed_hooks_are_inert(self, tmp_path):
        proc = self._run_child(tmp_path, {}, self.SCRIPT)
        assert proc.returncode == 0
        assert "survived" in proc.stdout
        assert not (tmp_path / "sink.txt").exists()

    def test_trace_censuses_every_site(self, tmp_path):
        proc = self._run_child(
            tmp_path, {"REPRO_CHAOS_TRACE": str(tmp_path / "trace.txt")},
            self.SCRIPT,
        )
        assert proc.returncode == 0
        trace = (tmp_path / "trace.txt").read_text().split()
        assert trace == ["journal", "store", "journal"]

    def test_kill_after_fires_before_the_write(self, tmp_path):
        proc = self._run_child(tmp_path, {"REPRO_CHAOS_KILL_AFTER": "2"},
                               self.SCRIPT)
        assert proc.returncode == -signal.SIGKILL
        assert "survived" not in proc.stdout
        assert not (tmp_path / "sink.txt").exists()

    def test_tear_leaves_half_a_record_behind(self, tmp_path):
        proc = self._run_child(
            tmp_path,
            {"REPRO_CHAOS_KILL_AFTER": "2", "REPRO_CHAOS_TEAR": "1"},
            self.SCRIPT,
        )
        assert proc.returncode == -signal.SIGKILL
        torn = (tmp_path / "sink.txt").read_bytes()
        assert torn == b"record two"[: len(b"record two\n") // 2]

    def test_site_filter_skips_other_sites(self, tmp_path):
        proc = self._run_child(
            tmp_path,
            {"REPRO_CHAOS_KILL_AFTER": "1", "REPRO_CHAOS_SITES": "store"},
            self.SCRIPT,
        )
        # Only the one store write counts; the kill fires there.
        assert proc.returncode == -signal.SIGKILL


class TestNormalizeReport:
    def test_strips_status_lines_and_their_blanks(self):
        raw = ("Table 2\n\nresumed 4 cells from run.jsonl\n\n"
               "result cache: 1 hits / 2 misses (0 stale) -- hit rate 33%\n"
               "resilience: 1 cell(s) preempted by --cell-timeout\n"
               "totals\n")
        assert normalize_report(raw) == "Table 2\n\ntotals\n"

    def test_identical_reports_stay_identical(self):
        report = "Table 2\nrow\n\nTable 3\nrow\n"
        assert normalize_report(report) == normalize_report(report)


class TestTornRunSweep:
    def test_seeded_kill_points_resume_byte_identical(self, tmp_path):
        """The crash-consistency contract, adversarially: kill a real
        campaign before durable writes, resume, demand byte equality
        and uncorrupted sinks at every point."""
        points = int(os.environ.get("REPRO_CHAOS_POINTS", "3"))
        report = run_torn_campaign(points=points, seed=20260808,
                                   workdir=tmp_path / "sweep")
        assert report.baseline_writes > 0
        # Every durable sink was exercised by the baseline census.
        assert all(report.site_counts.get(site, 0) > 0 for site in SITES)
        failures = [failure for outcome in report.outcomes
                    for failure in outcome.failures]
        assert report.ok, "\n".join([report.describe()] + failures)
        # At least one point deliberately tore a line (the CRC layer's
        # worst case), per the default tear_every=2.
        assert any(outcome.tear for outcome in report.outcomes)
