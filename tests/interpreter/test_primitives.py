"""Unit tests for native methods: success, failure and stack discipline.

Every primitive is *safe by design*: it must check its operands and fail
without touching the stack.  The first test classes cover behaviour; the
last enforces the failure-leaves-stack-untouched invariant table-wide.
"""

from __future__ import annotations

import pytest

from repro.bytecode.methods import MethodBuilder
from repro.interpreter.exits import ExitCondition
from repro.interpreter.frame import Frame
from repro.interpreter.primitives import PRIMITIVE_TABLE, primitive_named
from repro.interpreter.primitives import testable_primitives as all_testable_primitives
from repro.memory.bootstrap import make_behavior
from repro.memory.layout import MAX_SMALL_INT, MIN_SMALL_INT


def run_prim(vm, name, receiver, *arguments):
    """Invoke a primitive with receiver+args on a scratch frame's stack."""
    native = primitive_named(name)
    method = MethodBuilder(vm.memory, vm.symbols).build()
    frame = Frame(vm.memory.nil_object, method)
    frame.push(receiver)
    for argument in arguments:
        frame.push(argument)
    result = vm.interpreter.call_primitive(native, frame, len(arguments))
    return result, frame


class TestTableScale:
    def test_primitive_count_matches_paper_order(self):
        # Paper: 112 tested native-method instructions.
        assert len(all_testable_primitives()) >= 100

    def test_indices_are_unique_and_sorted_access_works(self):
        indices = [native.index for native in all_testable_primitives()]
        assert indices == sorted(indices)

    def test_categories_present(self):
        categories = {native.category for native in PRIMITIVE_TABLE.values()}
        assert {"integer", "float", "array", "object", "ffi"} <= categories

    def test_ffi_family_is_large(self):
        ffi = [n for n in PRIMITIVE_TABLE.values() if n.category == "ffi"]
        # The missing-functionality family dominates Table 3 (60/91).
        assert len(ffi) >= 40


class TestIntegerPrimitives:
    def test_add(self, vm):
        result, frame = run_prim(vm, "primitiveAdd", vm.int_oop(2), vm.int_oop(3))
        assert result.condition == ExitCondition.SUCCESS
        assert frame.stack == [vm.int_oop(5)]

    def test_add_overflow_fails(self, vm):
        result, frame = run_prim(
            vm, "primitiveAdd", vm.int_oop(MAX_SMALL_INT), vm.int_oop(1)
        )
        assert result.condition == ExitCondition.FAILURE
        assert len(frame.stack) == 2

    def test_add_type_failure(self, vm):
        result, _ = run_prim(vm, "primitiveAdd", vm.memory.nil_object, vm.int_oop(1))
        assert result.condition == ExitCondition.FAILURE

    def test_divide_exact_only(self, vm):
        ok, frame = run_prim(vm, "primitiveDivide", vm.int_oop(8), vm.int_oop(2))
        assert ok.condition == ExitCondition.SUCCESS
        assert frame.stack == [vm.int_oop(4)]
        bad, _ = run_prim(vm, "primitiveDivide", vm.int_oop(7), vm.int_oop(2))
        assert bad.condition == ExitCondition.FAILURE

    def test_divide_by_zero_fails(self, vm):
        result, _ = run_prim(vm, "primitiveDivide", vm.int_oop(7), vm.int_oop(0))
        assert result.condition == ExitCondition.FAILURE

    def test_mod_and_div_floor(self, vm):
        mod, frame = run_prim(vm, "primitiveMod", vm.int_oop(-7), vm.int_oop(2))
        assert frame.stack == [vm.int_oop(1)]
        div, frame = run_prim(vm, "primitiveDiv", vm.int_oop(-7), vm.int_oop(2))
        assert frame.stack == [vm.int_oop(-4)]

    def test_quo_truncates(self, vm):
        _, frame = run_prim(vm, "primitiveQuo", vm.int_oop(-7), vm.int_oop(2))
        assert frame.stack == [vm.int_oop(-3)]

    def test_comparisons(self, vm):
        result, frame = run_prim(
            vm, "primitiveLessThan", vm.int_oop(1), vm.int_oop(2)
        )
        assert frame.stack == [vm.memory.true_object]
        result, frame = run_prim(
            vm, "primitiveGreaterOrEqual", vm.int_oop(1), vm.int_oop(2)
        )
        assert frame.stack == [vm.memory.false_object]

    def test_bitwise_negative_fails(self, vm):
        for name in ("primitiveBitAnd", "primitiveBitOr", "primitiveBitXor"):
            result, _ = run_prim(vm, name, vm.int_oop(-1), vm.int_oop(1))
            assert result.condition == ExitCondition.FAILURE, name

    def test_bitwise_positive(self, vm):
        _, frame = run_prim(vm, "primitiveBitXor", vm.int_oop(6), vm.int_oop(3))
        assert frame.stack == [vm.int_oop(5)]

    def test_bitshift_right(self, vm):
        _, frame = run_prim(vm, "primitiveBitShift", vm.int_oop(16), vm.int_oop(-2))
        assert frame.stack == [vm.int_oop(4)]

    def test_bitshift_out_of_range_fails(self, vm):
        result, _ = run_prim(vm, "primitiveBitShift", vm.int_oop(1), vm.int_oop(40))
        assert result.condition == ExitCondition.FAILURE

    def test_negated_overflow(self, vm):
        result, _ = run_prim(vm, "primitiveNegated", vm.int_oop(MIN_SMALL_INT))
        assert result.condition == ExitCondition.FAILURE

    def test_high_and_low_bit(self, vm):
        _, frame = run_prim(vm, "primitiveHighBit", vm.int_oop(12))
        assert frame.stack == [vm.int_oop(4)]
        _, frame = run_prim(vm, "primitiveLowBit", vm.int_oop(12))
        assert frame.stack == [vm.int_oop(3)]

    def test_sign(self, vm):
        for value, expected in [(-5, -1), (0, 0), (5, 1)]:
            _, frame = run_prim(vm, "primitiveSign", vm.int_oop(value))
            assert frame.stack == [vm.int_oop(expected)]

    def test_make_point(self, vm):
        result, frame = run_prim(
            vm, "primitiveMakePoint", vm.int_oop(3), vm.int_oop(4)
        )
        assert result.condition == ExitCondition.SUCCESS
        point = frame.stack[0]
        assert vm.memory.class_of(point).name == "Point"
        assert vm.memory.fetch_pointer(0, point) == vm.int_oop(3)


class TestFloatPrimitives:
    def test_as_float_on_integer(self, vm):
        result, frame = run_prim(vm, "primitiveAsFloat", vm.int_oop(3))
        assert result.condition == ExitCondition.SUCCESS
        assert vm.memory.float_value_of(frame.stack[0]) == 3.0

    def test_as_float_missing_check_defect(self, vm):
        """The paper's Listing 5 defect: pointer receivers are coerced,
        not failed — the primitive 'succeeds' with garbage."""
        victim = vm.memory.instantiate(vm.known.association)
        result, frame = run_prim(vm, "primitiveAsFloat", victim)
        assert result.condition == ExitCondition.SUCCESS  # should have failed!
        assert vm.memory.is_float_object(frame.stack[0])

    def test_float_add(self, vm):
        result, frame = run_prim(
            vm, "primitiveFloatAdd", vm.float_oop(1.5), vm.float_oop(2.25)
        )
        assert vm.memory.float_value_of(frame.stack[0]) == 3.75

    def test_float_receiver_checked_in_interpreter(self, vm):
        result, _ = run_prim(
            vm, "primitiveFloatAdd", vm.int_oop(1), vm.float_oop(2.0)
        )
        assert result.condition == ExitCondition.FAILURE

    def test_float_divide_by_zero_fails(self, vm):
        result, _ = run_prim(
            vm, "primitiveFloatDivide", vm.float_oop(1.0), vm.float_oop(0.0)
        )
        assert result.condition == ExitCondition.FAILURE

    def test_float_compare(self, vm):
        _, frame = run_prim(
            vm, "primitiveFloatLessThan", vm.float_oop(1.0), vm.float_oop(2.0)
        )
        assert frame.stack == [vm.memory.true_object]

    def test_truncated(self, vm):
        _, frame = run_prim(vm, "primitiveFloatTruncated", vm.float_oop(3.9))
        assert frame.stack == [vm.int_oop(3)]

    def test_truncated_too_large_fails(self, vm):
        result, _ = run_prim(vm, "primitiveFloatTruncated", vm.float_oop(1e300))
        assert result.condition == ExitCondition.FAILURE

    def test_sqrt_negative_fails(self, vm):
        result, _ = run_prim(vm, "primitiveFloatSquareRoot", vm.float_oop(-1.0))
        assert result.condition == ExitCondition.FAILURE

    def test_sqrt(self, vm):
        _, frame = run_prim(vm, "primitiveFloatSquareRoot", vm.float_oop(9.0))
        assert vm.memory.float_value_of(frame.stack[0]) == 3.0

    def test_exponent(self, vm):
        _, frame = run_prim(vm, "primitiveFloatExponent", vm.float_oop(8.0))
        assert frame.stack == [vm.int_oop(3)]

    def test_times_two_power(self, vm):
        _, frame = run_prim(
            vm, "primitiveFloatTimesTwoPower", vm.float_oop(1.5), vm.int_oop(2)
        )
        assert vm.memory.float_value_of(frame.stack[0]) == 6.0

    def test_log_domain(self, vm):
        result, _ = run_prim(vm, "primitiveFloatLogN", vm.float_oop(-1.0))
        assert result.condition == ExitCondition.FAILURE


class TestArrayPrimitives:
    def test_at_on_array(self, vm):
        array = vm.memory.new_array([vm.int_oop(10), vm.int_oop(20)])
        result, frame = run_prim(vm, "primitiveAt", array, vm.int_oop(2))
        assert result.condition == ExitCondition.SUCCESS
        assert frame.stack == [vm.int_oop(20)]

    def test_at_bounds(self, vm):
        array = vm.memory.new_array([vm.int_oop(10)])
        for index in (0, 2, -1):
            result, _ = run_prim(vm, "primitiveAt", array, vm.int_oop(index))
            assert result.condition == ExitCondition.FAILURE

    def test_at_on_fixed_object_fails(self, vm):
        obj = vm.memory.instantiate(vm.known.plain_object)
        result, _ = run_prim(vm, "primitiveAt", obj, vm.int_oop(1))
        assert result.condition == ExitCondition.FAILURE

    def test_at_put_and_read_back(self, vm):
        array = vm.memory.new_array([vm.memory.nil_object])
        value = vm.int_oop(99)
        result, frame = run_prim(
            vm, "primitiveAtPut", array, vm.int_oop(1), value
        )
        assert result.condition == ExitCondition.SUCCESS
        assert frame.stack == [value]
        assert vm.memory.fetch_pointer(0, array) == value

    def test_byte_array_at_put_range(self, vm):
        bytes_obj = vm.memory.instantiate(vm.known.byte_array, 4)
        result, _ = run_prim(
            vm, "primitiveAtPut", bytes_obj, vm.int_oop(1), vm.int_oop(300)
        )
        assert result.condition == ExitCondition.FAILURE
        result, _ = run_prim(
            vm, "primitiveAtPut", bytes_obj, vm.int_oop(1), vm.int_oop(255)
        )
        assert result.condition == ExitCondition.SUCCESS

    def test_size(self, vm):
        array = vm.memory.new_array([vm.int_oop(0)] * 7)
        _, frame = run_prim(vm, "primitiveSize", array)
        assert frame.stack == [vm.int_oop(7)]

    def test_size_of_smallint_fails(self, vm):
        result, _ = run_prim(vm, "primitiveSize", vm.int_oop(3))
        assert result.condition == ExitCondition.FAILURE

    def test_string_at(self, vm):
        string = vm.memory.instantiate(vm.known.byte_string, 3)
        vm.memory.store_pointer(0, string, 65)
        _, frame = run_prim(vm, "primitiveStringAt", string, vm.int_oop(1))
        assert frame.stack == [vm.int_oop(65)]

    def test_string_at_on_array_fails(self, vm):
        array = vm.memory.new_array([vm.int_oop(0)])
        result, _ = run_prim(vm, "primitiveStringAt", array, vm.int_oop(1))
        assert result.condition == ExitCondition.FAILURE

    def test_replace_from_to(self, vm):
        src = vm.memory.new_array([vm.int_oop(i) for i in (1, 2, 3, 4)])
        dst = vm.memory.new_array([vm.int_oop(0)] * 4)
        result, _ = run_prim(
            vm,
            "primitiveReplaceFromToWithStartingAt",
            dst,
            vm.int_oop(2),
            vm.int_oop(4),
            src,
            vm.int_oop(1),
        )
        assert result.condition == ExitCondition.SUCCESS
        values = [vm.memory.integer_value_of(e) for e in vm.memory.array_elements(dst)]
        assert values == [0, 1, 2, 3]

    def test_replace_range_checks(self, vm):
        src = vm.memory.new_array([vm.int_oop(1)])
        dst = vm.memory.new_array([vm.int_oop(0)] * 2)
        result, _ = run_prim(
            vm,
            "primitiveReplaceFromToWithStartingAt",
            dst,
            vm.int_oop(1),
            vm.int_oop(2),
            src,
            vm.int_oop(1),
        )
        assert result.condition == ExitCondition.FAILURE


class TestObjectPrimitives:
    def test_new(self, vm):
        behavior = make_behavior(vm.memory, vm.known.point)
        result, frame = run_prim(vm, "primitiveNew", behavior)
        assert result.condition == ExitCondition.SUCCESS
        assert vm.memory.class_of(frame.stack[0]).name == "Point"

    def test_new_on_variable_class_fails(self, vm):
        behavior = make_behavior(vm.memory, vm.known.array)
        result, _ = run_prim(vm, "primitiveNew", behavior)
        assert result.condition == ExitCondition.FAILURE

    def test_new_with_arg(self, vm):
        behavior = make_behavior(vm.memory, vm.known.array)
        result, frame = run_prim(vm, "primitiveNewWithArg", behavior, vm.int_oop(5))
        assert result.condition == ExitCondition.SUCCESS
        assert vm.memory.num_slots_of(frame.stack[0]) == 5

    def test_new_with_arg_on_non_behavior_fails(self, vm):
        result, _ = run_prim(
            vm, "primitiveNewWithArg", vm.memory.nil_object, vm.int_oop(5)
        )
        assert result.condition == ExitCondition.FAILURE

    def test_inst_var_at(self, vm):
        point = vm.memory.instantiate(vm.known.point)
        vm.memory.store_pointer(1, point, vm.int_oop(4))
        _, frame = run_prim(vm, "primitiveInstVarAt", point, vm.int_oop(2))
        assert frame.stack == [vm.int_oop(4)]

    def test_inst_var_at_put_raw_object_fails(self, vm):
        words = vm.memory.instantiate(vm.known.word_array, 2)
        result, _ = run_prim(
            vm, "primitiveInstVarAtPut", words, vm.int_oop(1), vm.int_oop(0)
        )
        assert result.condition == ExitCondition.FAILURE

    def test_shallow_copy(self, vm):
        array = vm.memory.new_array([vm.int_oop(5), vm.memory.nil_object])
        result, frame = run_prim(vm, "primitiveShallowCopy", array)
        copy = frame.stack[0]
        assert copy != array
        assert vm.memory.array_elements(copy) == vm.memory.array_elements(array)

    def test_identity(self, vm):
        a = vm.memory.new_array([])
        _, frame = run_prim(vm, "primitiveIdentical", a, a)
        assert frame.stack == [vm.memory.true_object]
        _, frame = run_prim(vm, "primitiveNotIdentical", a, vm.memory.nil_object)
        assert frame.stack == [vm.memory.true_object]

    def test_class_primitive(self, vm):
        _, frame = run_prim(vm, "primitiveClass", vm.int_oop(1))
        assert frame.stack == [vm.int_oop(vm.known.small_integer.index)]

    def test_identity_hash_of_smallint_fails(self, vm):
        result, _ = run_prim(vm, "primitiveIdentityHash", vm.int_oop(1))
        assert result.condition == ExitCondition.FAILURE

    def test_object_at_reads_method_literal(self, vm):
        builder = MethodBuilder(vm.memory, vm.symbols)
        builder.literal(vm.int_oop(42))
        method = builder.build()
        _, frame = run_prim(vm, "primitiveObjectAt", method.oop, vm.int_oop(2))
        assert frame.stack == [vm.int_oop(42)]


class TestFailureStackDiscipline:
    """Failing native methods must leave the operand stack untouched."""

    def test_all_primitives_preserve_stack_on_type_failure(self, vm):
        nil = vm.memory.nil_object
        for native in all_testable_primitives():
            if native.name == "primitiveAsFloat":
                continue  # the documented missing-check defect
            if native.name in ("primitiveClass", "primitiveIdentical",
                               "primitiveNotIdentical", "primitiveIdentityHash",
                               "primitiveShallowCopy", "primitiveByteSize"):
                continue  # total on any non-immediate receiver (nil included)
            method = MethodBuilder(vm.memory, vm.symbols).build()
            frame = Frame(nil, method)
            operands = [nil] * (native.argument_count + 1)
            for operand in operands:
                frame.push(operand)
            result = vm.interpreter.call_primitive(
                native, frame, native.argument_count
            )
            assert result.condition == ExitCondition.FAILURE, native.name
            assert frame.stack == operands, native.name
