"""Integration tests: full method execution with sends and primitives."""

from __future__ import annotations

import pytest

from repro.bytecode.assembler import assemble
from repro.errors import VMError
from repro.interpreter.frame import Frame


def build_method(vm, instructions, *, args=0, temps=None, literals=(), primitive=0):
    builder = vm.builder().args(args).temps(temps if temps is not None else args)
    if primitive:
        builder.primitive(primitive)
    for literal in literals:
        if isinstance(literal, str):
            builder.selector_literal(literal)
        else:
            builder.literal(literal)
    for byte in assemble(instructions):
        builder.emit(byte)
    return builder.build()


class TestStraightLine:
    def test_constant_return(self, vm):
        method = build_method(vm, ["pushTwo", "returnTop"])
        result = vm.interpreter.run(Frame(vm.memory.nil_object, method))
        assert result == vm.int_oop(2)

    def test_arithmetic_expression(self, vm):
        # (1 + 2) * 2 = 6
        method = build_method(
            vm,
            ["pushOne", "pushTwo", "bytecodePrimAdd", "pushTwo",
             "bytecodePrimMultiply", "returnTop"],
        )
        result = vm.interpreter.run(Frame(vm.memory.nil_object, method))
        assert vm.memory.integer_value_of(result) == 6

    def test_conditional(self, vm):
        # if 1 < 2 then 1 else 0
        method = build_method(
            vm,
            [
                "pushOne",
                "pushTwo",
                "bytecodePrimLessThan",
                "shortJumpIfFalse1",
                "returnTrue",
                "returnFalse",
            ],
        )
        result = vm.interpreter.run(Frame(vm.memory.nil_object, method))
        assert result == vm.memory.true_object

    def test_loop_countdown(self, vm):
        # temp0 := 2; [temp0 > 0] whileTrue: [temp0 := temp0 - 1]; ^temp0
        method = build_method(
            vm,
            [
                "pushTwo",
                "popIntoTemporaryVariable0",
                "pushTemporaryVariable0",  # pc 2
                "pushZero",
                "bytecodePrimGreaterThan",
                "shortJumpIfFalse5",  # exit to pc 12 (6 + 5+1)
                "pushTemporaryVariable0",
                "pushOne",
                "bytecodePrimSubtract",
                "popIntoTemporaryVariable0",
                ("longJump", -10),  # back to pc 2
                "pushTemporaryVariable0",
                "returnTop",
            ],
            temps=1,
        )
        result = vm.interpreter.run(Frame(vm.memory.nil_object, method))
        assert vm.memory.integer_value_of(result) == 0


class TestSendsAndActivation:
    def test_send_activates_installed_method(self, vm):
        # double := [:x | x + x]; 21 double = 42
        double = build_method(
            vm,
            ["pushTemporaryVariable0", "pushTemporaryVariable0",
             "bytecodePrimAdd", "returnTop"],
            args=1,
        )
        vm.interpreter.install_method(
            vm.known.small_integer.index, "double:", double
        )
        selector = vm.symbols.intern("double:")
        main = build_method(
            vm,
            ["pushLiteralConstant1", "pushLiteralConstant1",
             "sendLiteralSelector1Arg0", "returnTop"],
            literals=[selector, vm.int_oop(21)],
        )
        result = vm.interpreter.run(Frame(vm.memory.nil_object, main))
        assert vm.memory.integer_value_of(result) == 42

    def test_message_not_understood_raises(self, vm):
        selector = vm.symbols.intern("missing")
        main = build_method(
            vm, ["pushOne", "sendLiteralSelector0Args0", "returnTop"],
            literals=[selector],
        )
        with pytest.raises(VMError, match="message not understood"):
            vm.interpreter.run(Frame(vm.memory.nil_object, main))

    def test_primitive_method_success_skips_body(self, vm):
        # A method with primitiveAdd: body would return nil; the
        # primitive succeeds so the body never runs.
        plus = build_method(vm, ["returnNil"], args=1, primitive=1)
        vm.interpreter.install_method(vm.known.small_integer.index, "plus:", plus)
        selector = vm.symbols.intern("plus:")
        main = build_method(
            vm,
            ["pushTwo", "pushTwo", "sendLiteralSelector1Arg0", "returnTop"],
            literals=[selector],
        )
        result = vm.interpreter.run(Frame(vm.memory.nil_object, main))
        assert vm.memory.integer_value_of(result) == 4

    def test_primitive_method_failure_runs_body(self, vm):
        # Adding nil fails the primitive; the fallback body returns false.
        plus = build_method(vm, ["returnFalse"], args=1, primitive=1)
        vm.interpreter.install_method(vm.known.small_integer.index, "plus:", plus)
        selector = vm.symbols.intern("plus:")
        main = build_method(
            vm,
            ["pushTwo", "pushNil", "sendLiteralSelector1Arg0", "returnTop"],
            literals=[selector],
        )
        result = vm.interpreter.run(Frame(vm.memory.nil_object, main))
        assert result == vm.memory.false_object

    def test_arithmetic_slow_path_sends_plus(self, vm):
        # Overflowing + takes the slow path and activates the user's
        # method for #+ (here: returns the receiver).
        plus_method = build_method(vm, ["pushReceiver", "returnTop"], args=1)
        vm.interpreter.install_method(vm.known.small_integer.index, "+", plus_method)
        from repro.memory.layout import MAX_SMALL_INT

        main = build_method(
            vm,
            ["pushLiteralConstant0", "pushOne", "bytecodePrimAdd", "returnTop"],
            literals=[vm.int_oop(MAX_SMALL_INT)],
        )
        result = vm.interpreter.run(Frame(vm.memory.nil_object, main))
        assert vm.memory.integer_value_of(result) == MAX_SMALL_INT

    def test_step_budget(self, vm):
        method = build_method(vm, ["nop", ("longJump", -3)])
        with pytest.raises(VMError, match="budget"):
            vm.interpreter.run(Frame(vm.memory.nil_object, method), max_steps=100)
