"""Single-instruction interpreter tests: one scenario per family.

Each test builds a tiny method around the instruction under test and
checks the exit condition plus the operand-stack/frame effects.  These
are the hand-written analogues of what the concolic tester generates.
"""

from __future__ import annotations

import pytest

from repro.bytecode.assembler import assemble
from repro.interpreter.exits import ExitCondition
from repro.interpreter.frame import Frame
from repro.memory.layout import MAX_SMALL_INT, MIN_SMALL_INT


def make_frame(vm, instructions, receiver=None, stack=(), literals=(), args=()):
    """Build a one-off method and a frame poised at its first byte-code."""
    builder = vm.builder().args(len(args)).temps(max(len(args), 4))
    for literal in literals:
        builder.literal(literal)
    code = assemble(instructions)
    for byte in code:
        builder.emit(byte)
    method = builder.build()
    frame = Frame(
        receiver if receiver is not None else vm.memory.nil_object,
        method,
        list(args),
    )
    for value in stack:
        frame.push(value)
    return frame


class TestPushes:
    def test_push_receiver(self, vm):
        receiver = vm.int_oop(5)
        frame = make_frame(vm, ["pushReceiver"], receiver=receiver)
        result = vm.interpreter.step(frame)
        assert result.condition == ExitCondition.SUCCESS
        assert frame.stack == [receiver]

    def test_push_constants(self, vm):
        frame = make_frame(vm, ["pushTrue", "pushFalse", "pushNil", "pushTwo"])
        for _ in range(4):
            assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        memory = vm.memory
        assert frame.stack == [
            memory.true_object,
            memory.false_object,
            memory.nil_object,
            vm.int_oop(2),
        ]

    def test_push_literal(self, vm):
        literal = vm.int_oop(42)
        frame = make_frame(vm, ["pushLiteralConstant0"], literals=[literal])
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.stack == [literal]

    def test_push_missing_literal_is_invalid_memory(self, vm):
        frame = make_frame(vm, ["pushLiteralConstant3"], literals=[])
        result = vm.interpreter.step(frame)
        assert result.condition == ExitCondition.INVALID_MEMORY_ACCESS

    def test_push_temp(self, vm):
        argument = vm.int_oop(9)
        frame = make_frame(vm, ["pushTemporaryVariable0"], args=[argument])
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.stack == [argument]

    def test_push_uninitialized_temp_is_invalid_frame(self, vm):
        frame = make_frame(vm, ["pushTemporaryVariable2"])
        assert vm.interpreter.step(frame).condition == ExitCondition.INVALID_FRAME

    def test_push_receiver_variable(self, vm):
        receiver = vm.memory.instantiate(vm.known.plain_object)
        vm.memory.store_pointer(1, receiver, vm.int_oop(7))
        frame = make_frame(vm, ["pushReceiverVariable1"], receiver=receiver)
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.stack == [vm.int_oop(7)]

    def test_push_receiver_variable_of_smallint_is_invalid_memory(self, vm):
        frame = make_frame(vm, ["pushReceiverVariable0"], receiver=vm.int_oop(3))
        result = vm.interpreter.step(frame)
        assert result.condition == ExitCondition.INVALID_MEMORY_ACCESS


class TestStackManipulation:
    def test_dup(self, vm):
        frame = make_frame(vm, ["duplicateTop"], stack=[vm.int_oop(1)])
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.stack == [vm.int_oop(1), vm.int_oop(1)]

    def test_dup_empty_stack_is_invalid_frame(self, vm):
        frame = make_frame(vm, ["duplicateTop"])
        assert vm.interpreter.step(frame).condition == ExitCondition.INVALID_FRAME

    def test_pop(self, vm):
        frame = make_frame(vm, ["popStackTop"], stack=[vm.int_oop(1)])
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.stack == []

    def test_store_temp_keeps_stack(self, vm):
        frame = make_frame(vm, ["storeTemporaryVariable1"], stack=[vm.int_oop(8)])
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.stack == [vm.int_oop(8)]
        assert frame.temps[1] == vm.int_oop(8)

    def test_pop_into_temp(self, vm):
        frame = make_frame(vm, ["popIntoTemporaryVariable0"], stack=[vm.int_oop(8)])
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.stack == []
        assert frame.temps[0] == vm.int_oop(8)

    def test_store_receiver_variable(self, vm):
        receiver = vm.memory.instantiate(vm.known.plain_object)
        frame = make_frame(
            vm, ["storeReceiverVariable2"], receiver=receiver, stack=[vm.int_oop(3)]
        )
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert vm.memory.fetch_pointer(2, receiver) == vm.int_oop(3)
        assert frame.stack == [vm.int_oop(3)]

    def test_pop_into_receiver_variable(self, vm):
        receiver = vm.memory.instantiate(vm.known.plain_object)
        frame = make_frame(
            vm, ["popIntoReceiverVariable0"], receiver=receiver, stack=[vm.int_oop(4)]
        )
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert vm.memory.fetch_pointer(0, receiver) == vm.int_oop(4)
        assert frame.stack == []


class TestReturns:
    def test_return_top(self, vm):
        frame = make_frame(vm, ["returnTop"], stack=[vm.int_oop(5)])
        result = vm.interpreter.step(frame)
        assert result.condition == ExitCondition.METHOD_RETURN
        assert result.returned_value == vm.int_oop(5)

    def test_return_receiver(self, vm):
        receiver = vm.int_oop(1)
        frame = make_frame(vm, ["returnReceiver"], receiver=receiver)
        result = vm.interpreter.step(frame)
        assert result.condition == ExitCondition.METHOD_RETURN
        assert result.returned_value == receiver

    def test_return_constants(self, vm):
        for name, expected in [
            ("returnNil", vm.memory.nil_object),
            ("returnTrue", vm.memory.true_object),
            ("returnFalse", vm.memory.false_object),
        ]:
            frame = make_frame(vm, [name])
            result = vm.interpreter.step(frame)
            assert result.condition == ExitCondition.METHOD_RETURN
            assert result.returned_value == expected

    def test_return_top_empty_stack_is_invalid_frame(self, vm):
        frame = make_frame(vm, ["returnTop"])
        assert vm.interpreter.step(frame).condition == ExitCondition.INVALID_FRAME


class TestJumps:
    def test_short_jump_skips(self, vm):
        frame = make_frame(vm, ["shortJump0", "pushTrue", "pushFalse"])
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.pc == 2  # skipped pushTrue (displacement k+1 = 1)
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.stack == [vm.memory.false_object]

    def test_jump_if_true_taken(self, vm):
        frame = make_frame(
            vm, ["shortJumpIfTrue0", "pushNil"], stack=[vm.memory.true_object]
        )
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.pc == 2
        assert frame.stack == []

    def test_jump_if_true_not_taken(self, vm):
        frame = make_frame(
            vm, ["shortJumpIfTrue0", "pushNil"], stack=[vm.memory.false_object]
        )
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.pc == 1

    def test_jump_if_false_taken(self, vm):
        frame = make_frame(
            vm, ["shortJumpIfFalse3"], stack=[vm.memory.false_object]
        )
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.pc == 5

    def test_conditional_jump_on_non_boolean_sends_must_be_boolean(self, vm):
        frame = make_frame(vm, ["shortJumpIfTrue0"], stack=[vm.int_oop(1)])
        result = vm.interpreter.step(frame)
        assert result.condition == ExitCondition.MESSAGE_SEND
        assert result.selector == "mustBeBoolean"
        assert frame.stack == [vm.int_oop(1)]  # value stays as receiver

    def test_long_jump_backward(self, vm):
        frame = make_frame(vm, ["nop", ("longJump", -2)])
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.pc == 1

    def test_long_jump_if_false(self, vm):
        frame = make_frame(vm, [("longJumpIfFalse", 4)], stack=[vm.memory.false_object])
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.pc == 6


class TestArithmetic:
    def add_frame(self, vm, rcvr, arg):
        return make_frame(vm, ["bytecodePrimAdd"], stack=[rcvr, arg])

    def test_integer_add_success(self, vm):
        frame = self.add_frame(vm, vm.int_oop(3), vm.int_oop(4))
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.stack == [vm.int_oop(7)]

    def test_integer_add_overflow_sends(self, vm):
        frame = self.add_frame(vm, vm.int_oop(MAX_SMALL_INT), vm.int_oop(1))
        result = vm.interpreter.step(frame)
        assert result.condition == ExitCondition.MESSAGE_SEND
        assert result.selector == "+"
        # Operands stay on the stack for the send.
        assert len(frame.stack) == 2

    def test_add_with_non_integer_sends(self, vm):
        frame = self.add_frame(vm, vm.int_oop(1), vm.memory.nil_object)
        assert vm.interpreter.step(frame).condition == ExitCondition.MESSAGE_SEND

    def test_float_add_is_inlined(self, vm):
        frame = self.add_frame(vm, vm.float_oop(1.5), vm.float_oop(2.0))
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert vm.memory.float_value_of(frame.stack[0]) == 3.5

    def test_subtract_underflow_sends(self, vm):
        frame = make_frame(
            vm,
            ["bytecodePrimSubtract"],
            stack=[vm.int_oop(MIN_SMALL_INT), vm.int_oop(1)],
        )
        assert vm.interpreter.step(frame).condition == ExitCondition.MESSAGE_SEND

    def test_multiply(self, vm):
        frame = make_frame(
            vm, ["bytecodePrimMultiply"], stack=[vm.int_oop(-6), vm.int_oop(7)]
        )
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.stack == [vm.int_oop(-42)]

    def test_divide_exact(self, vm):
        frame = make_frame(
            vm, ["bytecodePrimDivide"], stack=[vm.int_oop(12), vm.int_oop(4)]
        )
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.stack == [vm.int_oop(3)]

    def test_divide_inexact_sends(self, vm):
        frame = make_frame(
            vm, ["bytecodePrimDivide"], stack=[vm.int_oop(7), vm.int_oop(2)]
        )
        assert vm.interpreter.step(frame).condition == ExitCondition.MESSAGE_SEND

    def test_divide_by_zero_sends(self, vm):
        frame = make_frame(
            vm, ["bytecodePrimDivide"], stack=[vm.int_oop(7), vm.int_oop(0)]
        )
        assert vm.interpreter.step(frame).condition == ExitCondition.MESSAGE_SEND

    def test_modulo_floors(self, vm):
        frame = make_frame(
            vm, ["bytecodePrimModulo"], stack=[vm.int_oop(-7), vm.int_oop(2)]
        )
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.stack == [vm.int_oop(1)]

    def test_integer_divide_floors(self, vm):
        frame = make_frame(
            vm, ["bytecodePrimIntegerDivide"], stack=[vm.int_oop(-7), vm.int_oop(2)]
        )
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.stack == [vm.int_oop(-4)]

    def test_comparison_pushes_boolean(self, vm):
        frame = make_frame(
            vm, ["bytecodePrimLessThan"], stack=[vm.int_oop(1), vm.int_oop(2)]
        )
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.stack == [vm.memory.true_object]

    def test_float_comparison_inlined(self, vm):
        frame = make_frame(
            vm,
            ["bytecodePrimGreaterOrEqual"],
            stack=[vm.float_oop(2.5), vm.float_oop(2.5)],
        )
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.stack == [vm.memory.true_object]

    def test_identity_comparison_never_sends(self, vm):
        frame = make_frame(
            vm,
            ["bytecodePrimIdenticalTo"],
            stack=[vm.memory.nil_object, vm.memory.nil_object],
        )
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.stack == [vm.memory.true_object]

    def test_bitand_non_negative(self, vm):
        frame = make_frame(
            vm, ["bytecodePrimBitAnd"], stack=[vm.int_oop(12), vm.int_oop(10)]
        )
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.stack == [vm.int_oop(8)]

    def test_bitand_negative_takes_slow_path(self, vm):
        """Interpreter bit-ops send for negatives (behavioural difference)."""
        frame = make_frame(
            vm, ["bytecodePrimBitAnd"], stack=[vm.int_oop(-1), vm.int_oop(3)]
        )
        result = vm.interpreter.step(frame)
        assert result.condition == ExitCondition.MESSAGE_SEND
        assert result.selector == "bitAnd:"

    def test_bitshift_left(self, vm):
        frame = make_frame(
            vm, ["bytecodePrimBitShift"], stack=[vm.int_oop(3), vm.int_oop(4)]
        )
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.stack == [vm.int_oop(48)]

    def test_bitshift_overflow_sends(self, vm):
        frame = make_frame(
            vm,
            ["bytecodePrimBitShift"],
            stack=[vm.int_oop(MAX_SMALL_INT), vm.int_oop(8)],
        )
        assert vm.interpreter.step(frame).condition == ExitCondition.MESSAGE_SEND

    def test_arithmetic_on_empty_stack_is_invalid_frame(self, vm):
        frame = make_frame(vm, ["bytecodePrimAdd"])
        assert vm.interpreter.step(frame).condition == ExitCondition.INVALID_FRAME

    def test_arithmetic_on_one_element_stack_is_invalid_frame(self, vm):
        frame = make_frame(vm, ["bytecodePrimAdd"], stack=[vm.int_oop(1)])
        assert vm.interpreter.step(frame).condition == ExitCondition.INVALID_FRAME


class TestSends:
    def test_common_selector_send(self, vm):
        array = vm.memory.new_array([vm.int_oop(1)])
        frame = make_frame(vm, ["sendAt"], stack=[array, vm.int_oop(1)])
        result = vm.interpreter.step(frame)
        assert result.condition == ExitCondition.MESSAGE_SEND
        assert (result.selector, result.argument_count) == ("at:", 1)

    def test_send_is_nil_is_inlined(self, vm):
        frame = make_frame(vm, ["sendIsNil"], stack=[vm.memory.nil_object])
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.stack == [vm.memory.true_object]

    def test_literal_selector_send(self, vm):
        selector = vm.symbols.intern("foo:")
        frame = make_frame(
            vm,
            ["sendLiteralSelector1Arg0"],
            literals=[selector],
            stack=[vm.int_oop(1), vm.int_oop(2)],
        )
        result = vm.interpreter.step(frame)
        assert result.condition == ExitCondition.MESSAGE_SEND
        assert (result.selector, result.argument_count) == ("foo:", 1)

    def test_send_without_receiver_is_invalid_frame(self, vm):
        selector = vm.symbols.intern("bar")
        frame = make_frame(vm, ["sendLiteralSelector0Args0"], literals=[selector])
        assert vm.interpreter.step(frame).condition == ExitCondition.INVALID_FRAME


class TestNop:
    def test_nop_changes_nothing_but_pc(self, vm):
        frame = make_frame(vm, ["nop"], stack=[vm.int_oop(1)])
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.stack == [vm.int_oop(1)]
        assert frame.pc == 1
