"""Systematic matrix tests: every arithmetic byte-code family × operand
type combination (int/int, float/float, int/float, object operands).

These pin the static-type-prediction policy (paper Listing 1 and the
optimisation-difference discussion in Section 5.3): integers and floats
inline, everything else leaves through a send.
"""

from __future__ import annotations

import pytest

from repro.interpreter.exits import ExitCondition
from tests.interpreter.test_step_bytecodes import make_frame

BINARY_ARITH = {
    "bytecodePrimAdd": ("+", lambda a, b: a + b),
    "bytecodePrimSubtract": ("-", lambda a, b: a - b),
    "bytecodePrimMultiply": ("*", lambda a, b: a * b),
}
COMPARISONS = {
    "bytecodePrimLessThan": ("<", lambda a, b: a < b),
    "bytecodePrimGreaterThan": (">", lambda a, b: a > b),
    "bytecodePrimLessOrEqual": ("<=", lambda a, b: a <= b),
    "bytecodePrimGreaterOrEqual": (">=", lambda a, b: a >= b),
    "bytecodePrimEqual": ("=", lambda a, b: a == b),
    "bytecodePrimNotEqual": ("~=", lambda a, b: a != b),
}


@pytest.mark.parametrize("name", sorted(BINARY_ARITH))
class TestBinaryArithmeticMatrix:
    def test_int_int_inlines(self, vm, name):
        _, op = BINARY_ARITH[name]
        frame = make_frame(vm, [name], stack=[vm.int_oop(9), vm.int_oop(4)])
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.stack == [vm.int_oop(op(9, 4))]

    def test_float_float_inlines(self, vm, name):
        _, op = BINARY_ARITH[name]
        frame = make_frame(
            vm, [name], stack=[vm.float_oop(2.5), vm.float_oop(0.5)]
        )
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert vm.memory.float_value_of(frame.stack[0]) == op(2.5, 0.5)

    def test_int_float_sends(self, vm, name):
        selector, _ = BINARY_ARITH[name]
        frame = make_frame(
            vm, [name], stack=[vm.int_oop(1), vm.float_oop(2.0)]
        )
        result = vm.interpreter.step(frame)
        assert result.condition == ExitCondition.MESSAGE_SEND
        assert result.selector == selector

    def test_float_int_sends(self, vm, name):
        frame = make_frame(
            vm, [name], stack=[vm.float_oop(2.0), vm.int_oop(1)]
        )
        assert vm.interpreter.step(frame).condition == ExitCondition.MESSAGE_SEND

    def test_object_operand_sends(self, vm, name):
        frame = make_frame(
            vm, [name], stack=[vm.memory.nil_object, vm.int_oop(1)]
        )
        result = vm.interpreter.step(frame)
        assert result.condition == ExitCondition.MESSAGE_SEND
        assert len(frame.stack) == 2  # operands preserved for the send


@pytest.mark.parametrize("name", sorted(COMPARISONS))
class TestComparisonMatrix:
    @pytest.mark.parametrize("left,right", [(1, 2), (2, 1), (3, 3)])
    def test_int_comparisons(self, vm, name, left, right):
        _, op = COMPARISONS[name]
        frame = make_frame(
            vm, [name], stack=[vm.int_oop(left), vm.int_oop(right)]
        )
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.stack == [vm.memory.boolean_object_of(op(left, right))]

    @pytest.mark.parametrize("left,right", [(1.5, 2.5), (2.5, 1.5), (1.5, 1.5)])
    def test_float_comparisons(self, vm, name, left, right):
        _, op = COMPARISONS[name]
        frame = make_frame(
            vm, [name], stack=[vm.float_oop(left), vm.float_oop(right)]
        )
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.stack == [vm.memory.boolean_object_of(op(left, right))]

    def test_mixed_sends(self, vm, name):
        frame = make_frame(
            vm, [name], stack=[vm.int_oop(1), vm.float_oop(1.0)]
        )
        assert vm.interpreter.step(frame).condition == ExitCondition.MESSAGE_SEND


class TestNegativeZeroAndNaN:
    def test_float_nan_comparisons(self, vm):
        nan = vm.float_oop(float("nan"))
        frame = make_frame(vm, ["bytecodePrimEqual"], stack=[nan, nan])
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.stack == [vm.memory.false_object]

    def test_float_nan_not_equal(self, vm):
        nan = vm.float_oop(float("nan"))
        frame = make_frame(vm, ["bytecodePrimNotEqual"], stack=[nan, nan])
        vm.interpreter.step(frame)
        assert frame.stack == [vm.memory.true_object]

    def test_signed_zero_equality(self, vm):
        pos = vm.float_oop(0.0)
        neg = vm.float_oop(-0.0)
        frame = make_frame(vm, ["bytecodePrimEqual"], stack=[pos, neg])
        vm.interpreter.step(frame)
        assert frame.stack == [vm.memory.true_object]

    def test_float_division_by_negative_zero_sends(self, vm):
        frame = make_frame(
            vm, ["bytecodePrimDivide"],
            stack=[vm.float_oop(1.0), vm.float_oop(-0.0)],
        )
        assert vm.interpreter.step(frame).condition == ExitCondition.MESSAGE_SEND
