"""Unit tests for the FFI acceleration primitives.

These are the paper's missing-functionality family: fully implemented
in the interpreter (tested here), never implemented in the 32-bit
native-method compiler (tested in the difftest suite).
"""

from __future__ import annotations

import math
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bytecode.methods import MethodBuilder
from repro.interpreter.exits import ExitCondition
from repro.interpreter.frame import Frame
from repro.interpreter.primitives import primitive_named


def external(vm, size_bytes):
    cls = vm.memory.class_table.named("ExternalAddress")
    return vm.memory.instantiate(cls, (size_bytes + 3) // 4)


def run_prim(vm, name, receiver, *arguments):
    native = primitive_named(name)
    frame = Frame(vm.memory.nil_object, MethodBuilder(vm.memory, vm.symbols).build())
    frame.push(receiver)
    for argument in arguments:
        frame.push(argument)
    result = vm.interpreter.call_primitive(native, frame, len(arguments))
    return result, frame


class TestIntegerAccess:
    def test_write_read_int8_round_trip(self, vm):
        buffer = external(vm, 8)
        ok, _ = run_prim(vm, "primitiveFFIWriteInt8", buffer,
                         vm.int_oop(3), vm.int_oop(-5))
        assert ok.condition == ExitCondition.SUCCESS
        result, frame = run_prim(vm, "primitiveFFIReadInt8", buffer, vm.int_oop(3))
        assert frame.stack == [vm.int_oop(-5)]

    def test_unsigned_view_of_negative_byte(self, vm):
        buffer = external(vm, 4)
        run_prim(vm, "primitiveFFIWriteInt8", buffer, vm.int_oop(0), vm.int_oop(-1))
        _, frame = run_prim(vm, "primitiveFFIReadUint8", buffer, vm.int_oop(0))
        assert frame.stack == [vm.int_oop(255)]

    def test_int16_little_endian_packing(self, vm):
        buffer = external(vm, 4)
        run_prim(vm, "primitiveFFIWriteUint16", buffer, vm.int_oop(0),
                 vm.int_oop(0x1234))
        run_prim(vm, "primitiveFFIWriteUint16", buffer, vm.int_oop(2),
                 vm.int_oop(0x5678))
        assert vm.memory.fetch_pointer(0, buffer) == 0x56781234

    def test_unaligned_access_fails(self, vm):
        buffer = external(vm, 8)
        result, _ = run_prim(vm, "primitiveFFIReadInt16", buffer, vm.int_oop(1))
        assert result.condition == ExitCondition.FAILURE
        result, _ = run_prim(vm, "primitiveFFIReadInt32", buffer, vm.int_oop(2))
        assert result.condition == ExitCondition.FAILURE

    def test_out_of_bounds_fails(self, vm):
        buffer = external(vm, 4)
        result, _ = run_prim(vm, "primitiveFFIReadInt32", buffer, vm.int_oop(4))
        assert result.condition == ExitCondition.FAILURE

    def test_negative_offset_fails(self, vm):
        buffer = external(vm, 4)
        result, _ = run_prim(vm, "primitiveFFIReadInt8", buffer, vm.int_oop(-1))
        assert result.condition == ExitCondition.FAILURE

    def test_non_external_receiver_fails(self, vm):
        array = vm.memory.new_array([])
        result, _ = run_prim(vm, "primitiveFFIReadInt8", array, vm.int_oop(0))
        assert result.condition == ExitCondition.FAILURE

    def test_write_value_range_checked(self, vm):
        buffer = external(vm, 4)
        result, _ = run_prim(vm, "primitiveFFIWriteInt8", buffer,
                             vm.int_oop(0), vm.int_oop(200))
        assert result.condition == ExitCondition.FAILURE
        result, _ = run_prim(vm, "primitiveFFIWriteUint8", buffer,
                             vm.int_oop(0), vm.int_oop(200))
        assert result.condition == ExitCondition.SUCCESS

    def test_int64_write_read(self, vm):
        buffer = external(vm, 16)
        ok, _ = run_prim(vm, "primitiveFFIWriteInt64", buffer,
                         vm.int_oop(8), vm.int_oop(-123456))
        assert ok.condition == ExitCondition.SUCCESS
        _, frame = run_prim(vm, "primitiveFFIReadInt64", buffer, vm.int_oop(8))
        assert frame.stack == [vm.int_oop(-123456)]

    def test_uint32_beyond_small_int_fails_on_read(self, vm):
        buffer = external(vm, 4)
        vm.memory.store_pointer(0, buffer, 0xFFFFFFFF)
        result, _ = run_prim(vm, "primitiveFFIReadUint32", buffer, vm.int_oop(0))
        assert result.condition == ExitCondition.FAILURE  # 2^32-1 > max

    @given(offset=st.integers(0, 3), value=st.integers(-128, 127))
    @settings(max_examples=25, deadline=None)
    def test_int8_round_trip_property(self, offset, value):
        # Build the VM inside the example: hypothesis reuses the test
        # function, so a function-scoped fixture would leak state.
        from tests.conftest import VM
        from repro.bytecode.methods import SymbolTable
        from repro.interpreter.interpreter import Interpreter
        from repro.memory.bootstrap import bootstrap_memory

        memory, known = bootstrap_memory(heap_words=2048)
        symbols = SymbolTable(memory)
        vm = VM(memory, known, Interpreter(memory, symbols), symbols)
        buffer = external(vm, 4)
        run_prim(vm, "primitiveFFIWriteInt8", buffer,
                 vm.int_oop(offset), vm.int_oop(value))
        _, frame = run_prim(vm, "primitiveFFIReadInt8", buffer, vm.int_oop(offset))
        assert frame.stack == [vm.int_oop(value)]


class TestFloatAccess:
    def test_float64_round_trip(self, vm):
        buffer = external(vm, 8)
        ok, _ = run_prim(vm, "primitiveFFIWriteFloat64", buffer,
                         vm.int_oop(0), vm.float_oop(2.718281828))
        assert ok.condition == ExitCondition.SUCCESS
        _, frame = run_prim(vm, "primitiveFFIReadFloat64", buffer, vm.int_oop(0))
        assert vm.memory.float_value_of(frame.stack[0]) == 2.718281828

    def test_float32_precision_loss(self, vm):
        buffer = external(vm, 4)
        run_prim(vm, "primitiveFFIWriteFloat32", buffer,
                 vm.int_oop(0), vm.float_oop(1.1))
        _, frame = run_prim(vm, "primitiveFFIReadFloat32", buffer, vm.int_oop(0))
        value = vm.memory.float_value_of(frame.stack[0])
        assert value == struct.unpack("<f", struct.pack("<f", 1.1))[0]

    def test_float32_out_of_range_fails(self, vm):
        buffer = external(vm, 4)
        result, _ = run_prim(vm, "primitiveFFIWriteFloat32", buffer,
                             vm.int_oop(0), vm.float_oop(1e39))
        assert result.condition == ExitCondition.FAILURE

    def test_float64_alignment(self, vm):
        buffer = external(vm, 16)
        result, _ = run_prim(vm, "primitiveFFIReadFloat64", buffer, vm.int_oop(4))
        assert result.condition == ExitCondition.FAILURE

    def test_non_float_value_fails(self, vm):
        buffer = external(vm, 8)
        result, _ = run_prim(vm, "primitiveFFIWriteFloat64", buffer,
                             vm.int_oop(0), vm.int_oop(1))
        assert result.condition == ExitCondition.FAILURE


class TestBuffers:
    def test_allocate_and_byte_size(self, vm):
        result, frame = run_prim(vm, "primitiveFFIAllocate", vm.int_oop(10))
        assert result.condition == ExitCondition.SUCCESS
        buffer = frame.stack[0]
        _, frame = run_prim(vm, "primitiveFFIByteSize", buffer)
        assert frame.stack == [vm.int_oop(12)]  # rounded up to words

    def test_allocate_range_checked(self, vm):
        for bad in (0, -1, 5000):
            result, _ = run_prim(vm, "primitiveFFIAllocate", vm.int_oop(bad))
            assert result.condition == ExitCondition.FAILURE

    def test_fill(self, vm):
        buffer = external(vm, 8)
        ok, _ = run_prim(vm, "primitiveFFIFill", buffer,
                         vm.int_oop(0xAB), vm.int_oop(6))
        assert ok.condition == ExitCondition.SUCCESS
        assert vm.memory.fetch_pointer(0, buffer) == 0xABABABAB
        assert vm.memory.fetch_pointer(1, buffer) == 0x0000ABAB

    def test_fill_count_checked(self, vm):
        buffer = external(vm, 4)
        result, _ = run_prim(vm, "primitiveFFIFill", buffer,
                             vm.int_oop(1), vm.int_oop(5))
        assert result.condition == ExitCondition.FAILURE

    def test_copy_bytes(self, vm):
        src = external(vm, 8)
        dst = external(vm, 8)
        run_prim(vm, "primitiveFFIFill", src, vm.int_oop(0x5A), vm.int_oop(8))
        ok, _ = run_prim(vm, "primitiveFFICopyBytes", dst, src, vm.int_oop(5))
        assert ok.condition == ExitCondition.SUCCESS
        assert vm.memory.fetch_pointer(0, dst) == 0x5A5A5A5A
        assert vm.memory.fetch_pointer(1, dst) == 0x0000005A

    def test_copy_bounds(self, vm):
        src = external(vm, 4)
        dst = external(vm, 8)
        result, _ = run_prim(vm, "primitiveFFICopyBytes", dst, src, vm.int_oop(8))
        assert result.condition == ExitCondition.FAILURE


class TestStructFields:
    def test_field_indexing_by_width(self, vm):
        buffer = external(vm, 16)
        # field 3 of an int16 struct lives at byte offset 4.
        run_prim(vm, "primitiveFFIStructInt16AtPut", buffer,
                 vm.int_oop(3), vm.int_oop(-7))
        _, frame = run_prim(vm, "primitiveFFIStructInt16At", buffer, vm.int_oop(3))
        assert frame.stack == [vm.int_oop(-7)]

    def test_field_out_of_struct_fails(self, vm):
        buffer = external(vm, 8)
        result, _ = run_prim(vm, "primitiveFFIStructInt32At", buffer, vm.int_oop(3))
        assert result.condition == ExitCondition.FAILURE

    def test_field_index_one_based(self, vm):
        buffer = external(vm, 8)
        result, _ = run_prim(vm, "primitiveFFIStructInt8At", buffer, vm.int_oop(0))
        assert result.condition == ExitCondition.FAILURE

    def test_uint64_field_round_trip(self, vm):
        buffer = external(vm, 8)
        ok, _ = run_prim(vm, "primitiveFFIStructUint64AtPut", buffer,
                         vm.int_oop(1), vm.int_oop(1 << 30 - 1))
        assert ok.condition == ExitCondition.SUCCESS
        _, frame = run_prim(vm, "primitiveFFIStructUint64At", buffer, vm.int_oop(1))
        assert frame.stack == [vm.int_oop(1 << 30 - 1)]

    def test_signed_range_checks(self, vm):
        buffer = external(vm, 4)
        result, _ = run_prim(vm, "primitiveFFIStructInt8AtPut", buffer,
                             vm.int_oop(1), vm.int_oop(128))
        assert result.condition == ExitCondition.FAILURE


class TestPointers:
    def test_pointer_round_trip(self, vm):
        buffer = external(vm, 8)
        ok, _ = run_prim(vm, "primitiveFFIPointerAtPut", buffer,
                         vm.int_oop(4), vm.int_oop(0x1000))
        assert ok.condition == ExitCondition.SUCCESS
        _, frame = run_prim(vm, "primitiveFFIPointerAt", buffer, vm.int_oop(4))
        assert frame.stack == [vm.int_oop(0x1000)]

    def test_pointer_alignment(self, vm):
        buffer = external(vm, 8)
        result, _ = run_prim(vm, "primitiveFFIPointerAt", buffer, vm.int_oop(2))
        assert result.condition == ExitCondition.FAILURE

    def test_negative_address_rejected(self, vm):
        buffer = external(vm, 8)
        result, _ = run_prim(vm, "primitiveFFIPointerAtPut", buffer,
                             vm.int_oop(0), vm.int_oop(-4))
        assert result.condition == ExitCondition.FAILURE
