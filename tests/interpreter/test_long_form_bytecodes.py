"""Long-form (operand byte) byte-code encodings: interpreter semantics."""

from __future__ import annotations

import pytest

from repro.interpreter.exits import ExitCondition
from tests.interpreter.test_step_bytecodes import make_frame


class TestPushIntegerByte:
    def test_positive(self, vm):
        frame = make_frame(vm, [("pushIntegerByte", 42)])
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.stack == [vm.int_oop(42)]

    def test_negative_signed_byte(self, vm):
        frame = make_frame(vm, [("pushIntegerByte", -5)])
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.stack == [vm.int_oop(-5)]

    def test_pc_advances_past_operand(self, vm):
        frame = make_frame(vm, [("pushIntegerByte", 1), "nop"])
        vm.interpreter.step(frame)
        assert frame.pc == 2


class TestLongTemps:
    def test_push_beyond_short_range(self, vm):
        value = vm.int_oop(9)
        frame = make_frame(vm, [("pushTemporaryVariableLong", 3)])
        frame.temps[3] = value
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.stack == [value]

    def test_store_keeps_stack(self, vm):
        frame = make_frame(
            vm, [("storeTemporaryVariableLong", 2)], stack=[vm.int_oop(7)]
        )
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.temps[2] == vm.int_oop(7)
        assert frame.stack == [vm.int_oop(7)]

    def test_pop_into(self, vm):
        frame = make_frame(
            vm, [("popIntoTemporaryVariableLong", 1)], stack=[vm.int_oop(7)]
        )
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.temps[1] == vm.int_oop(7)
        assert frame.stack == []

    def test_out_of_range_is_invalid_frame(self, vm):
        frame = make_frame(vm, [("pushTemporaryVariableLong", 40)])
        assert vm.interpreter.step(frame).condition == ExitCondition.INVALID_FRAME


class TestLongReceiverVariables:
    def test_push(self, vm):
        receiver = vm.memory.instantiate(vm.known.plain_object)
        vm.memory.store_pointer(3, receiver, vm.int_oop(5))
        frame = make_frame(
            vm, [("pushReceiverVariableLong", 3)], receiver=receiver
        )
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert frame.stack == [vm.int_oop(5)]

    def test_store(self, vm):
        receiver = vm.memory.instantiate(vm.known.plain_object)
        frame = make_frame(
            vm, [("storeReceiverVariableLong", 0)], receiver=receiver,
            stack=[vm.int_oop(3)],
        )
        assert vm.interpreter.step(frame).condition == ExitCondition.SUCCESS
        assert vm.memory.fetch_pointer(0, receiver) == vm.int_oop(3)

    def test_tagged_receiver_is_invalid_memory(self, vm):
        frame = make_frame(
            vm, [("pushReceiverVariableLong", 0)], receiver=vm.int_oop(1)
        )
        result = vm.interpreter.step(frame)
        assert result.condition == ExitCondition.INVALID_MEMORY_ACCESS
