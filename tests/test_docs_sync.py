"""Docs-as-test: the operator guide must cover the real CLI surface.

``docs/CAMPAIGN.md`` promises to document *every* flag of the
``campaign`` subcommand.  This test introspects the live argparse
parser so the guide cannot silently drift from ``src/repro/cli.py``:
adding a campaign flag without documenting it fails here.
"""

from __future__ import annotations

import argparse
from pathlib import Path

import pytest

from repro.cli import build_parser

DOCS = Path(__file__).resolve().parent.parent / "docs" / "CAMPAIGN.md"


def campaign_subparser() -> argparse.ArgumentParser:
    parser = build_parser()
    subparsers = next(
        action for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    return subparsers.choices["campaign"]


def campaign_flags() -> list[str]:
    flags = []
    for action in campaign_subparser()._actions:
        if isinstance(action, argparse._HelpAction):
            continue
        flags.extend(action.option_strings)
    return flags


def test_the_campaign_parser_has_flags():
    """Guard the introspection itself: if argparse internals shift and
    we silently enumerate nothing, the sync test below would pass
    vacuously."""
    flags = campaign_flags()
    assert "--jobs" in flags
    assert "--journal" in flags
    assert len(flags) >= 10


@pytest.mark.parametrize("flag", campaign_flags())
def test_campaign_flag_is_documented(flag):
    text = DOCS.read_text(encoding="utf-8")
    assert f"`{flag}" in text or f"{flag} " in text, (
        f"{flag} is missing from docs/CAMPAIGN.md — every campaign "
        "flag must appear in the operator guide"
    )


def test_guide_links_are_not_stale():
    """The guide points at sibling docs and tests; keep them existing."""
    root = DOCS.parent.parent
    assert (root / "docs" / "RESILIENCE.md").exists()
    assert (root / "tests" / "test_docs_sync.py").exists()
    assert "DESIGN.md" in DOCS.read_text(encoding="utf-8")
