"""Docs-as-test: the operator guides must cover the real surface.

``docs/CAMPAIGN.md`` promises to document *every* flag of the
``campaign`` subcommand.  This test introspects the live argparse
parser so the guide cannot silently drift from ``src/repro/cli.py``:
adding a campaign flag without documenting it fails here.

``docs/EXPLORATION.md`` makes the symmetric promise for the
exploration engine: the ablation flag row, every profile counter and
gauge it names, and every module path it mentions must exist in the
code.

``docs/MUTATION.md`` promises the same for the mutation engine: every
``mutate`` flag documented, every ``mutation.*`` counter recorded in
the source, every mentioned module path real, and the guide reachable
from its siblings.

``docs/STITCHING.md`` promises the same for the stitching layer:
every ``stitch`` flag (the ``stitch`` subcommand's own plus the
``--stitch-*`` knobs on ``campaign``/``mutate``) documented, every
``stitch.*`` counter recorded, every module path real, and the guide
cross-linked from ``README.md``, CAMPAIGN.md, MUTATION.md and
``DESIGN.md`` §17.

``docs/INCREMENTAL.md`` promises the same for the incremental engine:
the ``--cache-dir``/``--no-cache`` flags and the ``cache`` subcommand
documented, every ``cache.*`` counter recorded in the source, every
module path real, and the guide cross-linked from ``README.md``,
CAMPAIGN.md, MUTATION.md, PERFORMANCE.md and ``DESIGN.md`` §18.

``docs/RESILIENCE.md`` promises the same for the robustness layer:
the supervision flags (``--cell-timeout``, ``--worker-memory-mb``,
``--worker-cpu-seconds``) documented, every supervision / IO-health
counter recorded in the source, every fault kind documented, every
module path real, ``DESIGN.md`` §19 present, and the CI
``chaos-smoke`` job actually wired to the chaos harness.

``docs/INDEX.md`` is the architecture map: every ``docs/*.md`` guide
and every ``src/repro/*`` package must appear in it.  Finally, a
repo-wide sweep asserts that *no* guide (nor ``DESIGN.md`` /
``ROADMAP.md``) mentions a ``src/...py`` module path that does not
exist — the stale-reference class of drift.
"""

from __future__ import annotations

import argparse
import re
from pathlib import Path

import pytest

from repro.cli import build_parser

ROOT = Path(__file__).resolve().parent.parent
DOCS = ROOT / "docs" / "CAMPAIGN.md"
EXPLORATION = ROOT / "docs" / "EXPLORATION.md"
MUTATION = ROOT / "docs" / "MUTATION.md"
STITCHING = ROOT / "docs" / "STITCHING.md"
INCREMENTAL = ROOT / "docs" / "INCREMENTAL.md"
INDEX = ROOT / "docs" / "INDEX.md"


def subparser_for(name: str) -> argparse.ArgumentParser:
    parser = build_parser()
    subparsers = next(
        action for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    return subparsers.choices[name]


def campaign_subparser() -> argparse.ArgumentParser:
    return subparser_for("campaign")


def subcommand_flags(name: str) -> list[str]:
    flags = []
    for action in subparser_for(name)._actions:
        if isinstance(action, argparse._HelpAction):
            continue
        flags.extend(action.option_strings)
    return flags


def campaign_flags() -> list[str]:
    return subcommand_flags("campaign")


def test_the_campaign_parser_has_flags():
    """Guard the introspection itself: if argparse internals shift and
    we silently enumerate nothing, the sync test below would pass
    vacuously."""
    flags = campaign_flags()
    assert "--jobs" in flags
    assert "--journal" in flags
    assert len(flags) >= 10


@pytest.mark.parametrize("flag", campaign_flags())
def test_campaign_flag_is_documented(flag):
    text = DOCS.read_text(encoding="utf-8")
    assert f"`{flag}" in text or f"{flag} " in text, (
        f"{flag} is missing from docs/CAMPAIGN.md — every campaign "
        "flag must appear in the operator guide"
    )


def test_guide_links_are_not_stale():
    """The guide points at sibling docs and tests; keep them existing."""
    root = DOCS.parent.parent
    assert (root / "docs" / "RESILIENCE.md").exists()
    assert (root / "tests" / "test_docs_sync.py").exists()
    assert "DESIGN.md" in DOCS.read_text(encoding="utf-8")


def test_markdown_cross_links_resolve():
    """Every `(X.md)` link in docs/ points at an existing sibling."""
    for guide in sorted((ROOT / "docs").glob("*.md")):
        for target in re.findall(r"\]\(([A-Z_]+\.md)\)", guide.read_text(encoding="utf-8")):
            assert (ROOT / "docs" / target).exists(), (
                f"{guide.name} links to docs/{target}, which does not exist"
            )


# ----------------------------------------------------------------------
# docs/EXPLORATION.md


def exploration_text() -> str:
    return EXPLORATION.read_text(encoding="utf-8")


def exploration_counters() -> list[str]:
    """Counter/gauge names the exploration guide documents."""
    return sorted(set(re.findall(r"`((?:snapshot|pathtree)\.[a-z_]+)`",
                                 exploration_text())))


def exploration_module_paths() -> list[str]:
    """`src/...py` module paths the exploration guide mentions."""
    return sorted(set(re.findall(r"`(src/[\w/]+\.py)`", exploration_text())))


def test_exploration_guide_introspection_is_not_vacuous():
    assert len(exploration_counters()) >= 6
    assert "src/repro/concolic/pathtree.py" in exploration_module_paths()


def test_exploration_guide_documents_the_ablation_flag():
    """The `--raw-explorer` flag row must match the real CLI flag."""
    assert "--raw-explorer" in campaign_flags()
    assert "`--raw-explorer`" in exploration_text()


@pytest.mark.parametrize("name", exploration_counters())
def test_exploration_counter_exists_in_source(name):
    """Every counter/gauge the guide names is actually recorded."""
    sources = (ROOT / "src" / "repro").rglob("*.py")
    assert any(name in path.read_text(encoding="utf-8") for path in sources), (
        f"{name} appears in docs/EXPLORATION.md but nowhere in src/repro"
    )


@pytest.mark.parametrize("path", exploration_module_paths())
def test_exploration_module_path_exists(path):
    assert (ROOT / path).exists(), (
        f"docs/EXPLORATION.md mentions {path}, which does not exist"
    )


def test_exploration_guide_is_cross_linked():
    """The guide is discoverable from its siblings and the README."""
    for referrer in (
        ROOT / "README.md",
        ROOT / "docs" / "CAMPAIGN.md",
        ROOT / "docs" / "PERFORMANCE.md",
    ):
        assert "EXPLORATION.md" in referrer.read_text(encoding="utf-8"), (
            f"{referrer.name} does not link to docs/EXPLORATION.md"
        )
    assert "## 15." in (ROOT / "DESIGN.md").read_text(encoding="utf-8")
    walkthrough = (ROOT / "docs" / "WALKTHROUGH.md").read_text(encoding="utf-8")
    assert "## 6." in walkthrough and "path tree" in walkthrough


# ----------------------------------------------------------------------
# docs/MUTATION.md


def mutation_text() -> str:
    return MUTATION.read_text(encoding="utf-8")


def mutation_counters() -> list[str]:
    """Counter/gauge names the mutation guide documents."""
    return sorted(set(re.findall(r"`(mutation\.[a-z_]+)`", mutation_text())))


def mutation_module_paths() -> list[str]:
    """`src/...py` module paths the mutation guide mentions."""
    return sorted(set(re.findall(r"`(src/[\w/]+\.py)`", mutation_text())))


def test_mutation_guide_introspection_is_not_vacuous():
    assert len(mutation_counters()) >= 4
    assert "src/repro/mutation/registry.py" in mutation_module_paths()


@pytest.mark.parametrize("flag", subcommand_flags("mutate"))
def test_mutate_flag_is_documented(flag):
    assert f"`{flag}" in mutation_text() or f"{flag} " in mutation_text(), (
        f"{flag} is missing from docs/MUTATION.md — every mutate flag "
        "must appear in the operator guide"
    )


@pytest.mark.parametrize("name", mutation_counters())
def test_mutation_counter_exists_in_source(name):
    sources = (ROOT / "src" / "repro").rglob("*.py")
    assert any(name in path.read_text(encoding="utf-8") for path in sources), (
        f"{name} appears in docs/MUTATION.md but nowhere in src/repro"
    )


@pytest.mark.parametrize("path", mutation_module_paths())
def test_mutation_module_path_exists(path):
    assert (ROOT / path).exists(), (
        f"docs/MUTATION.md mentions {path}, which does not exist"
    )


def test_mutation_guide_documents_every_mutant():
    """Every registered mutant id appears in the operator-corpus table."""
    from repro.mutation import all_ids

    text = mutation_text()
    for mutant_id in all_ids():
        assert f"`{mutant_id}`" in text, (
            f"mutant {mutant_id} is not documented in docs/MUTATION.md"
        )


def test_mutation_guide_is_cross_linked():
    """The guide is discoverable from its siblings and the README."""
    for referrer in (
        ROOT / "README.md",
        ROOT / "docs" / "CAMPAIGN.md",
        ROOT / "docs" / "RESILIENCE.md",
    ):
        assert "MUTATION.md" in referrer.read_text(encoding="utf-8"), (
            f"{referrer.name} does not link to docs/MUTATION.md"
        )
    assert "## 16." in (ROOT / "DESIGN.md").read_text(encoding="utf-8")


# ----------------------------------------------------------------------
# docs/STITCHING.md


def stitching_text() -> str:
    return STITCHING.read_text(encoding="utf-8")


def stitch_flags() -> list[str]:
    """Every stitch-related flag in the CLI: the ``stitch``
    subcommand's own flags plus the shared ``--stitch*`` budget knobs
    on ``campaign`` (identical on ``mutate`` — both call
    ``add_stitch_arguments``)."""
    flags = list(subcommand_flags("stitch"))
    flags.extend(f for f in campaign_flags() if f.startswith("--stitch"))
    return sorted(set(flags))


def stitch_counters() -> list[str]:
    """Counter/gauge names the stitching guide documents."""
    return sorted(set(re.findall(r"`(stitch\.[a-z_]+)`", stitching_text())))


def stitch_module_paths() -> list[str]:
    """`src/...py` module paths the stitching guide mentions."""
    return sorted(set(re.findall(r"`(src/[\w/]+\.py)`", stitching_text())))


def test_stitching_guide_introspection_is_not_vacuous():
    assert len(stitch_counters()) >= 5
    assert "src/repro/stitch/corpus.py" in stitch_module_paths()
    assert "--stitch" in stitch_flags()
    assert "--stitch-depth" in stitch_flags()


@pytest.mark.parametrize("flag", stitch_flags())
def test_stitch_flag_is_documented(flag):
    assert f"`{flag}" in stitching_text() or f"{flag} " in stitching_text(), (
        f"{flag} is missing from docs/STITCHING.md — every stitch flag "
        "must appear in the operator guide"
    )


@pytest.mark.parametrize("name", stitch_counters())
def test_stitch_counter_exists_in_source(name):
    sources = (ROOT / "src" / "repro").rglob("*.py")
    assert any(name in path.read_text(encoding="utf-8") for path in sources), (
        f"{name} appears in docs/STITCHING.md but nowhere in src/repro"
    )


@pytest.mark.parametrize("path", stitch_module_paths())
def test_stitch_module_path_exists(path):
    assert (ROOT / path).exists(), (
        f"docs/STITCHING.md mentions {path}, which does not exist"
    )


def test_stitching_guide_is_cross_linked():
    """The guide is discoverable from its siblings, the README and
    the promised DESIGN.md §17."""
    for referrer in (
        ROOT / "README.md",
        ROOT / "docs" / "CAMPAIGN.md",
        ROOT / "docs" / "MUTATION.md",
    ):
        assert "STITCHING.md" in referrer.read_text(encoding="utf-8"), (
            f"{referrer.name} does not link to docs/STITCHING.md"
        )
    assert "## 17." in (ROOT / "DESIGN.md").read_text(encoding="utf-8")


# ----------------------------------------------------------------------
# docs/INCREMENTAL.md


def incremental_text() -> str:
    return INCREMENTAL.read_text(encoding="utf-8")


def incremental_flags() -> list[str]:
    """Every incremental-engine flag: the ``cache`` subcommand's own
    plus the shared ``--cache-dir``/``--no-cache`` knobs on
    ``campaign`` (identical on ``mutate`` — both call
    ``add_cache_arguments``)."""
    flags = list(subcommand_flags("cache"))
    flags.extend(f for f in campaign_flags()
                 if f in ("--cache-dir", "--no-cache"))
    return sorted(set(flags))


def incremental_counters() -> list[str]:
    """Counter names the incremental guide documents."""
    return sorted(set(re.findall(r"`(cache\.[a-z_]+)`",
                                 incremental_text())))


def incremental_module_paths() -> list[str]:
    """`src/...py` module paths the incremental guide mentions."""
    return sorted(set(re.findall(r"`(src/[\w/]+\.py)`",
                                 incremental_text())))


def test_incremental_guide_introspection_is_not_vacuous():
    assert len(incremental_counters()) >= 4
    assert "src/repro/incremental/fingerprint.py" in incremental_module_paths()
    assert "--cache-dir" in incremental_flags()
    assert "--no-cache" in incremental_flags()


def test_cache_flags_exist_on_campaign_and_mutate():
    """The guide documents cache flags as shared; keep them shared."""
    for subcommand in ("campaign", "mutate"):
        flags = subcommand_flags(subcommand)
        assert "--cache-dir" in flags and "--no-cache" in flags, (
            f"`{subcommand}` lost its cache flags — docs/INCREMENTAL.md "
            "documents them as shared via add_cache_arguments"
        )


@pytest.mark.parametrize("flag", incremental_flags())
def test_incremental_flag_is_documented(flag):
    text = incremental_text()
    assert f"`{flag}" in text or f"{flag} " in text, (
        f"{flag} is missing from docs/INCREMENTAL.md — every cache "
        "flag must appear in the operator guide"
    )


@pytest.mark.parametrize("name", incremental_counters())
def test_incremental_counter_exists_in_source(name):
    sources = (ROOT / "src" / "repro").rglob("*.py")
    assert any(name in path.read_text(encoding="utf-8") for path in sources), (
        f"{name} appears in docs/INCREMENTAL.md but nowhere in src/repro"
    )


@pytest.mark.parametrize("path", incremental_module_paths())
def test_incremental_module_path_exists(path):
    assert (ROOT / path).exists(), (
        f"docs/INCREMENTAL.md mentions {path}, which does not exist"
    )


def test_incremental_guide_documents_the_stats_line():
    """The `result cache:` stdout line is the CI parse surface; the
    guide must show it and the CLI must print it in that shape."""
    assert "result cache:" in incremental_text()
    from repro.cli import print_cache_stats  # the line lives here
    assert print_cache_stats is not None


def test_incremental_guide_is_cross_linked():
    """The guide is discoverable from its siblings, the README and
    the promised DESIGN.md §18."""
    for referrer in (
        ROOT / "README.md",
        ROOT / "docs" / "CAMPAIGN.md",
        ROOT / "docs" / "MUTATION.md",
        ROOT / "docs" / "PERFORMANCE.md",
    ):
        assert "INCREMENTAL.md" in referrer.read_text(encoding="utf-8"), (
            f"{referrer.name} does not link to docs/INCREMENTAL.md"
        )
    assert "## 18." in (ROOT / "DESIGN.md").read_text(encoding="utf-8")


# ----------------------------------------------------------------------
# docs/RESILIENCE.md — supervision, degradation, chaos


RESILIENCE = ROOT / "docs" / "RESILIENCE.md"


def resilience_text() -> str:
    return RESILIENCE.read_text(encoding="utf-8")


def resilience_counters() -> list[str]:
    """Counter names the resilience guide documents."""
    return sorted(set(re.findall(
        r"`((?:supervision|io|journal|store|pool)\.[a-z_]+)`",
        resilience_text(),
    )))


def resilience_module_paths() -> list[str]:
    """`src/...py` module paths the resilience guide mentions."""
    return sorted(set(re.findall(r"`(src/[\w/]+\.py)`", resilience_text())))


def test_resilience_guide_introspection_is_not_vacuous():
    assert len(resilience_counters()) >= 6
    assert "src/repro/robustness/supervise.py" in resilience_module_paths()
    assert "src/repro/robustness/chaos.py" in resilience_module_paths()


@pytest.mark.parametrize(
    "flag", ["--cell-timeout", "--worker-memory-mb", "--worker-cpu-seconds"]
)
def test_supervision_flag_exists_and_is_documented(flag):
    """The supervision flags are real CLI surface and the resilience
    guide documents each (CAMPAIGN.md is covered by the flag sweep)."""
    assert flag in campaign_flags()
    assert f"`{flag}" in resilience_text()


@pytest.mark.parametrize("name", resilience_counters())
def test_resilience_counter_exists_in_source(name):
    sources = (ROOT / "src" / "repro").rglob("*.py")
    assert any(name in path.read_text(encoding="utf-8") for path in sources), (
        f"{name} appears in docs/RESILIENCE.md but nowhere in src/repro"
    )


@pytest.mark.parametrize("path", resilience_module_paths())
def test_resilience_module_path_exists(path):
    assert (ROOT / path).exists(), (
        f"docs/RESILIENCE.md mentions {path}, which does not exist"
    )


def fault_kinds() -> list[str]:
    from repro.robustness.faults import FAULT_KINDS

    return list(FAULT_KINDS)


@pytest.mark.parametrize("kind", fault_kinds())
def test_every_fault_kind_is_documented(kind):
    assert f"`{kind}`" in resilience_text(), (
        f"fault kind {kind} is not documented in docs/RESILIENCE.md"
    )


def test_resilience_guide_is_cross_linked():
    """The guide is discoverable and the promised DESIGN.md §19
    (supervision + chaos) exists."""
    for referrer in (
        ROOT / "README.md",
        ROOT / "docs" / "CAMPAIGN.md",
        ROOT / "docs" / "INCREMENTAL.md",
    ):
        assert "RESILIENCE.md" in referrer.read_text(encoding="utf-8"), (
            f"{referrer.name} does not link to docs/RESILIENCE.md"
        )
    assert "## 19." in (ROOT / "DESIGN.md").read_text(encoding="utf-8")


def test_chaos_smoke_job_exists_in_ci():
    """The chaos harness the guide promises CI runs is actually wired."""
    ci = ROOT / ".github" / "workflows" / "ci.yml"
    text = ci.read_text(encoding="utf-8")
    assert "chaos-smoke" in text
    assert "repro.robustness.chaos" in text


# ----------------------------------------------------------------------
# docs/INDEX.md — the architecture map


def index_text() -> str:
    return INDEX.read_text(encoding="utf-8")


def repro_packages() -> list[str]:
    """Every package directory under src/repro/."""
    return sorted(
        path.name
        for path in (ROOT / "src" / "repro").iterdir()
        if path.is_dir() and (path / "__init__.py").exists()
    )


def test_index_introspection_is_not_vacuous():
    assert len(repro_packages()) >= 10
    assert "stitch" in repro_packages()


@pytest.mark.parametrize(
    "guide", sorted(p.name for p in (ROOT / "docs").glob("*.md"))
)
def test_every_guide_appears_in_the_index(guide):
    assert guide in index_text(), (
        f"docs/{guide} is not mapped in docs/INDEX.md — every guide "
        "must appear in the index"
    )


@pytest.mark.parametrize("package", repro_packages())
def test_every_package_appears_in_the_index(package):
    assert f"src/repro/{package}/" in index_text(), (
        f"src/repro/{package}/ is not mapped in docs/INDEX.md — every "
        "package must appear in the architecture map"
    )


def test_index_is_linked_from_the_readme():
    assert "INDEX.md" in (ROOT / "README.md").read_text(encoding="utf-8")


# ----------------------------------------------------------------------
# Repo-wide stale-module-path sweep


def documented_module_paths() -> list[tuple[str, str]]:
    """Every `src/...py` mention across all guides + top-level docs."""
    sources = sorted((ROOT / "docs").glob("*.md"))
    sources.extend([ROOT / "DESIGN.md", ROOT / "ROADMAP.md"])
    mentions = set()
    for doc in sources:
        for path in re.findall(r"`(src/[\w/]+\.py)`",
                               doc.read_text(encoding="utf-8")):
            mentions.add((doc.name, path))
    return sorted(mentions)


def test_stale_path_sweep_is_not_vacuous():
    paths = {path for _, path in documented_module_paths()}
    assert "src/repro/memory/heap.py" in paths
    assert len(paths) >= 8


@pytest.mark.parametrize("doc, path", documented_module_paths())
def test_documented_module_path_exists(doc, path):
    assert (ROOT / path).exists(), (
        f"{doc} mentions {path}, which does not exist — stale module "
        "reference"
    )
