"""Unit tests for the prefix-sharing path tree and its snapshot store."""

from __future__ import annotations

from repro import perf
from repro.bytecode.opcodes import bytecode_named
from repro.concolic.explorer import (
    BytecodeInstructionSpec,
    ConcolicExplorer,
    NativeMethodSpec,
)
from repro.concolic.pathtree import PathTree, SnapshotStore, model_fingerprint
from repro.concolic.solver.model import Model
from repro.concolic.solver import SolverContext
from repro.interpreter.primitives import primitive_named
from repro.memory.bootstrap import bootstrap_memory

_memory, _ = bootstrap_memory(heap_words=512)
_CONTEXT = SolverContext.from_memory(_memory)


def make_model():
    return Model(_CONTEXT)


class FakePath:
    def __init__(self, *keys):
        self.signature = tuple(keys)


K1 = ("is_small_int(recv)", True)
K2 = ("is_small_int(recv)", False)
K3 = ("gt(slot_count_of(recv), 0)", True)


class TestPathTree:
    def test_insert_creates_one_node_per_branch_point(self):
        tree = PathTree()
        assert tree.insert(FakePath(K2, K3)) == 2
        assert tree.node_count == 2
        assert tree.max_depth == 2

    def test_shared_prefixes_share_nodes(self):
        tree = PathTree()
        tree.insert(FakePath(K2, K3))
        created = tree.insert(FakePath(K2, (K3[0], False)))
        assert created == 1  # only the divergent leaf is new
        assert tree.node_count == 3

    def test_covers_realized_prefixes_only(self):
        tree = PathTree()
        path = FakePath(K2, K3)
        tree.insert(path, fingerprint=("fp",))
        node = tree.covers((K2,))
        assert node is not None
        assert node.realized_by is path
        assert node.fingerprint == ("fp",)
        assert tree.covers((K1,)) is None
        assert tree.covers((K2, K3, K1)) is None
        assert tree.subsumed == 1  # only the realized answer counted

    def test_walk_finds_exact_nodes(self):
        tree = PathTree()
        tree.insert(FakePath(K2, K3))
        assert tree.walk((K2,)).depth == 1
        assert tree.walk((K2, K3)).depth == 2
        assert tree.walk((K3,)) is None

    def test_empty_signature_inserts_nothing(self):
        tree = PathTree()
        assert tree.insert(FakePath()) == 0
        assert tree.node_count == 0
        assert tree.max_depth == 0


class TestSnapshotStore:
    def test_replay_counts_reuse(self):
        store = SnapshotStore()
        path = FakePath(K1)
        assert store.get(("fp",)) is None
        store.put(("fp",), path)
        assert store.get(("fp",)) is path
        assert store.get(("fp",)) is path
        assert store.reused == 2
        assert len(store) == 1


class TestModelFingerprint:
    def test_empty_models_agree(self):
        assert model_fingerprint(make_model()) == model_fingerprint(make_model())

    def test_differing_assignments_differ(self):
        a, b = make_model(), make_model()
        a.int_values["recv"] = 5
        b.int_values["recv"] = 6
        assert model_fingerprint(a) != model_fingerprint(b)
        c = make_model()
        c.int_values["recv"] = 5
        assert model_fingerprint(a) == model_fingerprint(c)


class TestExplorerIntegration:
    def test_explore_builds_the_tree(self):
        explorer = ConcolicExplorer(
            BytecodeInstructionSpec(bytecode_named("pushReceiverVariable0"))
        )
        result = explorer.explore()
        tree = explorer.tree
        assert tree is not None
        assert tree.max_depth == max(len(p.signature) for p in result.paths)
        # Every recorded path is realized in the tree.
        for path in result.paths:
            node = tree.walk(path.signature)
            assert node is not None and node.realized_by is not None

    def test_heap_returns_to_base_state_after_exploration(self):
        explorer = ConcolicExplorer(NativeMethodSpec(primitive_named("primitiveAt")))
        base = explorer.memory.heap.snapshot()
        explorer.explore()
        assert explorer.memory.heap.snapshot() == base
        assert explorer.memory.heap.journaling

    def test_execute_with_model_recovers_from_stopped_journal(self):
        explorer = ConcolicExplorer(
            BytecodeInstructionSpec(bytecode_named("pushTrue"))
        )
        explorer.memory.heap.stop_journal()
        path = explorer.execute_with_model(Model(explorer.context))
        assert path.exit is not None
        assert explorer.memory.heap.journaling

    def test_snapshot_counters_are_recorded(self):
        perf.enable()
        try:
            explorer = ConcolicExplorer(
                NativeMethodSpec(primitive_named("primitiveAt"))
            )
            result = explorer.explore()
            snap = perf.snapshot()
        finally:
            perf.disable()
        counters = snap["counters"]
        # One fresh execution per snapshot.create; reuse covers the rest.
        assert counters["snapshot.create"] >= len(result.paths)
        assert counters["snapshot.restore"] == counters["snapshot.create"]
        assert counters["snapshot.reuse"] > 0
        assert snap["gauges"]["pathtree.depth"] == explorer.tree.max_depth
        assert snap["gauges"]["pathtree.nodes"] == explorer.tree.node_count
