"""Equivalence suite: the path-tree explorer is exactly ``explore_raw``.

The prefix-sharing tree and the snapshot store are pure optimizations;
the contract (asserted here, property-based over the instruction
corpus) is that ``ConcolicExplorer.explore`` and
``ConcolicExplorer.explore_raw`` agree on everything except wall-clock:
path signatures *in order*, input models, exit conditions, every
iteration-independent :class:`ExplorationResult` counter, and the
curated path sets the differential tester ultimately consumes.  The
campaign-level tests extend the same guarantee through both engines:
``--raw-explorer`` reports are byte-identical to the default, at any
worker count and across a journal resume.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bytecode.opcodes import testable_bytecodes
from repro.concolic.explorer import (
    BytecodeInstructionSpec,
    ConcolicExplorer,
    NativeMethodSpec,
)
from repro.difftest.curation import curate_paths
from repro.difftest.report import format_table2, format_table3
from repro.difftest.runner import CampaignConfig, run_campaign
from repro.interpreter.primitives import testable_primitives
from repro.jit.machine.x86 import X86Backend

BYTECODES = testable_bytecodes()
NATIVES = testable_primitives()

CONFIG = CampaignConfig(max_bytecodes=2, max_natives=1, backends=(X86Backend,))
RAW_CONFIG = replace(CONFIG, raw_explorer=True)


def assert_equivalent(spec, **kwargs):
    tree = ConcolicExplorer(spec, **kwargs).explore()
    raw = ConcolicExplorer(spec, **kwargs).explore_raw()
    assert [p.signature for p in tree.paths] == [p.signature for p in raw.paths]
    assert [p.model.to_dict() for p in tree.paths] == [
        p.model.to_dict() for p in raw.paths
    ]
    assert [p.exit.condition for p in tree.paths] == [
        p.exit.condition for p in raw.paths
    ]
    assert [p.output.heap_writes for p in tree.paths] == [
        p.output.heap_writes for p in raw.paths
    ]
    assert tree.iterations == raw.iterations
    assert tree.unsat_prefixes == raw.unsat_prefixes
    assert tree.duplicate_paths == raw.duplicate_paths
    assert tree.budget_exhausted == raw.budget_exhausted
    assert [p.signature for p in curate_paths(tree.paths)] == [
        p.signature for p in curate_paths(raw.paths)
    ]
    return tree, raw


class TestInstructionEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(index=st.integers(0, len(BYTECODES) - 1))
    def test_bytecodes(self, index):
        assert_equivalent(BytecodeInstructionSpec(BYTECODES[index]))

    @settings(max_examples=10, deadline=None)
    @given(index=st.integers(0, len(NATIVES) - 1))
    def test_natives(self, index):
        assert_equivalent(NativeMethodSpec(NATIVES[index]))

    @settings(max_examples=10, deadline=None)
    @given(
        index=st.integers(0, len(NATIVES) - 1),
        max_iterations=st.integers(1, 60),
        max_paths=st.integers(1, 16),
    )
    def test_natives_under_truncated_budgets(self, index, max_iterations, max_paths):
        """Budget caps cut both loops at the same iteration.

        Subsumed prefixes consume an iteration exactly like the solver
        call they replace, so a ``max_iterations``/``max_paths`` cap
        lands on the same worklist entry in both explorers.
        """
        assert_equivalent(
            NativeMethodSpec(NATIVES[index]),
            max_iterations=max_iterations,
            max_paths=max_paths,
        )


class TestCampaignEquivalence:
    @pytest.fixture(scope="class")
    def baseline(self):
        """The default (path-tree) sequential campaign."""
        return run_campaign(CONFIG)

    def test_raw_explorer_sequential_matches(self, baseline):
        raw = run_campaign(RAW_CONFIG)
        assert format_table2(raw) == format_table2(baseline)
        assert format_table3(raw) == format_table3(baseline)

    def test_raw_explorer_parallel_matches(self, baseline):
        raw = run_campaign(RAW_CONFIG, jobs=2)
        assert format_table2(raw) == format_table2(baseline)
        assert format_table3(raw) == format_table3(baseline)

    def test_raw_explorer_resume_matches(self, baseline, tmp_path):
        journal = tmp_path / "journal.jsonl"
        run_campaign(RAW_CONFIG, journal_path=journal)
        resumed = run_campaign(RAW_CONFIG, jobs=2, journal_path=journal,
                               resume=True)
        assert format_table2(resumed) == format_table2(baseline)
