"""Exploration tests: path structure of representative instructions.

These check that the concolic engine reproduces the paper's path tables:
Table 1 (the add byte-code's five-ish paths) and the Fig. 2 progression
(invalid frame -> success -> overflow failure -> type failures).
"""

from __future__ import annotations

import pytest

from repro.bytecode.opcodes import bytecode_named
from repro.concolic.explorer import explore_bytecode, explore_native_method
from repro.interpreter.exits import ExitCondition
from repro.interpreter.primitives import primitive_named


def exits_of(result):
    return [path.exit.condition for path in result.paths]


def constraint_strings(path):
    return [str(c) for c in path.constraints]


class TestAddBytecode:
    @pytest.fixture(scope="class")
    def result(self):
        return explore_bytecode(bytecode_named("bytecodePrimAdd"))

    def test_path_count_matches_paper_shape(self, result):
        # Paper Table 1 shows 5 integer/object paths; our engine also
        # explores the float-inlined paths and both overflow directions.
        assert 5 <= result.path_count <= 12

    def test_first_path_is_invalid_frame(self, result):
        """Fig. 2 execution #1: empty frame -> invalid frame exit."""
        first = result.paths[0]
        assert first.exit.condition == ExitCondition.INVALID_FRAME
        assert "stack_size" in str(first.constraints[0])

    def test_integer_success_path_exists(self, result):
        successes = [
            p for p in result.paths if p.exit.condition == ExitCondition.SUCCESS
        ]
        assert any(
            any("is_small_int" in s for s in constraint_strings(p))
            for p in successes
        )

    def test_overflow_path_sends(self, result):
        sends = [
            p for p in result.paths if p.exit.condition == ExitCondition.MESSAGE_SEND
        ]
        assert any(
            any("not(le(add" in s or "not(ge(add" in s for s in constraint_strings(p))
            for p in sends
        ), "an overflow path exiting through a message send must exist"

    def test_send_paths_carry_selector(self, result):
        for path in result.paths:
            if path.exit.condition == ExitCondition.MESSAGE_SEND:
                assert path.exit.selector == "+"

    def test_models_satisfy_their_paths(self, result):
        for path in result.paths:
            assert path.model.satisfies([c.literal for c in path.constraints])

    def test_signatures_unique(self, result):
        signatures = [p.signature for p in result.paths]
        assert len(signatures) == len(set(signatures))


class TestOtherBytecodes:
    def test_push_constant_single_path(self):
        result = explore_bytecode(bytecode_named("pushTrue"))
        assert result.path_count == 1
        assert result.paths[0].exit.condition == ExitCondition.SUCCESS

    def test_dup_has_two_paths(self):
        result = explore_bytecode(bytecode_named("duplicateTop"))
        assert {p.exit.condition for p in result.paths} == {
            ExitCondition.INVALID_FRAME,
            ExitCondition.SUCCESS,
        }

    def test_push_temp_grows_temps(self):
        result = explore_bytecode(bytecode_named("pushTemporaryVariable2"))
        conditions = {p.exit.condition for p in result.paths}
        assert ExitCondition.INVALID_FRAME in conditions
        assert ExitCondition.SUCCESS in conditions

    def test_push_receiver_variable_explores_memory_shapes(self):
        result = explore_bytecode(bytecode_named("pushReceiverVariable1"))
        conditions = {p.exit.condition for p in result.paths}
        # Receiver with too few slots -> invalid memory access;
        # receiver with enough slots -> success.
        assert ExitCondition.INVALID_MEMORY_ACCESS in conditions
        assert ExitCondition.SUCCESS in conditions

    def test_conditional_jump_paths(self):
        result = explore_bytecode(bytecode_named("shortJumpIfTrue3"))
        conditions = [p.exit.condition for p in result.paths]
        assert conditions.count(ExitCondition.SUCCESS) >= 2  # taken + not taken
        assert ExitCondition.MESSAGE_SEND in conditions  # mustBeBoolean

    def test_conditional_jump_pcs_differ(self):
        result = explore_bytecode(bytecode_named("shortJumpIfTrue3"))
        success_pcs = {
            p.output.pc
            for p in result.paths
            if p.exit.condition == ExitCondition.SUCCESS
        }
        assert len(success_pcs) == 2

    def test_return_top(self):
        result = explore_bytecode(bytecode_named("returnTop"))
        returns = [
            p for p in result.paths
            if p.exit.condition == ExitCondition.METHOD_RETURN
        ]
        assert returns and returns[0].output.returned is not None

    def test_bitand_explores_negative_fallback(self):
        result = explore_bytecode(bytecode_named("bytecodePrimBitAnd"))
        sends = [
            p for p in result.paths if p.exit.condition == ExitCondition.MESSAGE_SEND
        ]
        assert sends, "negative operands must take the send slow path"


class TestNativeMethods:
    def test_primitive_add_failure_paths(self):
        result = explore_native_method(primitive_named("primitiveAdd"))
        conditions = exits_of(result)
        assert conditions.count(ExitCondition.FAILURE) >= 3  # overflow x2 + types

    def test_as_float_defect_path_is_discovered(self):
        """The compile-time-removed assertion still guides exploration."""
        result = explore_native_method(primitive_named("primitiveAsFloat"))
        pointer_success = [
            p
            for p in result.paths
            if p.exit.condition == ExitCondition.SUCCESS
            and any("not(is_small_int" in str(c) for c in p.constraints)
        ]
        assert pointer_success, "pointer-receiver path must be explored"

    def test_at_explores_formats_and_bounds(self):
        result = explore_native_method(primitive_named("primitiveAt"))
        assert result.path_count >= 6
        details = " ".join(p.exit.detail or "" for p in result.paths)
        assert "bounds" in details

    def test_native_methods_have_more_paths_than_bytecodes(self):
        """Fig. 5's headline: natives ~10 paths, byte-codes ~2."""
        native = explore_native_method(primitive_named("primitiveAtPut"))
        bytecode = explore_bytecode(bytecode_named("pushTrue"))
        assert native.path_count > bytecode.path_count

    def test_exploration_is_deterministic(self):
        first = explore_native_method(primitive_named("primitiveMod"))
        second = explore_native_method(primitive_named("primitiveMod"))
        assert [p.signature for p in first.paths] == [
            p.signature for p in second.paths
        ]


class TestExplorationCache:
    """Hit/miss accounting must not change with solver-level caching:
    the exploration cache counts per-(kind, name) lookups, nothing
    else, exactly as in the pre-incremental engine."""

    def test_accounting(self):
        from repro.concolic.explorer import ExplorationCache, NativeMethodSpec

        cache = ExplorationCache()
        spec = NativeMethodSpec(primitive_named("primitiveAdd"))
        assert cache.get(spec) is None
        assert (cache.hits, cache.misses) == (0, 1)

        exploration = explore_native_method(primitive_named("primitiveAdd"))
        cache.put(spec, exploration)
        assert cache.get(spec) is exploration
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1

        other = NativeMethodSpec(primitive_named("primitiveMod"))
        assert cache.get(other) is None
        assert (cache.hits, cache.misses) == (1, 2)
