"""Incremental solver: determinism under caching, slicing, warm-starts.

The layer's non-negotiable invariant is that caching changes only
*time*, never *answers*: ``solve_status()`` must return the same verdict
and the identical model with the memo enabled, disabled, or pre-warmed.
That holds by construction — components are always solved in canonical
form and translated back — and is checked here over seeded random
conjunctions in the same shape the concolic engine produces.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.concolic.solver import (
    MemoCache,
    SolverContext,
    solve,
    solve_status,
    solve_status_raw,
    solve_with_hint,
)
from repro.concolic.solver.canonical import canonicalize
from repro.concolic.solver.memo import MemoEntry
from repro.concolic.terms import (
    Sort,
    compare,
    int_binary,
    kind_predicate,
    not_,
    oop_attribute,
    var,
)
from repro.memory.bootstrap import bootstrap_memory

_memory, _known = bootstrap_memory(heap_words=512)
CONTEXT = SolverContext.from_memory(_memory)

VAR_NAMES = ("recv", "stack0", "stack1", "temp0")
PREDICATES = ("is_small_int", "is_float", "is_nil", "is_true", "is_false")
ATTRIBUTES = ("int_value_of", "class_index_of", "slot_count_of")
COMPARISONS = ("lt", "le", "gt", "ge", "eq", "ne")


def oop(name):
    return var(name, Sort.OOP)


def small(name):
    return kind_predicate("is_small_int", oop(name))


def ivalue(name):
    return oop_attribute("int_value_of", oop(name))


@st.composite
def kind_literal(draw):
    term = kind_predicate(
        draw(st.sampled_from(PREDICATES)), oop(draw(st.sampled_from(VAR_NAMES)))
    )
    return term if draw(st.booleans()) else not_(term)


@st.composite
def comparison_literal(draw):
    left = oop_attribute(
        draw(st.sampled_from(ATTRIBUTES)), oop(draw(st.sampled_from(VAR_NAMES)))
    )
    if draw(st.booleans()):
        left = int_binary(
            draw(st.sampled_from(("add", "sub"))), left, draw(st.integers(-50, 50))
        )
    term = compare(
        draw(st.sampled_from(COMPARISONS)), left, draw(st.integers(-1000, 1000))
    )
    return term if draw(st.booleans()) else not_(term)


conjunctions = st.lists(
    st.one_of(kind_literal(), comparison_literal()), min_size=0, max_size=4
)


def _outcome(model, stats):
    return (stats.status, None if model is None else model.to_dict())


class TestDeterminismUnderCaching:
    """Same verdict, same model — memo off, cold, and pre-warmed."""

    @given(literals=conjunctions)
    @settings(max_examples=25, deadline=None)
    def test_cache_off_cold_and_warm_agree(self, literals):
        memo = MemoCache()
        uncached = _outcome(*solve_status(literals, CONTEXT, cache=None))
        cold = _outcome(*solve_status(literals, CONTEXT, cache=memo))
        warm = _outcome(*solve_status(literals, CONTEXT, cache=memo))
        assert uncached == cold == warm
        # The warm pass really did come from the memo.  (Not necessarily
        # one hit per component: a cached-UNSAT component short-circuits
        # before the remaining components are looked up.)
        if literals:
            assert memo.hits >= 1

    @given(literals=conjunctions)
    @settings(max_examples=15, deadline=None)
    def test_models_are_sound(self, literals):
        model = solve(literals, CONTEXT, cache=MemoCache())
        if model is not None:
            assert model.satisfies(literals)

    @given(literals=conjunctions)
    @settings(max_examples=15, deadline=None)
    def test_verdict_agrees_with_raw_engine(self, literals):
        """Slicing + memoization never flips a decisive raw verdict."""
        fast, fast_stats = solve_status(literals, CONTEXT, cache=MemoCache())
        raw, raw_stats = solve_status_raw(literals, CONTEXT)
        if "unknown" in (fast_stats.status, raw_stats.status):
            return
        if fast_stats.repair_used or raw_stats.repair_used:
            return
        assert (fast is None) == (raw is None)


class TestIndependenceSlicing:
    def test_independent_literals_split(self):
        canon = canonicalize([small("a"), small("b")])
        assert len(canon.components) == 2

    def test_shared_variable_joins(self):
        canon = canonicalize(
            [small("a"), small("b"), compare("lt", ivalue("a"), ivalue("b"))]
        )
        assert len(canon.components) == 1

    def test_alpha_renaming_gives_equal_keys(self):
        """Same structure under different variable names memoizes once."""
        first = canonicalize([small("recv"), compare("lt", ivalue("recv"), 5)])
        second = canonicalize([small("temp9"), compare("lt", ivalue("temp9"), 5)])
        assert first.components[0].key == second.components[0].key

    def test_preserved_names_not_renamed(self):
        literal = compare("lt", var("stack_size", Sort.INT), 10)
        canon = canonicalize([literal])
        assert canon.components[0].key == (str(literal),)

    def test_memoization_across_renamed_prefixes(self):
        memo = MemoCache()
        first = solve([small("recv"), compare("gt", ivalue("recv"), 3)],
                      CONTEXT, cache=memo)
        second = solve([small("stack1"), compare("gt", ivalue("stack1"), 3)],
                       CONTEXT, cache=memo)
        assert first is not None and second is not None
        assert memo.hits >= 1
        # Identical assignments modulo the variable name.
        assert first.kind_of("recv").tag == second.kind_of("stack1").tag


class TestMemoCache:
    def test_lru_eviction(self):
        memo = MemoCache(maxsize=2)
        entry = MemoEntry(status="sat", model=None, nodes=0,
                          truncated=False, repair_used=False)
        memo.put("a", entry)
        memo.put("b", entry)
        memo.put("c", entry)
        assert len(memo) == 2
        assert memo.evictions == 1
        assert memo.get("a") is None  # oldest evicted
        assert memo.get("c") is entry

    def test_stats_accounting(self):
        memo = MemoCache()
        entry = MemoEntry(status="unsat", model=None, nodes=3,
                          truncated=False, repair_used=False)
        assert memo.get("k") is None
        memo.put("k", entry)
        assert memo.get("k") is entry
        stats = memo.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_cached_unsat_short_circuits(self):
        """A remembered UNSAT component kills the prefix on sight."""
        memo = MemoCache()
        contradiction = [small("a"), not_(small("a"))]
        first, first_stats = solve_status(contradiction + [small("b")],
                                          CONTEXT, cache=memo)
        assert first is None and first_stats.status == "unsat"
        before = memo.hits
        second, second_stats = solve_status(contradiction + [small("c")],
                                            CONTEXT, cache=memo)
        assert second is None and second_stats.status == "unsat"
        assert memo.hits > before


class TestWarmStart:
    def test_hint_none_matches_cold_solve(self):
        literals = [small("a"), compare("lt", ivalue("a"), 7)]
        cold, cold_stats = solve_status(literals, CONTEXT, cache=None)
        warm, warm_stats = solve_with_hint(literals, CONTEXT, None, cache=None)
        assert warm_stats.status == cold_stats.status
        assert warm.to_dict() == cold.to_dict()

    def test_warm_start_is_sound(self):
        """The negate-last child model must satisfy the whole prefix."""
        parent_literals = [small("a"), small("b"),
                           compare("lt", ivalue("a"), 10)]
        parent = solve(parent_literals, CONTEXT, cache=None)
        assert parent is not None
        child = parent_literals[:-1] + [not_(parent_literals[-1])]
        model, stats = solve_with_hint(child, CONTEXT, parent, cache=None)
        assert stats.status == "sat"
        assert model.satisfies(child)

    def test_warm_start_detects_unsat(self):
        parent_literals = [small("a"), small("b")]
        parent = solve(parent_literals, CONTEXT, cache=None)
        assert parent is not None
        child = parent_literals + [not_(small("b"))]
        model, stats = solve_with_hint(child, CONTEXT, parent, cache=None)
        assert model is None
        assert stats.status == "unsat"

    @given(literals=conjunctions)
    @settings(max_examples=15, deadline=None)
    def test_warm_start_verdict_matches_cold(self, literals):
        if not literals:
            return
        parent = solve(literals[:-1], CONTEXT, cache=None)
        if parent is None:
            return
        cold, cold_stats = solve_status(literals, CONTEXT, cache=None)
        warm, warm_stats = solve_with_hint(literals, CONTEXT, parent,
                                           cache=None)
        if "unknown" in (cold_stats.status, warm_stats.status):
            return
        assert (warm is None) == (cold is None)
        if warm is not None:
            assert warm.satisfies(literals)
