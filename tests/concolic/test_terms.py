"""Unit tests for the symbolic term language and its evaluator."""

from __future__ import annotations

import pytest

from repro.concolic.terms import (
    EvaluationError,
    Sort,
    compare,
    const,
    evaluate,
    float_binary,
    int_binary,
    int_to_float,
    kind_predicate,
    not_,
    oop_attribute,
    var,
)


def make_env(values):
    def env(op, payload):
        return values[(op, payload)]

    return env


class TestConstruction:
    def test_const_sort_inference(self):
        assert const(1).sort == Sort.INT
        assert const(1.5).sort == Sort.FLOAT
        assert const(True).sort == Sort.BOOL

    def test_const_rejects_unknown(self):
        with pytest.raises(TypeError):
            const("hello")

    def test_lifting_in_binary(self):
        term = int_binary("add", var("x", Sort.INT), 3)
        assert term.args[1].is_const

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            int_binary("pow", 1, 2)
        with pytest.raises(ValueError):
            compare("spaceship", 1, 2)

    def test_double_negation_cancels(self):
        term = kind_predicate("is_nil", var("v", Sort.OOP))
        assert not_(not_(term)) is term

    def test_str_rendering(self):
        term = compare("lt", var("x", Sort.INT), 5)
        assert str(term) == "lt(x, 5)"

    def test_variables_iteration(self):
        term = int_binary("add", var("x", Sort.INT), var("y", Sort.INT))
        assert {v.args[0] for v in term.variables()} == {"x", "y"}


class TestEvaluation:
    def test_arithmetic(self):
        term = int_binary("add", var("x", Sort.INT), 3)
        assert evaluate(term, make_env({("var", "x"): 4})) == 7

    def test_comparison(self):
        term = compare("le", var("x", Sort.INT), 3)
        assert evaluate(term, make_env({("var", "x"): 3})) is True
        assert evaluate(term, make_env({("var", "x"): 4})) is False

    def test_not(self):
        term = not_(compare("eq", var("x", Sort.INT), 0))
        assert evaluate(term, make_env({("var", "x"): 1})) is True

    def test_kind_predicate(self):
        term = kind_predicate("is_small_int", var("v", Sort.OOP))
        assert evaluate(term, make_env({("is_small_int", "v"): True})) is True

    def test_oop_attribute(self):
        term = oop_attribute("int_value_of", var("v", Sort.OOP))
        assert evaluate(term, make_env({("int_value_of", "v"): 42})) == 42

    def test_float_ops(self):
        term = float_binary("mul", var("f", Sort.FLOAT), 2.0)
        assert evaluate(term, make_env({("var", "f"): 1.5})) == 3.0

    def test_int_to_float(self):
        term = int_to_float(var("x", Sort.INT))
        assert evaluate(term, make_env({("var", "x"): 3})) == 3.0

    def test_division_by_zero_is_evaluation_error(self):
        term = int_binary("floordiv", 1, var("x", Sort.INT))
        with pytest.raises(EvaluationError):
            evaluate(term, make_env({("var", "x"): 0}))

    def test_shift_semantics(self):
        term = int_binary("shl", 3, 4)
        assert evaluate(term, make_env({})) == 48

    def test_quo_truncates_toward_zero(self):
        term = int_binary("quo", -7, 2)
        assert evaluate(term, make_env({})) == -3


class TestInterning:
    """Hash-consing: structurally equal terms are the same object."""

    def test_structural_equality_implies_identity(self):
        first = int_binary("add", var("x", Sort.INT), 3)
        second = int_binary("add", var("x", Sort.INT), 3)
        assert first is second

    def test_distinct_terms_are_distinct_objects(self):
        assert var("x", Sort.INT) is not var("y", Sort.INT)
        assert var("x", Sort.INT) is not var("x", Sort.OOP)

    def test_nested_sharing(self):
        inner = oop_attribute("int_value_of", var("v", Sort.OOP))
        first = compare("lt", inner, 5)
        second = compare("lt", oop_attribute("int_value_of", var("v", Sort.OOP)), 5)
        assert first is second
        assert first.args[0] is inner

    def test_hash_is_stable_and_structural(self):
        term = compare("eq", var("x", Sort.INT), 0)
        again = compare("eq", var("x", Sort.INT), 0)
        assert hash(term) == hash(again)
        # Interned terms work as dict keys across reconstructions.
        table = {term: "hit"}
        assert table[again] == "hit"

    def test_equality_survives_interning(self):
        term = not_(kind_predicate("is_nil", var("v", Sort.OOP)))
        assert term == not_(kind_predicate("is_nil", var("v", Sort.OOP)))
        assert term != kind_predicate("is_nil", var("v", Sort.OOP))

    def test_intern_stats_count_hits(self):
        from repro.concolic.terms import intern_stats, intern_table_size

        var("fresh_interning_probe", Sort.INT)  # ensure the key exists
        size_before = intern_table_size()
        hits_before, misses_before = intern_stats()
        var("fresh_interning_probe", Sort.INT)
        hits_after, misses_after = intern_stats()
        assert hits_after == hits_before + 1
        assert misses_after == misses_before
        assert intern_table_size() == size_before

    def test_pickle_round_trip_stays_structural(self):
        import pickle

        term = compare("le", oop_attribute("int_value_of", var("v", Sort.OOP)), 9)
        clone = pickle.loads(pickle.dumps(term))
        # Unpickled terms bypass the intern table but still compare and
        # hash structurally.
        assert clone == term
        assert hash(clone) == hash(term)
