"""Materializer tests: models become concrete VM state faithfully."""

from __future__ import annotations

import pytest

from repro.bytecode.methods import MethodBuilder, SymbolTable
from repro.concolic.abstract import AbstractValue
from repro.concolic.materialize import Materializer
from repro.concolic.solver.model import Kind, KindTag, Model, SolverContext
from repro.concolic.symbolic_memory import SymbolicObjectMemory
from repro.memory.bootstrap import bootstrap_memory


@pytest.fixture
def world():
    memory, known = bootstrap_memory(
        heap_words=4096, memory_class=SymbolicObjectMemory
    )
    context = SolverContext.from_memory(memory)
    return memory, known, context


def model_with(context, kinds=None, ints=None, floats=None, aliases=None):
    return Model(
        context=context,
        kinds=kinds or {},
        int_values=ints or {},
        float_values=floats or {},
        aliases=aliases or {},
    )


class TestValues:
    def test_small_int(self, world):
        memory, _, context = world
        model = model_with(
            context, kinds={"recv": Kind(KindTag.SMALL_INT, value=-17)}
        )
        value = Materializer(memory, model).materialize_value(
            AbstractValue("recv")
        )
        assert memory.integer_value_of(value).concrete == -17

    def test_specials(self, world):
        memory, _, context = world
        model = model_with(
            context,
            kinds={
                "a": Kind(KindTag.NIL),
                "b": Kind(KindTag.TRUE),
                "c": Kind(KindTag.FALSE),
            },
        )
        materializer = Materializer(memory, model)
        assert materializer.materialize_value(AbstractValue("a")).concrete == (
            memory.nil_object
        )
        assert materializer.materialize_value(AbstractValue("b")).concrete == (
            memory.true_object
        )
        assert materializer.materialize_value(AbstractValue("c")).concrete == (
            memory.false_object
        )

    def test_float(self, world):
        memory, _, context = world
        model = model_with(
            context, kinds={"f": Kind(KindTag.FLOAT)}, floats={"f": 2.75}
        )
        value = Materializer(memory, model).materialize_value(AbstractValue("f"))
        assert memory.float_value_of(value).concrete == 2.75

    def test_object_with_class_and_slots(self, world):
        memory, known, context = world
        model = model_with(
            context,
            kinds={
                "o": Kind(
                    KindTag.OBJECT, class_index=known.array.index, num_slots=3
                )
            },
        )
        value = Materializer(memory, model).materialize_value(AbstractValue("o"))
        assert memory.class_index_of(value).concrete == known.array.index
        assert memory.num_slots_of(value).concrete == 3

    def test_object_slot_contents(self, world):
        memory, known, context = world
        model = model_with(
            context,
            kinds={
                "o": Kind(
                    KindTag.OBJECT, class_index=known.array.index, num_slots=2
                ),
                "o.slot1": Kind(KindTag.SMALL_INT, value=9),
            },
        )
        value = Materializer(memory, model).materialize_value(AbstractValue("o"))
        slot = memory.heap.read_word(memory.slot_address(value.concrete, 1))
        assert slot == memory.integer_object_of(9)

    def test_raw_slot_contents(self, world):
        memory, known, context = world
        model = model_with(
            context,
            kinds={
                "o": Kind(
                    KindTag.OBJECT,
                    class_index=known.external_address.index,
                    num_slots=2,
                )
            },
            ints={"o.raw0": 0xDEAD},
        )
        value = Materializer(memory, model).materialize_value(AbstractValue("o"))
        assert memory.heap.read_word(memory.slot_address(value.concrete, 0)) == (
            0xDEAD
        )

    def test_aliased_values_share_identity(self, world):
        memory, known, context = world
        model = model_with(
            context,
            kinds={
                "a": Kind(
                    KindTag.OBJECT, class_index=known.array.index, num_slots=1
                )
            },
            aliases={"b": "a"},
        )
        materializer = Materializer(memory, model)
        first = materializer.materialize_value(AbstractValue("a"))
        second = materializer.materialize_value(AbstractValue("b"))
        assert first.concrete == second.concrete

    def test_distinct_values_do_not_alias(self, world):
        memory, known, context = world
        kind = Kind(KindTag.OBJECT, class_index=known.array.index, num_slots=1)
        model = model_with(context, kinds={"a": kind, "b": kind})
        materializer = Materializer(memory, model)
        first = materializer.materialize_value(AbstractValue("a"))
        second = materializer.materialize_value(AbstractValue("b"))
        assert first.concrete != second.concrete


class TestFrames:
    def _method(self, memory):
        return MethodBuilder(memory, SymbolTable(memory)).temps(16).build()

    def test_stack_materialization_order(self, world):
        """stack0 is the TOP of the materialized operand stack."""
        memory, _, context = world
        model = model_with(
            context,
            kinds={
                "stack0": Kind(KindTag.SMALL_INT, value=1),  # top
                "stack1": Kind(KindTag.SMALL_INT, value=2),  # below
            },
            ints={"stack_size": 2},
        )
        frame = Materializer(memory, model).materialize_frame(
            self._method(memory)
        )
        assert frame.stack_value(0).concrete == memory.integer_object_of(1)
        assert frame.stack_value(1).concrete == memory.integer_object_of(2)

    def test_temp_materialization(self, world):
        memory, _, context = world
        model = model_with(
            context,
            kinds={"temp1": Kind(KindTag.SMALL_INT, value=5)},
            ints={"temp_count": 2},
        )
        frame = Materializer(memory, model).materialize_frame(
            self._method(memory)
        )
        assert len(frame.temps) == 2
        assert frame.temps[1].concrete == memory.integer_object_of(5)

    def test_receiver_defaults_to_distinct_small_int(self, world):
        from repro.concolic.solver.model import default_witness_value

        memory, _, context = world
        frame = Materializer(memory, model_with(context)).materialize_frame(
            self._method(memory)
        )
        expected = memory.integer_object_of(default_witness_value("recv"))
        assert frame.receiver.concrete == expected

    def test_stack_size_clamped(self, world):
        memory, _, context = world
        model = model_with(context, ints={"stack_size": 10_000})
        materializer = Materializer(memory, model)
        assert materializer.stack_depth() == context.max_stack
