"""Property-based solver tests over randomly generated conjunctions.

Soundness is the non-negotiable invariant: *whenever* the solver returns
a model, evaluating every literal under that model yields True.  The
strategies below generate conjunctions in the same shape the concolic
engine produces (kind predicates + comparisons over value attributes and
frame variables), including unsatisfiable ones.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.concolic.solver import SolverContext, solve, solve_status
from repro.concolic.terms import (
    Sort,
    compare,
    int_binary,
    kind_predicate,
    not_,
    oop_attribute,
    var,
)
from repro.memory.bootstrap import bootstrap_memory

_memory, _known = bootstrap_memory(heap_words=512)
CONTEXT = SolverContext.from_memory(_memory)

VAR_NAMES = ("recv", "stack0", "stack1", "temp0")
PREDICATES = ("is_small_int", "is_float", "is_nil", "is_true", "is_false")
ATTRIBUTES = ("int_value_of", "class_index_of", "slot_count_of", "format_of")
COMPARISONS = ("lt", "le", "gt", "ge", "eq", "ne")


def oop(name):
    return var(name, Sort.OOP)


@st.composite
def kind_literal(draw):
    term = kind_predicate(draw(st.sampled_from(PREDICATES)),
                          oop(draw(st.sampled_from(VAR_NAMES))))
    return term if draw(st.booleans()) else not_(term)


@st.composite
def int_term(draw, depth=0):
    choice = draw(st.integers(0, 3 if depth == 0 else 1))
    if choice == 0:
        return oop_attribute(
            draw(st.sampled_from(ATTRIBUTES)),
            oop(draw(st.sampled_from(VAR_NAMES))),
        )
    if choice == 1:
        return var(draw(st.sampled_from(("stack_size", "temp_count"))), Sort.INT)
    if choice == 2:
        left = draw(int_term(depth=depth + 1))
        right = draw(st.integers(-100, 100))
        op = draw(st.sampled_from(("add", "sub", "mul")))
        return int_binary(op, left, right)
    left = draw(int_term(depth=depth + 1))
    right = draw(int_term(depth=depth + 1))
    return int_binary(draw(st.sampled_from(("add", "sub"))), left, right)


@st.composite
def comparison_literal(draw):
    left = draw(int_term())
    if draw(st.booleans()):
        right = draw(st.integers(-1000, 1000))
        term = compare(draw(st.sampled_from(COMPARISONS)), left, right)
    else:
        term = compare(draw(st.sampled_from(COMPARISONS)), left,
                       draw(int_term()))
    return term if draw(st.booleans()) else not_(term)


conjunctions = st.lists(
    st.one_of(kind_literal(), comparison_literal()), min_size=0, max_size=3
)


class TestSolverSoundness:
    @given(literals=conjunctions)
    @settings(max_examples=20, deadline=None)
    def test_models_always_satisfy(self, literals):
        model = solve(literals, CONTEXT)
        if model is not None:
            assert model.satisfies(literals)

    @given(literals=conjunctions)
    @settings(max_examples=10, deadline=None)
    def test_strategies_agree_on_verdict(self, literals):
        """The ablation baseline must return the same decisive verdicts.

        Agreement is only required when both strategies completed their
        search: a truncated ("unknown") search or a model found by the
        random-repair fallback (which the product baseline deliberately
        lacks) carries no completeness claim to compare.
        """
        fast, fast_stats = solve_status(literals, CONTEXT,
                                        strategy="backtracking")
        slow, slow_stats = solve_status(literals, CONTEXT,
                                        strategy="product")
        if "unknown" in (fast_stats.status, slow_stats.status):
            return
        if fast_stats.repair_used or slow_stats.repair_used:
            return
        assert (fast is None) == (slow is None)

    @given(literals=conjunctions)
    @settings(max_examples=10, deadline=None)
    def test_solving_is_deterministic(self, literals):
        first = solve(literals, CONTEXT)
        second = solve(literals, CONTEXT)
        if first is None:
            assert second is None
        else:
            assert second is not None
            assert first.to_dict() == second.to_dict()

    @given(literals=conjunctions)
    @settings(max_examples=10, deadline=None)
    def test_adding_negation_makes_unsat(self, literals):
        """A conjunction plus the negation of a satisfied literal about a
        kind predicate cannot keep that literal satisfied."""
        model = solve(literals, CONTEXT)
        if model is None or not literals:
            return
        contradiction = literals + [not_(literals[0])]
        contradicted = solve(contradiction, CONTEXT)
        if contradicted is not None:
            # The solver may satisfy p AND not(p) only if it is wrong.
            assert contradicted.satisfies(contradiction) is False or True
            # Stronger: evaluating must not claim both polarities hold.
            assert not contradicted.satisfies([literals[0], not_(literals[0])])
