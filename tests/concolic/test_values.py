"""Concolic value semantics: propagation, recording, concretization."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.concolic.abstract import AbstractValue
from repro.concolic.terms import Sort, const, evaluate, var
from repro.concolic.trace import PathTrace
from repro.concolic.values import (
    ConcolicBool,
    ConcolicFloat,
    ConcolicInt,
    ConcolicOop,
    tracing,
)


def sym_int(name, concrete):
    return ConcolicInt(concrete, var(name, Sort.INT))


class TestConcolicInt:
    def test_concrete_arithmetic(self):
        a = ConcolicInt(3)
        result = a + 4
        assert result.concrete == 7
        assert result.symbolic is None  # both sides concrete

    def test_symbolic_propagation(self):
        a = sym_int("x", 3)
        result = a + 4
        assert result.concrete == 7
        assert str(result.symbolic) == "add(x, 4)"

    def test_reflected_operands(self):
        a = sym_int("x", 3)
        result = 10 - a
        assert result.concrete == 7
        assert str(result.symbolic) == "sub(10, x)"

    def test_comparison_yields_concolic_bool(self):
        a = sym_int("x", 3)
        check = a < 5
        assert isinstance(check, ConcolicBool)
        assert check.concrete is True
        assert str(check.symbolic) == "lt(x, 5)"

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_arithmetic_matches_python(self, a, b):
        sa = sym_int("a", a)
        for op in ("__add__", "__sub__", "__mul__", "__and__", "__or__",
                   "__xor__"):
            concolic = getattr(sa, op)(b)
            expected = getattr(a, op)(b)
            assert concolic.concrete == expected

    def test_division_matches_floor_semantics(self):
        assert (sym_int("a", -7) // 2).concrete == -4
        assert (sym_int("a", -7) % 2).concrete == 1

    def test_shifts(self):
        assert (sym_int("a", 3) << 4).concrete == 48
        assert (sym_int("a", 48) >> 4).concrete == 3
        assert (1 << ConcolicInt(3)).concrete == 8

    def test_invert(self):
        value = ~sym_int("a", 5)
        assert value.concrete == -6
        env = lambda op, payload: {"a": 5}[payload]
        assert evaluate(value.symbolic, env) == -6

    def test_concretizing_escapes(self):
        a = sym_int("x", 6)
        assert int(a) == 6
        assert float(a) == 6.0
        assert a.bit_length() == 3
        assert list(range(ConcolicInt(3))) == [0, 1, 2]

    def test_symbolic_evaluation_consistency(self):
        a = sym_int("x", 3)
        b = sym_int("y", -4)
        result = (a * b) + (a - b)
        env = lambda op, payload: {"x": 3, "y": -4}[payload]
        assert evaluate(result.symbolic, env) == result.concrete


class TestConcolicBool:
    def test_truth_test_records(self):
        trace = PathTrace()
        with tracing(trace):
            check = sym_int("x", 3) < 5
            assert bool(check)
        assert len(trace) == 1
        assert trace.constraints[0].taken is True

    def test_false_polarity_recorded(self):
        trace = PathTrace()
        with tracing(trace):
            bool(sym_int("x", 9) < 5)
        assert trace.constraints[0].taken is False

    def test_no_recording_outside_trace(self):
        trace = PathTrace()
        bool(sym_int("x", 3) < 5)  # no active trace
        assert len(trace) == 0

    def test_concrete_bools_not_recorded(self):
        trace = PathTrace()
        with tracing(trace):
            bool(ConcolicBool(True, None))
        assert len(trace) == 0

    def test_boolean_comparison_decomposes(self):
        trace = PathTrace()
        with tracing(trace):
            left = sym_int("x", -1) < 0
            right = sym_int("y", 1) < 0
            assert (left != right) is True
        assert len(trace) == 2  # both sides recorded separately

    def test_consecutive_duplicates_squashed(self):
        trace = PathTrace()
        with tracing(trace):
            check = sym_int("x", 3) < 5
            bool(check)
            bool(check)
        assert len(trace) == 1


class TestConcolicFloat:
    def test_arithmetic(self):
        a = ConcolicFloat(1.5, var("f", Sort.FLOAT))
        result = a * 2.0
        assert result.concrete == 3.0
        assert str(result.symbolic) == "fmul(f, 2.0)"

    def test_math_functions_concretize(self):
        a = ConcolicFloat(4.0, var("f", Sort.FLOAT))
        assert math.sqrt(a) == 2.0

    def test_comparisons_record(self):
        trace = PathTrace()
        with tracing(trace):
            bool(ConcolicFloat(1.0, var("f", Sort.FLOAT)) < 2.0)
        assert len(trace) == 1

    def test_truncation(self):
        assert int(ConcolicFloat(3.9)) == 3

    def test_negation(self):
        a = ConcolicFloat(2.5, var("f", Sort.FLOAT))
        assert (-a).concrete == -2.5


class TestConcolicOop:
    def test_int_value_term_from_abstract(self):
        oop = ConcolicOop(7, abstract=AbstractValue("recv"))
        assert str(oop.int_value_term()) == "int_value_of(recv)"

    def test_int_value_term_from_shape(self):
        term = const(5)
        oop = ConcolicOop(11, shape=("small_int", term))
        assert oop.int_value_term() is term

    def test_float_value_term(self):
        oop = ConcolicOop(0x2000, abstract=AbstractValue("stack0"))
        assert str(oop.float_value_term()) == "float_value_of(stack0)"

    def test_plain_oop_has_no_terms(self):
        oop = ConcolicOop(0x2000)
        assert oop.int_value_term() is None
        assert oop.variable is None
