"""Byte-code sequence testing (the paper's future work, implemented)."""

from __future__ import annotations

import pytest

from repro.concolic.explorer import ConcolicExplorer
from repro.concolic.sequences import (
    BytecodeSequenceSpec,
    interesting_sequences,
    sequence_spec,
)
from repro.difftest.harness import Status
from repro.difftest.runner import CampaignConfig
from repro.difftest.runner import test_instruction as run_instruction_test
from repro.errors import BytecodeError
from repro.interpreter.exits import ExitCondition
from repro.jit.machine.x86 import X86Backend
from repro.jit.register_allocating import RegisterAllocatingCogit
from repro.jit.simple_stack import SimpleStackBasedCogit
from repro.jit.stack_to_register import StackToRegisterCogit

X86_ONLY = CampaignConfig(backends=(X86Backend,))
ALL_COGITS = [SimpleStackBasedCogit, StackToRegisterCogit, RegisterAllocatingCogit]


class TestSpecConstruction:
    def test_mnemonic_construction(self):
        spec = sequence_spec("pushTrue", "popStackTop")
        assert spec.name == "seq:pushTrue+popStackTop"
        assert spec.kind == "sequence"
        assert spec.byte_size == 2

    def test_operand_entries(self):
        spec = sequence_spec("pushOne", ("longJump", 1), "nop")
        assert spec.byte_size == 4

    def test_backward_jump_rejected(self):
        with pytest.raises(BytecodeError):
            sequence_spec("nop", ("longJump", -2))

    def test_literal_selector_mix_rejected(self):
        with pytest.raises(BytecodeError):
            sequence_spec("pushLiteralConstant0", "sendLiteralSelector0Args0")

    def test_untestable_family_rejected(self):
        with pytest.raises(BytecodeError):
            sequence_spec("pushThisContext")


class TestConcolicExploration:
    def test_straight_line_sequence_paths(self):
        spec = sequence_spec("pushOne", "pushTwo", "bytecodePrimAdd")
        result = ConcolicExplorer(spec).explore()
        # All operands are constants: exactly one (success) path.
        assert result.path_count == 1
        assert result.paths[0].exit.condition == ExitCondition.SUCCESS

    def test_sequence_over_symbolic_inputs(self):
        # dup + multiply squares the (symbolic) stack top.
        spec = sequence_spec("duplicateTop", "bytecodePrimMultiply")
        result = ConcolicExplorer(spec).explore()
        conditions = {p.exit.condition for p in result.paths}
        assert ExitCondition.INVALID_FRAME in conditions  # needs one input
        assert ExitCondition.SUCCESS in conditions
        assert ExitCondition.MESSAGE_SEND in conditions  # overflow / non-int

    def test_jump_shapes_explored(self):
        spec = sequence_spec("shortJumpIfTrue1", "pushNil", "nop")
        result = ConcolicExplorer(spec).explore()
        stacks = {
            len(p.output.stack)
            for p in result.paths
            if p.exit.condition == ExitCondition.SUCCESS
        }
        # Taken path skips the push (empty stack); not-taken pushes nil.
        assert stacks == {0, 1}


class TestDifferentialSequences:
    @pytest.mark.parametrize("cogit", ALL_COGITS, ids=lambda c: c.name)
    def test_push_pop_compiles_equivalently(self, cogit):
        """S2R compiles push+pop to nothing; behaviour must still match."""
        spec = sequence_spec("pushTrue", "popStackTop")
        result = run_instruction_test(spec, cogit, X86_ONLY)
        assert result.differing_paths == 0

    @pytest.mark.parametrize("cogit", ALL_COGITS, ids=lambda c: c.name)
    def test_deferred_push_across_jump(self, cogit):
        """A deferred push crossing a jump target needs the merge flush."""
        spec = sequence_spec("pushOne", ("longJump", 1), "nop", "pushTwo",
                             "bytecodePrimLessThan")
        result = run_instruction_test(spec, cogit, X86_ONLY)
        assert result.differing_paths == 0

    def test_s2r_matches_on_all_interesting_sequences(self):
        for spec in interesting_sequences():
            result = run_instruction_test(spec, StackToRegisterCogit, X86_ONLY)
            assert result.differing_paths == 0, spec.name

    def test_simple_differs_only_on_known_families(self):
        for spec in interesting_sequences():
            result = run_instruction_test(spec, SimpleStackBasedCogit, X86_ONLY)
            for comparison in result.differences():
                assert "trampoline send" in comparison.detail, (
                    spec.name, comparison.detail
                )

    def test_conditional_sequences_compare_pcs(self):
        spec = sequence_spec("pushOne", "pushTwo", "bytecodePrimLessThan",
                             "shortJumpIfFalse1", "pushTrue", "nop")
        result = run_instruction_test(spec, RegisterAllocatingCogit, X86_ONLY)
        assert result.differing_paths == 0
        assert any(c.status == Status.MATCH for c in result.comparisons)

    def test_temp_roundtrip_sequence(self):
        spec = sequence_spec(
            "pushZero", "popIntoTemporaryVariable0", "pushTemporaryVariable0"
        )
        result = run_instruction_test(spec, RegisterAllocatingCogit, X86_ONLY)
        assert result.differing_paths == 0


class TestGeneratedPairs:
    def test_corpus_shape(self):
        from repro.concolic.sequences import (
            CONSUMERS,
            PRODUCERS,
            generate_pair_sequences,
        )

        specs = generate_pair_sequences()
        assert len(specs) == len(PRODUCERS) * len(CONSUMERS)
        assert len({spec.name for spec in specs}) == len(specs)

    def test_every_pair_matches_on_production_compiler(self):
        """The minimal producer/consumer programs are defect-free for
        the compilers that inline like the interpreter does."""
        from repro.concolic.sequences import generate_pair_sequences

        for spec in generate_pair_sequences():
            result = run_instruction_test(spec, StackToRegisterCogit, X86_ONLY)
            for comparison in result.differences():
                # Only the known float/int non-inlining sends may differ.
                assert "trampoline send" in comparison.detail, (
                    spec.name, comparison.detail
                )
