"""Solver tests: satisfiable/unsatisfiable conjunctions and soundness.

The key property (checked exhaustively by construction and with
hypothesis) is *soundness*: any model the solver returns satisfies every
literal it was given.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.concolic.solver import KindTag, SolverContext, solve
from repro.concolic.terms import (
    Sort,
    compare,
    identical,
    int_binary,
    kind_predicate,
    not_,
    oop_attribute,
    var,
)
from repro.memory.bootstrap import bootstrap_memory
from repro.memory.layout import MAX_SMALL_INT, MIN_SMALL_INT


@pytest.fixture(scope="module")
def context():
    memory, _ = bootstrap_memory(heap_words=512)
    return SolverContext.from_memory(memory)


def v(name):
    return var(name, Sort.OOP)


def iv(name):
    return oop_attribute("int_value_of", v(name))


class TestKinds:
    def test_small_int_kind(self, context):
        model = solve([kind_predicate("is_small_int", v("a"))], context)
        assert model is not None
        assert model.kind_of("a").tag == KindTag.SMALL_INT

    def test_conflicting_kinds_unsat(self, context):
        literals = [
            kind_predicate("is_small_int", v("a")),
            kind_predicate("is_float", v("a")),
        ]
        assert solve(literals, context) is None

    def test_negated_kind(self, context):
        model = solve([not_(kind_predicate("is_small_int", v("a")))], context)
        assert model is not None
        assert model.kind_of("a").tag != KindTag.SMALL_INT

    def test_all_kinds_excluded_unsat(self, context):
        literals = [
            not_(kind_predicate(p, v("a")))
            for p in ("is_small_int", "is_float", "is_nil", "is_true", "is_false")
        ]
        # Only OBJECT remains: satisfiable.
        model = solve(literals, context)
        assert model is not None
        assert model.kind_of("a").tag == KindTag.OBJECT

    def test_nil_kind(self, context):
        model = solve([kind_predicate("is_nil", v("a"))], context)
        assert model.kind_of("a").tag == KindTag.NIL


class TestArithmetic:
    def test_value_equation(self, context):
        literals = [
            kind_predicate("is_small_int", v("a")),
            compare("eq", iv("a"), 42),
        ]
        model = solve(literals, context)
        assert model.kind_of("a").value == 42

    def test_overflow_witness(self, context):
        """The paper's Table 1 row 2: a sum that overflows."""
        literals = [
            kind_predicate("is_small_int", v("a")),
            kind_predicate("is_small_int", v("b")),
            compare("gt", int_binary("add", iv("a"), iv("b")), MAX_SMALL_INT),
        ]
        model = solve(literals, context)
        assert model is not None
        total = model.kind_of("a").value + model.kind_of("b").value
        assert total > MAX_SMALL_INT

    def test_underflow_witness(self, context):
        literals = [
            kind_predicate("is_small_int", v("a")),
            kind_predicate("is_small_int", v("b")),
            compare("lt", int_binary("add", iv("a"), iv("b")), MIN_SMALL_INT),
        ]
        model = solve(literals, context)
        assert model is not None

    def test_contradictory_bounds_unsat(self, context):
        literals = [
            kind_predicate("is_small_int", v("a")),
            compare("gt", iv("a"), 10),
            compare("lt", iv("a"), 5),
        ]
        assert solve(literals, context) is None

    def test_exact_division_witness(self, context):
        literals = [
            kind_predicate("is_small_int", v("a")),
            kind_predicate("is_small_int", v("b")),
            compare("ne", iv("b"), 0),
            compare("eq", int_binary("mod", iv("a"), iv("b")), 0),
        ]
        model = solve(literals, context)
        assert model.kind_of("a").value % model.kind_of("b").value == 0

    def test_stack_size_variable(self, context):
        literals = [compare("gt", var("stack_size", Sort.INT), 1)]
        model = solve(literals, context)
        assert model.int_values["stack_size"] > 1


class TestObjects:
    def test_slot_count_requirement(self, context):
        literals = [
            not_(kind_predicate("is_small_int", v("a"))),
            compare("gt", oop_attribute("slot_count_of", v("a")), 3),
        ]
        model = solve(literals, context)
        assert model is not None
        kind = model.kind_of("a")
        assert model.context.slot_count_for_kind(kind) > 3

    def test_class_index_pinning(self, context):
        array_index = context.default_object_classes[1]
        literals = [
            compare("eq", oop_attribute("class_index_of", v("a")), array_index),
        ]
        model = solve(literals, context)
        assert model.context.class_index_for_kind(model.kind_of("a")) == array_index

    def test_format_constraint(self, context):
        # BYTES format is 4.
        literals = [
            not_(kind_predicate("is_small_int", v("a"))),
            compare("eq", oop_attribute("format_of", v("a")), 4),
        ]
        model = solve(literals, context)
        assert model.context.format_for_kind(model.kind_of("a")) == 4

    def test_small_int_class_index_forces_kind(self, context):
        literals = [
            compare(
                "eq",
                oop_attribute("class_index_of", v("a")),
                context.small_integer_class_index,
            ),
        ]
        model = solve(literals, context)
        assert model.kind_of("a").tag == KindTag.SMALL_INT


class TestIdentity:
    def test_aliasing(self, context):
        literals = [
            identical(v("a"), v("b")),
            kind_predicate("is_small_int", v("a")),
            compare("eq", iv("a"), 7),
        ]
        model = solve(literals, context)
        assert model.representative("b") == model.representative("a")
        assert model.kind_of("b").value == 7

    def test_distinctness(self, context):
        literals = [not_(identical(v("a"), v("b")))]
        model = solve(literals, context)
        assert model is not None

    def test_alias_and_distinct_conflict(self, context):
        literals = [
            identical(v("a"), v("b")),
            not_(identical(v("a"), v("b"))),
        ]
        assert solve(literals, context) is None

    def test_two_nils_cannot_differ(self, context):
        literals = [
            kind_predicate("is_nil", v("a")),
            kind_predicate("is_nil", v("b")),
            not_(identical(v("a"), v("b"))),
        ]
        assert solve(literals, context) is None


class TestSoundness:
    @given(
        bound=st.integers(min_value=-1000, max_value=1000),
        op=st.sampled_from(["lt", "le", "gt", "ge", "eq", "ne"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_models_satisfy_single_comparison(self, bound, op):
        memory, _ = bootstrap_memory(heap_words=256)
        context = SolverContext.from_memory(memory)
        literals = [
            kind_predicate("is_small_int", v("a")),
            compare(op, iv("a"), bound),
        ]
        model = solve(literals, context)
        assert model is not None
        assert model.satisfies(literals)

    @given(
        lower=st.integers(min_value=-500, max_value=0),
        spread=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=30, deadline=None)
    def test_models_satisfy_interval(self, lower, spread):
        memory, _ = bootstrap_memory(heap_words=256)
        context = SolverContext.from_memory(memory)
        literals = [
            kind_predicate("is_small_int", v("a")),
            compare("ge", iv("a"), lower),
            compare("le", iv("a"), lower + spread),
        ]
        model = solve(literals, context)
        assert model is not None
        assert lower <= model.kind_of("a").value <= lower + spread
