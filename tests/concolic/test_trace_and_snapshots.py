"""Trace bookkeeping, abstract naming, snapshots and the GC exit."""

from __future__ import annotations

import pytest

from repro.concolic.abstract import AbstractFrameSpec, AbstractValue
from repro.concolic.explorer import ConcolicExplorer, NativeMethodSpec
from repro.concolic.snapshots import OutputSnapshot, describe_value, render_oop
from repro.concolic.terms import Sort, compare, not_, var
from repro.concolic.trace import PathConstraint, PathTrace
from repro.concolic.values import ConcolicInt, ConcolicOop
from repro.interpreter.exits import ExitCondition, ExitResult
from repro.interpreter.primitives import primitive_named
from repro.memory.bootstrap import bootstrap_memory


class TestPathConstraint:
    def test_literal_polarity(self):
        term = compare("lt", var("x", Sort.INT), 5)
        taken = PathConstraint(term, True)
        refused = PathConstraint(term, False)
        assert taken.literal is term
        assert refused.literal == not_(term)

    def test_negated_flips(self):
        term = compare("lt", var("x", Sort.INT), 5)
        constraint = PathConstraint(term, True)
        assert constraint.negated().taken is False
        assert constraint.negated().negated() == constraint

    def test_key_distinguishes_polarity(self):
        term = compare("lt", var("x", Sort.INT), 5)
        assert PathConstraint(term, True).key != PathConstraint(term, False).key


class TestPathTrace:
    def test_muting(self):
        trace = PathTrace()
        trace.muted = True
        trace.record(compare("lt", var("x", Sort.INT), 5), True)
        assert len(trace) == 0

    def test_describe(self):
        trace = PathTrace()
        assert trace.describe() == "(empty)"
        trace.record(compare("lt", var("x", Sort.INT), 5), False)
        assert trace.describe() == "not(lt(x, 5))"

    def test_literals(self):
        trace = PathTrace()
        term = compare("eq", var("x", Sort.INT), 0)
        trace.record(term, True)
        assert trace.literals() == [term]


class TestAbstractNaming:
    def test_deterministic_names(self):
        spec = AbstractFrameSpec(stack_slots=2, temp_slots=1)
        assert [v.name for v in spec.stack_values()] == ["stack0", "stack1"]
        assert [v.name for v in spec.temps()] == ["temp0"]
        assert spec.receiver.name == "recv"

    def test_slot_naming(self):
        value = AbstractValue("recv")
        assert value.slot(3).name == "recv.slot3"
        assert value.slot(3).slot(0).name == "recv.slot3.slot0"

    def test_variable_term(self):
        assert str(AbstractValue("stack0").variable) == "stack0"

    def test_all_values(self):
        spec = AbstractFrameSpec(stack_slots=1, temp_slots=2)
        names = [v.name for v in spec.all_values()]
        assert names == ["recv", "stack0", "temp0", "temp1"]


class TestSnapshots:
    @pytest.fixture
    def memory(self):
        return bootstrap_memory(heap_words=512)[0]

    def test_render_special_oops(self, memory):
        assert render_oop(memory, memory.nil_object) == "nil"
        assert render_oop(memory, memory.true_object) == "true"
        assert render_oop(memory, memory.integer_object_of(-9)) == "int(-9)"

    def test_render_float(self, memory):
        oop = memory.float_object_of(2.5)
        assert render_oop(memory, oop) == "float(2.5)"

    def test_render_object(self, memory):
        oop = memory.new_array([])
        assert render_oop(memory, oop).startswith("Array@")

    def test_render_garbage_is_safe(self, memory):
        assert render_oop(memory, 0xDEADBEE0).startswith("oop(")

    def test_describe_concolic_values(self, memory):
        described = describe_value(
            memory, ConcolicOop(memory.integer_object_of(4),
                                abstract=AbstractValue("stack0"))
        )
        assert described.symbolic == "stack0"
        assert described.rendered == "int(4)"
        raw = describe_value(memory, ConcolicInt(7, var("w.raw0", Sort.INT)))
        assert raw.symbolic == "w.raw0"

    def test_snapshot_describe(self):
        snapshot = OutputSnapshot(pc=3)
        assert "pc=3" in snapshot.describe()


class TestGarbageCollectionExit:
    def test_allocation_pressure_becomes_gc_exit(self):
        """The paper's suggested extra exit condition, implemented."""
        spec = NativeMethodSpec(primitive_named("primitiveFFIAllocate"))
        # A heap too small for the boundary-sized allocation the
        # exploration's bound-negation witnesses ask for (4095 bytes).
        explorer = ConcolicExplorer(spec, heap_words=1024)
        result = explorer.explore()
        conditions = {p.exit.condition for p in result.paths}
        assert ExitCondition.NEEDS_GARBAGE_COLLECTION in conditions

    def test_gc_exit_is_expected_failure(self):
        assert ExitCondition.NEEDS_GARBAGE_COLLECTION.is_expected_failure

    def test_gc_exit_result_constructor(self):
        result = ExitResult.needs_garbage_collection("allocation of 3 words")
        assert result.condition == ExitCondition.NEEDS_GARBAGE_COLLECTION
        assert "3 words" in result.detail
