"""Symbolic object memory: constraint recording at the API boundary."""

from __future__ import annotations

import pytest

from repro.concolic.abstract import AbstractValue
from repro.concolic.symbolic_memory import (
    ConcolicFormat,
    ConcolicFrame,
    SymbolicObjectMemory,
)
from repro.concolic.trace import PathTrace
from repro.concolic.values import ConcolicBool, ConcolicInt, ConcolicOop, tracing
from repro.errors import InvalidFrameAccess, InvalidMemoryAccess
from repro.memory.bootstrap import bootstrap_memory
from repro.memory.layout import MAX_SMALL_INT, ObjectFormat


@pytest.fixture
def memory():
    mem, _ = bootstrap_memory(heap_words=2048, memory_class=SymbolicObjectMemory)
    return mem


def abstract_int(memory, value, name="v"):
    oop = memory.integer_object_of(value)
    return memory.register(ConcolicOop(oop, abstract=AbstractValue(name)))


def recorded(trace):
    return [str(c) for c in trace]


class TestPredicates:
    def test_is_integer_object_records_kind(self, memory):
        trace = PathTrace()
        with tracing(trace):
            value = abstract_int(memory, 5)
            assert bool(memory.is_integer_object(value))
        assert recorded(trace) == ["is_small_int(v)"]

    def test_are_integers_decomposes(self, memory):
        """One literal per operand — the paper's Table 1 structure."""
        trace = PathTrace()
        with tracing(trace):
            a = abstract_int(memory, 1, "a")
            b = abstract_int(memory, 2, "b")
            assert bool(memory.are_integers(a, b))
        assert recorded(trace) == ["is_small_int(a)", "is_small_int(b)"]

    def test_are_integers_short_circuits(self, memory):
        trace = PathTrace()
        with tracing(trace):
            nil = memory.register(
                ConcolicOop(memory.nil_object, abstract=AbstractValue("n"))
            )
            b = abstract_int(memory, 2, "b")
            assert not bool(memory.are_integers(nil, b))
        assert recorded(trace) == ["not(is_small_int(n))"]

    def test_is_integer_value_decomposes_bounds(self, memory):
        trace = PathTrace()
        with tracing(trace):
            value = memory.integer_value_of(abstract_int(memory, 5))
            total = value + 1
            assert bool(memory.is_integer_value(total))
        assert len(trace) == 2
        assert "le(add(int_value_of(v), 1)" in recorded(trace)[0]

    def test_boolean_predicates(self, memory):
        trace = PathTrace()
        with tracing(trace):
            value = memory.register(
                ConcolicOop(memory.true_object, abstract=AbstractValue("t"))
            )
            assert bool(memory.is_true_object(value))
            assert not bool(memory.is_false_object(value))
            assert not bool(memory.is_nil_object(value))
        assert recorded(trace) == [
            "is_true(t)", "not(is_false(t))", "not(is_nil(t))",
        ]

    def test_identity_between_abstracts(self, memory):
        trace = PathTrace()
        with tracing(trace):
            a = abstract_int(memory, 5, "a")
            b = abstract_int(memory, 5, "b")
            assert bool(memory.are_identical(a, b))
        assert recorded(trace) == ["identical(a, b)"]

    def test_identity_against_special_constant(self, memory):
        trace = PathTrace()
        with tracing(trace):
            a = memory.register(
                ConcolicOop(memory.nil_object, abstract=AbstractValue("a"))
            )
            assert bool(memory.are_identical(a, memory.nil_object))
        assert recorded(trace) == ["is_nil(a)"]


class TestAccessors:
    def test_integer_value_carries_term(self, memory):
        value = memory.integer_value_of(abstract_int(memory, 7))
        assert isinstance(value, ConcolicInt)
        assert str(value.symbolic) == "int_value_of(v)"
        assert value.concrete == 7

    def test_class_index_of(self, memory):
        value = memory.class_index_of(abstract_int(memory, 7))
        assert str(value.symbolic) == "class_index_of(v)"
        assert value.concrete == memory.small_integer_class_index

    def test_format_comparisons_record(self, memory):
        array = memory.new_array([memory.integer_object_of(1)])
        wrapped = memory.register(ConcolicOop(array, abstract=AbstractValue("o")))
        trace = PathTrace()
        with tracing(trace):
            fmt = memory.format_of(wrapped)
            assert isinstance(fmt, ConcolicFormat)
            assert bool(fmt == ObjectFormat.VARIABLE_POINTERS)
            assert bool(fmt.is_pointers)
        assert recorded(trace) == [
            "eq(format_of(o), 2)", "le(format_of(o), 2)",
        ]

    def test_num_slots_of(self, memory):
        array = memory.new_array([memory.integer_object_of(1)] * 3)
        wrapped = memory.register(ConcolicOop(array, abstract=AbstractValue("o")))
        count = memory.num_slots_of(wrapped)
        assert count.concrete == 3
        assert str(count.symbolic) == "slot_count_of(o)"

    def test_float_value_of(self, memory):
        boxed = memory.float_object_of(1.5)
        concrete_oop = boxed.concrete if isinstance(boxed, ConcolicOop) else boxed
        wrapped = memory.register(
            ConcolicOop(concrete_oop, abstract=AbstractValue("f"))
        )
        value = memory.float_value_of(wrapped)
        assert value.concrete == 1.5
        assert str(value.symbolic) == "float_value_of(f)"

    def test_integer_object_of_keeps_shape(self, memory):
        base = memory.integer_value_of(abstract_int(memory, 3))
        result = memory.integer_object_of(base + 1)
        assert isinstance(result, ConcolicOop)
        assert result.shape[0] == "small_int"


class TestSlots:
    def make_object(self, memory, cls_name="Association"):
        cls = memory.class_table.named(cls_name)
        oop = memory.instantiate(cls)
        return memory.register(ConcolicOop(oop, abstract=AbstractValue("o")))

    def test_in_bounds_fetch_records_bound(self, memory):
        wrapped = self.make_object(memory)
        trace = PathTrace()
        with tracing(trace):
            memory.fetch_pointer(1, wrapped)
        assert "gt(slot_count_of(o), 1)" in recorded(trace)

    def test_out_of_bounds_fetch_raises_after_recording(self, memory):
        wrapped = self.make_object(memory)
        trace = PathTrace()
        with tracing(trace):
            with pytest.raises(InvalidMemoryAccess):
                memory.fetch_pointer(5, wrapped)
        assert "not(gt(slot_count_of(o), 5))" in recorded(trace)

    def test_tagged_receiver_slot_access(self, memory):
        value = abstract_int(memory, 3)
        trace = PathTrace()
        with tracing(trace):
            with pytest.raises(InvalidMemoryAccess):
                memory.fetch_pointer(0, value)
        assert recorded(trace) == ["is_small_int(v)"]

    def test_slot_fetch_returns_abstract_child(self, memory):
        wrapped = self.make_object(memory)
        child = memory.fetch_pointer(0, wrapped)
        assert isinstance(child, ConcolicOop)
        assert child.abstract.name == "o.slot0"

    def test_raw_slot_fetch_returns_int(self, memory):
        cls = memory.class_table.named("WordArray")
        oop = memory.instantiate(cls, 2)
        memory.heap.write_word(memory.slot_address(oop, 0), 99)
        wrapped = memory.register(ConcolicOop(oop, abstract=AbstractValue("w")))
        word = memory.fetch_pointer(0, wrapped)
        assert isinstance(word, ConcolicInt)
        assert word.concrete == 99
        assert str(word.symbolic) == "w.raw0"

    def test_store_then_fetch_preserves_heap_object_identity(self, memory):
        wrapped = self.make_object(memory)
        child = memory.new_array([memory.integer_object_of(1)])
        value = memory.register(ConcolicOop(child, abstract=AbstractValue("x")))
        memory.store_pointer(0, wrapped, value)
        fetched = memory.fetch_pointer(0, wrapped)
        assert fetched is value  # registry round-trip for heap pointers

    def test_immediates_get_slot_local_identity(self, memory):
        """Two variables sharing a concrete value must not conflate:
        fetching a tagged int or a special object yields the slot's own
        abstract identity, not whichever variable happened to equal it."""
        wrapped = self.make_object(memory)
        value = abstract_int(memory, 42, "x")
        memory.store_pointer(0, wrapped, value)
        memory.store_pointer(1, wrapped, memory.nil_object)
        tagged = memory.fetch_pointer(0, wrapped)
        special = memory.fetch_pointer(1, wrapped)
        assert tagged.abstract.name == "o.slot0"
        assert special.abstract.name == "o.slot1"


class TestConcolicFrame:
    def make_frame(self, memory, stack=(), temps=()):
        from repro.bytecode.methods import MethodBuilder, SymbolTable

        method = MethodBuilder(memory, SymbolTable(memory)).temps(16).build()
        return ConcolicFrame(
            memory.nil_object, method, input_stack=list(stack),
            input_temps=list(temps),
        )

    def test_empty_stack_access_records_and_raises(self, memory):
        frame = self.make_frame(memory)
        trace = PathTrace()
        with tracing(trace):
            with pytest.raises(InvalidFrameAccess):
                frame.stack_value(1)
        assert recorded(trace) == ["not(gt(stack_size, 1))"]

    def test_satisfied_access_records_positive(self, memory):
        frame = self.make_frame(memory, stack=[1, 2])
        trace = PathTrace()
        with tracing(trace):
            frame.stack_value(1)
        assert recorded(trace) == ["gt(stack_size, 1)"]

    def test_pushed_values_need_no_constraint(self, memory):
        frame = self.make_frame(memory)
        frame.push(memory.integer_object_of(1))
        trace = PathTrace()
        with tracing(trace):
            assert frame.stack_value(0) == memory.integer_object_of(1)
        assert len(trace) == 0

    def test_consumed_inputs_deepen_requirements(self, memory):
        frame = self.make_frame(memory, stack=[10, 20])
        trace = PathTrace()
        with tracing(trace):
            frame.pop()  # consumes one input (depth 0)
            frame.pop()  # consumes the second (total requirement: 2)
            with pytest.raises(InvalidFrameAccess):
                frame.stack_value(0)  # would need a third input
        assert recorded(trace)[-1] == "not(gt(stack_size, 2))"

    def test_pop_then_push(self, memory):
        frame = self.make_frame(memory, stack=[10, 20])
        trace = PathTrace()
        with tracing(trace):
            frame.pop_then_push(2, 30)
        assert frame.stack == [30]
        assert recorded(trace) == ["gt(stack_size, 1)"]

    def test_temp_access(self, memory):
        frame = self.make_frame(memory, temps=[5])
        trace = PathTrace()
        with tracing(trace):
            assert frame.temp_at(0) == 5
            with pytest.raises(InvalidFrameAccess):
                frame.temp_at(3)
        assert recorded(trace) == [
            "gt(temp_count, 0)", "not(gt(temp_count, 3))",
        ]
