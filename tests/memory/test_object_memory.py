"""Unit tests for the object memory API and bootstrap."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidMemoryAccess, UntaggedValueError
from repro.memory import bootstrap_memory
from repro.memory.layout import MAX_SMALL_INT, MIN_SMALL_INT, ObjectFormat


@pytest.fixture
def space():
    return bootstrap_memory(heap_words=4096)


class TestBootstrap:
    def test_special_objects_are_distinct(self, space):
        memory, _ = space
        specials = {memory.nil_object, memory.true_object, memory.false_object}
        assert len(specials) == 3

    def test_special_objects_have_right_classes(self, space):
        memory, known = space
        assert memory.class_index_of(memory.nil_object) == known.undefined_object.index
        assert memory.class_index_of(memory.true_object) == known.boolean_true.index
        assert memory.class_index_of(memory.false_object) == known.boolean_false.index

    def test_well_known_indices_are_wired(self, space):
        memory, known = space
        assert memory.small_integer_class_index == known.small_integer.index
        assert memory.float_class_index == known.boxed_float.index
        assert memory.array_class_index == known.array.index

    def test_class_table_lookup_by_name(self, space):
        memory, known = space
        assert memory.class_table.named("Array") is known.array


class TestIntegers:
    def test_are_integers(self, space):
        memory, _ = space
        one = memory.integer_object_of(1)
        assert memory.are_integers(one, one)
        assert not memory.are_integers(one, memory.nil_object)
        assert not memory.are_integers(memory.nil_object, one)

    def test_small_integer_class_index(self, space):
        memory, known = space
        assert memory.class_index_of(memory.integer_object_of(5)) == (
            known.small_integer.index
        )

    @given(st.integers(min_value=MIN_SMALL_INT, max_value=MAX_SMALL_INT))
    def test_round_trip(self, value):
        memory, _ = bootstrap_memory(heap_words=64)
        assert memory.integer_value_of(memory.integer_object_of(value)) == value


class TestObjects:
    def test_instantiate_plain_object(self, space):
        memory, known = space
        oop = memory.instantiate(known.plain_object)
        assert memory.num_slots_of(oop) == 4
        assert memory.format_of(oop) == ObjectFormat.FIXED_POINTERS
        assert all(memory.fetch_pointer(i, oop) == memory.nil_object for i in range(4))

    def test_store_and_fetch_pointer(self, space):
        memory, known = space
        oop = memory.instantiate(known.plain_object)
        value = memory.integer_object_of(99)
        memory.store_pointer(2, oop, value)
        assert memory.fetch_pointer(2, oop) == value

    def test_variable_class_indexable_allocation(self, space):
        memory, _ = space
        array = memory.new_array([memory.integer_object_of(i) for i in range(5)])
        assert memory.num_slots_of(array) == 5
        assert [memory.integer_value_of(e) for e in memory.array_elements(array)] == [
            0,
            1,
            2,
            3,
            4,
        ]

    def test_indexable_size_on_fixed_class_rejected(self, space):
        memory, known = space
        with pytest.raises(ValueError):
            memory.instantiate(known.plain_object, indexable_size=2)

    def test_header_access_on_tagged_int_raises(self, space):
        memory, _ = space
        with pytest.raises(UntaggedValueError):
            memory.num_slots_of(memory.integer_object_of(1))

    def test_unsafe_fetch_reads_neighbour(self, space):
        """Out-of-bounds raw reads see the next object — VM-style unsafety."""
        memory, known = space
        first = memory.instantiate(known.association)
        memory.instantiate(known.association)
        # Slot 2 of a 2-slot object is the neighbour's header word.
        neighbour_header = memory.fetch_pointer(2, first)
        assert neighbour_header != memory.nil_object

    def test_unsafe_fetch_past_heap_raises(self, space):
        memory, known = space
        last = memory.instantiate(known.association)
        with pytest.raises(InvalidMemoryAccess):
            memory.fetch_pointer(10_000, last)

    def test_checked_fetch_enforces_bounds(self, space):
        memory, known = space
        oop = memory.instantiate(known.association)
        with pytest.raises(InvalidMemoryAccess):
            memory.checked_fetch_pointer(2, oop)
        with pytest.raises(InvalidMemoryAccess):
            memory.checked_store_pointer(-1, oop, memory.nil_object)


class TestFloats:
    def test_float_round_trip(self, space):
        memory, _ = space
        oop = memory.float_object_of(3.25)
        assert memory.is_float_object(oop)
        assert memory.float_value_of(oop) == 3.25

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_float_round_trip_property(self, value):
        memory, _ = bootstrap_memory(heap_words=128)
        assert memory.float_value_of(memory.float_object_of(value)) == value

    def test_float_unboxing_is_unchecked(self, space):
        """Unboxing a pointer object yields garbage bits, not an error."""
        memory, known = space
        victim = memory.instantiate(known.association)
        value = memory.float_value_of(victim)
        assert isinstance(value, float)

    def test_small_int_is_not_float(self, space):
        memory, _ = space
        assert not memory.is_float_object(memory.integer_object_of(3))


class TestBooleans:
    def test_boolean_object_of(self, space):
        memory, _ = space
        assert memory.boolean_object_of(True) == memory.true_object
        assert memory.boolean_object_of(False) == memory.false_object

    def test_is_boolean_object(self, space):
        memory, _ = space
        assert memory.is_boolean_object(memory.true_object)
        assert memory.is_boolean_object(memory.false_object)
        assert not memory.is_boolean_object(memory.nil_object)
