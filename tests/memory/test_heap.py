"""Unit tests for the flat heap and its bounds checking."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import HeapExhausted, InvalidMemoryAccess
from repro.memory.heap import Heap
from repro.memory.layout import WORD_SIZE


@pytest.fixture
def heap():
    return Heap(size_words=128)


class TestAllocation:
    def test_allocation_is_word_aligned(self, heap):
        a = heap.allocate(3)
        b = heap.allocate(1)
        assert a % WORD_SIZE == 0
        assert b == a + 3 * WORD_SIZE

    def test_allocation_is_zeroed(self, heap):
        address = heap.allocate(4)
        for offset in range(4):
            assert heap.read_word(address + offset * WORD_SIZE) == 0

    def test_exhaustion_raises(self, heap):
        heap.allocate(128)
        with pytest.raises(HeapExhausted):
            heap.allocate(1)

    def test_negative_allocation_rejected(self, heap):
        with pytest.raises(ValueError):
            heap.allocate(-1)

    def test_free_pointer_advances(self, heap):
        start = heap.free_pointer
        heap.allocate(2)
        assert heap.free_pointer == start + 2 * WORD_SIZE


class TestAccess:
    def test_read_write_round_trip(self, heap):
        address = heap.allocate(1)
        heap.write_word(address, 0xDEADBEEF)
        assert heap.read_word(address) == 0xDEADBEEF

    def test_writes_are_masked_to_32_bits(self, heap):
        address = heap.allocate(1)
        heap.write_word(address, 1 << 40)
        assert heap.read_word(address) == 0

    def test_unallocated_read_raises(self, heap):
        heap.allocate(1)
        with pytest.raises(InvalidMemoryAccess):
            heap.read_word(heap.free_pointer)

    def test_below_base_read_raises(self, heap):
        with pytest.raises(InvalidMemoryAccess):
            heap.read_word(heap.base_address - WORD_SIZE)

    def test_unaligned_access_raises(self, heap):
        heap.allocate(2)
        with pytest.raises(InvalidMemoryAccess):
            heap.read_word(heap.base_address + 1)

    def test_contains(self, heap):
        address = heap.allocate(1)
        assert heap.contains(address)
        assert not heap.contains(heap.free_pointer)
        assert not heap.contains(address + 1)

    def test_write_count_tracks_mutations(self, heap):
        address = heap.allocate(2)
        before = heap.write_count
        heap.write_word(address, 1)
        heap.write_word(address + WORD_SIZE, 2)
        assert heap.write_count == before + 2


class TestSnapshots:
    def test_snapshot_restore_round_trip(self, heap):
        address = heap.allocate(2)
        heap.write_word(address, 11)
        snapshot = heap.snapshot()
        heap.write_word(address, 22)
        heap.allocate(3)
        heap.restore(snapshot)
        assert heap.read_word(address) == 11
        assert heap.allocated_words == 2

    def test_diff_reports_changed_words(self, heap):
        address = heap.allocate(2)
        snapshot = heap.snapshot()
        heap.write_word(address + WORD_SIZE, 7)
        diff = heap.diff(snapshot)
        assert diff == {address + WORD_SIZE: (0, 7)}

    def test_diff_reports_new_allocations(self, heap):
        heap.allocate(1)
        snapshot = heap.snapshot()
        new = heap.allocate(1)
        heap.write_word(new, 9)
        assert heap.diff(snapshot) == {new: (0, 9)}

    @given(st.lists(st.integers(min_value=0, max_value=2**32 - 1), max_size=16))
    def test_snapshot_is_faithful(self, values):
        heap = Heap(size_words=32)
        address = heap.allocate(len(values))
        for offset, value in enumerate(values):
            heap.write_word(address + offset * WORD_SIZE, value)
        assert list(heap.snapshot()) == values
