"""Unit tests for the flat heap and its bounds checking."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import HeapExhausted, InvalidMemoryAccess
from repro.memory.heap import Heap
from repro.memory.layout import WORD_SIZE


@pytest.fixture
def heap():
    return Heap(size_words=128)


class TestAllocation:
    def test_allocation_is_word_aligned(self, heap):
        a = heap.allocate(3)
        b = heap.allocate(1)
        assert a % WORD_SIZE == 0
        assert b == a + 3 * WORD_SIZE

    def test_allocation_is_zeroed(self, heap):
        address = heap.allocate(4)
        for offset in range(4):
            assert heap.read_word(address + offset * WORD_SIZE) == 0

    def test_exhaustion_raises(self, heap):
        heap.allocate(128)
        with pytest.raises(HeapExhausted):
            heap.allocate(1)

    def test_negative_allocation_rejected(self, heap):
        with pytest.raises(ValueError):
            heap.allocate(-1)

    def test_free_pointer_advances(self, heap):
        start = heap.free_pointer
        heap.allocate(2)
        assert heap.free_pointer == start + 2 * WORD_SIZE


class TestAccess:
    def test_read_write_round_trip(self, heap):
        address = heap.allocate(1)
        heap.write_word(address, 0xDEADBEEF)
        assert heap.read_word(address) == 0xDEADBEEF

    def test_writes_are_masked_to_32_bits(self, heap):
        address = heap.allocate(1)
        heap.write_word(address, 1 << 40)
        assert heap.read_word(address) == 0

    def test_unallocated_read_raises(self, heap):
        heap.allocate(1)
        with pytest.raises(InvalidMemoryAccess):
            heap.read_word(heap.free_pointer)

    def test_below_base_read_raises(self, heap):
        with pytest.raises(InvalidMemoryAccess):
            heap.read_word(heap.base_address - WORD_SIZE)

    def test_unaligned_access_raises(self, heap):
        heap.allocate(2)
        with pytest.raises(InvalidMemoryAccess):
            heap.read_word(heap.base_address + 1)

    def test_contains(self, heap):
        address = heap.allocate(1)
        assert heap.contains(address)
        assert not heap.contains(heap.free_pointer)
        assert not heap.contains(address + 1)

    def test_write_count_tracks_mutations(self, heap):
        address = heap.allocate(2)
        before = heap.write_count
        heap.write_word(address, 1)
        heap.write_word(address + WORD_SIZE, 2)
        assert heap.write_count == before + 2


class TestSnapshots:
    def test_snapshot_restore_round_trip(self, heap):
        address = heap.allocate(2)
        heap.write_word(address, 11)
        snapshot = heap.snapshot()
        heap.write_word(address, 22)
        heap.allocate(3)
        heap.restore(snapshot)
        assert heap.read_word(address) == 11
        assert heap.allocated_words == 2

    def test_diff_reports_changed_words(self, heap):
        address = heap.allocate(2)
        snapshot = heap.snapshot()
        heap.write_word(address + WORD_SIZE, 7)
        diff = heap.diff(snapshot)
        assert diff == {address + WORD_SIZE: (0, 7)}

    def test_diff_reports_new_allocations(self, heap):
        heap.allocate(1)
        snapshot = heap.snapshot()
        new = heap.allocate(1)
        heap.write_word(new, 9)
        assert heap.diff(snapshot) == {new: (0, 9)}

    @given(st.lists(st.integers(min_value=0, max_value=2**32 - 1), max_size=16))
    def test_snapshot_is_faithful(self, values):
        heap = Heap(size_words=32)
        address = heap.allocate(len(values))
        for offset, value in enumerate(values):
            heap.write_word(address + offset * WORD_SIZE, value)
        assert list(heap.snapshot()) == values


class TestCopyOnWriteJournal:
    def test_checkpoint_requires_journal(self, heap):
        with pytest.raises(ValueError):
            heap.checkpoint()
        mark = heap.start_journal()
        heap.stop_journal()
        assert not heap.journaling
        with pytest.raises(ValueError):
            heap.rewind(mark)

    def test_rewind_undoes_writes_and_allocations(self, heap):
        a = heap.allocate(2)
        heap.write_word(a, 7)
        base = heap.start_journal()
        heap.write_word(a, 99)
        b = heap.allocate(2)
        heap.write_word(b, 123)
        heap.rewind(base)
        assert heap.read_word(a) == 7
        assert heap.allocated_words == 2
        assert not heap.contains(b)

    def test_rewound_allocations_come_back_zeroed(self, heap):
        base = heap.start_journal()
        a = heap.allocate(2)
        heap.write_word(a, 0xDEAD)
        heap.rewind(base)
        b = heap.allocate(2)
        assert b == a
        assert heap.read_word(b) == 0

    def test_nested_checkpoints_rewind_independently(self, heap):
        a = heap.allocate(1)
        heap.start_journal()
        heap.write_word(a, 1)
        mid = heap.checkpoint()
        heap.write_word(a, 2)
        heap.rewind(mid)
        assert heap.read_word(a) == 1

    def test_restore_invalidates_journal(self, heap):
        snap = heap.snapshot()
        heap.start_journal()
        a = heap.allocate(1)
        heap.write_word(a, 5)
        mark = heap.checkpoint()
        heap.restore(snap)
        assert heap.journaling
        with pytest.raises(ValueError):
            heap.rewind(mark)

    def test_writes_since_matches_diff(self, heap):
        """The COW capture path is byte-identical to the snapshot diff."""
        a = heap.allocate(4)
        heap.write_word(a, 10)
        heap.write_word(a + WORD_SIZE, 20)
        mark = heap.start_journal()
        snap = heap.snapshot()
        heap.write_word(a, 11)            # changed
        heap.write_word(a + WORD_SIZE, 20)  # written, unchanged
        b = heap.allocate(2)
        heap.write_word(b, 33)            # new allocation, written
        # b+WORD_SIZE: new allocation, never written (still reported)
        assert heap.writes_since(mark) == heap.diff(snap)
        assert heap.writes_since(mark) == {
            a: (10, 11),
            b: (0, 33),
            b + WORD_SIZE: (0, 0),
        }

    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("write"), st.integers(0, 15), st.integers(0, 2**32 - 1)),
                st.tuples(st.just("alloc"), st.integers(1, 4), st.just(0)),
            ),
            max_size=40,
        )
    )
    def test_journal_agrees_with_snapshots_under_random_traffic(self, ops):
        heap = Heap(size_words=256)
        start = heap.allocate(16)
        for offset in range(16):
            heap.write_word(start + offset * WORD_SIZE, offset + 1)
        mark = heap.start_journal()
        snap = heap.snapshot()
        for op, x, value in ops:
            if op == "write":
                heap.write_word(start + x * WORD_SIZE, value)
            else:
                heap.allocate(x)
        assert heap.writes_since(mark) == heap.diff(snap)
        heap.rewind(mark)
        assert heap.snapshot() == snap
        assert heap.writes_since(mark) == {}
