"""Unit and property tests for tagging, headers and float packing."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory import layout
from repro.memory.layout import (
    MAX_SMALL_INT,
    MIN_SMALL_INT,
    ObjectFormat,
    encode_header,
    fits_small_int,
    float_to_words,
    header_class_index,
    header_format,
    is_small_int_oop,
    small_int_oop,
    small_int_value,
    words_to_float,
)

small_ints = st.integers(min_value=MIN_SMALL_INT, max_value=MAX_SMALL_INT)


class TestTagging:
    def test_zero_round_trips(self):
        assert small_int_value(small_int_oop(0)) == 0

    def test_tagged_oop_has_low_bit_set(self):
        assert small_int_oop(7) & 1 == 1
        assert small_int_oop(-7) & 1 == 1

    def test_bounds_are_31_bit(self):
        assert MAX_SMALL_INT == 2**30 - 1
        assert MIN_SMALL_INT == -(2**30)

    def test_extremes_round_trip(self):
        assert small_int_value(small_int_oop(MAX_SMALL_INT)) == MAX_SMALL_INT
        assert small_int_value(small_int_oop(MIN_SMALL_INT)) == MIN_SMALL_INT

    def test_overflowing_value_is_rejected(self):
        with pytest.raises(OverflowError):
            small_int_oop(MAX_SMALL_INT + 1)
        with pytest.raises(OverflowError):
            small_int_oop(MIN_SMALL_INT - 1)

    def test_fits_small_int_edges(self):
        assert fits_small_int(MAX_SMALL_INT)
        assert fits_small_int(MIN_SMALL_INT)
        assert not fits_small_int(MAX_SMALL_INT + 1)
        assert not fits_small_int(MIN_SMALL_INT - 1)

    def test_pointer_oops_are_untagged(self):
        assert not is_small_int_oop(0x1000)
        assert not is_small_int_oop(0)

    @given(small_ints)
    def test_round_trip_property(self, value):
        assert small_int_value(small_int_oop(value)) == value

    @given(small_ints)
    def test_oop_fits_in_word(self, value):
        assert 0 <= small_int_oop(value) <= layout.WORD_MASK

    def test_untagging_is_unchecked_by_design(self):
        # Untagging a pointer-shaped oop yields garbage rather than raising:
        # safety belongs to callers (safe native methods check, unsafe
        # bytecodes do not).
        assert isinstance(small_int_value(0x1001), int)


class TestHeaders:
    def test_header_round_trip(self):
        header = encode_header(42, ObjectFormat.VARIABLE_POINTERS)
        assert header_class_index(header) == 42
        assert header_format(header) == ObjectFormat.VARIABLE_POINTERS

    def test_class_index_range_is_enforced(self):
        with pytest.raises(ValueError):
            encode_header(-1, ObjectFormat.FIXED_POINTERS)
        with pytest.raises(ValueError):
            encode_header(1 << 22, ObjectFormat.FIXED_POINTERS)

    @given(
        st.integers(min_value=0, max_value=(1 << 22) - 1),
        st.sampled_from(list(ObjectFormat)),
    )
    def test_header_round_trip_property(self, class_index, fmt):
        header = encode_header(class_index, fmt)
        assert header_class_index(header) == class_index
        assert header_format(header) == fmt

    def test_pointer_formats(self):
        assert ObjectFormat.FIXED_POINTERS.is_pointers
        assert ObjectFormat.VARIABLE_POINTERS.is_pointers
        assert ObjectFormat.WORDS.is_raw
        assert ObjectFormat.BOXED_FLOAT.is_raw


class TestFloatPacking:
    @given(st.floats(allow_nan=False))
    def test_float_round_trip(self, value):
        high, low = float_to_words(value)
        assert words_to_float(high, low) == value

    def test_nan_round_trips_as_nan(self):
        high, low = float_to_words(float("nan"))
        assert math.isnan(words_to_float(high, low))

    def test_words_are_32_bit(self):
        high, low = float_to_words(1.5)
        assert 0 <= high <= layout.WORD_MASK
        assert 0 <= low <= layout.WORD_MASK
