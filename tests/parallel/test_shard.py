"""The shard planner: coverage, granularity, ordering, resume filtering."""

from __future__ import annotations

from repro.difftest.runner import (
    CampaignConfig,
    campaign_rows,
    sequence_campaign_rows,
)
from repro.jit.machine.x86 import X86Backend
from repro.parallel.shard import plan_cells, plan_shards

CONFIG = CampaignConfig(max_bytecodes=3, max_natives=2,
                        backends=(X86Backend,))


def test_every_cell_planned_exactly_once():
    rows = campaign_rows(CONFIG)
    planned = [cell.key for cell in plan_cells(rows)]
    assert len(planned) == len(set(planned))
    # 2 natives x 1 compiler + 3 bytecodes x 3 compilers
    assert len(planned) == 2 + 3 * 3

    sharded = [cell.key for shard in plan_shards(rows) for cell in shard.cells]
    assert sorted(sharded) == sorted(planned)


def test_shards_never_span_instructions():
    rows = campaign_rows(CONFIG)
    for shard in plan_shards(rows):
        assert len({(c.kind, c.instruction) for c in shard.cells}) == 1


def test_bytecode_shard_carries_all_three_compilers_in_plan_order():
    rows = campaign_rows(CONFIG)
    shards = plan_shards(rows)
    bytecode_shards = [s for s in shards if s.cells[0].kind == "bytecode"]
    assert len(bytecode_shards) == 3
    for shard in bytecode_shards:
        assert [cell.compiler for cell in shard.cells] == [
            "SimpleStackBasedCogit",
            "StackToRegisterCogit",
            "RegisterAllocatingCogit",
        ]


def test_shard_order_natives_first_then_bytecodes():
    rows = campaign_rows(CONFIG)
    kinds = [shard.cells[0].kind for shard in plan_shards(rows)]
    assert kinds == ["native"] * 2 + ["bytecode"] * 3


def test_completed_cells_are_excluded():
    rows = campaign_rows(CONFIG)
    all_cells = list(plan_cells(rows))
    completed = {all_cells[0].key, all_cells[3].key}
    remaining = [
        cell.key
        for shard in plan_shards(rows, completed)
        for cell in shard.cells
    ]
    assert set(remaining) == {c.key for c in all_cells} - completed


def test_fully_completed_instruction_produces_no_shard():
    rows = campaign_rows(CONFIG)
    natives = [c for c in plan_cells(rows) if c.kind == "native"]
    shards = plan_shards(rows, {c.key for c in natives})
    assert all(s.cells[0].kind == "bytecode" for s in shards)


def test_remainder_after_drops_victim_and_predecessors():
    rows = campaign_rows(CONFIG)
    shard = [s for s in plan_shards(rows) if len(s.cells) == 3][0]
    remainder = shard.remainder_after(shard.cells[1])
    assert remainder.cells == (shard.cells[2],)
    assert shard.remainder_after(shard.cells[2]) is None


def test_sequence_plan_shards_by_sequence_name():
    rows = sequence_campaign_rows(CONFIG)
    shards = plan_shards(rows)
    assert shards  # the corpus is non-empty
    for shard in shards:
        assert shard.cells[0].kind == "sequence"
        # One cell per byte-code compiler; a couple of sequence names
        # appear in both the curated and the generated corpus, so those
        # shards carry both occurrences (6 cells, identical results).
        assert len(shard.cells) % 3 == 0
        assert shard.cells[0].experiment == "sequences"
