"""Determinism suite: `-j N` is byte-identical to `-j 1`.

The acceptance contract of the parallel engine (ISSUE 3): aggregate
counts, report row ordering and per-cell verdicts must not depend on
the worker count, and crash isolation must behave identically —
an injected cell crash quarantines exactly one cell in both modes,
while a hard worker death (parallel only) is absorbed as a
``WorkerCrash`` costing exactly one cell.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.difftest.report import format_table2, format_table3
from repro.difftest.runner import (
    CampaignConfig,
    bytecode_specs,
    run_campaign,
    run_sequence_campaign,
)
from repro.jit.machine.x86 import X86Backend
from repro.robustness.faults import FaultPlan, inject_faults
from tests.robustness.test_campaign_resilience import cell_summaries

CONFIG = CampaignConfig(max_bytecodes=2, max_natives=1,
                        backends=(X86Backend,))

TARGET_INSTRUCTION = bytecode_specs(CONFIG)[1].name
TARGET_COMPILER = "StackToRegisterCogit"


@pytest.fixture(scope="module")
def baseline():
    """The sequential run every parallel run is compared against."""
    return run_campaign(CONFIG)


class TestByteIdenticalReports:
    def test_tables_and_cells_match_sequential(self, baseline):
        parallel = run_campaign(CONFIG, jobs=4)
        assert format_table2(parallel) == format_table2(baseline)
        assert format_table3(parallel) == format_table3(baseline)
        assert cell_summaries(parallel) == cell_summaries(baseline)
        assert len(parallel.quarantine) == 0
        assert parallel.workers == 4

    def test_worker_count_does_not_matter(self, baseline):
        two = run_campaign(CONFIG, jobs=2)
        three = run_campaign(CONFIG, jobs=3)
        assert format_table2(two) == format_table2(three)
        assert format_table2(two) == format_table2(baseline)

    def test_exploration_cache_runs_once_per_instruction(self, baseline):
        parallel = run_campaign(CONFIG, jobs=2)
        # 1 native + 2 bytecodes explored (misses); the other two
        # bytecode compiler cells of each shard hit the shard cache.
        assert parallel.cache_misses == 3
        assert parallel.cache_hits == 4
        assert parallel.cache_hits == baseline.cache_hits
        assert parallel.cache_misses == baseline.cache_misses

    def test_sequence_campaign_parallel_matches_sequential(self):
        sequential = run_sequence_campaign(CONFIG)
        parallel = run_sequence_campaign(CONFIG, jobs=4)
        assert format_table2(parallel) == format_table2(sequential)
        assert cell_summaries(parallel) == cell_summaries(sequential)


class TestCrashIsolationParity:
    def test_cell_crash_quarantines_one_cell_in_both_modes(self, baseline):
        plan = FaultPlan(stage="compile", instruction=TARGET_INSTRUCTION,
                         compiler=TARGET_COMPILER)
        crashed_key = (TARGET_COMPILER, TARGET_INSTRUCTION)
        summaries = {}
        for jobs in (1, 4):
            with inject_faults(plan):
                reports = run_campaign(CONFIG, jobs=jobs)
            assert len(reports.quarantine) == 1
            entry = reports.quarantine.entries[0]
            assert entry.instruction == TARGET_INSTRUCTION
            assert entry.compiler == TARGET_COMPILER
            assert entry.error_class == "CompilerCrash"
            summaries[jobs] = cell_summaries(reports)

        # The quarantined cell and every healthy cell are identical
        # across modes, and healthy cells match the fault-free run.
        assert summaries[1] == summaries[4]
        healthy = dict(summaries[4])
        del healthy[crashed_key]
        expected = dict(cell_summaries(baseline))
        del expected[crashed_key]
        assert healthy == expected

    def test_worker_death_costs_exactly_one_cell(self, baseline):
        """A hard process death (os._exit, standing in for a segfault)
        is quarantined as a WorkerCrash; the rest of the dead worker's
        shard is re-run and matches the baseline."""
        plan = FaultPlan(stage="compile", kind="die",
                         instruction=TARGET_INSTRUCTION,
                         compiler=TARGET_COMPILER)
        with inject_faults(plan):
            reports = run_campaign(CONFIG, jobs=2)

        assert len(reports.quarantine) == 1
        entry = reports.quarantine.entries[0]
        assert entry.error_class == "WorkerCrash"
        assert entry.stage == "worker"
        assert entry.instruction == TARGET_INSTRUCTION
        assert entry.compiler == TARGET_COMPILER
        assert entry.attempts == 1

        faulted = cell_summaries(reports)
        crashed_key = (TARGET_COMPILER, TARGET_INSTRUCTION)
        assert faulted[crashed_key][3] == [
            ("x86", "crashed", "WorkerCrash")
        ]
        expected = dict(cell_summaries(baseline))
        del faulted[crashed_key]
        del expected[crashed_key]
        assert faulted == expected

    def test_fail_fast_propagates_from_worker(self):
        from repro.robustness.errors import CompilerCrash

        config = replace(CONFIG, fail_fast=True)
        plan = FaultPlan(stage="compile", instruction=TARGET_INSTRUCTION,
                         compiler=TARGET_COMPILER)
        with inject_faults(plan):
            with pytest.raises(CompilerCrash):
                run_campaign(config, jobs=2)


class TestCacheInterplay:
    """The persistent result store composes with work stealing: a warm
    parallel run stays byte-identical to the sequential baseline, and
    crash containment never poisons the store."""

    def test_warm_cache_identical_across_worker_counts(self, baseline,
                                                       tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_campaign(CONFIG, cache_dir=cache_dir)  # populate
        for jobs in (2, 3):
            warm = run_campaign(CONFIG, jobs=jobs, cache_dir=cache_dir)
            assert warm.cached_cells == 7
            assert format_table2(warm) == format_table2(baseline)
            assert format_table3(warm) == format_table3(baseline)
            assert cell_summaries(warm) == cell_summaries(baseline)

    def test_worker_death_does_not_poison_the_store(self, baseline,
                                                    tmp_path):
        """Workers append each completed cell before reporting it, so a
        dead worker leaves only finished records behind.  The crashed
        cell is never stored; the warm re-run hits the six healthy
        cells, re-runs the seventh live and converges on the fault-free
        baseline."""
        cache_dir = str(tmp_path / "cache")
        plan = FaultPlan(stage="compile", kind="die",
                         instruction=TARGET_INSTRUCTION,
                         compiler=TARGET_COMPILER)
        with inject_faults(plan):
            faulted = run_campaign(CONFIG, jobs=2, cache_dir=cache_dir)
        assert len(faulted.quarantine) == 1

        warm = run_campaign(CONFIG, cache_dir=cache_dir)
        assert warm.cache.hits == 6
        assert warm.cache.misses == 1
        assert len(warm.quarantine) == 0
        assert cell_summaries(warm) == cell_summaries(baseline)
