"""Property: one poisoned cell under -j N costs exactly that cell.

Hypothesis drives the fault kind (hang / hard death / OOM) and the
victim cell; in every sampled scenario the supervised pool must
preempt or absorb the fault within twice ``--cell-timeout``, quarantine
exactly the poisoned cell with the right classification, and leave
sibling cells, the journal, and the result store untouched.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import replace
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.difftest.runner import campaign_rows, run_campaign
from repro.incremental.store import ResultStore
from repro.robustness.checkpoint import CampaignJournal, cell_key
from repro.robustness.faults import FaultPlan, inject_faults

from tests.robustness.test_campaign_resilience import (
    CONFIG,
    cell_summaries,
)

CELL_TIMEOUT = 2.5
SUPERVISED = replace(CONFIG, deadline_seconds=120.0,
                     cell_timeout_seconds=CELL_TIMEOUT)

#: fault kind -> quarantine classification the pool must produce.
EXPECTED_ERROR_CLASS = {
    "hang": "BudgetExhausted",
    "die": "WorkerCrash",
    "oom": "WorkerResourceExceeded",
}

#: Every byte-code cell of the plan is a candidate victim (the native
#: row exercises the "simulate" stage through a different harness).
VICTIMS = sorted(
    (spec.name, row.compiler_class.name)
    for row in campaign_rows(CONFIG)
    for spec in row.specs
    if spec.kind == "bytecode"
)


@pytest.fixture(scope="module")
def baseline():
    return run_campaign(SUPERVISED, jobs=2)


@settings(max_examples=5, deadline=None)
@given(
    kind=st.sampled_from(sorted(EXPECTED_ERROR_CLASS)),
    victim=st.sampled_from(VICTIMS),
)
def test_single_poisoned_cell_is_contained(baseline, kind, victim):
    instruction, compiler = victim
    plan = FaultPlan(stage="simulate", kind=kind, instruction=instruction,
                     compiler=compiler)
    with tempfile.TemporaryDirectory() as scratch:
        journal = Path(scratch) / "run.jsonl"
        cache_dir = Path(scratch) / "cache"
        start = time.monotonic()
        with inject_faults(plan):
            reports = run_campaign(SUPERVISED, jobs=2,
                                   journal_path=journal,
                                   cache_dir=str(cache_dir))
        elapsed = time.monotonic() - start

        # Bounded: the fault costs at most 2 x --cell-timeout on top of
        # the healthy cells' own (seconds-scale) runtime — never the
        # 120 s campaign deadline.
        assert elapsed < 30.0
        assert not reports.budget_exhausted

        # Exactly the poisoned cell is quarantined, rightly classified.
        assert len(reports.quarantine) == 1
        entry = reports.quarantine.entries[0]
        assert (entry.instruction, entry.compiler) == victim
        assert entry.error_class == EXPECTED_ERROR_CLASS[kind]

        # Sibling cells match the fault-free baseline bit for bit.
        faulted = cell_summaries(reports)
        healthy = cell_summaries(baseline)
        key = (compiler, instruction)
        del faulted[key], healthy[key]
        assert faulted == healthy

        # The journal replays clean: no torn lines, and the poisoned
        # cell's record is its quarantine, not a half-result.
        loaded = CampaignJournal(journal)
        completed = loaded.load()
        assert loaded.replay.torn_lines == 0
        assert loaded.replay.skipped_lines == 0
        victim_key = cell_key("main", compiler, "bytecode", instruction)
        assert completed[victim_key]["quarantined"] is not None

        # The result store never serves the poisoned cell.
        store = ResultStore(str(cache_dir))
        assert store.stats.corrupt_lines == 0
        cached_keys = {cell.get("key") for cell in store.records().values()}
        assert victim_key not in cached_keys
