"""Checkpoint/resume of parallel runs, in every mode combination.

The journal is the only cross-run state, and workers append to it
concurrently; these tests assert a journal written by a parallel run
resumes under both engines (and vice versa) with aggregate counts
identical to an uninterrupted sequential baseline.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.difftest.report import format_table2
from repro.difftest.runner import CampaignConfig, run_campaign
from repro.jit.machine.x86 import X86Backend
from repro.robustness.checkpoint import CampaignJournal
from tests.robustness.test_campaign_resilience import cell_summaries

CONFIG = CampaignConfig(max_bytecodes=2, max_natives=1,
                        backends=(X86Backend,))

#: 1 native cell + 2 bytecodes x 3 compilers.
TOTAL_CELLS = 7


@pytest.fixture(scope="module")
def baseline():
    return run_campaign(CONFIG)


def test_parallel_run_journals_every_cell(tmp_path, baseline):
    journal = tmp_path / "full.jsonl"
    reports = run_campaign(CONFIG, jobs=3, journal_path=journal)
    assert format_table2(reports) == format_table2(baseline)
    assert len(CampaignJournal(journal).load()) == TOTAL_CELLS


@pytest.mark.parametrize("resume_jobs", [1, 3])
def test_truncated_parallel_journal_resumes(tmp_path, baseline, resume_jobs):
    """Drop the tail of a parallel journal (simulating a mid-run kill)
    and resume with either engine: identical aggregate counts."""
    journal = tmp_path / f"partial{resume_jobs}.jsonl"
    run_campaign(CONFIG, jobs=3, journal_path=journal)
    lines = journal.read_text().splitlines()
    journal.write_text("\n".join(lines[:3]) + "\n")

    resumed = run_campaign(CONFIG, jobs=resume_jobs, journal_path=journal,
                           resume=True)
    assert resumed.resumed_cells == 3
    assert format_table2(resumed) == format_table2(baseline)
    assert cell_summaries(resumed) == cell_summaries(baseline)
    # The journal is whole again after the resumed run.
    assert len(CampaignJournal(journal).load()) == TOTAL_CELLS


def test_sequential_journal_resumes_in_parallel(tmp_path, baseline):
    journal = tmp_path / "seq.jsonl"
    run_campaign(CONFIG, journal_path=journal)
    resumed = run_campaign(CONFIG, jobs=4, journal_path=journal, resume=True)
    assert resumed.resumed_cells == TOTAL_CELLS
    assert format_table2(resumed) == format_table2(baseline)


def test_expired_deadline_stops_parallel_run_cleanly(tmp_path, baseline):
    journal = tmp_path / "deadline.jsonl"
    exhausted = run_campaign(replace(CONFIG, deadline_seconds=0.0),
                             jobs=2, journal_path=journal)
    assert exhausted.budget_exhausted
    assert sum(row.tested_instructions for row in exhausted) == 0

    resumed = run_campaign(CONFIG, jobs=2, journal_path=journal, resume=True)
    assert not resumed.budget_exhausted
    assert format_table2(resumed) == format_table2(baseline)


def test_fresh_parallel_run_discards_stale_journal(tmp_path):
    journal = tmp_path / "stale.jsonl"
    journal.write_text('{"garbage": true}\n')
    run_campaign(CONFIG, jobs=2, journal_path=journal)
    loaded = CampaignJournal(journal).load()
    assert len(loaded) == TOTAL_CELLS
    assert "garbage" not in journal.read_text()
