"""Perf layer: recorder semantics, report rendering, campaign parity.

The recorder must be free when off (every hook a no-op), additive when
on, and — the contract that matters for the campaign engine — purely
observational: enabling ``--profile`` must not change a single report
byte, sequentially or parallel.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import perf
from repro.perf.report import format_profile, solver_memo_hit_rate


@pytest.fixture(autouse=True)
def _profiling_off():
    """Each test starts and ends with profiling disabled."""
    perf.disable()
    yield
    perf.disable()


class TestRecorder:
    def test_off_by_default(self):
        assert not perf.enabled()
        assert perf.snapshot() is None
        # Hooks are silent no-ops when off.
        perf.incr("x")
        perf.observe("stage", 1.0)
        perf.gauge("g", 3)
        with perf.timer("stage"):
            pass
        assert perf.snapshot() is None

    def test_counters_timers_gauges(self):
        perf.enable()
        perf.incr("solver.solve_calls")
        perf.incr("solver.solve_calls", 2)
        perf.observe("solve", 0.25)
        perf.observe("solve", 0.75)
        perf.gauge("solver.memo_size", 17)
        snap = perf.snapshot()
        assert snap["counters"]["solver.solve_calls"] == 3
        assert snap["timers"]["solve"] == pytest.approx(1.0)
        assert snap["timer_calls"]["solve"] == 2
        assert snap["gauges"]["solver.memo_size"] == 17

    def test_timer_context_manager(self):
        perf.enable()
        with perf.timer("stage"):
            pass
        snap = perf.snapshot()
        assert snap["timer_calls"]["stage"] == 1
        assert snap["timers"]["stage"] >= 0.0

    def test_enable_installs_fresh_recorder(self):
        perf.enable()
        perf.incr("x")
        perf.enable()
        assert perf.snapshot()["counters"] == {}

    def test_merge_snapshots(self):
        first = {
            "counters": {"a": 1, "b": 2},
            "timers": {"solve": 1.0},
            "timer_calls": {"solve": 4},
            "gauges": {"size": 10},
        }
        second = {
            "counters": {"b": 3},
            "timers": {"solve": 0.5, "test": 2.0},
            "timer_calls": {"solve": 1, "test": 8},
            "gauges": {"size": 7, "other": 1},
        }
        merged = perf.merge_snapshots([first, second, None])
        assert merged["counters"] == {"a": 1, "b": 5}
        assert merged["timers"]["solve"] == pytest.approx(1.5)
        assert merged["timer_calls"] == {"solve": 5, "test": 8}
        # Gauges are point-in-time sizes: max, not sum.
        assert merged["gauges"] == {"size": 10, "other": 1}


class TestReport:
    def test_format_profile_sections(self):
        snap = {
            "counters": {
                "solver.memo_hits": 3,
                "solver.memo_misses": 1,
                "explore.cache_hits": 0,
                "explore.cache_misses": 2,
            },
            "timers": {"solve": 1.234},
            "timer_calls": {"solve": 7},
            "gauges": {"terms.intern_table_size": 99},
        }
        text = format_profile(snap)
        assert text.startswith("Profile (--profile)")
        assert "solver memo" in text
        assert "hit-rate=75.0%" in text
        assert "hit-rate=0.0%" in text          # exploration cache
        assert "hit-rate=n/a" in text           # warm-start tier never ran
        assert "over 7 call(s)" in text
        assert "terms.intern_table_size" in text

    def test_solver_memo_hit_rate(self):
        assert solver_memo_hit_rate({"counters": {}}) is None
        assert solver_memo_hit_rate(
            {"counters": {"solver.memo_hits": 1, "solver.memo_misses": 3}}
        ) == pytest.approx(0.25)
        assert solver_memo_hit_rate(
            {"counters": {"solver.memo_misses": 5}}
        ) == 0.0


class TestCampaignParity:
    """--profile is observational: zero report bytes change."""

    @pytest.fixture(scope="class")
    def config(self):
        from repro.difftest.runner import CampaignConfig
        from repro.jit.machine.x86 import X86Backend

        return CampaignConfig(max_bytecodes=2, max_natives=1,
                              backends=(X86Backend,))

    def test_sequential_report_is_byte_identical(self, config):
        from repro.difftest.report import format_table2, format_table3
        from repro.difftest.runner import run_campaign

        plain = run_campaign(config)
        profiled = run_campaign(replace(config, profile=True))
        assert format_table2(profiled) == format_table2(plain)
        assert format_table3(profiled) == format_table3(plain)
        assert plain.perf is None
        assert profiled.perf is not None
        assert profiled.perf["counters"]["solver.solve_calls"] > 0
        # Profiling leaves no recorder behind.
        assert not perf.enabled()

    def test_parallel_profile_merges_worker_snapshots(self, config):
        from repro.difftest.report import format_table2
        from repro.difftest.runner import run_campaign

        plain = run_campaign(config)
        profiled = run_campaign(replace(config, profile=True), jobs=2)
        assert format_table2(profiled) == format_table2(plain)
        assert profiled.perf is not None
        counters = profiled.perf["counters"]
        assert counters["solver.solve_calls"] > 0
        # Worker-side exploration cache folding matches the aggregate.
        assert counters["explore.cache_hits"] == profiled.cache_hits
        assert counters["explore.cache_misses"] == profiled.cache_misses
