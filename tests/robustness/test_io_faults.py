"""IO-fault graceful degradation at the durable-write sinks.

``io_error``/``enospc`` faults armed at the journal, triage and store
write sites must cost at most the failed record: a transient error
loses one line (re-run on resume), a persistent one disables the sink
with a single stderr warning, and the campaign's report is identical
to a sink-less run either way — never worse than running in-memory.
"""

from __future__ import annotations

import errno

import pytest

from repro.difftest.report import table2
from repro.difftest.runner import run_campaign
from repro.incremental.store import ResultStore
from repro.robustness.checkpoint import MAX_WRITE_FAILURES, CampaignJournal
from repro.robustness.faults import FaultPlan, inject_faults, maybe_inject

from tests.robustness.test_campaign_resilience import CONFIG
from tests.robustness.test_checkpoint import record_for


@pytest.fixture(scope="module")
def baseline():
    return run_campaign(CONFIG)


class TestFaultKinds:
    def test_io_error_carries_eio(self):
        plan = FaultPlan(stage="journal", kind="io_error")
        with inject_faults(plan):
            with pytest.raises(OSError) as excinfo:
                maybe_inject("journal")
        assert excinfo.value.errno == errno.EIO

    def test_enospc_carries_enospc(self):
        plan = FaultPlan(stage="store", kind="enospc")
        with inject_faults(plan):
            with pytest.raises(OSError) as excinfo:
                maybe_inject("store")
        assert excinfo.value.errno == errno.ENOSPC

    def test_oom_raises_memory_error(self):
        plan = FaultPlan(stage="simulate", kind="oom")
        with inject_faults(plan):
            with pytest.raises(MemoryError):
                maybe_inject("simulate")


class TestJournalDegradation:
    def test_persistent_failure_disables_after_threshold(
        self, tmp_path, capsys
    ):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        plan = FaultPlan(stage="journal", kind="io_error")
        with inject_faults(plan):
            for index in range(MAX_WRITE_FAILURES + 2):
                journal.append(record_for(f"main::c::bytecode::i{index}"))
        assert journal.degraded
        assert not journal.path.exists()
        # Exactly one warning, at the moment of degradation.
        warnings = [line for line in capsys.readouterr().err.splitlines()
                    if "disabled after" in line]
        assert len(warnings) == 1

    def test_transient_failure_loses_only_its_record(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        plan = FaultPlan(stage="journal", kind="io_error",
                         times=MAX_WRITE_FAILURES - 1)
        with inject_faults(plan):
            for index in range(5):
                journal.append(record_for(f"main::c::bytecode::i{index}"))
        assert not journal.degraded
        loaded = CampaignJournal(journal.path).load()
        # The first MAX_WRITE_FAILURES - 1 appends failed; the rest,
        # including everything after the counter reset, landed.
        assert len(loaded) == 5 - (MAX_WRITE_FAILURES - 1)

    def test_campaign_report_is_unaffected(self, baseline, tmp_path,
                                           capsys):
        """A journal on broken storage never bends the results."""
        journal = tmp_path / "dead.jsonl"
        plan = FaultPlan(stage="journal", kind="io_error")
        with inject_faults(plan):
            reports = run_campaign(CONFIG, journal_path=journal)
        assert table2(reports) == table2(baseline)
        assert len(reports.quarantine) == 0
        assert not journal.exists()
        warnings = [line for line in capsys.readouterr().err.splitlines()
                    if "disabled after" in line]
        assert len(warnings) == 1

    def test_parallel_campaign_survives_journal_io_faults(
        self, baseline, tmp_path
    ):
        """Workers append the journal themselves; every worker degrades
        its own handle and the merged report still matches."""
        journal = tmp_path / "dead.jsonl"
        plan = FaultPlan(stage="journal", kind="io_error")
        with inject_faults(plan):
            reports = run_campaign(CONFIG, jobs=2, journal_path=journal)
        assert table2(reports) == table2(baseline)
        assert len(reports.quarantine) == 0


class TestStoreDegradation:
    def test_persistent_enospc_disables_writes(self, tmp_path, capsys):
        store = ResultStore(str(tmp_path / "cache"))
        plan = FaultPlan(stage="store", kind="enospc")
        with inject_faults(plan):
            for index in range(MAX_WRITE_FAILURES + 2):
                store.put(f"fp{index}", record_for(f"main::c::bytecode::{index}"))
        assert store.stats.stored == 0
        assert store.stats.warning is not None
        assert "disk" in store.stats.warning or "failures" in store.stats.warning
        assert not store.path.exists()
        warnings = [line for line in capsys.readouterr().err.splitlines()
                    if "disabled after" in line]
        assert len(warnings) == 1
        # Lookups still work: the store degrades, the run stays correct.
        assert store.get("fp0") is None

    def test_transient_store_fault_skips_one_record(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        plan = FaultPlan(stage="store", kind="io_error", times=1)
        with inject_faults(plan):
            store.put("fp0", record_for("main::c::bytecode::a"))
            store.put("fp1", record_for("main::c::bytecode::b"))
        assert store.stats.stored == 1
        assert store.stats.warning is None
        fresh = ResultStore(str(tmp_path / "cache"))
        assert set(fresh.records()) == {"fp1"}

    def test_campaign_with_dead_store_matches_baseline(
        self, baseline, tmp_path, capsys
    ):
        plan = FaultPlan(stage="store", kind="enospc")
        with inject_faults(plan):
            reports = run_campaign(CONFIG,
                                   cache_dir=str(tmp_path / "cache"))
        assert table2(reports) == table2(baseline)
        assert reports.cache is not None
        assert reports.cache.stored == 0
        assert reports.cache.warning is not None
        capsys.readouterr()
