"""The fault-injection hooks themselves."""

from __future__ import annotations

import pytest

from repro.errors import InvalidMemoryAccess
from repro.robustness.budgets import Deadline
from repro.robustness.errors import BudgetExhausted
from repro.robustness.faults import FaultPlan, inject_faults, maybe_inject


class TestMatching:
    def test_disarmed_is_a_no_op(self):
        maybe_inject("compile", "primitiveAdd", "native")  # must not raise

    def test_stage_and_filters_must_match(self):
        plan = FaultPlan(stage="compile", instruction="primitiveAdd",
                         compiler="native")
        with inject_faults(plan):
            maybe_inject("simulate", "primitiveAdd", "native")
            maybe_inject("compile", "primitiveSub", "native")
            maybe_inject("compile", "primitiveAdd", "simple")
            with pytest.raises(RuntimeError, match="injected at compile"):
                maybe_inject("compile", "primitiveAdd", "native")

    def test_none_filters_match_anything(self):
        with inject_faults(FaultPlan(stage="explore")):
            with pytest.raises(RuntimeError):
                maybe_inject("explore", "whatever")

    def test_plans_disarm_on_context_exit(self):
        with inject_faults(FaultPlan(stage="explore")):
            pass
        maybe_inject("explore", "whatever")  # must not raise


class TestKinds:
    def test_times_limits_firing(self):
        with inject_faults(FaultPlan(stage="compile", times=2)):
            for _ in range(2):
                with pytest.raises(RuntimeError):
                    maybe_inject("compile")
            maybe_inject("compile")  # exhausted, no longer fires

    def test_memory_fault_kind(self):
        with inject_faults(FaultPlan(stage="simulate", kind="memory")):
            with pytest.raises(InvalidMemoryAccess):
                maybe_inject("simulate")

    def test_interrupt_kind(self):
        with inject_faults(FaultPlan(stage="compile", kind="interrupt")):
            with pytest.raises(KeyboardInterrupt):
                maybe_inject("compile")

    def test_hang_burns_the_deadline_then_exhausts(self):
        deadline = Deadline(0.02)
        with inject_faults(FaultPlan(stage="simulate", kind="hang")):
            with pytest.raises(BudgetExhausted) as info:
                maybe_inject("simulate", deadline=deadline)
        assert info.value.scope == "cell"
        assert deadline.expired

    def test_hang_without_deadline_fails_fast(self):
        with inject_faults(FaultPlan(stage="simulate", kind="hang")):
            with pytest.raises(BudgetExhausted) as info:
                maybe_inject("simulate")
        assert "no deadline" in str(info.value)
