"""Deadlines and fuel limits across the pipeline layers."""

from __future__ import annotations

import pytest

from repro.jit.machine import (
    CodeCache,
    MachineSimulator,
    OutcomeKind,
    TrampolineTable,
    X86Backend,
)
from repro.jit.machine.isa import label, mi
from repro.jit.machine.simulator import END_SENTINEL
from repro.memory.heap import Heap
from repro.robustness.budgets import Deadline
from repro.robustness.errors import BudgetExhausted


class TestDeadline:
    def test_unbounded_never_expires(self):
        deadline = Deadline.never()
        assert deadline.remaining() is None
        assert not deadline.expired
        deadline.check()  # must not raise

    def test_expired_deadline_raises_with_context(self):
        deadline = Deadline(0.0)
        assert deadline.expired
        assert deadline.remaining() == 0.0
        with pytest.raises(BudgetExhausted) as info:
            deadline.check("testing primitiveAdd")
        assert "testing primitiveAdd" in str(info.value)
        assert info.value.scope == "campaign"

    def test_cell_scope_is_threaded(self):
        with pytest.raises(BudgetExhausted) as info:
            Deadline(0.0).check("hang", scope="cell")
        assert info.value.scope == "cell"

    def test_future_deadline_not_expired(self):
        deadline = Deadline(60.0)
        assert not deadline.expired
        assert deadline.remaining() > 59.0


def _spin_simulator(deadline=None, max_steps=5000):
    heap = Heap(size_words=64)
    cache = CodeCache()
    backend = X86Backend()
    code = cache.install([label("spin"), mi("JMP", label="spin")], backend)
    sim = MachineSimulator(heap, cache, TrampolineTable())
    sim.reset()
    sim._push(END_SENTINEL)
    return sim.run(code.base_address, max_steps=max_steps, deadline=deadline)


class TestSimulatorBudgets:
    def test_step_limit_is_diverged(self):
        """Fuel exhaustion is the paper's divergence verdict."""
        outcome = _spin_simulator(max_steps=500)
        assert outcome.kind == OutcomeKind.DIVERGED
        assert "diverged after" in outcome.describe()

    def test_deadline_is_budget_exhausted_not_diverged(self):
        """A wall-clock stop is a budget event, not a behavioural
        verdict about the code under test."""
        outcome = _spin_simulator(deadline=Deadline(0.0), max_steps=10**9)
        assert outcome.kind == OutcomeKind.BUDGET_EXHAUSTED
        assert "budget exhausted after" in outcome.describe()

    def test_unbounded_deadline_does_not_interfere(self):
        outcome = _spin_simulator(deadline=Deadline.never(), max_steps=500)
        assert outcome.kind == OutcomeKind.DIVERGED


class TestExplorerBudgets:
    def test_expired_deadline_stops_exploration_cleanly(self):
        from repro.bytecode.opcodes import bytecode_named
        from repro.concolic.explorer import (
            BytecodeInstructionSpec,
            ConcolicExplorer,
        )

        spec = BytecodeInstructionSpec(bytecode_named("bytecodePrimAdd"))
        explorer = ConcolicExplorer(spec, deadline=Deadline(0.0))
        result = explorer.explore()
        assert result.budget_exhausted
        assert result.path_count == 0

    def test_no_deadline_explores_fully(self):
        from repro.bytecode.opcodes import bytecode_named
        from repro.concolic.explorer import (
            BytecodeInstructionSpec,
            ConcolicExplorer,
        )

        spec = BytecodeInstructionSpec(bytecode_named("pushTrue"))
        result = ConcolicExplorer(spec).explore()
        assert not result.budget_exhausted
        assert result.path_count > 0
