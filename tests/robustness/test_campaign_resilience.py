"""Acceptance tests: the campaign survives injected faults.

The resilience engine is validated end to end with fault injection
(repro.robustness.faults): crashes at pipeline stages must quarantine
exactly the affected cell, every other cell must be identical to a
fault-free run, and an interrupted campaign must resume from its
journal with identical aggregate counts.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.difftest.report import table2
from repro.difftest.runner import (
    CampaignConfig,
    bytecode_specs,
    run_campaign,
)
from repro.jit.machine.x86 import X86Backend
from repro.robustness.faults import FaultPlan, inject_faults

CONFIG = CampaignConfig(max_bytecodes=2, max_natives=1,
                        backends=(X86Backend,))

#: A deterministic mid-campaign cell to target with faults.
TARGET_INSTRUCTION = bytecode_specs(CONFIG)[1].name
TARGET_COMPILER = "StackToRegisterCogit"


def cell_summaries(reports):
    """(compiler row, instruction) -> comparable per-cell verdicts."""
    cells = {}
    for report in reports:
        for result in report.results:
            cells[(report.compiler, result.instruction)] = (
                result.exploration.path_count,
                result.curated_path_count,
                result.differing_paths,
                [(c.backend, c.status.value, c.difference_kind)
                 for c in result.comparisons],
            )
    return cells


@pytest.fixture(scope="module")
def baseline():
    """The fault-free run every scenario is compared against."""
    return run_campaign(CONFIG)


class TestCrashIsolation:
    def test_compile_crash_quarantines_cell_and_campaign_continues(
        self, baseline
    ):
        plan = FaultPlan(stage="compile", instruction=TARGET_INSTRUCTION,
                         compiler=TARGET_COMPILER)
        with inject_faults(plan):
            reports = run_campaign(CONFIG)

        assert len(reports.quarantine) == 1
        entry = reports.quarantine.entries[0]
        assert entry.instruction == TARGET_INSTRUCTION
        assert entry.compiler == TARGET_COMPILER
        assert entry.error_class == "CompilerCrash"
        assert entry.attempts == 2

        # The crashed cell is visible as a CRASHED comparison, not a
        # difference.
        crashed_key = (TARGET_COMPILER, TARGET_INSTRUCTION)
        faulted_cells = cell_summaries(reports)
        comparisons = faulted_cells[crashed_key][3]
        assert comparisons == [("x86", "crashed", "CompilerCrash")]
        assert faulted_cells[crashed_key][2] == 0  # no differing paths

        # Every *other* cell is identical to the fault-free run.
        baseline_cells = cell_summaries(baseline)
        del faulted_cells[crashed_key]
        del baseline_cells[crashed_key]
        assert faulted_cells == baseline_cells

    def test_transient_crash_is_retried_not_quarantined(self, baseline):
        """One crash, then success: the reduced-budget retry absorbs it."""
        plan = FaultPlan(stage="compile", instruction=TARGET_INSTRUCTION,
                         compiler=TARGET_COMPILER, times=1)
        with inject_faults(plan):
            reports = run_campaign(CONFIG)
        assert len(reports.quarantine) == 0
        assert table2(reports) == table2(baseline)

    def test_retried_cell_surfaces_in_the_report(self, baseline, tmp_path):
        """A retried-but-recovered cell is not invisible: the retry
        section names it, the count survives the journal, and the
        fault-free baseline prints no section at all."""
        from repro.difftest.report import format_retries

        journal = tmp_path / "run.jsonl"
        plan = FaultPlan(stage="compile", instruction=TARGET_INSTRUCTION,
                         compiler=TARGET_COMPILER, times=1)
        with inject_faults(plan):
            reports = run_campaign(CONFIG, journal_path=journal)

        text = format_retries(reports)
        assert "Retried cells: 1 (1 reduced-budget retries)" in text
        assert f"{TARGET_INSTRUCTION} [{TARGET_COMPILER}] retries=1" in text
        assert format_retries(baseline) == ""

        resumed = run_campaign(CONFIG, journal_path=journal, resume=True)
        assert format_retries(resumed) == text

    def test_hang_without_deadline_is_cell_budget_quarantine(self):
        """A simulated hang is bounded by the budget layer and lands in
        quarantine as a BudgetExhausted cell, not a stuck campaign."""
        plan = FaultPlan(stage="simulate", kind="hang",
                         instruction=TARGET_INSTRUCTION,
                         compiler=TARGET_COMPILER)
        with inject_faults(plan):
            reports = run_campaign(CONFIG)
        assert len(reports.quarantine) == 1
        entry = reports.quarantine.entries[0]
        assert entry.error_class == "BudgetExhausted"
        assert entry.stage == "budget"
        assert not reports.budget_exhausted  # cell-scoped, campaign ran on

    def test_solver_crash_keeps_innermost_classification(self):
        """A solver crash surfacing through the explorer guard is still
        reported as a SolverCrash at the solver stage."""
        plan = FaultPlan(stage="solve", kind="memory", times=2)
        with inject_faults(plan):
            reports = run_campaign(CONFIG)
        assert len(reports.quarantine) == 1
        entry = reports.quarantine.entries[0]
        assert entry.error_class == "SolverCrash"
        assert entry.stage == "solver"

    def test_fail_fast_reraises_instead_of_quarantining(self):
        from repro.robustness.errors import CompilerCrash

        config = replace(CONFIG, fail_fast=True)
        plan = FaultPlan(stage="compile", instruction=TARGET_INSTRUCTION,
                         compiler=TARGET_COMPILER)
        with inject_faults(plan):
            with pytest.raises(CompilerCrash):
                run_campaign(config)


class TestCheckpointResume:
    def test_interrupt_then_resume_matches_uninterrupted(
        self, baseline, tmp_path
    ):
        """^C mid-campaign, then --resume: identical aggregate counts."""
        journal = tmp_path / "campaign.jsonl"
        plan = FaultPlan(stage="compile", kind="interrupt",
                         instruction=TARGET_INSTRUCTION,
                         compiler=TARGET_COMPILER, times=1)
        with inject_faults(plan):
            with pytest.raises(KeyboardInterrupt):
                run_campaign(CONFIG, journal_path=journal)

        completed_before = len(journal.read_text().splitlines())
        assert completed_before > 0  # cells before the ^C were journaled

        resumed = run_campaign(CONFIG, journal_path=journal, resume=True)
        assert resumed.resumed_cells == completed_before
        assert table2(resumed) == table2(baseline)
        assert cell_summaries(resumed) == cell_summaries(baseline)
        assert len(resumed.quarantine) == 0

    def test_expired_deadline_stops_cleanly_and_resumes(
        self, baseline, tmp_path
    ):
        journal = tmp_path / "deadline.jsonl"
        exhausted = run_campaign(replace(CONFIG, deadline_seconds=0.0),
                                 journal_path=journal)
        assert exhausted.budget_exhausted
        assert sum(row.tested_instructions for row in exhausted) == 0

        resumed = run_campaign(CONFIG, journal_path=journal, resume=True)
        assert not resumed.budget_exhausted
        assert table2(resumed) == table2(baseline)

    def test_quarantined_cells_are_journaled_and_replayed(self, tmp_path):
        """Resuming must not silently retry a quarantined cell: the
        quarantine entry itself round-trips through the journal."""
        journal = tmp_path / "quarantine.jsonl"
        plan = FaultPlan(stage="compile", instruction=TARGET_INSTRUCTION,
                         compiler=TARGET_COMPILER)
        with inject_faults(plan):
            first = run_campaign(CONFIG, journal_path=journal)
        assert len(first.quarantine) == 1

        # No fault armed now: a re-run would succeed, but the resumed
        # campaign replays the journaled crash instead of re-running.
        resumed = run_campaign(CONFIG, journal_path=journal, resume=True)
        assert len(resumed.quarantine) == 1
        assert resumed.quarantine.entries[0].instruction == TARGET_INSTRUCTION
        assert cell_summaries(resumed) == cell_summaries(first)
