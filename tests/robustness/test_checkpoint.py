"""The JSONL campaign journal: round-trip, torn writes, versioning,
and safety under concurrent writers."""

from __future__ import annotations

import json
import multiprocessing

from repro.robustness.checkpoint import (
    JOURNAL_VERSION,
    CampaignJournal,
    cell_key,
    decode_record,
    encode_record,
)


def record_for(key, **extra):
    base = {
        "key": key,
        "instruction": key.rsplit("::", 1)[-1],
        "kind": "bytecode",
        "compiler": "c",
        "interpreter_paths": 3,
        "curated_paths": 3,
        "differing_paths": 1,
        "test_seconds": 0.01,
        "comparisons": [],
        "quarantined": None,
    }
    base.update(extra)
    return base


class TestCellKey:
    def test_is_stable_and_unique_per_cell(self):
        key = cell_key("main", "StackToRegisterCogit", "bytecode", "pushTrue")
        assert key == "main::StackToRegisterCogit::bytecode::pushTrue"
        assert key != cell_key("sequences", "StackToRegisterCogit",
                               "bytecode", "pushTrue")


class TestJournalRoundTrip:
    def test_append_then_load(self, tmp_path):
        journal = CampaignJournal(tmp_path / "campaign.jsonl")
        first = record_for("main::c::bytecode::a")
        second = record_for("main::c::bytecode::b", differing_paths=0)
        journal.append(first)
        journal.append(second)

        loaded = CampaignJournal(journal.path).load()
        assert set(loaded) == {first["key"], second["key"]}
        assert loaded[first["key"]]["differing_paths"] == 1
        assert loaded[second["key"]]["version"] == JOURNAL_VERSION

    def test_missing_file_loads_empty(self, tmp_path):
        assert CampaignJournal(tmp_path / "absent.jsonl").load() == {}

    def test_parent_directories_are_created(self, tmp_path):
        journal = CampaignJournal(tmp_path / "deep" / "nested" / "j.jsonl")
        journal.append(record_for("main::c::bytecode::a"))
        assert journal.path.exists()


class TestJournalDurability:
    def test_torn_trailing_line_is_dropped(self, tmp_path):
        """A partial write from a hard kill loses only the in-flight
        cell, never the completed ones before it."""
        journal = CampaignJournal(tmp_path / "torn.jsonl")
        journal.append(record_for("main::c::bytecode::a"))
        with journal.path.open("a") as handle:
            handle.write('{"key": "main::c::bytecode::b", "trunc')

        loaded = journal.load()
        assert set(loaded) == {"main::c::bytecode::a"}

    def test_version_mismatch_is_skipped(self, tmp_path):
        journal = CampaignJournal(tmp_path / "versioned.jsonl")
        stale = dict(record_for("main::c::bytecode::old"), version=0)
        with journal.path.open("w") as handle:
            handle.write(json.dumps(stale) + "\n")
        journal.append(record_for("main::c::bytecode::new"))

        assert set(journal.load()) == {"main::c::bytecode::new"}

    def test_blank_lines_are_tolerated(self, tmp_path):
        journal = CampaignJournal(tmp_path / "blanks.jsonl")
        journal.append(record_for("main::c::bytecode::a"))
        with journal.path.open("a") as handle:
            handle.write("\n\n")
        journal.append(record_for("main::c::bytecode::b"))

        assert len(journal.load()) == 2

    def test_corrupt_middle_line_loses_only_that_record(self, tmp_path):
        """With concurrent writers a bad line is not necessarily the
        last one: later well-formed records must still replay."""
        journal = CampaignJournal(tmp_path / "middle.jsonl")
        journal.append(record_for("main::c::bytecode::a"))
        journal.append(record_for("main::c::bytecode::b"))
        journal.append(record_for("main::c::bytecode::c"))
        lines = journal.path.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # tear record b
        journal.path.write_text("\n".join(lines) + "\n")

        assert set(journal.load()) == {
            "main::c::bytecode::a", "main::c::bytecode::c",
        }

    def test_bit_flip_fails_the_checksum(self, tmp_path):
        journal = CampaignJournal(tmp_path / "flip.jsonl")
        journal.append(record_for("main::c::bytecode::a", differing_paths=1))
        flipped = journal.path.read_text().replace(
            '"differing_paths": 1', '"differing_paths": 7'
        )
        journal.path.write_text(flipped)
        assert journal.load() == {}

    def test_duplicate_keys_resolve_last_wins(self, tmp_path):
        journal = CampaignJournal(tmp_path / "dupes.jsonl")
        journal.append(record_for("main::c::bytecode::a", differing_paths=0))
        journal.append(record_for("main::c::bytecode::a", differing_paths=2))
        loaded = journal.load()
        assert loaded["main::c::bytecode::a"]["differing_paths"] == 2


class TestTornTailHealing:
    def test_append_after_torn_tail_starts_a_fresh_line(self, tmp_path):
        """A SIGKILL mid-write leaves an unterminated tail; the next
        process's first append must not glue its record onto it."""
        journal = CampaignJournal(tmp_path / "torn.jsonl")
        journal.append(record_for("main::c::bytecode::a"))
        with journal.path.open("a") as handle:
            handle.write('{"key": "main::c::bytecode::b", "trunc')

        healer = CampaignJournal(journal.path)  # a fresh process's view
        healer.append(record_for("main::c::bytecode::c"))

        loaded = CampaignJournal(journal.path).load()
        assert set(loaded) == {
            "main::c::bytecode::a", "main::c::bytecode::c",
        }
        assert loaded["main::c::bytecode::c"]["differing_paths"] == 1

    def test_clean_tail_gets_no_spurious_blank_line(self, tmp_path):
        journal = CampaignJournal(tmp_path / "clean.jsonl")
        journal.append(record_for("main::c::bytecode::a"))
        resumed = CampaignJournal(journal.path)
        resumed.append(record_for("main::c::bytecode::b"))
        text = journal.path.read_text()
        assert "\n\n" not in text
        assert len(CampaignJournal(journal.path).load()) == 2


class TestReplayStats:
    def test_clean_journal_counts_only_records(self, tmp_path):
        journal = CampaignJournal(tmp_path / "clean.jsonl")
        journal.append(record_for("main::c::bytecode::a"))
        journal.append(record_for("main::c::bytecode::b"))
        journal.load()
        assert journal.replay.records == 2
        assert journal.replay.torn_lines == 0
        assert journal.replay.skipped_lines == 0

    def test_torn_and_foreign_lines_are_counted_apart(self, tmp_path):
        journal = CampaignJournal(tmp_path / "mixed.jsonl")
        journal.append(record_for("main::c::bytecode::a"))
        foreign = encode_record(record_for("main::c::bytecode::old"),
                                version=0)
        with journal.path.open("ab") as handle:
            handle.write(foreign)                       # foreign: skipped
            handle.write(b'{"key": "main::c::byteco')   # torn

        journal.load()
        assert journal.replay.records == 1
        assert journal.replay.torn_lines == 1
        assert journal.replay.skipped_lines == 1

    def test_replay_resets_between_loads(self, tmp_path):
        journal = CampaignJournal(tmp_path / "reload.jsonl")
        journal.append(record_for("main::c::bytecode::a"))
        with journal.path.open("a") as handle:
            handle.write("torn")
        journal.load()
        journal.load()
        assert journal.replay.torn_lines == 1


class TestRecordCodec:
    def test_round_trip(self):
        record = record_for("main::c::bytecode::a")
        line = encode_record(record).decode("utf-8").strip()
        decoded = decode_record(line)
        assert decoded["key"] == record["key"]
        assert decoded["version"] == JOURNAL_VERSION

    def test_rejects_uncksummed_legacy_lines(self):
        legacy = dict(record_for("k"), version=JOURNAL_VERSION)
        assert decode_record(json.dumps(legacy)) is None


def _append_batch(path, writer_id, count):
    journal = CampaignJournal(path)
    for index in range(count):
        journal.append(record_for(f"main::w{writer_id}::bytecode::i{index}",
                                  differing_paths=writer_id))


class TestConcurrentWriters:
    def test_parallel_appends_never_tear(self, tmp_path):
        """Four processes hammering one journal: every record must
        arrive intact (single write() per line on O_APPEND)."""
        path = tmp_path / "concurrent.jsonl"
        context = multiprocessing.get_context("fork")
        writers = [
            context.Process(target=_append_batch, args=(path, wid, 50))
            for wid in range(4)
        ]
        for process in writers:
            process.start()
        for process in writers:
            process.join()
            assert process.exitcode == 0

        loaded = CampaignJournal(path).load()
        assert len(loaded) == 200
        for wid in range(4):
            for index in range(50):
                record = loaded[f"main::w{wid}::bytecode::i{index}"]
                assert record["differing_paths"] == wid
