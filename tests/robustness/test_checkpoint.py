"""The JSONL campaign journal: round-trip, torn writes, versioning."""

from __future__ import annotations

import json

from repro.robustness.checkpoint import (
    JOURNAL_VERSION,
    CampaignJournal,
    cell_key,
)


def record_for(key, **extra):
    base = {
        "key": key,
        "instruction": key.rsplit("::", 1)[-1],
        "kind": "bytecode",
        "compiler": "c",
        "interpreter_paths": 3,
        "curated_paths": 3,
        "differing_paths": 1,
        "test_seconds": 0.01,
        "comparisons": [],
        "quarantined": None,
    }
    base.update(extra)
    return base


class TestCellKey:
    def test_is_stable_and_unique_per_cell(self):
        key = cell_key("main", "StackToRegisterCogit", "bytecode", "pushTrue")
        assert key == "main::StackToRegisterCogit::bytecode::pushTrue"
        assert key != cell_key("sequences", "StackToRegisterCogit",
                               "bytecode", "pushTrue")


class TestJournalRoundTrip:
    def test_append_then_load(self, tmp_path):
        journal = CampaignJournal(tmp_path / "campaign.jsonl")
        first = record_for("main::c::bytecode::a")
        second = record_for("main::c::bytecode::b", differing_paths=0)
        journal.append(first)
        journal.append(second)

        loaded = CampaignJournal(journal.path).load()
        assert set(loaded) == {first["key"], second["key"]}
        assert loaded[first["key"]]["differing_paths"] == 1
        assert loaded[second["key"]]["version"] == JOURNAL_VERSION

    def test_missing_file_loads_empty(self, tmp_path):
        assert CampaignJournal(tmp_path / "absent.jsonl").load() == {}

    def test_parent_directories_are_created(self, tmp_path):
        journal = CampaignJournal(tmp_path / "deep" / "nested" / "j.jsonl")
        journal.append(record_for("main::c::bytecode::a"))
        assert journal.path.exists()


class TestJournalDurability:
    def test_torn_trailing_line_is_dropped(self, tmp_path):
        """A partial write from a hard kill loses only the in-flight
        cell, never the completed ones before it."""
        journal = CampaignJournal(tmp_path / "torn.jsonl")
        journal.append(record_for("main::c::bytecode::a"))
        with journal.path.open("a") as handle:
            handle.write('{"key": "main::c::bytecode::b", "trunc')

        loaded = journal.load()
        assert set(loaded) == {"main::c::bytecode::a"}

    def test_version_mismatch_is_skipped(self, tmp_path):
        journal = CampaignJournal(tmp_path / "versioned.jsonl")
        stale = dict(record_for("main::c::bytecode::old"), version=0)
        with journal.path.open("w") as handle:
            handle.write(json.dumps(stale) + "\n")
        journal.append(record_for("main::c::bytecode::new"))

        assert set(journal.load()) == {"main::c::bytecode::new"}

    def test_blank_lines_are_tolerated(self, tmp_path):
        journal = CampaignJournal(tmp_path / "blanks.jsonl")
        journal.append(record_for("main::c::bytecode::a"))
        with journal.path.open("a") as handle:
            handle.write("\n\n")
        journal.append(record_for("main::c::bytecode::b"))

        assert len(journal.load()) == 2
