"""Worker supervision: hung-cell preemption, resource limits, backoff.

The acceptance property of PR 10's tentpole: a single pathological
cell under ``-j N`` — hung, dying, or allocating without bound — costs
exactly its own quarantine entry and at most ``2 x --cell-timeout`` of
wall clock, never the whole campaign deadline, and never a sibling
cell's result.
"""

from __future__ import annotations

import multiprocessing
import signal
import time
from dataclasses import replace

import pytest

from repro.difftest.report import format_resilience, table2
from repro.difftest.runner import (
    CampaignConfig,
    bytecode_specs,
    run_campaign,
)
from repro.jit.machine.x86 import X86Backend
from repro.parallel.pool import _Worker, _death_error
from repro.robustness.errors import classify_crash
from repro.robustness.faults import DIE_EXIT_CODE, FaultPlan, inject_faults
from repro.robustness.supervise import (
    BACKOFF_CAP,
    DEADLINE_FRACTION,
    MIN_DERIVED_TIMEOUT,
    RespawnBackoff,
    apply_worker_rlimits,
    effective_cell_timeout,
)

from tests.robustness.test_campaign_resilience import (
    CONFIG,
    TARGET_COMPILER,
    TARGET_INSTRUCTION,
    cell_summaries,
)

#: Generous wall-clock ceiling: preemption must beat this by an order
#: of magnitude, the global deadline by two.
CELL_TIMEOUT = 2.0
DEADLINE = 120.0

SUPERVISED = replace(CONFIG, deadline_seconds=DEADLINE,
                     cell_timeout_seconds=CELL_TIMEOUT)


@pytest.fixture(scope="module")
def baseline():
    """A fault-free -j 2 run under the same supervised config."""
    return run_campaign(SUPERVISED, jobs=2)


class TestEffectiveCellTimeout:
    def test_explicit_timeout_wins(self):
        config = replace(CONFIG, deadline_seconds=100.0,
                         cell_timeout_seconds=7.5)
        assert effective_cell_timeout(config) == 7.5

    def test_derived_from_deadline(self):
        config = replace(CONFIG, deadline_seconds=100.0)
        assert effective_cell_timeout(config) == 100.0 * DEADLINE_FRACTION

    def test_derived_timeout_is_floored(self):
        config = replace(CONFIG, deadline_seconds=0.5)
        assert effective_cell_timeout(config) == MIN_DERIVED_TIMEOUT

    def test_no_budgets_means_no_supervision(self):
        assert effective_cell_timeout(CONFIG) is None


class TestRespawnBackoff:
    def test_first_loss_is_free_then_doubles_capped(self):
        backoff = RespawnBackoff(base=0.1, cap=0.5)
        assert backoff.current_delay() == 0.0
        delays = []
        for _ in range(5):
            backoff.record_failure(now=100.0)
            delays.append(backoff.current_delay())
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_success_resets(self):
        backoff = RespawnBackoff(base=0.1, cap=2.0)
        for _ in range(4):
            backoff.record_failure(now=100.0)
        backoff.record_success()
        assert backoff.consecutive_failures == 0
        assert backoff.ready(now=0.0)

    def test_ready_and_remaining_track_the_clock(self):
        backoff = RespawnBackoff(base=0.5, cap=2.0)
        backoff.record_failure(now=10.0)
        assert not backoff.ready(now=10.1)
        assert backoff.remaining(now=10.1) == pytest.approx(0.4)
        assert backoff.ready(now=10.5)
        assert backoff.remaining(now=11.0) == 0.0

    def test_default_cap_bounds_the_fork_rate(self):
        backoff = RespawnBackoff()
        for _ in range(64):
            backoff.record_failure(now=0.0)
        assert backoff.current_delay() == BACKOFF_CAP


def _report_rlimits(conn, config):
    import resource

    applied = apply_worker_rlimits(config)
    conn.send((applied,
               resource.getrlimit(resource.RLIMIT_AS),
               resource.getrlimit(resource.RLIMIT_CPU)))
    conn.close()


class TestWorkerRlimits:
    def _child_limits(self, config):
        context = multiprocessing.get_context("fork")
        parent, child = context.Pipe()
        process = context.Process(target=_report_rlimits,
                                  args=(child, config))
        process.start()
        payload = parent.recv()
        process.join()
        assert process.exitcode == 0
        return payload

    def test_limits_apply_in_the_forked_child_only(self):
        import resource

        config = replace(CONFIG, worker_memory_mb=512,
                         worker_cpu_seconds=30)
        applied, as_limit, cpu_limit = self._child_limits(config)
        assert applied == ["memory", "cpu"]
        assert as_limit[0] == 512 * 1024 * 1024
        # Soft SIGXCPU one second before the hard kill.
        assert cpu_limit == (30, 31)
        # The parent process is untouched.
        assert resource.getrlimit(resource.RLIMIT_AS)[0] != 512 * 1024 * 1024

    def test_unset_config_applies_nothing(self):
        applied, _as_limit, _cpu_limit = self._child_limits(CONFIG)
        assert applied == []


class TestResourceClassification:
    def test_memory_error_classifies_as_resource_exceeded(self):
        error = classify_crash(MemoryError("boom"), stage="simulate")
        assert error.error_class == "WorkerResourceExceeded"
        assert error.stage == "resources"

    def test_sigxcpu_death_classifies_as_resource_exceeded(self):
        entry = _Worker(process=type("P", (), {
            "exitcode": -signal.SIGXCPU})(), conn=None)
        victim = type("Cell", (), {"instruction": "pushTrue",
                                   "compiler": "SimpleStackCogit"})()
        error = _death_error(entry, victim)
        assert error.error_class == "WorkerResourceExceeded"
        assert "SIGXCPU" in str(error)

    def test_plain_death_is_still_a_worker_crash(self):
        entry = _Worker(process=type("P", (), {
            "exitcode": -signal.SIGKILL})(), conn=None)
        victim = type("Cell", (), {"instruction": "pushTrue",
                                   "compiler": "SimpleStackCogit"})()
        error = _death_error(entry, victim)
        assert error.error_class == "WorkerCrash"


class TestHungCellPreemption:
    def test_hang_is_preempted_within_twice_the_cell_timeout(
        self, baseline
    ):
        """The headline acceptance criterion: a hung cell under -j 2 is
        SIGKILLed at --cell-timeout, not ridden to the 120 s deadline."""
        plan = FaultPlan(stage="simulate", kind="hang",
                         instruction=TARGET_INSTRUCTION,
                         compiler=TARGET_COMPILER)
        start = time.monotonic()
        with inject_faults(plan):
            reports = run_campaign(SUPERVISED, jobs=2)
        elapsed = time.monotonic() - start

        # Bounded by supervision: far below the campaign deadline.  The
        # fleet's healthy cells run concurrently, so the whole campaign
        # finishes within the preemption window plus sibling work.
        assert elapsed < DEADLINE / 4
        assert not reports.budget_exhausted

        assert len(reports.quarantine) == 1
        entry = reports.quarantine.entries[0]
        assert entry.instruction == TARGET_INSTRUCTION
        assert entry.compiler == TARGET_COMPILER
        assert entry.error_class == "BudgetExhausted"
        assert "--cell-timeout" in entry.message
        assert reports.preempted_cells == 1
        assert reports.respawned_workers >= 1

        # The preemption fired within 2 x the per-cell budget.
        import re

        match = re.search(r"preempted after (\d+\.\d)s", entry.message)
        assert match, entry.message
        assert float(match.group(1)) <= 2 * CELL_TIMEOUT

        # Sibling cells are untouched.
        faulted = cell_summaries(reports)
        healthy = cell_summaries(baseline)
        key = (TARGET_COMPILER, TARGET_INSTRUCTION)
        del faulted[key], healthy[key]
        assert faulted == healthy

    def test_preempted_campaign_resumes_clean(self, baseline, tmp_path):
        """After a preemption, --resume re-runs nothing and keeps the
        quarantined cell quarantined."""
        journal = tmp_path / "preempt.jsonl"
        plan = FaultPlan(stage="simulate", kind="hang",
                         instruction=TARGET_INSTRUCTION,
                         compiler=TARGET_COMPILER)
        with inject_faults(plan):
            first = run_campaign(SUPERVISED, jobs=2, journal_path=journal)
        assert first.preempted_cells == 1

        resumed = run_campaign(SUPERVISED, jobs=2, journal_path=journal,
                               resume=True)
        assert len(resumed.quarantine) == 1
        assert resumed.preempted_cells == 0
        assert table2(resumed) == table2(first)

    def test_resilience_section_names_the_preemption(self):
        plan = FaultPlan(stage="simulate", kind="hang",
                         instruction=TARGET_INSTRUCTION,
                         compiler=TARGET_COMPILER)
        with inject_faults(plan):
            reports = run_campaign(SUPERVISED, jobs=2)
        text = format_resilience(reports)
        assert "resilience: 1 cell(s) preempted by --cell-timeout" in text

    def test_clean_run_prints_no_resilience_section(self, baseline):
        assert format_resilience(baseline) == ""


class TestWorkerDeath:
    def test_die_fault_charges_one_worker_crash(self, baseline):
        """os._exit mid-cell: process isolation absorbs it, the pool
        respawns, and only the dying cell is charged."""
        plan = FaultPlan(stage="simulate", kind="die",
                         instruction=TARGET_INSTRUCTION,
                         compiler=TARGET_COMPILER)
        with inject_faults(plan):
            reports = run_campaign(SUPERVISED, jobs=2)
        assert len(reports.quarantine) == 1
        entry = reports.quarantine.entries[0]
        assert entry.error_class == "WorkerCrash"
        assert str(DIE_EXIT_CODE) in entry.message

        faulted = cell_summaries(reports)
        healthy = cell_summaries(baseline)
        key = (TARGET_COMPILER, TARGET_INSTRUCTION)
        del faulted[key], healthy[key]
        assert faulted == healthy

    def test_oom_fault_quarantines_as_resource_exceeded(self, baseline):
        """MemoryError in-worker (the in-process face of RLIMIT_AS) is
        resource exhaustion, not a generic crash."""
        plan = FaultPlan(stage="simulate", kind="oom",
                         instruction=TARGET_INSTRUCTION,
                         compiler=TARGET_COMPILER)
        with inject_faults(plan):
            reports = run_campaign(SUPERVISED, jobs=2)
        assert len(reports.quarantine) == 1
        entry = reports.quarantine.entries[0]
        assert entry.error_class == "WorkerResourceExceeded"

        faulted = cell_summaries(reports)
        healthy = cell_summaries(baseline)
        key = (TARGET_COMPILER, TARGET_INSTRUCTION)
        del faulted[key], healthy[key]
        assert faulted == healthy
