"""Quarantine records and their report section."""

from __future__ import annotations

from repro.difftest.report import format_quarantine
from repro.robustness.errors import classify_crash
from repro.robustness.quarantine import Quarantine, QuarantineEntry


def make_entry(instruction="primitiveAdd", compiler="native",
               stage="compiler"):
    try:
        raise ValueError("template exploded")
    except ValueError as error:
        crash = classify_crash(error, stage)
    return QuarantineEntry.from_error(
        crash, instruction=instruction, kind="native", compiler=compiler,
        backend="x86+arm32",
    )


class TestQuarantineEntry:
    def test_from_error_captures_stage_and_class(self):
        entry = make_entry()
        assert entry.stage == "compiler"
        assert entry.error_class == "CompilerCrash"
        assert "ValueError" in entry.message
        assert "template exploded" in entry.traceback

    def test_describe_names_the_cell(self):
        text = make_entry().describe()
        assert "primitiveAdd" in text
        assert "native" in text
        assert "CompilerCrash" in text
        assert "attempts=2" in text

    def test_dict_round_trip(self):
        entry = make_entry()
        assert QuarantineEntry.from_dict(entry.to_dict()) == entry

    def test_unknown_fields_round_trip(self):
        """A journal written by a newer version may carry fields this
        version does not know; they must survive a load/save cycle
        instead of being silently discarded."""
        data = make_entry().to_dict()
        data["novel_field"] = {"nested": [1, 2]}
        data["another"] = "value"
        entry = QuarantineEntry.from_dict(data)
        assert entry.extra == {
            "novel_field": {"nested": [1, 2]}, "another": "value",
        }
        assert entry.to_dict() == data

    def test_known_fields_win_over_extra(self):
        entry = make_entry()
        entry.extra["instruction"] = "bogus"
        assert entry.to_dict()["instruction"] == "primitiveAdd"

    def test_extra_fields_do_not_break_equality_round_trip(self):
        data = dict(make_entry().to_dict(), novel="x")
        entry = QuarantineEntry.from_dict(data)
        assert QuarantineEntry.from_dict(entry.to_dict()) == entry


class TestQuarantine:
    def test_collection_protocol(self):
        quarantine = Quarantine()
        assert not quarantine
        assert len(quarantine) == 0
        quarantine.add(make_entry())
        quarantine.add(make_entry(instruction="pushTrue", stage="explorer"))
        assert quarantine
        assert len(quarantine) == 2
        assert len(list(quarantine)) == 2

    def test_groups_by_error_class(self):
        quarantine = Quarantine()
        quarantine.add(make_entry())
        quarantine.add(make_entry(instruction="pushTrue"))
        quarantine.add(make_entry(instruction="pushNil", stage="solver"))
        groups = quarantine.by_error_class()
        assert len(groups["CompilerCrash"]) == 2
        assert len(groups["SolverCrash"]) == 1


class TestQuarantineReport:
    def test_empty_quarantine_renders_empty(self):
        assert format_quarantine(Quarantine()) == ""

    def test_section_lists_cells_and_tracebacks(self):
        quarantine = Quarantine()
        quarantine.add(make_entry())
        quarantine.add(make_entry(instruction="pushNil", stage="solver"))
        text = format_quarantine(quarantine)
        assert "Quarantined cells: 2" in text
        assert "CompilerCrash (1):" in text
        assert "SolverCrash (1):" in text
        assert "primitiveAdd" in text
        assert "| " in text  # traceback excerpt lines
