"""The campaign error taxonomy and the crash-isolation guard."""

from __future__ import annotations

import pytest

from repro.errors import CompilerError, ReproError
from repro.robustness.errors import (
    BudgetExhausted,
    CampaignError,
    CompilerCrash,
    ExplorerCrash,
    HarnessCrash,
    SimulatorCrash,
    SolverCrash,
    classify_crash,
    guard,
    truncated_traceback,
)


class TestTaxonomy:
    @pytest.mark.parametrize("stage,crash_class", [
        ("explorer", ExplorerCrash),
        ("compiler", CompilerCrash),
        ("simulator", SimulatorCrash),
        ("solver", SolverCrash),
        ("harness", HarnessCrash),
    ])
    def test_stage_maps_to_class(self, stage, crash_class):
        crash = classify_crash(ValueError("boom"), stage)
        assert isinstance(crash, crash_class)
        assert crash.stage == stage
        assert crash.error_class == crash_class.__name__
        assert "ValueError" in str(crash)

    def test_unknown_stage_falls_back_to_harness(self):
        assert isinstance(classify_crash(ValueError("x"), "nope"),
                          HarnessCrash)

    def test_already_classified_errors_keep_their_class(self):
        """A SolverCrash surfacing through the explorer stays a
        SolverCrash — the innermost classification wins."""
        crash = SolverCrash("inner")
        assert classify_crash(crash, "explorer") is crash

    def test_campaign_errors_are_repro_errors(self):
        assert issubclass(CampaignError, ReproError)
        assert issubclass(BudgetExhausted, CampaignError)

    def test_original_exception_is_preserved(self):
        original = ValueError("boom")
        crash = classify_crash(original, "compiler")
        assert crash.original is original

    def test_budget_exhausted_scopes(self):
        assert BudgetExhausted("x").scope == "cell"
        assert BudgetExhausted("x", scope="campaign").scope == "campaign"


class TestTruncatedTraceback:
    def _raise_deep(self, depth):
        if depth:
            self._raise_deep(depth - 1)
        raise ValueError("bottom")

    def test_long_tracebacks_keep_the_tail(self):
        try:
            self._raise_deep(30)
        except ValueError as error:
            text = truncated_traceback(error, limit=5)
        lines = text.splitlines()
        assert lines[0].startswith("... (")
        assert len(lines) == 6  # elision marker + 5 kept lines
        assert "ValueError: bottom" in lines[-1]

    def test_short_tracebacks_are_untouched(self):
        try:
            raise ValueError("shallow")
        except ValueError as error:
            text = truncated_traceback(error)
        assert not text.startswith("...")
        assert "ValueError: shallow" in text


class TestGuard:
    def test_unexpected_exception_is_classified(self):
        with pytest.raises(CompilerCrash) as info:
            with guard("compiler"):
                raise KeyError("missing template")
        assert info.value.original.__class__ is KeyError
        assert "KeyError" in info.value.traceback

    def test_expected_exceptions_pass_through(self):
        with pytest.raises(CompilerError):
            with guard("compiler", expected=(CompilerError,)):
                raise CompilerError("modelled control flow")

    def test_campaign_errors_pass_through_unwrapped(self):
        with pytest.raises(SolverCrash):
            with guard("harness"):
                raise SolverCrash("already classified")

    def test_keyboard_interrupt_passes_through(self):
        """^C must never be swallowed into a quarantine record."""
        with pytest.raises(KeyboardInterrupt):
            with guard("simulator"):
                raise KeyboardInterrupt()

    def test_no_exception_no_effect(self):
        with guard("explorer"):
            value = 1 + 1
        assert value == 2
