"""The exact-invalidation property, over the whole mutant registry.

For every registered mutant, a cell's fingerprint must change **iff**
the mutant's patched attribute is in that cell's semantic closure:

* *no under-invalidation* — a cell whose closure contains the patched
  member must change fingerprint (or a mutated result could be served
  to a baseline run, silently masking the defect the mutant seeds);
* *no over-invalidation* — a cell whose closure does not contain it
  must keep its baseline fingerprint (or `repro mutate` would re-run
  the whole grid per mutant and the cache would be pointless).

The expected set is derived independently of the fingerprint recipe:
the test diffs the live class/module namespaces around
``mutant.install()`` to find what was actually patched, then checks
each cell's :func:`fingerprint_members` closure for the *original*
object by identity.  Nothing here hard-codes which cells a mutant
should touch — the property holds for future mutants automatically.
"""

from __future__ import annotations

import pytest

from repro.difftest.runner import (
    CampaignConfig,
    campaign_rows,
    stitched_campaign_rows,
)
from repro.incremental import fingerprint_members, plan_fingerprints
from repro.jit.machine.x86 import X86Backend
from repro.mutation import MUTANTS, activated

CONFIG = CampaignConfig(backends=(X86Backend,))
STITCH_CONFIG = CampaignConfig(backends=(X86Backend,), stitch_fragments=6,
                               stitch_max_methods=6)


def _candidate_namespaces():
    """Every namespace a mutant could patch (superset of the ones the
    fingerprint walks)."""
    from repro.interpreter import exits, primitives
    from repro.interpreter.frame import Frame
    from repro.interpreter.interpreter import Interpreter
    from repro.jit.compiler import BytecodeCogit
    from repro.jit.machine.simulator import MachineSimulator
    from repro.jit.native_templates import NativeMethodCompiler
    from repro.jit.register_allocating import RegisterAllocatingCogit
    from repro.jit.simple_stack import SimpleStackBasedCogit
    from repro.jit.stack_to_register import StackToRegisterCogit
    from repro.memory.object_memory import ObjectMemory

    namespaces = [Interpreter, ObjectMemory, Frame, primitives, exits,
                  MachineSimulator, NativeMethodCompiler]
    for compiler in (SimpleStackBasedCogit, StackToRegisterCogit,
                     RegisterAllocatingCogit, BytecodeCogit):
        for base in compiler.__mro__:
            if base is not object and base not in namespaces:
                namespaces.append(base)
    return namespaces


def patched_members(mutant) -> dict:
    """``{(namespace, attr name): original object}`` the mutant swaps,
    found by diffing live namespaces around ``install()``."""
    namespaces = _candidate_namespaces()
    before = [dict(vars(ns)) for ns in namespaces]
    patched: dict = {}
    with activated((mutant.id,)):
        for ns, old in zip(namespaces, before):
            new = vars(ns)
            for name in set(old) | set(new):
                if old.get(name) is not new.get(name):
                    patched[(ns, name)] = old.get(name)
    return patched


def expected_invalidations(rows, patched) -> set:
    """Cell keys whose baseline closure contains a patched original."""
    from repro.parallel.shard import plan_cells

    originals = {(name, id(value)) for (_ns, name), value in patched.items()}
    expected = set()
    memo: dict = {}
    for cell in plan_cells(rows):
        row = rows[cell.row_index]
        spec = row.specs[cell.spec_index]
        memo_key = (cell.kind, cell.instruction, cell.compiler)
        if memo_key not in memo:
            members = fingerprint_members(spec, row.compiler_class)
            hit = False
            for (label, name), value in members.items():
                if label == "root":
                    # Root entries are keyed "index:funcname" so two
                    # same-named roots cannot collide.
                    name = name.split(":", 1)[1]
                if (name, id(value)) in originals:
                    hit = True
                    break
            memo[memo_key] = hit
        if memo[memo_key]:
            expected.add(cell.key)
    return expected


def rows_for(mutant):
    if mutant.corpus == "stitched":
        return stitched_campaign_rows(STITCH_CONFIG), STITCH_CONFIG
    return campaign_rows(CONFIG), CONFIG


@pytest.mark.parametrize("mutant_id", sorted(MUTANTS))
def test_exact_invalidation(mutant_id):
    mutant = MUTANTS[mutant_id]
    rows, config = rows_for(mutant)

    patched = patched_members(mutant)
    assert patched, f"{mutant_id} patched nothing the test can observe"

    baseline = plan_fingerprints(rows, config)
    mutated = plan_fingerprints(
        rows, type(config)(**{**config.__dict__, "mutants": (mutant_id,)})
    )
    assert set(baseline) == set(mutated)

    changed = {key for key in baseline if baseline[key] != mutated[key]}
    expected = expected_invalidations(rows, patched)

    # A mutant that invalidates nothing can never be detected
    # incrementally — guard against a vacuous pass.
    assert expected, f"{mutant_id} would invalidate no cell in its corpus"
    under = expected - changed
    over = changed - expected
    assert not under, f"{mutant_id} under-invalidates: {sorted(under)[:5]}"
    assert not over, f"{mutant_id} over-invalidates: {sorted(over)[:5]}"


def test_baseline_fingerprints_recover_after_revert():
    """Activation is balanced: once the mutant is reverted, the plan's
    fingerprints are bit-identical to the untouched baseline."""
    rows = campaign_rows(CONFIG)
    baseline = plan_fingerprints(rows, CONFIG)
    mutated_config = type(CONFIG)(**{**CONFIG.__dict__, "mutants": ("I2",)})
    plan_fingerprints(rows, mutated_config)
    assert plan_fingerprints(rows, CONFIG) == baseline
