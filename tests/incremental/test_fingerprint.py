"""Semantic fingerprints: determinism and sensitivity.

A fingerprint must be stable across processes (the store is persistent)
and must move exactly when a cell's semantics could move: budget knobs
that change results, the spec's operand shape, the backend set.  Scope
knobs that merely select cells must *not* move it — or narrowing a
campaign would needlessly invalidate the cache.
"""

from __future__ import annotations

import subprocess
import sys
from dataclasses import replace

import pytest

from repro.concolic.explorer import BytecodeInstructionSpec, NativeMethodSpec
from repro.bytecode.opcodes import bytecode_named
from repro.difftest.runner import CampaignConfig, campaign_rows
from repro.incremental import cell_fingerprint, plan_fingerprints
from repro.interpreter.primitives import primitive_named
from repro.jit.machine.arm32 import Arm32Backend
from repro.jit.machine.x86 import X86Backend
from repro.jit.stack_to_register import StackToRegisterCogit

CONFIG = CampaignConfig(backends=(X86Backend,))
SPEC = BytecodeInstructionSpec(bytecode_named("bytecodePrimAdd"))


def fingerprint(config=CONFIG, spec=SPEC, compiler=StackToRegisterCogit):
    return cell_fingerprint(spec, compiler, config)


class TestDeterminism:
    def test_stable_within_process(self):
        assert fingerprint() == fingerprint()

    def test_stable_across_processes(self):
        """The store is persistent: a fresh interpreter re-deriving the
        same cell must land on the same hash (no id()/repr addresses,
        no hash randomization leaking in)."""
        script = (
            "from repro.concolic.explorer import BytecodeInstructionSpec\n"
            "from repro.bytecode.opcodes import bytecode_named\n"
            "from repro.difftest.runner import CampaignConfig\n"
            "from repro.incremental import cell_fingerprint\n"
            "from repro.jit.machine.x86 import X86Backend\n"
            "from repro.jit.stack_to_register import StackToRegisterCogit\n"
            "spec = BytecodeInstructionSpec(bytecode_named('bytecodePrimAdd'))\n"
            "config = CampaignConfig(backends=(X86Backend,))\n"
            "print(cell_fingerprint(spec, StackToRegisterCogit, config))\n"
        )
        import os
        from pathlib import Path

        import repro

        src = str(Path(repro.__file__).resolve().parent.parent)
        runs = set()
        for seed in ("0", "1", "12345"):
            env = dict(os.environ, PYTHONPATH=src, PYTHONHASHSEED=seed)
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True, env=env,
            )
            runs.add(proc.stdout.strip())
        assert runs == {fingerprint()}

    def test_plan_fingerprints_cover_every_cell(self):
        from repro.parallel.shard import plan_cells

        rows = campaign_rows(CONFIG)
        fps = plan_fingerprints(rows, CONFIG)
        assert set(fps) == {cell.key for cell in plan_cells(rows)}
        assert all(len(fp) == 64 for fp in fps.values())


class TestSensitivity:
    def test_distinct_cells_distinct_fingerprints(self):
        rows = campaign_rows(CONFIG)
        fps = plan_fingerprints(rows, CONFIG)
        assert len(set(fps.values())) == len(fps)

    @pytest.mark.parametrize("knob", [
        dict(max_paths_per_instruction=8),
        dict(max_iterations=7),
        dict(max_sim_steps=123),
        dict(boundary_witnesses=True),
        dict(raw_explorer=True),
        dict(backends=(X86Backend, Arm32Backend)),
        dict(fault_describer_gaps=("R10",)),
    ])
    def test_budget_knobs_invalidate(self, knob):
        assert fingerprint(replace(CONFIG, **knob)) != fingerprint()

    @pytest.mark.parametrize("knob", [
        dict(max_bytecodes=3),
        dict(max_natives=1),
        dict(only=("bytecodePrimAdd",)),
        dict(deadline_seconds=30.0),
        dict(fail_fast=True),
        dict(profile=True),
    ])
    def test_scope_knobs_do_not_invalidate(self, knob):
        """Narrowing or instrumenting a campaign selects cells; it never
        changes what one cell computes."""
        assert fingerprint(replace(CONFIG, **knob)) == fingerprint()

    def test_spec_shape_matters(self):
        add = fingerprint(spec=BytecodeInstructionSpec(
            bytecode_named("bytecodePrimAdd")))
        push = fingerprint(spec=BytecodeInstructionSpec(
            bytecode_named("pushTrue")))
        native = fingerprint(spec=NativeMethodSpec(
            primitive_named("primitiveAdd")))
        assert len({add, push, native}) == 3

    def test_same_family_different_operator_differs(self):
        """primitiveAdd and primitiveSubtract share one factory-made
        code object and differ only in the captured operator — the
        closure-cell hashing must tell them apart."""
        add = fingerprint(spec=NativeMethodSpec(primitive_named("primitiveAdd")))
        sub = fingerprint(spec=NativeMethodSpec(
            primitive_named("primitiveSubtract")))
        assert add != sub

    def test_compiler_matters(self):
        from repro.jit.simple_stack import SimpleStackBasedCogit

        assert fingerprint(compiler=SimpleStackBasedCogit) != fingerprint()
