"""The persistent result store: durability, degradation, GC.

The store inherits the journal's discipline (CRC per line, O_APPEND,
last-wins), so the tests mirror tests/robustness/test_checkpoint.py —
plus the store-specific contracts: version isolation, quarantine of an
unreadable file, stale-entry accounting and the `repro cache` GC.
"""

from __future__ import annotations

import pytest

from repro.incremental import CACHE_VERSION, CacheStats, ResultStore
from repro.incremental.store import default_cache_dir


def record(key: str, value: int = 0) -> dict:
    return {"key": key, "value": value}


@pytest.fixture
def store(tmp_path):
    return ResultStore(str(tmp_path / "cache"))


class TestRoundTrip:
    def test_put_then_get(self, store):
        store.put("fp1", record("cell-a", 1))
        fresh = ResultStore(store.directory)
        assert fresh.get("fp1") == record("cell-a", 1)
        assert fresh.stats.hits == 1

    def test_get_returns_a_copy(self, store):
        store.put("fp1", record("cell-a"))
        first = store.get("fp1")
        first["value"] = 99
        assert store.get("fp1") == record("cell-a")

    def test_miss_accounting(self, store):
        assert store.get("absent") is None
        assert store.stats.misses == 1
        assert store.stats.stale == 0

    def test_stale_is_a_miss_with_a_known_key(self, store):
        """An invalidation (same cell, new fingerprint) is counted
        apart from a first-ever execution."""
        store.put("fp-old", record("cell-a"))
        fresh = ResultStore(store.directory)
        assert fresh.get("fp-new", key="cell-a") is None
        assert fresh.get("fp-other", key="cell-b") is None
        assert fresh.stats.stale == 1
        assert fresh.stats.misses == 2

    def test_last_wins_on_duplicate_fingerprints(self, store):
        store.put("fp1", record("cell-a", 1))
        store.put("fp1", record("cell-a", 2))
        fresh = ResultStore(store.directory)
        assert fresh.get("fp1")["value"] == 2

    def test_hit_rate(self):
        stats = CacheStats(hits=9, misses=1)
        assert stats.hit_rate == 0.9
        assert CacheStats().hit_rate == 0.0


class TestDegradation:
    def test_torn_line_is_skipped_not_fatal(self, store):
        store.put("fp1", record("cell-a"))
        store.put("fp2", record("cell-b"))
        data = store.path.read_bytes()
        lines = data.splitlines(keepends=True)
        store.path.write_bytes(lines[0] + lines[1][: len(lines[1]) // 2])
        fresh = ResultStore(store.directory)
        fresh.load()
        assert fresh.stats.corrupt_lines == 1
        assert fresh.get("fp1") == record("cell-a")
        assert fresh.get("fp2") is None

    def test_flipped_byte_fails_crc(self, store):
        store.put("fp1", record("cell-a"))
        data = bytearray(store.path.read_bytes())
        index = data.index(b"cell-a")
        data[index] ^= 0x01
        store.path.write_bytes(bytes(data))
        fresh = ResultStore(store.directory)
        fresh.load()
        assert fresh.stats.corrupt_lines == 1
        assert fresh.get("fp1") is None

    def test_version_isolation(self, store, tmp_path):
        """A store written under another CACHE_VERSION is never read —
        the current version simply starts cold."""
        other = tmp_path / "cache" / f"results-v{CACHE_VERSION + 1}.jsonl"
        other.parent.mkdir(parents=True, exist_ok=True)
        donor = ResultStore(str(tmp_path / "donor"))
        donor.put("fp1", record("cell-a"))
        other.write_bytes(donor.path.read_bytes())
        store.load()
        assert store.stats.entries == 0
        assert store.get("fp1") is None

    def test_unreadable_store_quarantined_with_warning(self, store):
        """The "never worse than cold" contract: a store that cannot be
        opened is renamed aside and the campaign proceeds cold."""
        store.put("fp1", record("cell-a"))
        # A directory where the store file should be: open() raises an
        # OSError even for root (chmod 000 would not).
        store.path.unlink()
        store.path.mkdir()
        fresh = ResultStore(store.directory)
        fresh.load()
        assert fresh.stats.warning is not None
        assert "cold" in fresh.stats.warning
        assert fresh.get("fp1") is None
        corpses = list(store.path.parent.glob("*.corrupt"))
        assert len(corpses) == 1

    def test_concurrent_appends_do_not_tear(self, store):
        """Many processes appending through O_APPEND produce a fully
        readable file (same guarantee the journal tests assert)."""
        import multiprocessing

        def writer(directory, index):
            child = ResultStore(directory)
            for i in range(20):
                child.put(f"fp-{index}-{i}", record(f"cell-{index}-{i}", i))

        context = multiprocessing.get_context("fork")
        processes = [
            context.Process(target=writer, args=(store.directory, index))
            for index in range(4)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join()
        fresh = ResultStore(store.directory)
        fresh.load()
        assert fresh.stats.corrupt_lines == 0
        assert fresh.stats.entries == 80


class TestInspectionAndGC:
    def test_files_classification(self, store, tmp_path):
        store.put("fp1", record("cell-a"))
        stale = tmp_path / "cache" / f"results-v{CACHE_VERSION - 1}.jsonl"
        stale.write_text("old\n")
        corpse = tmp_path / "cache" / f"results-v{CACHE_VERSION}.jsonl.corrupt"
        corpse.write_text("bad\n")
        kinds = {path.name: kind for path, kind in store.files()}
        assert kinds == {
            store.path.name: "current",
            stale.name: "stale",
            corpse.name: "corrupt",
        }

    def test_gc_compacts_and_removes(self, store, tmp_path):
        for i in range(10):
            store.put("fp1", record("cell-a", i))  # 9 superseded lines
        stale = tmp_path / "cache" / f"results-v{CACHE_VERSION - 1}.jsonl"
        stale.write_text("old stale payload\n")
        summary = store.gc()
        assert summary["entries"] == 1
        assert summary["removed_files"] == [stale.name]
        assert summary["reclaimed_bytes"] > 0
        assert not stale.exists()
        fresh = ResultStore(store.directory)
        fresh.load()
        assert fresh.stats.entries == 1
        assert fresh.get("fp1")["value"] == 9

    def test_clear_removes_everything(self, store):
        store.put("fp1", record("cell-a"))
        assert store.clear() == 1
        assert not store.path.exists()
        assert store.get("fp1") is None

    def test_gc_on_empty_directory(self, store):
        summary = store.gc()
        assert summary["entries"] == 0
        assert summary["removed_files"] == []


class TestDefaultDirectory:
    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/somewhere/else")
        assert default_cache_dir() == "/somewhere/else"

    def test_xdg_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", "/xdg/cache")
        assert default_cache_dir() == "/xdg/cache/repro"

    def test_home_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv("XDG_CACHE_HOME", raising=False)
        assert default_cache_dir().endswith(".cache/repro")
