"""Warm-cache campaigns are byte-identical to cold runs.

The result cache's whole contract: its only observable effect is
wall-clock.  Tables, per-cell verdicts, quarantine and triage output
must match a cold ``-j1`` run whatever mix of cache state, worker
count and resume the run uses — and a mutated run must re-execute
exactly its invalidated cells while reusing the baseline's.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.difftest.report import format_table2, format_table3
from repro.difftest.runner import (
    CampaignConfig,
    run_campaign,
    run_sequence_campaign,
    run_stitched_campaign,
)
from repro.jit.machine.x86 import X86Backend
from tests.robustness.test_campaign_resilience import cell_summaries

CONFIG = CampaignConfig(max_bytecodes=2, max_natives=1,
                        backends=(X86Backend,))
#: Cells in the CONFIG plan: (1 native x 1 compiler) + (2 bytecodes x 3).
CELLS = 7


@pytest.fixture
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


class TestWarmEqualsCold:
    def test_sequential_warm_is_byte_identical(self, cache_dir):
        cold = run_campaign(CONFIG, cache_dir=cache_dir)
        assert cold.cache.misses == CELLS
        assert cold.cache.stored == CELLS
        warm = run_campaign(CONFIG, cache_dir=cache_dir)
        assert warm.cache.hits == CELLS
        assert warm.cache.misses == 0
        assert warm.cached_cells == CELLS
        assert format_table2(warm) == format_table2(cold)
        assert format_table3(warm) == format_table3(cold)
        assert cell_summaries(warm) == cell_summaries(cold)

    def test_parallel_warm_is_byte_identical_to_cold_j1(self, cache_dir):
        cold = run_campaign(CONFIG)  # no cache at all
        run_campaign(CONFIG, cache_dir=cache_dir)  # populate
        for jobs in (2, 4):
            warm = run_campaign(CONFIG, jobs=jobs, cache_dir=cache_dir)
            assert warm.cached_cells == CELLS
            assert format_table2(warm) == format_table2(cold)
            assert cell_summaries(warm) == cell_summaries(cold)

    def test_parallel_cold_populates_for_sequential_warm(self, cache_dir):
        """Workers append to the store themselves; a later sequential
        run hits on every cell."""
        cold = run_campaign(CONFIG, jobs=3, cache_dir=cache_dir)
        warm = run_campaign(CONFIG, cache_dir=cache_dir)
        assert warm.cache.hits == CELLS
        assert format_table2(warm) == format_table2(cold)

    def test_cache_off_by_default_in_the_library(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "default"))
        result = run_campaign(CONFIG)
        assert result.cache is None
        assert not (tmp_path / "default").exists()

    def test_sequence_and_stitched_campaigns_cache_too(self, cache_dir):
        small = replace(CONFIG, stitch_fragments=6, stitch_max_methods=4)
        for runner in (run_sequence_campaign, run_stitched_campaign):
            cold = runner(small, cache_dir=cache_dir)
            assert cold.cache.misses > 0
            warm = runner(small, cache_dir=cache_dir)
            assert warm.cache.misses == 0
            assert warm.cache.hits == cold.cache.misses
            assert format_table2(warm) == format_table2(cold)
            assert cell_summaries(warm) == cell_summaries(cold)


class TestInvalidationInFlight:
    def test_budget_change_is_stale_not_hit(self, cache_dir):
        run_campaign(CONFIG, cache_dir=cache_dir)
        bigger = replace(CONFIG, max_paths_per_instruction=8)
        rerun = run_campaign(bigger, cache_dir=cache_dir)
        assert rerun.cache.hits == 0
        assert rerun.cache.stale == CELLS
        # Both variants now coexist; each gets its own warm hits.
        assert run_campaign(CONFIG, cache_dir=cache_dir).cache.hits == CELLS
        assert run_campaign(bigger, cache_dir=cache_dir).cache.hits == CELLS

    def test_mutant_reuses_baseline_except_invalidated_cells(self, cache_dir):
        """The `repro mutate` economics: after a baseline pass, a mutant
        campaign re-runs only the cells its patch touches — and its
        records never leak back into the baseline.

        C1 patches one back-end generator (gen_bytecodePrimLessThan),
        so only the bytecodePrimLessThan cells move; pushTrue stays
        warm.  (Interpreter-side mutants like I2 reach *every* cell
        through the symbolic memory layer — no partial reuse there.)
        """
        config = CampaignConfig(backends=(X86Backend,), max_natives=0,
                                only=("pushTrue", "bytecodePrimLessThan"))
        cells = 6  # 2 bytecodes x 3 compilers
        run_campaign(config, cache_dir=cache_dir)
        mutated_config = replace(config, mutants=("C1",))
        mutated = run_campaign(mutated_config, cache_dir=cache_dir)
        assert mutated.cache.hits == 3      # pushTrue x 3 compilers
        assert mutated.cache.misses == mutated.cache.stale == 3
        # The mutated run matches a cache-less mutated run exactly.
        fresh = run_campaign(mutated_config)
        assert format_table2(mutated) == format_table2(fresh)
        assert cell_summaries(mutated) == cell_summaries(fresh)
        # Baseline still fully warm: no leak in either direction.
        baseline = run_campaign(config, cache_dir=cache_dir)
        assert baseline.cache.hits == cells
        assert cell_summaries(baseline) == cell_summaries(
            run_campaign(config))

    def test_quarantined_cells_are_not_stored(self, cache_dir):
        from repro.robustness.faults import FaultPlan, inject_faults

        plan = FaultPlan(stage="compile", compiler="SimpleStackBasedCogit")
        with inject_faults(plan):
            faulted = run_campaign(CONFIG, cache_dir=cache_dir)
        assert len(faulted.quarantine) > 0
        assert faulted.cache.stored == CELLS - len(faulted.quarantine)
        # The healthy cells hit; the previously-crashing cells re-run
        # (now fault-free) and produce a clean report.
        clean = run_campaign(CONFIG, cache_dir=cache_dir)
        assert clean.cache.hits == CELLS - len(faulted.quarantine)
        assert len(clean.quarantine) == 0
        assert cell_summaries(clean) == cell_summaries(run_campaign(CONFIG))


class TestResumeInterplay:
    def test_journal_resume_wins_over_cache(self, cache_dir, tmp_path):
        """A journaled cell is replayed from the journal; only cells in
        neither the journal nor the store run live."""
        journal = tmp_path / "run.jsonl"
        cold = run_campaign(CONFIG, cache_dir=cache_dir,
                            journal_path=str(journal))
        resumed = run_campaign(CONFIG, cache_dir=cache_dir,
                               journal_path=str(journal), resume=True)
        assert resumed.resumed_cells == CELLS
        assert resumed.cached_cells == 0
        assert format_table2(resumed) == format_table2(cold)

    def test_warm_cache_with_fresh_journal(self, cache_dir, tmp_path):
        run_campaign(CONFIG, cache_dir=cache_dir)
        journal = tmp_path / "fresh.jsonl"
        warm = run_campaign(CONFIG, cache_dir=cache_dir,
                            journal_path=str(journal))
        assert warm.cached_cells == CELLS
        # Cache hits are not journaled: the journal records live work.
        from repro.robustness.checkpoint import CampaignJournal

        assert CampaignJournal(journal).load() == {}


class TestTriageInterplay:
    def test_triage_runs_identically_on_cached_cells(self, cache_dir):
        from repro.triage import TriageConfig

        # `only` filters after `max_*` slicing, so lift the CONFIG caps
        # or primitiveMod never makes the plan.
        config = replace(CONFIG, max_bytecodes=0, max_natives=None,
                         only=("primitiveMod",),
                         fault_describer_gaps=("R10", "R11"))
        triage = TriageConfig(confirm_runs=1, repro_dir=None, shrink=False,
                              self_verify=False)
        cold = run_campaign(config, cache_dir=cache_dir, triage=triage)
        warm = run_campaign(config, cache_dir=cache_dir, triage=triage)
        assert warm.cache.hits > 0
        assert len(cold.triage.causes) + len(cold.triage.crash_causes) > 0
        assert {c.signature.digest for c in cold.triage.causes} == \
            {c.signature.digest for c in warm.triage.causes}
