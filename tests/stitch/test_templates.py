"""Path templates: shape parsing, derivation, clean-handoff flags.

The template layer is the stitching tentpole's foundation: every
curated concolic path of a fragment becomes a ``PathTemplate`` whose
input holes are the path condition and whose post-state summary is
the rendered output-stack shapes (docs/STITCHING.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.concolic.sequences import sequence_spec
from repro.stitch.templates import derive_templates, shape_of


@dataclass
class _Descriptor:
    rendered: str


class TestShapeOf:
    @pytest.mark.parametrize("rendered, shape", [
        ("int(5)", ("int", 5)),
        ("int(-3)", ("int", -3)),
        ("nil", ("nil",)),
        ("true", ("true",)),
        ("false", ("false",)),
        ("float(1.5)", ("float",)),
        ("Point@0x1a40", ("object",)),
        ("Array@0x2000", ("object",)),
    ])
    def test_rendered_to_shape(self, rendered, shape):
        assert shape_of(_Descriptor(rendered)) == shape

    def test_unparseable_int_degrades_to_object(self):
        # Degrading only weakens the compatibility relation; it never
        # invents a constraint the suffix could rely on.
        assert shape_of(_Descriptor("int(?)")) == ("object",)


class TestDeriveTemplates:
    def test_straightline_producer_is_clean(self):
        spec = sequence_spec("pushOne", "pushTwo", "bytecodePrimAdd")
        templates = derive_templates(spec, max_paths=8, max_iterations=32)
        assert templates, "producer fragment explored no paths"
        clean = [t for t in templates if t.clean]
        assert clean, "a straight-line producer must hand off cleanly"
        # The handoff carries the produced value's shape: 1 + 2 = 3.
        assert any(t.out_stack == (("int", 3),) for t in clean)
        for template in templates:
            assert template.fragment_name == spec.name
            assert template.fragment_size == spec.byte_size

    def test_returning_fragment_is_never_clean(self):
        spec = sequence_spec("pushTwo", "returnTop")
        templates = derive_templates(spec, max_paths=8, max_iterations=32)
        assert templates
        # A return exits the method: control never reaches a suffix.
        assert not any(t.clean for t in templates)

    def test_templates_are_indexed_in_curation_order(self):
        spec = sequence_spec("duplicateTop", "popStackTop")
        templates = derive_templates(spec, max_paths=8, max_iterations=32)
        assert templates
        assert [t.path_index for t in templates] == list(
            range(len(templates))
        )
