"""Stitched-corpus generation: determinism, budgets, compatibility.

The corpus is a pure function of its ``StitchBudget`` — the property
every engine (-j1, -jN, --resume) relies on to derive the same plan
independently.  Hypothesis sweeps the budget space; the suspension
test pins the subtler invariant that derivation ignores active
mutants (the corpus is a test asset, the mutant is the system under
test).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.concolic.sequences import sequence_spec
from repro.concolic.solver import SolverContext
from repro.concolic.symbolic_memory import SymbolicObjectMemory
from repro.memory.bootstrap import bootstrap_memory
from repro.stitch.compat import compatible, shape_literals
from repro.stitch.corpus import (
    StitchBudget,
    _build,
    build_stitched_corpus,
    clear_corpus_memo,
    format_stitch_report,
)
from repro.stitch.spec import stitched_spec_named
from repro.stitch.templates import derive_templates


def _context():
    memory, _known = bootstrap_memory(
        heap_words=8 * 1024, memory_class=SymbolicObjectMemory
    )
    return SolverContext.from_memory(memory)


class TestCompatibility:
    def test_int_producer_feeds_int_consumer(self):
        producer = derive_templates(
            sequence_spec("pushOne", "pushTwo", "bytecodePrimAdd"),
            max_paths=8, max_iterations=32,
        )
        consumer = derive_templates(
            sequence_spec("duplicateTop", "popStackTop"),
            max_paths=8, max_iterations=32,
        )
        context = _context()
        clean = [t for t in producer if t.clean]
        assert clean
        assert any(
            compatible(a, b, context) for a in clean for b in consumer
        )

    def test_unclean_prefix_never_compatible(self):
        returning = derive_templates(
            sequence_spec("pushTwo", "returnTop"),
            max_paths=8, max_iterations=32,
        )
        consumer = derive_templates(
            sequence_spec("duplicateTop", "popStackTop"),
            max_paths=8, max_iterations=32,
        )
        context = _context()
        for a in returning:
            for b in consumer:
                assert not compatible(a, b, context)

    def test_shape_literals_bind_top_of_stack_first(self):
        literals = shape_literals((("int", 7), ("nil",)))
        rendered = [str(lit) for lit in literals]
        # Bottom->top out stack (7, nil): nil is the top => stack0.
        assert any("stack0" in text and "nil" in text for text in rendered)
        assert any("stack1" in text for text in rendered)
        assert any("stack_size" in text for text in rendered)

    def test_empty_out_stack_binds_nothing(self):
        assert shape_literals(()) == []


class TestCorpusDeterminism:
    # Derivation explores fragments concolically, so give each example
    # room; the budget space is tiny and fully deterministic.
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        fragments=st.integers(min_value=2, max_value=8),
        max_methods=st.integers(min_value=1, max_value=12),
        depth=st.integers(min_value=2, max_value=3),
        paths=st.integers(min_value=2, max_value=8),
    )
    def test_rederivation_is_byte_identical(
        self, fragments, max_methods, depth, paths
    ):
        budget = StitchBudget(
            fragments=fragments, max_methods=max_methods,
            depth=depth, paths_per_fragment=paths,
        )
        first_specs, first_report = _build(budget)
        second_specs, second_report = _build(budget)
        assert [s.name for s in first_specs] == [
            s.name for s in second_specs
        ]
        assert first_report == second_report
        assert format_stitch_report(first_report) == format_stitch_report(
            second_report
        )
        assert len(first_specs) <= max_methods

    def test_memo_returns_identical_object(self):
        clear_corpus_memo()
        first = build_stitched_corpus(StitchBudget(fragments=4))
        second = build_stitched_corpus(StitchBudget(fragments=4))
        assert first is second
        clear_corpus_memo()

    def test_derivation_ignores_active_mutants(self):
        # The invariant behind per-corpus recall baselines: an active
        # mutant (here an interpreter mutant, which would perturb
        # exploration) must not change the derived corpus.
        from repro.mutation import activated

        budget = StitchBudget(fragments=8, max_methods=8)
        plain_specs, plain_report = _build(budget)
        with activated(("I1",)):
            mutated_specs, mutated_report = _build(budget)
        assert [s.name for s in plain_specs] == [
            s.name for s in mutated_specs
        ]
        assert plain_report == mutated_report


class TestCorpusContent:
    def test_default_corpus_carries_a_jump_prefix(self):
        # The C3 detection mechanics require a jump-carrying prefix
        # (flush at the stitch boundary with deferred entries pending);
        # relevance scoring must keep one inside the default cap.
        specs, report = build_stitched_corpus()
        assert report.emitted
        assert any("Jump" in name or "longJump" in name
                   for name in report.emitted)

    def test_every_emitted_name_round_trips(self):
        specs, report = build_stitched_corpus()
        for spec in specs:
            rebuilt = stitched_spec_named(spec.name)
            assert rebuilt.name == spec.name
            assert rebuilt.sequence == spec.sequence
            assert rebuilt.kind == "stitched"

    def test_report_provenance_is_aligned(self):
        specs, report = build_stitched_corpus()
        assert len(report.template_counts) == len(report.fragment_names)
        assert len(report.clean_counts) == len(report.fragment_names)
        for clean, total in zip(report.clean_counts,
                                report.template_counts):
            assert 0 <= clean <= total
        assert tuple(s.name for s in specs) == report.emitted
        for spec in specs:
            # Fragment provenance names resolve back into the corpus.
            assert len(spec.fragments) >= 2
