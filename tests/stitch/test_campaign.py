"""The stitched campaign end to end: engines, resume, recall.

The acceptance criteria of the stitching tentpole: the stitched
campaign is byte-identical across ``-j1`` / ``-jN`` / ``--resume``
(same canonical-plan machinery as the main and sequence campaigns),
triage can resolve stitched cells from their serialized names, and
the C3 dropped-spill mutant — invisible to single-instruction tests —
is caught through the stitched corpus (docs/STITCHING.md).
"""

from __future__ import annotations

import pytest

from repro.difftest.report import format_table2
from repro.difftest.runner import CampaignConfig, run_stitched_campaign
from repro.mutation.recall import campaign_fingerprint, run_recall

#: Small but real: enough corpus for the C3-catching stitches to be
#: emitted (the jump-carrying prefixes score highest), small enough
#: for test-suite latency.
CONFIG = CampaignConfig(
    stitch_fragments=12, stitch_max_methods=8,
    stitch_depth=2, stitch_paths_per_fragment=4,
)


@pytest.fixture(scope="module")
def sequential():
    return run_stitched_campaign(CONFIG)


class TestStitchedCampaign:
    def test_rows_cover_all_bytecode_compilers(self, sequential):
        assert [report.compiler for report in sequential] == [
            "SimpleStackBasedCogit (stitched)",
            "StackToRegisterCogit (stitched)",
            "RegisterAllocatingCogit (stitched)",
        ]
        for report in sequential:
            assert report.tested_instructions > 0
            assert report.curated_paths > 0

    def test_cells_carry_the_stitched_kind(self, sequential):
        for report in sequential:
            for cell in report.results:
                assert cell.instruction.startswith("stitch:")

    def test_byte_identical_across_jobs(self, sequential):
        parallel = run_stitched_campaign(CONFIG, jobs=2)
        assert campaign_fingerprint(parallel) == campaign_fingerprint(
            sequential
        )
        assert format_table2(parallel) == format_table2(sequential)

    def test_byte_identical_across_resume(self, sequential, tmp_path):
        journal = str(tmp_path / "stitched.jsonl")
        first = run_stitched_campaign(CONFIG, journal_path=journal)
        resumed = run_stitched_campaign(
            CONFIG, journal_path=journal, resume=True
        )
        assert resumed.resumed_cells > 0
        assert campaign_fingerprint(first) == campaign_fingerprint(
            sequential
        )
        assert campaign_fingerprint(resumed) == campaign_fingerprint(
            sequential
        )


class TestTriageResolution:
    def test_spec_for_resolves_stitched_cells(self, sequential):
        from repro.triage.lab import spec_for

        cell = sequential[0].results[0]
        spec = spec_for("stitched", cell.instruction)
        assert spec.name == cell.instruction
        assert spec.kind == "stitched"


class TestC3Recall:
    def test_dropped_spill_caught_through_stitched_corpus(self):
        # The headline: C3 drops the spill count at gen_flush, which
        # only fires with deferred entries pending at a jump boundary —
        # a state single-instruction tests never reach.  The stitched
        # sweep must catch it (as a parse-time stack underflow compile
        # error, a clean fingerprint delta).
        report = run_recall(
            CONFIG, ("C3",), (4,), convergence=False,
        )
        outcome = report.outcome("C3")
        assert outcome.corpus == "stitched"
        assert outcome.status == "caught"
        index, label = outcome.first_detection[4]
        assert label.startswith("stitch:")
        # Per-corpus baselines: the stitched baseline was measured,
        # the main baseline was never run (no main-corpus mutant).
        assert report.stitched_baseline_records
        assert not report.baseline_records
