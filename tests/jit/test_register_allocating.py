"""Linear-scan register allocation unit tests."""

from __future__ import annotations

import pytest

from repro.errors import CompilerError
from repro.jit.machine import CodeCache, TrampolineTable, X86Backend
from repro.jit.machine.registers import ALLOCATABLE_REGS
from repro.jit.register_allocating import RegisterAllocatingCogit
from repro.memory.bootstrap import bootstrap_memory


@pytest.fixture
def cogit():
    memory, _ = bootstrap_memory(heap_words=1024)
    instance = RegisterAllocatingCogit(
        memory, TrampolineTable(), CodeCache(), X86Backend()
    )
    from repro.jit.ir import IRBuilder

    instance.ir = IRBuilder()
    instance.begin_stack()
    return instance


class TestLinearScan:
    def test_virtuals_map_to_allocatable_pool(self, cogit):
        ir = cogit.ir
        ir.move_const("T0", 1)
        ir.move_const("T1", 2)
        ir.alu("add", "T0", "T1")
        mapping = cogit._register_map()
        assert set(mapping) == {"T0", "T1"}
        assert all(reg in ALLOCATABLE_REGS for reg in mapping.values())
        assert mapping["T0"] != mapping["T1"]  # live ranges overlap

    def test_expired_intervals_release_registers(self, cogit):
        ir = cogit.ir
        # T0 dies before T1 is born: they may share a register.
        ir.move_const("T0", 1)
        ir.move("R1", "T0")  # last use of T0
        ir.move_const("T1", 2)
        ir.move("R2", "T1")
        mapping = cogit._register_map()
        assert mapping["T0"] == mapping["T1"] == ALLOCATABLE_REGS[0]

    def test_pressure_beyond_pool_raises(self, cogit):
        ir = cogit.ir
        count = len(ALLOCATABLE_REGS) + 1
        for index in range(count):
            ir.move_const(f"T{index}", index)
        # Keep all alive simultaneously: one instruction using them all.
        for index in range(count):
            ir.alu("add", f"T{index}", f"T{(index + 1) % count}")
        with pytest.raises(CompilerError, match="register pressure"):
            cogit._register_map()

    def test_pool_capacity_is_sufficient(self, cogit):
        ir = cogit.ir
        for index in range(len(ALLOCATABLE_REGS)):
            ir.move_const(f"T{index}", index)
        for index in range(len(ALLOCATABLE_REGS)):
            ir.alu("add", f"T{index}", f"T{(index + 1) % len(ALLOCATABLE_REGS)}")
        mapping = cogit._register_map()
        assert len(set(mapping.values())) == len(ALLOCATABLE_REGS)

    def test_fresh_virtuals_are_unique(self, cogit):
        first = cogit._fresh_virtual()
        second = cogit._fresh_virtual()
        assert first != second


class TestTempCaching:
    def test_temp_register_loads_once(self, cogit):
        reg_a = cogit._temp_register(0)
        reg_b = cogit._temp_register(0)
        assert reg_a == reg_b
        loads = [i for i in cogit.ir.instructions if i.op == "load_frame_temp"]
        assert len(loads) == 1

    def test_distinct_temps_distinct_virtuals(self, cogit):
        assert cogit._temp_register(0) != cogit._temp_register(1)
