"""Machine substrate tests: encoders, simulator semantics, faults."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.jit.machine import (
    Arm32Backend,
    CodeCache,
    MachineSimulator,
    OutcomeKind,
    TrampolineTable,
    X86Backend,
)
from repro.jit.machine.isa import label, mi
from repro.jit.machine.simulator import END_SENTINEL, STACK_TOP
from repro.memory.heap import Heap

BACKENDS = [X86Backend(), Arm32Backend()]


def run_code(instructions, backend, *, heap=None, setup=None, max_steps=5000):
    heap = heap or Heap(size_words=256)
    cache = CodeCache()
    trampolines = TrampolineTable()
    code = cache.install(instructions, backend)
    sim = MachineSimulator(heap, cache, trampolines)
    sim.reset()
    sim._push(END_SENTINEL)
    if setup:
        setup(sim)
    outcome = sim.run(code.base_address, max_steps=max_steps)
    return outcome, sim


@pytest.mark.parametrize("backend", BACKENDS, ids=lambda b: b.name)
class TestEncoding:
    def test_round_trip(self, backend):
        instructions = [
            mi("MOV_RI", "R0", imm=42),
            mi("ADD_RI", "R0", imm=-2),
            mi("RET"),
        ]
        code = backend.assemble(instructions, 0x1000)
        decoded = [entry[1] for entry in backend.decode(code, 0x1000)]
        assert [d.op for d in decoded] == ["MOV_RI", "ADD_RI", "RET"]
        assert decoded[0].imm == 42
        assert decoded[1].imm == -2

    def test_label_resolution(self, backend):
        instructions = [
            mi("MOV_RI", "R0", imm=0),
            mi("JMP", label="end"),
            mi("MOV_RI", "R0", imm=99),
            label("end"),
            mi("RET"),
        ]
        outcome, _ = run_code(instructions, backend)
        assert outcome.kind == OutcomeKind.RETURNED
        assert outcome.result == 0

    def test_undefined_label_raises(self, backend):
        from repro.errors import MachineError

        with pytest.raises(MachineError):
            backend.assemble([mi("JMP", label="nowhere")], 0x1000)


@pytest.mark.parametrize("backend", BACKENDS, ids=lambda b: b.name)
class TestArithmetic:
    def test_add_loop(self, backend):
        # sum 1..5 via a loop
        instructions = [
            mi("MOV_RI", "R0", imm=0),
            mi("MOV_RI", "R1", imm=5),
            label("loop"),
            mi("CMP_RI", "R1", imm=0),
            mi("JE", label="done"),
            mi("ADD", "R0", "R1"),
            mi("SUB_RI", "R1", imm=1),
            mi("JMP", label="loop"),
            label("done"),
            mi("RET"),
        ]
        outcome, _ = run_code(instructions, backend)
        assert outcome.result == 15

    def test_signed_32bit_wrap(self, backend):
        instructions = [
            mi("MOV_RI", "R0", imm=0x7FFFFFFF),
            mi("ADD_RI", "R0", imm=1),
            mi("RET"),
        ]
        outcome, _ = run_code(instructions, backend)
        assert outcome.result == -(2**31)

    def test_idiv_truncates(self, backend):
        instructions = [
            mi("MOV_RI", "R0", imm=-7),
            mi("MOV_RI", "R1", imm=2),
            mi("IDIV", "R0", "R1"),
            mi("RET"),
        ]
        outcome, _ = run_code(instructions, backend)
        assert outcome.result == -3

    def test_division_by_zero_faults(self, backend):
        instructions = [
            mi("MOV_RI", "R0", imm=1),
            mi("MOV_RI", "R1", imm=0),
            mi("IDIV", "R0", "R1"),
            mi("RET"),
        ]
        outcome, _ = run_code(instructions, backend)
        assert outcome.kind == OutcomeKind.FAULT

    def test_shifts(self, backend):
        instructions = [
            mi("MOV_RI", "R0", imm=-16),
            mi("SAR_RI", "R0", imm=2),
            mi("RET"),
        ]
        outcome, _ = run_code(instructions, backend)
        assert outcome.result == -4

    def test_comparison_branches(self, backend):
        instructions = [
            mi("MOV_RI", "R0", imm=3),
            mi("CMP_RI", "R0", imm=5),
            mi("JL", label="less"),
            mi("MOV_RI", "R0", imm=0),
            mi("RET"),
            label("less"),
            mi("MOV_RI", "R0", imm=1),
            mi("RET"),
        ]
        outcome, _ = run_code(instructions, backend)
        assert outcome.result == 1


@pytest.mark.parametrize("backend", BACKENDS, ids=lambda b: b.name)
class TestMemoryAndStack:
    def test_heap_load_store(self, backend):
        heap = Heap(size_words=16)
        address = heap.allocate(2)
        instructions = [
            mi("MOV_RI", "R1", imm=address),
            mi("MOV_RI", "R0", imm=1234),
            mi("STORE", "R0", "R1", imm=4),
            mi("LOAD", "R2", "R1", imm=4),
            mi("MOV_RR", "R0", "R2"),
            mi("RET"),
        ]
        outcome, _ = run_code(instructions, backend, heap=heap)
        assert outcome.result == 1234
        assert heap.read_word(address + 4) == 1234

    def test_push_pop(self, backend):
        instructions = [
            mi("MOV_RI", "R0", imm=7),
            mi("PUSH", "R0"),
            mi("MOV_RI", "R0", imm=0),
            mi("POP", "R1"),
            mi("MOV_RR", "R0", "R1"),
            mi("RET"),
        ]
        outcome, _ = run_code(instructions, backend)
        assert outcome.result == 7

    def test_stack_contents_reported(self, backend):
        instructions = [
            mi("MOV_RI", "R0", imm=1),
            mi("PUSH", "R0"),
            mi("MOV_RI", "R0", imm=2),
            mi("PUSH", "R0"),
            mi("BRK", imm=0),
        ]
        outcome, _ = run_code(instructions, backend)
        # END_SENTINEL sits at the bottom; values above it.
        assert outcome.stack[-2:] == (1, 2)

    def test_wild_load_faults(self, backend):
        instructions = [
            mi("MOV_RI", "R1", imm=0x0DEAD000),
            mi("LOAD", "R0", "R1", imm=0),
            mi("RET"),
        ]
        outcome, _ = run_code(instructions, backend)
        assert outcome.kind == OutcomeKind.FAULT
        assert "base R1" in outcome.fault_reason

    def test_fault_through_r10_is_described(self, backend):
        """The getter table is derived from the register file, so a
        fault addressed through R10/R11 is *described*, not a crash."""
        instructions = [
            mi("MOV_RI", "R10", imm=0x0DEAD000),
            mi("LOAD", "R0", "R10", imm=0),
            mi("RET"),
        ]
        outcome, _ = run_code(instructions, backend)
        assert outcome.kind == OutcomeKind.FAULT
        assert "base R10" in outcome.fault_reason

    def test_injected_describer_gap_is_simulation_error(self, backend):
        """The historical R10/R11 defect stays injectable for the
        fault-injection tests and paper-fidelity benchmarks."""
        instructions = [
            mi("MOV_RI", "R10", imm=0x0DEAD000),
            mi("LOAD", "R0", "R10", imm=0),
            mi("RET"),
        ]
        heap = Heap(size_words=16)
        cache = CodeCache()
        code = cache.install(instructions, backend)
        sim = MachineSimulator(heap, cache, TrampolineTable(),
                               fault_describer_gaps=("R10", "R11"))
        sim.reset()
        sim._push(END_SENTINEL)
        with pytest.raises(SimulationError):
            sim.run(code.base_address)


@pytest.mark.parametrize("backend", BACKENDS, ids=lambda b: b.name)
class TestControl:
    def test_brk_reports_marker(self, backend):
        outcome, _ = run_code([mi("BRK", imm=3)], backend)
        assert outcome.kind == OutcomeKind.STOPPED
        assert outcome.marker == 3

    def test_exit_trampoline_halts(self, backend):
        heap = Heap(size_words=16)
        cache = CodeCache()
        trampolines = TrampolineTable()
        send = trampolines.exit_trampoline("send:+/1")
        code = cache.install([mi("CALL", imm=send), mi("RET")], backend)
        sim = MachineSimulator(heap, cache, trampolines)
        sim.reset()
        sim._push(END_SENTINEL)
        outcome = sim.run(code.base_address)
        assert outcome.kind == OutcomeKind.TRAMPOLINE
        assert outcome.trampoline == "send:+/1"

    def test_service_trampoline_continues(self, backend):
        heap = Heap(size_words=16)
        cache = CodeCache()
        trampolines = TrampolineTable()

        def double_r0(sim):
            sim.set("R0", sim.get("R0") * 2)

        service = trampolines.service("double", double_r0)
        code = cache.install(
            [mi("MOV_RI", "R0", imm=21), mi("CALL", imm=service), mi("RET")],
            backend,
        )
        sim = MachineSimulator(heap, cache, trampolines)
        sim.reset()
        sim._push(END_SENTINEL)
        outcome = sim.run(code.base_address)
        assert outcome.kind == OutcomeKind.RETURNED
        assert outcome.result == 42

    def test_call_and_ret_within_code(self, backend):
        instructions = [
            mi("MOV_RI", "R0", imm=1),
            mi("CALL", label="sub"),
            mi("ADD_RI", "R0", imm=1),
            mi("RET"),
            label("sub"),
            mi("ADD_RI", "R0", imm=10),
            mi("RET"),
        ]
        outcome, _ = run_code(instructions, backend)
        assert outcome.result == 12

    def test_diverged_on_infinite_loop(self, backend):
        instructions = [label("spin"), mi("JMP", label="spin")]
        outcome, _ = run_code(instructions, backend, max_steps=100)
        assert outcome.kind == OutcomeKind.DIVERGED


@pytest.mark.parametrize("backend", BACKENDS, ids=lambda b: b.name)
class TestFloats:
    def test_float_load_compute_store(self, backend):
        import struct

        heap = Heap(size_words=16)
        address = heap.allocate(4)
        bits = struct.unpack("<Q", struct.pack("<d", 2.5))[0]
        heap.write_word(address, (bits >> 32) & 0xFFFFFFFF)
        heap.write_word(address + 4, bits & 0xFFFFFFFF)
        instructions = [
            mi("MOV_RI", "R1", imm=address),
            mi("FLOAD", "F0", "R1", imm=0),
            mi("FADD", "F0", "F0"),
            mi("FSTORE", "F0", "R1", imm=8),
            mi("RET"),
        ]
        outcome, sim = run_code(instructions, backend, heap=heap)
        assert outcome.kind == OutcomeKind.RETURNED
        high = heap.read_word(address + 8)
        low = heap.read_word(address + 12)
        value = struct.unpack("<d", struct.pack("<Q", (high << 32) | low))[0]
        assert value == 5.0

    def test_int_to_float_conversion(self, backend):
        instructions = [
            mi("MOV_RI", "R1", imm=-3),
            mi("CVT_IF", "F0", "R1"),
            mi("FMOV", "F1", "F0"),
            mi("FMUL", "F1", "F0"),
            mi("CVT_FI", "R0", "F1"),
            mi("RET"),
        ]
        outcome, _ = run_code(instructions, backend)
        assert outcome.result == 9

    def test_fcmp_branches(self, backend):
        instructions = [
            mi("MOV_RI", "R1", imm=1),
            mi("CVT_IF", "F0", "R1"),
            mi("MOV_RI", "R1", imm=2),
            mi("CVT_IF", "F1", "R1"),
            mi("FCMP", "F0", "F1"),
            mi("JL", label="less"),
            mi("MOV_RI", "R0", imm=0),
            mi("RET"),
            label("less"),
            mi("MOV_RI", "R0", imm=1),
            mi("RET"),
        ]
        outcome, _ = run_code(instructions, backend)
        assert outcome.result == 1
