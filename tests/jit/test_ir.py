"""IR construction and lowering tests."""

from __future__ import annotations

import pytest

from repro.errors import CompilerError
from repro.jit.ir import IRBuilder, SLOT_BASE_OFFSET
from repro.jit.machine.simulator import TrampolineTable


@pytest.fixture
def trampolines():
    return TrampolineTable()


def lower(build, trampolines, register_map=None):
    ir = IRBuilder()
    build(ir)
    return ir.lower(trampolines, register_map)


class TestLowering:
    def test_move_lowers_to_mov(self, trampolines):
        out = lower(lambda ir: ir.move("R1", "R2"), trampolines)
        assert [str(i) for i in out] == ["MOV_RR R1 R2"]

    def test_self_move_elided(self, trampolines):
        out = lower(lambda ir: ir.move("R1", "R1"), trampolines)
        assert out == []

    def test_check_small_int_is_test_plus_branch(self, trampolines):
        def build(ir):
            ir.check_small_int("R1", "slow")
            ir.label("slow")

        out = lower(build, trampolines)
        assert out[0].op == "TST_RI" and out[0].imm == 1
        assert out[1].op == "JE"

    def test_tag_untag(self, trampolines):
        out = lower(lambda ir: (ir.untag("R1"), ir.tag("R1")), trampolines)
        assert [i.op for i in out] == ["SAR_RI", "SHL_RI", "OR_RI"]

    def test_slot_addressing(self, trampolines):
        out = lower(lambda ir: ir.load_slot("R1", "R2", 3), trampolines)
        assert out[0].op == "LOAD"
        assert out[0].imm == SLOT_BASE_OFFSET + 12

    def test_indexed_addressing_uses_scratch(self, trampolines):
        out = lower(
            lambda ir: ir.load_indexed("R1", "R2", "R3", "R5"), trampolines
        )
        assert [i.op for i in out] == ["MOV_RR", "SHL_RI", "ADD", "LOAD"]
        assert out[0].a == "R5"

    def test_frame_access_offsets(self, trampolines):
        out = lower(lambda ir: ir.load_frame_temp("R1", 2), trampolines)
        assert out[0].b == "FP" and out[0].imm == 12

    def test_trampoline_call_resolves_address(self, trampolines):
        out = lower(lambda ir: ir.call_trampoline("send:+/1"), trampolines)
        assert out[0].op == "CALL"
        assert out[0].imm == trampolines.exit_trampoline("send:+/1")

    def test_service_without_handler_rejected(self, trampolines):
        with pytest.raises(CompilerError):
            lower(lambda ir: ir.call_service("missing"), trampolines)

    def test_service_with_handler_lowers(self, trampolines):
        trampolines.service("ceAllocateFloat", lambda sim: None)
        out = lower(lambda ir: ir.call_service("ceAllocateFloat"), trampolines)
        assert out[0].op == "CALL"

    def test_register_map_applies_to_virtuals(self, trampolines):
        out = lower(
            lambda ir: ir.move("T0", "T1"),
            trampolines,
            register_map={"T0": "R7", "T1": "R8"},
        )
        assert (out[0].a, out[0].b) == ("R7", "R8")

    def test_unknown_op_rejected(self, trampolines):
        ir = IRBuilder()
        ir.emit("frobnicate", "R1")
        with pytest.raises(CompilerError):
            ir.lower(trampolines)

    def test_bad_branch_condition_rejected(self, trampolines):
        ir = IRBuilder()
        with pytest.raises(CompilerError):
            ir.jump_if("sometimes", "label")

    def test_fresh_labels_unique(self, trampolines):
        ir = IRBuilder()
        assert ir.fresh_label() != ir.fresh_label()

    def test_drop_scales_by_word_size(self, trampolines):
        out = lower(lambda ir: ir.drop(3), trampolines)
        assert out[0].op == "ADD_RI" and out[0].a == "SP" and out[0].imm == 12
