"""Compiler front-end tests: codegen strategies and equivalences.

These compile single instructions through each front-end and execute
them on the simulator directly (without the concolic machinery) to pin
down the machine-level behaviour of the generated code.
"""

from __future__ import annotations

import pytest

from repro.bytecode.methods import MethodBuilder, SymbolTable
from repro.bytecode.opcodes import bytecode_named
from repro.errors import NotImplementedInCompiler
from repro.interpreter.primitives import primitive_named
from repro.jit.compiler import CompilationUnit, NATIVE_FAILURE_MARKER, pc_marker
from repro.jit.machine import (
    Arm32Backend,
    CodeCache,
    MachineSimulator,
    OutcomeKind,
    TrampolineTable,
    X86Backend,
)
from repro.jit.machine.simulator import END_SENTINEL, STACK_TOP
from repro.jit.native_templates import NativeMethodCompiler
from repro.jit.register_allocating import RegisterAllocatingCogit
from repro.jit.simple_stack import SimpleStackBasedCogit
from repro.jit.stack_to_register import StackToRegisterCogit
from repro.memory.bootstrap import bootstrap_memory
from repro.memory.layout import MAX_SMALL_INT, WORD_SIZE

ALL_COGITS = [SimpleStackBasedCogit, StackToRegisterCogit, RegisterAllocatingCogit]


class JitWorld:
    """A VM + machine world for direct compiled-code execution."""

    def __init__(self, backend=None):
        self.memory, self.known = bootstrap_memory(heap_words=4096)
        self.symbols = SymbolTable(self.memory)
        self.backend = backend or X86Backend()
        self.code_cache = CodeCache()
        self.trampolines = TrampolineTable()
        self.trampolines.service(
            "ceAllocateFloat",
            lambda sim: sim.set("R0", self.memory.float_object_of(sim.fget("F0"))),
        )
        self.trampolines.service(
            "ceMakePoint", lambda sim: sim.set("R0", self._make_point(sim))
        )
        self.trampolines.service(
            "ceNewFixedInstance", lambda sim: self._new_fixed(sim)
        )
        self.trampolines.service(
            "ceNewVariableInstance", lambda sim: self._new_variable(sim)
        )
        self.simulator = MachineSimulator(
            self.memory.heap, self.code_cache, self.trampolines
        )

    def _make_point(self, sim):
        point = self.memory.instantiate(self.memory.class_table.named("Point"))
        self.memory.store_pointer(0, point, sim.get("R0") & 0xFFFFFFFF)
        self.memory.store_pointer(1, point, sim.get("R1") & 0xFFFFFFFF)
        return point

    def _new_fixed(self, sim):
        cls = self.memory.class_table.at(sim.get("R6"))
        sim.set("R0", 0 if cls.is_variable else self.memory.instantiate(cls))

    def _new_variable(self, sim):
        cls = self.memory.class_table.at(sim.get("R6"))
        if not cls.is_variable:
            sim.set("R0", 0)
        else:
            sim.set("R0", self.memory.instantiate(cls, sim.get("R7")))

    def bytecode_unit(self, name, input_stack=(), literals=(), operand=None):
        bytecode = bytecode_named(name)
        builder = MethodBuilder(self.memory, self.symbols).temps(16)
        for literal in literals:
            builder.literal(literal)
        builder.emit(bytecode.opcode)
        operands = ()
        if bytecode.family.operand_bytes:
            value = operand if operand is not None else 2
            builder.emit(value & 0xFF)
            operands = (value & 0xFF,)
        nop = bytecode_named("nop").opcode
        for _ in range(8):
            builder.emit(nop)
        return CompilationUnit(
            method=builder.build(),
            bytecode=bytecode,
            operands=operands,
            input_stack=tuple(input_stack),
        )

    def native_unit(self, name, input_stack):
        native = primitive_named(name)
        builder = MethodBuilder(self.memory, self.symbols).temps(16)
        return CompilationUnit(
            method=builder.build(),
            native=native,
            input_stack=tuple(input_stack),
        )

    def run_bytecode(self, compiler_class, unit, receiver=None, temps=()):
        compiler = compiler_class(
            self.memory, self.trampolines, self.code_cache, self.backend,
            self.symbols,
        )
        compiled = compiler.compile(unit)
        sim = self.simulator
        sim.reset()
        frame_base = STACK_TOP - (1 + 16) * WORD_SIZE
        sim.set("FP", frame_base)
        sim.set("SP", frame_base)
        sim.write_word(frame_base, receiver or self.memory.nil_object)
        for index in range(16):
            value = temps[index] if index < len(temps) else self.memory.nil_object
            sim.write_word(frame_base + WORD_SIZE * (1 + index), value)
        sim._push(END_SENTINEL)
        base = sim.get("SP")
        outcome = sim.run(compiled.entry)
        count = max(0, (base - sim.get("SP")) // WORD_SIZE)
        stack = [
            sim.read_word(sim.get("SP") + offset * WORD_SIZE)
            for offset in range(count)
        ]
        stack.reverse()
        return outcome, stack

    def run_native(self, name, receiver, args):
        native = primitive_named(name)
        unit = self.native_unit(name, [receiver, *args])
        compiler = NativeMethodCompiler(
            self.memory, self.trampolines, self.code_cache, self.backend
        )
        compiled = compiler.compile(unit)
        sim = self.simulator
        sim.reset()
        sim._push(END_SENTINEL)
        sim.set("R0", receiver)
        for index, value in enumerate(args):
            sim.set(f"R{index + 1}", value)
        return sim.run(compiled.entry)


@pytest.fixture
def world():
    return JitWorld()


def int_oop(world, value):
    return world.memory.integer_object_of(value)


class TestPushFamilies:
    @pytest.mark.parametrize("cogit", ALL_COGITS, ids=lambda c: c.name)
    def test_push_true_lands_on_stack(self, world, cogit):
        unit = world.bytecode_unit("pushTrue")
        outcome, stack = world.run_bytecode(cogit, unit)
        assert outcome.kind == OutcomeKind.STOPPED
        assert outcome.marker == pc_marker(1)
        assert stack == [world.memory.true_object]

    @pytest.mark.parametrize("cogit", ALL_COGITS, ids=lambda c: c.name)
    def test_input_stack_is_compiled_in(self, world, cogit):
        values = [int_oop(world, 7), int_oop(world, 8)]
        unit = world.bytecode_unit("nop", input_stack=values)
        _, stack = world.run_bytecode(cogit, unit)
        assert stack == values

    @pytest.mark.parametrize("cogit", ALL_COGITS, ids=lambda c: c.name)
    def test_push_temp(self, world, cogit):
        temp = int_oop(world, 42)
        unit = world.bytecode_unit("pushTemporaryVariable1")
        _, stack = world.run_bytecode(
            cogit, unit, temps=[int_oop(world, 0), temp]
        )
        assert stack == [temp]

    @pytest.mark.parametrize("cogit", ALL_COGITS, ids=lambda c: c.name)
    def test_push_literal(self, world, cogit):
        literal = int_oop(world, 31)
        unit = world.bytecode_unit("pushLiteralConstant0", literals=[literal])
        _, stack = world.run_bytecode(cogit, unit)
        assert stack == [literal]

    @pytest.mark.parametrize("cogit", ALL_COGITS, ids=lambda c: c.name)
    def test_dup_and_pop(self, world, cogit):
        one = int_oop(world, 1)
        unit = world.bytecode_unit("duplicateTop", input_stack=[one])
        _, stack = world.run_bytecode(cogit, unit)
        assert stack == [one, one]

    @pytest.mark.parametrize("cogit", ALL_COGITS, ids=lambda c: c.name)
    def test_pop_into_temp_writes_frame(self, world, cogit):
        value = int_oop(world, 9)
        unit = world.bytecode_unit(
            "popIntoTemporaryVariable2", input_stack=[value]
        )
        outcome, stack = world.run_bytecode(cogit, unit)
        assert stack == []
        frame_base = STACK_TOP - (1 + 16) * WORD_SIZE
        assert world.simulator.read_word(frame_base + WORD_SIZE * 3) == value

    @pytest.mark.parametrize("cogit", ALL_COGITS, ids=lambda c: c.name)
    def test_store_receiver_variable_hits_heap(self, world, cogit):
        receiver = world.memory.instantiate(world.known.plain_object)
        value = int_oop(world, 5)
        unit = world.bytecode_unit(
            "storeReceiverVariable1", input_stack=[value]
        )
        _, stack = world.run_bytecode(cogit, unit, receiver=receiver)
        assert world.memory.fetch_pointer(1, receiver) == value
        assert stack == [value]


class TestArithmetic:
    def test_s2r_inlines_integer_add(self, world):
        unit = world.bytecode_unit(
            "bytecodePrimAdd",
            input_stack=[int_oop(world, 2), int_oop(world, 3)],
        )
        outcome, stack = world.run_bytecode(StackToRegisterCogit, unit)
        assert outcome.kind == OutcomeKind.STOPPED
        assert stack == [int_oop(world, 5)]

    def test_simple_sends_for_add(self, world):
        """SimpleStackBasedCogit has no static type prediction."""
        unit = world.bytecode_unit(
            "bytecodePrimAdd",
            input_stack=[int_oop(world, 2), int_oop(world, 3)],
        )
        outcome, stack = world.run_bytecode(SimpleStackBasedCogit, unit)
        assert outcome.kind == OutcomeKind.TRAMPOLINE
        assert outcome.trampoline == "send:+/1"
        assert stack == [int_oop(world, 2), int_oop(world, 3)]

    def test_overflow_takes_send_path(self, world):
        unit = world.bytecode_unit(
            "bytecodePrimAdd",
            input_stack=[int_oop(world, MAX_SMALL_INT), int_oop(world, 1)],
        )
        outcome, stack = world.run_bytecode(StackToRegisterCogit, unit)
        assert outcome.kind == OutcomeKind.TRAMPOLINE
        assert len(stack) == 2  # operands preserved for the send

    def test_float_operands_take_send_path(self, world):
        """No compiler inlines float arithmetic (optimisation diff)."""
        a = world.memory.float_object_of(1.5)
        b = world.memory.float_object_of(2.0)
        unit = world.bytecode_unit("bytecodePrimAdd", input_stack=[a, b])
        outcome, _ = world.run_bytecode(StackToRegisterCogit, unit)
        assert outcome.kind == OutcomeKind.TRAMPOLINE

    def test_comparison_pushes_boolean(self, world):
        unit = world.bytecode_unit(
            "bytecodePrimLessThan",
            input_stack=[int_oop(world, -5), int_oop(world, 3)],
        )
        _, stack = world.run_bytecode(RegisterAllocatingCogit, unit)
        assert stack == [world.memory.true_object]

    def test_comparison_of_negatives(self, world):
        unit = world.bytecode_unit(
            "bytecodePrimGreaterOrEqual",
            input_stack=[int_oop(world, -5), int_oop(world, -5)],
        )
        _, stack = world.run_bytecode(StackToRegisterCogit, unit)
        assert stack == [world.memory.true_object]

    def test_integer_divide_floors(self, world):
        unit = world.bytecode_unit(
            "bytecodePrimIntegerDivide",
            input_stack=[int_oop(world, -7), int_oop(world, 2)],
        )
        _, stack = world.run_bytecode(StackToRegisterCogit, unit)
        assert stack == [int_oop(world, -4)]

    def test_modulo_floors(self, world):
        unit = world.bytecode_unit(
            "bytecodePrimModulo",
            input_stack=[int_oop(world, -7), int_oop(world, 2)],
        )
        _, stack = world.run_bytecode(StackToRegisterCogit, unit)
        assert stack == [int_oop(world, 1)]

    def test_multiply_overflow_detected(self, world):
        unit = world.bytecode_unit(
            "bytecodePrimMultiply",
            input_stack=[int_oop(world, 1 << 20), int_oop(world, 1 << 20)],
        )
        outcome, _ = world.run_bytecode(StackToRegisterCogit, unit)
        assert outcome.kind == OutcomeKind.TRAMPOLINE

    def test_bitand_negative_sends(self, world):
        unit = world.bytecode_unit(
            "bytecodePrimBitAnd",
            input_stack=[int_oop(world, -1), int_oop(world, 7)],
        )
        outcome, _ = world.run_bytecode(StackToRegisterCogit, unit)
        assert outcome.kind == OutcomeKind.TRAMPOLINE

    def test_identity_comparison(self, world):
        nil = world.memory.nil_object
        unit = world.bytecode_unit(
            "bytecodePrimIdenticalTo", input_stack=[nil, nil]
        )
        _, stack = world.run_bytecode(SimpleStackBasedCogit, unit)
        assert stack == [world.memory.true_object]


class TestJumpsAndReturns:
    @pytest.mark.parametrize("cogit", ALL_COGITS, ids=lambda c: c.name)
    def test_conditional_jump_taken(self, world, cogit):
        unit = world.bytecode_unit(
            "shortJumpIfTrue3", input_stack=[world.memory.true_object]
        )
        outcome, stack = world.run_bytecode(cogit, unit)
        assert outcome.marker == pc_marker(1 + 4)
        assert stack == []

    @pytest.mark.parametrize("cogit", ALL_COGITS, ids=lambda c: c.name)
    def test_conditional_jump_not_taken(self, world, cogit):
        unit = world.bytecode_unit(
            "shortJumpIfTrue3", input_stack=[world.memory.false_object]
        )
        outcome, _ = world.run_bytecode(cogit, unit)
        assert outcome.marker == pc_marker(1)

    def test_non_boolean_condition_calls_must_be_boolean(self, world):
        unit = world.bytecode_unit(
            "shortJumpIfFalse0", input_stack=[int_oop(world, 1)]
        )
        outcome, stack = world.run_bytecode(StackToRegisterCogit, unit)
        assert outcome.kind == OutcomeKind.TRAMPOLINE
        assert outcome.trampoline == "send:mustBeBoolean/0"
        assert stack == [int_oop(world, 1)]

    @pytest.mark.parametrize("cogit", ALL_COGITS, ids=lambda c: c.name)
    def test_return_top(self, world, cogit):
        value = int_oop(world, 11)
        unit = world.bytecode_unit("returnTop", input_stack=[value])
        outcome, _ = world.run_bytecode(cogit, unit)
        assert outcome.kind == OutcomeKind.RETURNED
        assert outcome.result & 0xFFFFFFFF == value

    def test_unconditional_jump(self, world):
        unit = world.bytecode_unit("shortJump4")
        outcome, _ = world.run_bytecode(SimpleStackBasedCogit, unit)
        assert outcome.marker == pc_marker(1 + 5)


class TestSends:
    @pytest.mark.parametrize("cogit", ALL_COGITS, ids=lambda c: c.name)
    def test_common_selector_send(self, world, cogit):
        array = world.memory.new_array([int_oop(world, 1)])
        unit = world.bytecode_unit(
            "sendAt", input_stack=[array, int_oop(world, 1)]
        )
        outcome, stack = world.run_bytecode(cogit, unit)
        assert outcome.trampoline == "send:at:/1"
        assert stack == [array, int_oop(world, 1)]

    def test_literal_selector_send(self, world):
        selector = world.symbols.intern("frobnicate:")
        unit = world.bytecode_unit(
            "sendLiteralSelector1Arg0",
            input_stack=[int_oop(world, 1), int_oop(world, 2)],
            literals=[selector],
        )
        outcome, _ = world.run_bytecode(StackToRegisterCogit, unit)
        assert outcome.trampoline == "send:frobnicate:/1"

    def test_is_nil_inlined_in_s2r(self, world):
        unit = world.bytecode_unit(
            "sendIsNil", input_stack=[world.memory.nil_object]
        )
        outcome, stack = world.run_bytecode(StackToRegisterCogit, unit)
        assert outcome.kind == OutcomeKind.STOPPED
        assert stack == [world.memory.true_object]

    def test_is_nil_sent_by_simple(self, world):
        unit = world.bytecode_unit(
            "sendIsNil", input_stack=[world.memory.nil_object]
        )
        outcome, _ = world.run_bytecode(SimpleStackBasedCogit, unit)
        assert outcome.trampoline == "send:isNil/0"


class TestNativeTemplates:
    def test_add_success_returns(self, world):
        outcome = world.run_native(
            "primitiveAdd", int_oop(world, 2), [int_oop(world, 3)]
        )
        assert outcome.kind == OutcomeKind.RETURNED
        assert outcome.result & 0xFFFFFFFF == int_oop(world, 5)

    def test_add_type_failure_hits_breakpoint(self, world):
        outcome = world.run_native(
            "primitiveAdd", world.memory.nil_object, [int_oop(world, 3)]
        )
        assert outcome.kind == OutcomeKind.STOPPED
        assert outcome.marker == NATIVE_FAILURE_MARKER

    def test_float_add_boxes_result(self, world):
        a = world.memory.float_object_of(1.25)
        b = world.memory.float_object_of(2.5)
        outcome = world.run_native("primitiveFloatAdd", a, [b])
        assert outcome.kind == OutcomeKind.RETURNED
        assert world.memory.float_value_of(outcome.result) == 3.75

    def test_float_add_missing_receiver_check_segfaults(self, world):
        """The paper's missing-compiled-type-check defect in action."""
        outcome = world.run_native(
            "primitiveFloatAdd",
            int_oop(world, 1),
            [world.memory.float_object_of(1.0)],
        )
        assert outcome.kind == OutcomeKind.FAULT

    def test_as_float_checks_receiver(self, world):
        outcome = world.run_native(
            "primitiveAsFloat", world.memory.nil_object, []
        )
        assert outcome.kind == OutcomeKind.STOPPED  # compiled code fails

    def test_bitand_accepts_negatives(self, world):
        """Behavioural difference: unsigned treatment of negatives."""
        outcome = world.run_native(
            "primitiveBitAnd", int_oop(world, -1), [int_oop(world, 7)]
        )
        assert outcome.kind == OutcomeKind.RETURNED

    def test_mod_uses_truncated_remainder(self, world):
        outcome = world.run_native(
            "primitiveMod", int_oop(world, -7), [int_oop(world, 2)]
        )
        assert outcome.kind == OutcomeKind.RETURNED
        # Wrong result: -1 instead of the interpreter's floored 1.
        assert outcome.result & 0xFFFFFFFF == int_oop(world, -1)

    def test_at_on_array(self, world):
        array = world.memory.new_array([int_oop(world, 10), int_oop(world, 20)])
        outcome = world.run_native("primitiveAt", array, [int_oop(world, 2)])
        assert outcome.kind == OutcomeKind.RETURNED
        assert outcome.result & 0xFFFFFFFF == int_oop(world, 20)

    def test_at_bounds_failure(self, world):
        array = world.memory.new_array([int_oop(world, 10)])
        outcome = world.run_native("primitiveAt", array, [int_oop(world, 2)])
        assert outcome.kind == OutcomeKind.STOPPED

    def test_at_put_writes_heap(self, world):
        array = world.memory.new_array([world.memory.nil_object])
        value = int_oop(world, 77)
        outcome = world.run_native(
            "primitiveAtPut", array, [int_oop(world, 1), value]
        )
        assert outcome.kind == OutcomeKind.RETURNED
        assert world.memory.fetch_pointer(0, array) == value

    def test_new_via_service(self, world):
        from repro.memory.bootstrap import make_behavior

        behavior = make_behavior(world.memory, world.known.point)
        outcome = world.run_native("primitiveNew", behavior, [])
        assert outcome.kind == OutcomeKind.RETURNED
        assert world.memory.class_of(outcome.result).name == "Point"

    def test_ffi_primitives_not_implemented(self, world):
        compiler = NativeMethodCompiler(
            world.memory, world.trampolines, world.code_cache, world.backend
        )
        unit = world.native_unit("primitiveFFIReadInt32", [])
        with pytest.raises(NotImplementedInCompiler):
            compiler.compile(unit)

    def test_truncated_fault_is_described(self, world):
        """The truncation template's wild access through R10 is an
        ordinary described fault now that the getter table is derived."""
        outcome = world.run_native(
            "primitiveFloatTruncated", int_oop(world, 3), []
        )
        assert outcome.kind == OutcomeKind.FAULT
        assert "base R10" in outcome.fault_reason

    def test_truncated_fault_with_seeded_gap_raises(self, world):
        """Re-seeding the historical R10/R11 describer gap restores the
        paper's Simulation Error behaviour."""
        from repro.errors import SimulationError
        from repro.jit.machine import MachineSimulator

        world.simulator = MachineSimulator(
            world.memory.heap, world.code_cache, world.trampolines,
            fault_describer_gaps=("R10", "R11"),
        )
        with pytest.raises(SimulationError):
            world.run_native("primitiveFloatTruncated", int_oop(world, 3), [])


class TestBackendEquivalence:
    @pytest.mark.parametrize("name,stack_values", [
        ("bytecodePrimAdd", (4, 5)),
        ("bytecodePrimMultiply", (-3, 9)),
        ("bytecodePrimLessThan", (2, 2)),
        ("duplicateTop", (6,)),
    ])
    def test_x86_and_arm_agree(self, name, stack_values):
        results = []
        for backend in (X86Backend(), Arm32Backend()):
            world = JitWorld(backend)
            values = [world.memory.integer_object_of(v) for v in stack_values]
            unit = world.bytecode_unit(name, input_stack=values)
            outcome, stack = world.run_bytecode(StackToRegisterCogit, unit)
            results.append((outcome.kind, outcome.marker, tuple(stack)))
        assert results[0] == results[1]
