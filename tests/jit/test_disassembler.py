"""Machine disassembler tests."""

from __future__ import annotations

import pytest

from repro.jit.machine import Arm32Backend, CodeCache, TrampolineTable, X86Backend
from repro.jit.machine.disassembler import (
    disassemble_code_object,
    format_disassembly,
)
from repro.jit.machine.isa import label, mi

BACKENDS = [X86Backend(), Arm32Backend()]


@pytest.mark.parametrize("backend", BACKENDS, ids=lambda b: b.name)
class TestDisassembler:
    def install(self, instructions, backend):
        cache = CodeCache()
        return cache.install(instructions, backend)

    def test_renders_every_instruction(self, backend):
        code = self.install(
            [mi("MOV_RI", "R0", imm=7), mi("ADD", "R0", "R1"), mi("RET")],
            backend,
        )
        lines = disassemble_code_object(code, backend)
        assert len(lines) == 3
        assert "mov_ri" in lines[0].mnemonic
        assert "#7" in lines[0].mnemonic

    def test_branch_targets_are_absolute(self, backend):
        code = self.install(
            [mi("JMP", label="end"), mi("NOP"), label("end"), mi("RET")],
            backend,
        )
        lines = disassemble_code_object(code, backend)
        jump = lines[0]
        assert jump.target == lines[2].address

    def test_call_annotated_with_trampoline_name(self, backend):
        trampolines = TrampolineTable()
        address = trampolines.exit_trampoline("send:+/1")
        code = self.install([mi("CALL", imm=address), mi("RET")], backend)
        lines = disassemble_code_object(code, backend, trampolines)
        assert lines[0].annotation == "send:+/1"

    def test_format_disassembly_header(self, backend):
        code = self.install([mi("RET")], backend)
        text = format_disassembly(code, backend)
        assert text.startswith(f"; {backend.name} code object")
        assert "ret" in text


class TestDisplayRegisters:
    def test_x86_names(self):
        backend = X86Backend()
        code = CodeCache().install([mi("MOV_RR", "R0", "FP")], backend)
        lines = disassemble_code_object(code, backend)
        assert "EAX" in lines[0].mnemonic
        assert "EBP" in lines[0].mnemonic

    def test_arm_names(self):
        backend = Arm32Backend()
        code = CodeCache().install([mi("MOV_RR", "R0", "SP")], backend)
        lines = disassemble_code_object(code, backend)
        assert "r0" in lines[0].mnemonic
        assert "sp" in lines[0].mnemonic

    def test_compiled_instruction_is_readable(self):
        """End to end: disassemble what a Cogit actually generated."""
        from tests.jit.test_compilers import JitWorld
        from repro.jit.stack_to_register import StackToRegisterCogit

        world = JitWorld()
        unit = world.bytecode_unit(
            "bytecodePrimAdd",
            input_stack=[world.memory.integer_object_of(1),
                         world.memory.integer_object_of(2)],
        )
        compiler = StackToRegisterCogit(
            world.memory, world.trampolines, world.code_cache, world.backend,
            world.symbols,
        )
        compiled = compiler.compile(unit)
        text = format_disassembly(
            compiled.code_object, world.backend, world.trampolines
        )
        assert "tst_ri" in text  # the checkSmallInteger lowering
        assert "send:+/1" in text  # annotated slow-path call
        assert "brk" in text  # the epilogue markers
