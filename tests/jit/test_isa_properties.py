"""Property tests for the machine ISA encoders."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jit.machine.arm32 import Arm32Backend
from repro.jit.machine.isa import OPCODES, MachineInstruction
from repro.jit.machine.x86 import X86Backend

GENERAL = tuple(f"R{i}" for i in range(12)) + ("FP", "SP")
FLOATS = tuple(f"F{i}" for i in range(8))

#: Ops whose a/b operands are float registers.
FLOAT_A_OPS = {"FLOAD", "FSTORE", "FMOV", "FADD", "FSUB", "FMUL", "FDIV",
               "FCMP", "FSQRT", "CVT_IF"}
FLOAT_B_OPS = {"FMOV", "FADD", "FSUB", "FMUL", "FDIV", "FCMP", "FSQRT",
               "CVT_FI"}
INT_B_OPS = {"FLOAD", "FSTORE", "CVT_IF"}


@st.composite
def machine_instructions(draw):
    op = draw(st.sampled_from(sorted(OPCODES)))
    has_a, has_b, has_imm = OPCODES[op]
    a = b = imm = None
    if has_a:
        pool = FLOATS if op in FLOAT_A_OPS and op != "CVT_FI" else GENERAL
        if op == "CVT_FI":
            pool = GENERAL
        a = draw(st.sampled_from(pool))
    if has_b:
        if op in FLOAT_B_OPS and op not in INT_B_OPS:
            pool = FLOATS
        elif op == "CVT_FI":
            pool = FLOATS
        else:
            pool = GENERAL
        b = draw(st.sampled_from(pool))
    if has_imm:
        imm = draw(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    return MachineInstruction(op, a, b, imm)


@pytest.mark.parametrize("backend", [X86Backend(), Arm32Backend()],
                         ids=lambda b: b.name)
class TestEncodingProperties:
    @given(instructions=st.lists(machine_instructions(), max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_encode_decode_round_trip(self, backend, instructions):
        code = backend.assemble(instructions, 0x1000)
        decoded = [entry[1] for entry in backend.decode(code, 0x1000)]
        assert decoded == instructions

    @given(instruction=machine_instructions())
    @settings(max_examples=60, deadline=None)
    def test_size_prediction_matches_encoding(self, backend, instruction):
        encoded = backend.encode_one(instruction)
        assert len(encoded) == backend.instruction_size(instruction)

    @given(instructions=st.lists(machine_instructions(), max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_addresses_are_dense_and_ordered(self, backend, instructions):
        code = backend.assemble(instructions, 0x2000)
        entries = backend.decode(code, 0x2000)
        position = 0x2000
        for address, _instruction, size in entries:
            assert address == position
            position += size
        assert position == 0x2000 + len(code)
