"""CLI tests: every subcommand, exit codes, error handling."""

from __future__ import annotations

import pytest

from repro.cli import main, resolve_spec


class TestResolveSpec:
    def test_bytecode(self):
        assert resolve_spec("bytecodePrimAdd").kind == "bytecode"

    def test_primitive(self):
        assert resolve_spec("primitiveAt").kind == "native"

    def test_sequence(self):
        spec = resolve_spec("seq:pushTrue+popStackTop")
        assert spec.kind == "sequence"
        assert spec.byte_size == 2

    def test_unknown_bytecode(self):
        with pytest.raises(SystemExit):
            resolve_spec("bogusInstruction")

    def test_unknown_primitive(self):
        with pytest.raises(SystemExit):
            resolve_spec("primitiveBogus")


class TestCommands:
    def test_explore(self, capsys):
        assert main(["explore", "duplicateTop"]) == 0
        out = capsys.readouterr().out
        assert "2 paths" in out
        assert "invalid_frame" in out

    def test_list_bytecodes(self, capsys):
        assert main(["list", "bytecodes"]) == 0
        out = capsys.readouterr().out
        assert "bytecodePrimAdd" in out

    def test_list_natives(self, capsys):
        assert main(["list", "natives"]) == 0
        assert "primitiveFFIReadInt32" in capsys.readouterr().out

    def test_list_sequences(self, capsys):
        assert main(["list", "sequences"]) == 0
        assert "seq:pushTrue+popStackTop" in capsys.readouterr().out

    def test_test_clean_instruction_exits_zero(self, capsys):
        assert main(["test", "pushTrue", "--backend", "x86"]) == 0
        assert "0 differing" in capsys.readouterr().out

    def test_test_defective_instruction_exits_nonzero(self, capsys):
        code = main(["test", "primitiveFloatAdd", "--backend", "x86"])
        assert code == 1
        assert "differing" in capsys.readouterr().out

    def test_test_compiler_selection(self, capsys):
        code = main(["test", "bytecodePrimAdd", "--compiler", "simple",
                     "--backend", "x86"])
        assert code == 1  # the missing type prediction differences
        assert "SimpleStackBasedCogit" in capsys.readouterr().out

    def test_campaign_scaled(self, capsys):
        code = main(["campaign", "--max-bytecodes", "5", "--max-natives", "3",
                     "--backend", "x86"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Native Methods (primitives)" in out
        assert "Total" in out

    def test_sequence_campaign(self, capsys):
        code = main(["campaign", "--sequences", "--backend", "x86"])
        assert code == 0
        out = capsys.readouterr().out
        assert "(sequences)" in out
        # The register compilers match the interpreter on every sequence.
        assert "StackToRegisterCogit (sequences)" in out

    def test_campaign_journal_then_resume(self, tmp_path, capsys):
        journal = tmp_path / "run.jsonl"
        args = ["campaign", "--max-bytecodes", "2", "--max-natives", "1",
                "--backend", "x86", "--journal", str(journal)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert journal.exists()

        assert main(args + ["--resume"]) == 0
        resumed = capsys.readouterr().out
        assert "resumed" in resumed
        # Replayed cells reproduce the same Table 2.
        assert first.splitlines()[:7] == resumed.splitlines()[:7]

    def test_campaign_triage_prints_causes(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main([
            "campaign", "--only", "primitiveMod", "--backend", "x86",
            "--fault-describer-gaps", "R10,R11",
            "--triage", "--confirm-runs", "1", "--repro-dir", "repros",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Causes (--triage): 1 cause bucket(s)" in out
        assert "confirmation: deterministic (1/1)" in out
        assert "self-check: asserted" in out
        assert "Reproducers in: repros" in out
        assert list((tmp_path / "repros").glob("*.py"))

    def test_campaign_resume_requires_journal(self):
        with pytest.raises(SystemExit, match="--resume requires --journal"):
            main(["campaign", "--resume", "--backend", "x86"])

    def test_campaign_deadline_exhaustion_exits_2(self, capsys):
        code = main(["campaign", "--max-bytecodes", "2", "--max-natives", "1",
                     "--backend", "x86", "--deadline", "0"])
        assert code == 2
        assert "deadline expired" in capsys.readouterr().out

    def test_campaign_quarantine_section_printed(self, capsys):
        from repro.robustness.faults import FaultPlan, inject_faults

        plan = FaultPlan(stage="compile", compiler="SimpleStackBasedCogit")
        with inject_faults(plan):
            code = main(["campaign", "--max-bytecodes", "1",
                         "--max-natives", "1", "--backend", "x86"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Quarantined cells: 1" in out
        assert "CompilerCrash" in out

    def test_disasm(self, capsys):
        assert main(["disasm", "bytecodePrimAdd", "--backend", "arm32"]) == 0
        out = capsys.readouterr().out
        assert "arm32 code object" in out
        assert "send:+/1" in out

    def test_disasm_sequence(self, capsys):
        assert main(["disasm", "seq:pushOne+pushTwo+bytecodePrimAdd"]) == 0
        assert "brk" in capsys.readouterr().out

    def test_generate(self, tmp_path, capsys):
        code = main(["generate", str(tmp_path), "pushTrue", "primitiveAdd"])
        assert code == 0
        assert "generated" in capsys.readouterr().out
        assert list(tmp_path.glob("test_*.py"))


class TestCacheCLI:
    """`repro campaign` cache flags, the stats line CI parses, and the
    `repro cache` inspection subcommand."""

    ARGS = ["campaign", "--max-bytecodes", "2", "--max-natives", "1",
            "--backend", "x86"]

    def test_stats_line_cold_then_warm(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(self.ARGS + ["--cache-dir", cache]) == 0
        cold = capsys.readouterr().out
        assert ("result cache: 0 hits / 7 misses (0 stale) "
                "-- hit rate 0.0%") in cold
        assert main(self.ARGS + ["--cache-dir", cache]) == 0
        warm = capsys.readouterr().out
        assert ("result cache: 7 hits / 0 misses (0 stale) "
                "-- hit rate 100.0%") in warm

    def test_no_cache_suppresses_the_store(self, capsys):
        assert main(self.ARGS + ["--no-cache"]) == 0
        assert "result cache:" not in capsys.readouterr().out

    def test_default_cache_dir_comes_from_env(self, tmp_path, capsys,
                                              monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        assert main(self.ARGS) == 0
        assert "result cache:" in capsys.readouterr().out
        assert (tmp_path / "envcache").exists()

    def test_cache_inspect_gc_clear(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        main(self.ARGS + ["--cache-dir", cache])
        capsys.readouterr()

        assert main(["cache", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert f"cache directory: {cache}" in out
        assert "entries:         7" in out
        assert "current" in out

        assert main(["cache", "--cache-dir", cache, "--gc"]) == 0
        assert "compacted to 7 entries" in capsys.readouterr().out

        assert main(["cache", "--cache-dir", cache, "--clear"]) == 0
        assert "removed 1 store file(s)" in capsys.readouterr().out
        assert main(["cache", "--cache-dir", cache]) == 0
        assert "entries:         0" in capsys.readouterr().out
