"""Unit tests for compiled methods, headers, symbols and heap layout."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bytecode.methods import CompiledMethod, MethodBuilder, SymbolTable
from repro.errors import BytecodeError
from repro.memory import bootstrap_memory


@pytest.fixture
def memory():
    return bootstrap_memory(heap_words=4096)[0]


class TestHeader:
    @given(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=1023),
    )
    def test_header_round_trip(self, num_args, extra_temps, num_literals, prim):
        num_temps = min(num_args + extra_temps, 63)
        method = CompiledMethod(
            num_args=num_args,
            num_temps=num_temps,
            primitive_index=prim,
            literals=[0] * num_literals,
        )
        assert CompiledMethod.header_fields(method.header_value) == (
            num_args,
            num_temps,
            num_literals,
            prim,
        )

    def test_temps_cannot_undercount_args(self):
        with pytest.raises(BytecodeError):
            CompiledMethod(num_args=3, num_temps=1)


class TestSymbolTable:
    def test_interning_is_idempotent(self, memory):
        symbols = SymbolTable(memory)
        assert symbols.intern("at:put:") == symbols.intern("at:put:")

    def test_reverse_lookup(self, memory):
        symbols = SymbolTable(memory)
        oop = symbols.intern("+")
        assert symbols.name_of(oop) == "+"
        assert symbols.name_of(12345) is None

    def test_symbol_bytes_on_heap(self, memory):
        symbols = SymbolTable(memory)
        oop = symbols.intern("abc")
        assert memory.num_slots_of(oop) == 3
        assert [memory.fetch_pointer(i, oop) for i in range(3)] == [97, 98, 99]


class TestMethodBuilder:
    def test_build_simple_method(self, memory):
        method = (
            MethodBuilder(memory)
            .args(2)
            .temps(3)
            .emit(0x31, 0x32, 0x80)
            .build()
        )
        assert method.num_args == 2
        assert method.num_temps == 3
        assert method.bytecodes == bytes([0x31, 0x32, 0x80])
        assert method.oop != 0

    def test_literals_are_heap_slots(self, memory):
        builder = MethodBuilder(memory)
        lit = memory.integer_object_of(77)
        index = builder.literal(lit)
        method = builder.build()
        assert index == 0
        assert memory.fetch_pointer(1, method.oop) == lit
        assert method.literal_at(0) == lit

    def test_selector_literal(self, memory):
        builder = MethodBuilder(memory)
        index = builder.selector_literal("foo")
        method = builder.build()
        assert builder.symbols.name_of(method.literal_at(index)) == "foo"

    def test_header_on_heap_is_tagged(self, memory):
        method = MethodBuilder(memory).args(1).build()
        header_oop = memory.fetch_pointer(0, method.oop)
        assert memory.is_integer_object(header_oop)
        assert memory.integer_value_of(header_oop) == method.header_value

    def test_literal_index_out_of_range(self, memory):
        method = MethodBuilder(memory).build()
        with pytest.raises(BytecodeError):
            method.literal_at(0)

    def test_byte_out_of_range_rejected(self, memory):
        with pytest.raises(BytecodeError):
            MethodBuilder(memory).emit(300)
