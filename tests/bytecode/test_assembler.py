"""Round-trip and error tests for assembler/disassembler."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bytecode.assembler import assemble
from repro.bytecode.disassembler import disassemble
from repro.bytecode.opcodes import BYTECODE_TABLE
from repro.errors import BytecodeError


class TestAssemble:
    def test_simple_sequence(self):
        code = assemble(["pushTrue", "pushFalse", "bytecodePrimAdd"])
        assert code == bytes([0x31, 0x32, 0x80])

    def test_operand_encoding(self):
        code = assemble([("longJump", -2)])
        assert code == bytes([0x78, 0xFE])

    def test_two_byte_operand_little_endian(self):
        code = assemble([("callPrimitive", 0x0102)])
        assert code == bytes([0xC8, 0x02, 0x01])

    def test_spurious_operand_rejected(self):
        with pytest.raises(BytecodeError):
            assemble([("pushTrue", 1)])

    def test_missing_operand_rejected(self):
        with pytest.raises(BytecodeError):
            assemble(["longJump"])

    def test_operand_range_enforced(self):
        with pytest.raises(BytecodeError):
            assemble([("longJump", 300)])


class TestDisassemble:
    def test_unknown_opcode_raises(self):
        with pytest.raises(BytecodeError):
            disassemble(bytes([0xFF]))

    def test_truncated_operand_raises(self):
        with pytest.raises(BytecodeError):
            disassemble(bytes([0x78]))

    def test_pcs_advance_by_size(self):
        instructions = disassemble(assemble(["pushTrue", ("longJump", 0), "nop"]))
        assert [i.pc for i in instructions] == [0, 1, 3]

    def test_mnemonic_rendering(self):
        (instruction,) = disassemble(assemble([("longJump", 5)]))
        assert instruction.mnemonic == "longJump(5)"


# Strategy: any defined encoding with suitable operands.
def _instruction_strategy():
    def to_insn(bc, value):
        if bc.family.operand_bytes == 0:
            return bc.name
        if bc.family.operand_bytes == 1:
            return (bc.name, value % 256)
        return (bc.name, value % 65536)

    return st.builds(
        to_insn,
        st.sampled_from(sorted(BYTECODE_TABLE.values(), key=lambda b: b.opcode)),
        st.integers(min_value=0, max_value=65535),
    )


class TestRoundTrip:
    @given(st.lists(_instruction_strategy(), max_size=20))
    def test_assemble_disassemble_round_trip(self, instructions):
        code = assemble(instructions)
        decoded = disassemble(code)
        assert assemble(
            [
                insn.bytecode.name
                if not insn.operands
                else (insn.bytecode.name, insn.operands[0])
                for insn in decoded
            ]
        ) == code
