"""Unit tests for the byte-code table structure."""

from __future__ import annotations

import pytest

from repro.bytecode.opcodes import BYTECODE_TABLE, FAMILIES, bytecode_named
from repro.bytecode.opcodes import testable_bytecodes as all_testable_bytecodes
from repro.errors import BytecodeError


class TestTableStructure:
    def test_no_opcode_collisions(self):
        # _build_table would have raised; spot-check density instead.
        opcodes = sorted(BYTECODE_TABLE)
        assert len(opcodes) == len(set(opcodes))

    def test_family_expansion_counts(self):
        assert sum(f.count for f in FAMILIES) == len(BYTECODE_TABLE)

    def test_scale_matches_paper_order_of_magnitude(self):
        # Paper: 175 tested byte-code instructions from 77 families.
        assert len(all_testable_bytecodes()) >= 175
        assert len(FAMILIES) >= 30

    def test_all_opcodes_are_bytes(self):
        assert all(0 <= op <= 0xFF for op in BYTECODE_TABLE)

    def test_embedded_index_matches_offset(self):
        for opcode, bc in BYTECODE_TABLE.items():
            assert opcode == bc.family.first_opcode + bc.embedded_index

    def test_untestable_families_are_excluded(self):
        names = {bc.name for bc in all_testable_bytecodes()}
        assert "pushThisContext" not in names
        assert "callPrimitive" not in names


class TestLookup:
    def test_lookup_indexed_encoding(self):
        bc = bytecode_named("pushTemporaryVariable3")
        assert bc.family.name == "pushTemporaryVariable"
        assert bc.embedded_index == 3
        assert bc.opcode == 0x13

    def test_lookup_singleton(self):
        assert bytecode_named("duplicateTop").opcode == 0x38

    def test_unknown_name_raises(self):
        with pytest.raises(BytecodeError):
            bytecode_named("fooBar")

    def test_arithmetic_bytecodes_present(self):
        add = bytecode_named("bytecodePrimAdd")
        assert add.opcode == 0x80
        assert add.family.min_stack == 2
        assert bytecode_named("bytecodePrimBitShift").opcode == 0x90

    def test_instruction_sizes(self):
        assert bytecode_named("pushReceiver").size == 1
        assert bytecode_named("longJump").size == 2
        assert bytecode_named("callPrimitive").size == 3
