"""R10/R11 mutant fidelity to ``--fault-describer-gaps`` (satellite 3).

The simulator mutants subsume the historical config knob: a campaign
run under mutants ``R10, R11`` must reproduce the
``--fault-describer-gaps R10,R11`` campaign **exactly** — the same
comparison records byte for byte, and therefore the same historical
Table 3 rows (the paper's "Simulation Error" family).
"""

from __future__ import annotations

import pytest

from repro.difftest.report import format_table2, format_table3
from repro.difftest.runner import CampaignConfig, run_campaign
from repro.mutation.recall import campaign_fingerprint

#: The seeded-flood scenario of tests/triage/test_campaign_triage.py:
#: the three natives whose faults need R10/R11 in their descriptions.
SCOPE = ("primitiveFloatTruncated", "primitiveMod", "primitiveConstantFill")


@pytest.fixture(scope="module")
def via_mutants():
    return run_campaign(CampaignConfig(
        only=SCOPE, max_paths_per_instruction=16, mutants=("R10", "R11"),
    ))


@pytest.fixture(scope="module")
def via_config_knob():
    return run_campaign(CampaignConfig(
        only=SCOPE, max_paths_per_instruction=16,
        fault_describer_gaps=("R10", "R11"),
    ))


class TestFidelity:
    def test_reports_byte_identical(self, via_mutants, via_config_knob):
        assert campaign_fingerprint(via_mutants) == campaign_fingerprint(
            via_config_knob
        )

    def test_table3_rows_identical(self, via_mutants, via_config_knob):
        assert format_table3(via_mutants) == format_table3(via_config_knob)

    def test_table2_rows_identical(self, via_mutants, via_config_knob):
        assert format_table2(via_mutants) == format_table2(via_config_knob)

    def test_gap_actually_seeded(self, via_mutants):
        # The historical defect surfaces as simulation errors — the
        # mutated campaign must actually differ from a clean one.
        clean = run_campaign(CampaignConfig(
            only=SCOPE, max_paths_per_instruction=16,
        ))
        assert campaign_fingerprint(via_mutants) != campaign_fingerprint(
            clean
        )
