"""Registry unit tests: inventory, refcounting, byte-exact reversal.

Every registered operator patches live class/module attributes; these
tests assert the activation contract from
:mod:`repro.mutation.registry` — apply on the 0→1 transition, revert
on 1→0, and the *exact original objects* back in place afterwards.
"""

from __future__ import annotations

import pytest

from repro.interpreter import primitives as _primitives
from repro.interpreter.interpreter import Interpreter
from repro.jit.compiler import BytecodeCogit
from repro.jit.machine.simulator import MachineSimulator
from repro.jit.stack_to_register import StackToRegisterCogit
from repro.memory.object_memory import ObjectMemory
from repro.mutation import (
    FAMILIES,
    MUTANTS,
    Mutant,
    activated,
    active_ids,
    all_ids,
    by_family,
    get,
    parse_mutants,
    register,
)
from repro.mutation.registry import _revert

#: Every attribute any registered operator touches.  Snapshots of
#: these are compared *by identity* around an apply/revert cycle.
PATCH_POINTS = (
    (Interpreter, "_arith_binary"),
    (ObjectMemory, "is_integer_object"),
    (ObjectMemory, "are_integers"),
    (_primitives, "_fail"),
    (BytecodeCogit, "gen_bytecodePrimLessThan"),
    (BytecodeCogit, "TMP_B"),
    (StackToRegisterCogit, "gen_flush"),
    (MachineSimulator, "__init__"),
)


def snapshot():
    return tuple(getattr(obj, name) for obj, name in PATCH_POINTS)


class TestInventory:
    def test_all_ids(self):
        assert all_ids() == (
            "C1", "C2", "C3", "I1", "I2", "I3", "R10", "R11",
        )

    def test_families(self):
        assert {m.family for m in MUTANTS.values()} == set(FAMILIES)
        assert [m.id for m in by_family("interpreter")] == ["I1", "I2", "I3"]
        assert [m.id for m in by_family("compiler")] == ["C1", "C2", "C3"]
        assert [m.id for m in by_family("simulator")] == ["R10", "R11"]

    def test_expected_caught_subset(self):
        # Every mutant now sits inside the CI recall gate: C3 is
        # caught through the stitched-method corpus and R11 through
        # primitiveFloatFractionPart's FLOAD fault (docs/MUTATION.md).
        outside_gate = [
            m.id for m in MUTANTS.values() if not m.expected_caught
        ]
        assert outside_gate == []

    def test_corpus_assignments(self):
        # C3 is the only mutant swept through the stitched corpus;
        # everything else runs the main single-instruction campaign.
        stitched = [
            m.id for m in MUTANTS.values() if m.corpus == "stitched"
        ]
        assert stitched == ["C3"]
        assert all(
            m.corpus in ("main", "stitched") for m in MUTANTS.values()
        )

    def test_convergence_bounds(self):
        # The register clobber is the one mutant whose phenotype spans
        # generators, so it alone carries no convergence bound.
        assert get("C2").convergence_bound is None
        assert all(
            m.convergence_bound == 2
            for m in MUTANTS.values() if m.id != "C2"
        )

    def test_get_unknown_lists_inventory(self):
        with pytest.raises(KeyError, match="R10"):
            get("Z9")

    def test_register_rejects_duplicate_id(self):
        with pytest.raises(ValueError, match="duplicate"):
            register(Mutant(
                id="I1", family="interpreter", target="x",
                description="dup", install=lambda: (lambda: None),
            ))

    def test_register_rejects_unknown_family(self):
        with pytest.raises(ValueError, match="family"):
            register(Mutant(
                id="Z9", family="oracle", target="x",
                description="bad family", install=lambda: (lambda: None),
            ))


class TestParseMutants:
    def test_comma_split_and_dedupe(self):
        assert parse_mutants(["R10,C1", "R10", "C1,I1"]) == (
            "R10", "C1", "I1",
        )

    def test_empty(self):
        assert parse_mutants(None) == ()
        assert parse_mutants(["", " , "]) == ()

    def test_unknown_id_exits_with_inventory(self):
        with pytest.raises(SystemExit) as excinfo:
            parse_mutants(["R10,RR11"])
        message = str(excinfo.value)
        assert "RR11" in message
        assert "R10" in message  # the registered inventory is listed


class TestActivation:
    @pytest.mark.parametrize("mutant_id", all_ids())
    def test_apply_then_revert_restores_originals(self, mutant_id):
        before = snapshot()
        with activated((mutant_id,)):
            assert active_ids() == (mutant_id,)
            during = snapshot()
            assert any(a is not b for a, b in zip(before, during)), (
                f"mutant {mutant_id} patched nothing"
            )
        assert active_ids() == ()
        after = snapshot()
        assert all(a is b for a, b in zip(before, after)), (
            f"mutant {mutant_id} did not restore the original attributes"
        )

    def test_nesting_is_reference_counted(self):
        original = Interpreter._arith_binary
        with activated(("I1",)):
            patched = Interpreter._arith_binary
            assert patched is not original
            with activated(("I1", "C1")):
                # Inner activation must not re-patch (same object)...
                assert Interpreter._arith_binary is patched
                assert set(active_ids()) == {"I1", "C1"}
            # ...and the inner exit must not revert the outer hold.
            assert Interpreter._arith_binary is patched
            assert active_ids() == ("I1",)
        assert Interpreter._arith_binary is original

    def test_reverts_on_exception(self):
        before = snapshot()
        with pytest.raises(RuntimeError, match="boom"):
            with activated(("I2", "C2")):
                raise RuntimeError("boom")
        assert all(a is b for a, b in zip(before, snapshot()))
        assert active_ids() == ()

    def test_empty_activation_is_noop(self):
        before = snapshot()
        with activated(()):
            assert snapshot() == before
            assert active_ids() == ()

    def test_unbalanced_revert_raises(self):
        with pytest.raises(RuntimeError, match="not active"):
            _revert("I1")

    def test_unknown_id_raises_before_patching(self):
        before = snapshot()
        with pytest.raises(KeyError):
            with activated(("Z9",)):
                pass  # pragma: no cover - never reached
        assert all(a is b for a, b in zip(before, snapshot()))
