"""Mutant ids survive every re-execution path (ISSUE satellite 2).

A quarantine retry runs the cell again under ``config.reduced()``; a
parallel campaign triages in the *parent* process over records the
workers produced.  Both must see the same mutated semantics as the
original execution, or a retry would "fix" a seeded defect by
accident and triage would report every mutant-seeded cause as
vanished.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.difftest.runner import CampaignConfig, run_campaign
from repro.mutation.recall import campaign_fingerprint
from repro.triage import TriageConfig
from repro.triage.lab import TriageLab


class TestConfigThreading:
    def test_reduced_preserves_mutants_and_gaps(self):
        config = CampaignConfig(
            mutants=("R10", "C1"), fault_describer_gaps=("R11",),
        )
        reduced = config.reduced()
        assert reduced.mutants == ("R10", "C1")
        assert reduced.fault_describer_gaps == ("R11",)
        # ...while the budgets did shrink, which is reduced()'s job.
        assert (reduced.max_paths_per_instruction
                < config.max_paths_per_instruction)

    def test_triage_lab_preserves_mutants(self):
        config = CampaignConfig(mutants=("I1",))
        lab = TriageLab(config)
        assert lab.config.mutants == ("I1",)


class TestRetrySemantics:
    def test_reduced_config_reproduces_mutated_semantics(self):
        # The exact config a quarantine retry would run: reduced
        # budgets, same mutants.  It must still differ from a clean
        # reduced run — i.e. the retry re-seeds the defect.
        config = CampaignConfig(
            only=("primitiveFloatTruncated",),
            max_paths_per_instruction=8,
            mutants=("R10",),
        ).reduced()
        mutated = campaign_fingerprint(run_campaign(config))
        clean = campaign_fingerprint(
            run_campaign(replace(config, mutants=()))
        )
        assert mutated != clean


class TestParallelTriage:
    @pytest.fixture(scope="class")
    def parallel_triaged(self):
        return run_campaign(
            CampaignConfig(
                only=("primitiveFloatTruncated",),
                max_paths_per_instruction=16,
                mutants=("R10",),
            ),
            jobs=2,
            triage=TriageConfig(confirm_runs=2, repro_dir=None,
                                shrink=False, self_verify=False),
        )

    def test_parent_triage_confirms_mutant_defects(self, parallel_triaged):
        # Workers ran mutated; triage runs in the parent.  Before the
        # engine activated config.mutants itself, every confirmation
        # replayed *unmutated* semantics and the causes vanished.
        triage = parallel_triaged.triage
        causes = list(triage.causes) + list(triage.crash_causes)
        assert causes
        assert all(c.confirmation != "vanished" for c in causes)
        assert any(c.confirmation == "deterministic" for c in causes)
