"""CLI surface of the mutation engine (ISSUE satellite 1 + tentpole).

`--fault-describer-gaps` validation: unknown register names used to be
silently ignored (the simulator derives its getter table by set
difference, so a typo seeded nothing and reported nothing); now they
exit with the valid inventory.  Plus the `repro mutate` subcommand:
inventory listing, argument validation, and one end-to-end tiny sweep.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main, parse_fault_describer_gaps


class TestFaultDescriberGapValidation:
    def test_valid_names(self):
        assert parse_fault_describer_gaps("R10,R11") == ("R10", "R11")

    def test_dedupe_preserves_order(self):
        assert parse_fault_describer_gaps("R11,R10,R11,R10") == ("R11", "R10")

    def test_empty(self):
        assert parse_fault_describer_gaps(None) == ()
        assert parse_fault_describer_gaps("") == ()
        assert parse_fault_describer_gaps(" , ") == ()

    def test_unknown_register_exits_with_inventory(self):
        with pytest.raises(SystemExit) as excinfo:
            parse_fault_describer_gaps("R10,RR11")
        message = str(excinfo.value)
        assert "RR11" in message
        assert "valid registers" in message
        assert "R11" in message

    def test_campaign_rejects_unknown_register(self):
        with pytest.raises(SystemExit, match="BOGUS"):
            main(["campaign", "--fault-describer-gaps", "BOGUS",
                  "--only", "pushTrue"])

    def test_campaign_rejects_unknown_mutant(self):
        with pytest.raises(SystemExit, match="unknown mutant"):
            main(["campaign", "--mutant", "Z9", "--only", "pushTrue"])


class TestMutateCommand:
    def test_list_inventory(self, capsys):
        assert main(["mutate", "--list"]) == 0
        out = capsys.readouterr().out
        for mutant_id in ("I1", "I2", "I3", "C1", "C2", "C3", "R10", "R11"):
            assert mutant_id in out
        gated = [line.split()[0] for line in out.splitlines()
                 if "[outside CI gate]" in line]
        assert gated == []
        stitched = [line.split()[0] for line in out.splitlines()
                    if "[stitched corpus]" in line]
        assert stitched == ["C3"]

    def test_rejects_unknown_mutant(self):
        with pytest.raises(SystemExit, match="unknown mutant"):
            main(["mutate", "--mutant", "R10,RR11"])

    def test_rejects_bad_budgets(self):
        with pytest.raises(SystemExit, match="--budgets"):
            main(["mutate", "--budgets", "4,x"])

    def test_resume_requires_journal_dir(self):
        with pytest.raises(SystemExit, match="--journal-dir"):
            main(["mutate", "--resume"])

    def test_tiny_sweep_end_to_end(self, tmp_path, capsys):
        json_path = tmp_path / "recall.json"
        code = main([
            "mutate", "--mutant", "R10",
            "--only", "primitiveFloatTruncated",
            "--budgets", "4", "--no-triage",
            "--json", str(json_path),
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "Mutation recall (repro mutate)" in captured.out
        assert "Recall over the expected-caught subset: 1/1" in captured.out
        # Progress lines go to stderr so stdout stays deterministic.
        assert "mutate:" in captured.err
        assert "mutate:" not in captured.out
        payload = json.loads(json_path.read_text())
        assert payload["recall"] == {"caught": 1, "expected": 1, "rate": 1.0}
        assert payload["mutants"]["R10"]["status"] == "caught"
