"""The apply/revert round-trip property (ISSUE satellite 3).

For *every* registered mutant: run a full (scoped) campaign with the
mutant active, then re-run the unmutated campaign and require its
report to be **byte-identical** to the pre-mutation baseline.  This is
the acceptance criterion that makes the mutation engine safe to embed
in a long-lived process: no operator may leak state past its
activation, not even after a whole campaign ran under it.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.difftest.runner import CampaignConfig, run_campaign
from repro.jit.machine.x86 import X86Backend
from repro.mutation import all_ids
from repro.mutation.recall import campaign_fingerprint

#: One bytecode (exercises all three bytecode front-ends) plus one
#: native primitive (exercises the native template compiler), small
#: path budget: every operator family gets executed, cheaply.
SCOPE = CampaignConfig(
    only=("bytecodePrimAdd", "primitiveAdd"),
    backends=(X86Backend,),
    max_paths_per_instruction=4,
)


@pytest.fixture(scope="module")
def baseline_fingerprint():
    return campaign_fingerprint(run_campaign(SCOPE))


@pytest.mark.parametrize("mutant_id", all_ids())
def test_campaign_report_identical_after_apply_revert(
    mutant_id, baseline_fingerprint
):
    # Run the whole campaign under the mutant (activation happens
    # inside execute_cell, driven by config.mutants)...
    run_campaign(replace(SCOPE, mutants=(mutant_id,)))
    # ...then the unmutated campaign must be byte-identical to the
    # baseline taken before any mutant was ever applied.
    after = campaign_fingerprint(run_campaign(SCOPE))
    assert after == baseline_fingerprint
