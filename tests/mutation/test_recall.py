"""The detection-recall sweep: detection, convergence, determinism.

`run_recall` is the tentpole's measurement half: baseline vs mutated
campaign fingerprints per budget, plan-order first-detection indices,
and triage convergence at the top budget.  The sweep's stdout surface
(and its timing-free JSON) must be byte-identical across ``-j1`` /
``-jN`` / ``--resume`` — asserted here end to end.
"""

from __future__ import annotations

import json

import pytest

from repro.difftest.runner import CampaignConfig
from repro.mutation.recall import (
    campaign_fingerprint,
    first_divergence,
    format_recall,
    run_recall,
)


def _line(instruction="bytecodePrimAdd", compiler="simple", backend="x86",
          status="SAME"):
    return json.dumps(
        {"instruction": instruction, "compiler": compiler,
         "backend": backend, "status": status},
        sort_keys=True,
    )


class TestFirstDivergence:
    def test_identical_reports(self):
        lines = (_line(), _line(compiler="s2r"))
        assert first_divergence(lines, lines) is None

    def test_first_deviating_index_and_label(self):
        baseline = (_line(), _line(compiler="s2r"))
        mutated = (_line(), _line(compiler="s2r", status="DIFFERENT"))
        assert first_divergence(baseline, mutated) == (
            1, "bytecodePrimAdd[s2r/x86]#1",
        )

    def test_length_mismatch_is_a_divergence(self):
        baseline = (_line(),)
        mutated = (_line(), _line(compiler="s2r"))
        index, label = first_divergence(baseline, mutated)
        assert index == 1
        assert label.startswith("bytecodePrimAdd[s2r")


@pytest.fixture(scope="module")
def sweep():
    """One real sweep: two catchable mutants, one budget, with triage."""
    config = CampaignConfig(
        only=("primitiveFloatTruncated", "bytecodePrimLessThan"),
    )
    return run_recall(config, ("R10", "C1"), (4,), convergence=True,
                      confirm_runs=1)


class TestSweep:
    def test_both_mutants_caught(self, sweep):
        assert [o.status for o in sweep.outcomes] == ["caught", "caught"]
        assert sweep.recall == 1.0

    def test_first_detection_recorded(self, sweep):
        for outcome in sweep.outcomes:
            index, label = outcome.first_detection[4]
            assert index >= 0
            assert "[" in label and "#" in label

    def test_convergence_measured_at_top_budget(self, sweep):
        assert sweep.convergence_budget == 4
        assert sweep.baseline_cause_buckets is not None
        for outcome in sweep.outcomes:
            assert outcome.new_cause_buckets >= 1
            assert 1 <= outcome.new_cause_explanations
            assert outcome.new_cause_explanations <= outcome.new_cause_buckets

    def test_seeded_defect_collapses_to_few_explanations(self, sweep):
        # The convergence target: one seeded defect, ideally one
        # explanation (the CI gate allows two).
        for outcome in sweep.outcomes:
            assert outcome.new_cause_explanations <= 2

    def test_to_dict_shape(self, sweep):
        payload = sweep.to_dict()
        assert payload["recall"] == {"caught": 2, "expected": 2, "rate": 1.0}
        assert payload["budgets"] == [4]
        r10 = payload["mutants"]["R10"]
        assert r10["status"] == "caught"
        assert r10["detected"] == {"4": True}
        assert "seconds" not in r10  # timing only when asked for
        assert "seconds" in sweep.to_dict(include_timing=True)["mutants"]["R10"]

    def test_format_recall_renders(self, sweep):
        text = format_recall(sweep)
        assert "Mutation recall (repro mutate)" in text
        assert "R10" in text and "C1" in text
        assert "Recall over the expected-caught subset: 2/2 (100.0%)" in text


class TestDeterminism:
    def test_byte_identical_across_jobs_and_resume(self, tmp_path):
        config = CampaignConfig(only=("primitiveFloatTruncated",))
        kwargs = dict(budgets=(4,), convergence=False)
        sequential = run_recall(
            config, ("R10",), jobs=1,
            journal_dir=tmp_path / "seq", **kwargs,
        )
        parallel = run_recall(
            config, ("R10",), jobs=2,
            journal_dir=tmp_path / "par", **kwargs,
        )
        resumed = run_recall(
            config, ("R10",), jobs=1,
            journal_dir=tmp_path / "seq", resume=True, **kwargs,
        )
        reference = sequential.to_dict(include_timing=False)
        assert parallel.to_dict(include_timing=False) == reference
        assert resumed.to_dict(include_timing=False) == reference
        assert (format_recall(sequential) == format_recall(parallel)
                == format_recall(resumed))


class TestBaselineUndisturbed:
    def test_unmutated_fingerprint_stable_across_a_sweep(self, sweep):
        # The acceptance criterion from the other side: after a whole
        # recall sweep (many apply/revert cycles), a fresh unmutated
        # campaign still fingerprints identically to a fresh one.
        from repro.difftest.runner import run_campaign

        config = CampaignConfig(
            only=("bytecodePrimLessThan",), max_paths_per_instruction=4,
        )
        first = campaign_fingerprint(run_campaign(config))
        second = campaign_fingerprint(run_campaign(config))
        assert first == second


class TestCacheEconomics:
    """`repro mutate` with a result store: byte-identical sweeps, and
    the mutant phase re-runs only the cells its patch invalidates."""

    CONFIG = CampaignConfig(only=("pushTrue", "bytecodePrimLessThan"))

    def test_cached_sweep_is_byte_identical(self, tmp_path):
        kwargs = dict(budgets=(4,), convergence=False)
        plain = run_recall(self.CONFIG, ("C1",), **kwargs)
        cache_dir = str(tmp_path / "cache")
        cold = run_recall(self.CONFIG, ("C1",), cache_dir=cache_dir,
                          **kwargs)
        warm = run_recall(self.CONFIG, ("C1",), cache_dir=cache_dir,
                          **kwargs)
        reference = plain.to_dict(include_timing=False)
        assert cold.to_dict(include_timing=False) == reference
        assert warm.to_dict(include_timing=False) == reference
        assert (format_recall(plain) == format_recall(cold)
                == format_recall(warm))

    def test_mutant_phase_reuses_baseline_cells(self, tmp_path):
        """C1 patches gen_bytecodePrimLessThan only, so after the
        baseline phase the mutated campaign stores exactly the three
        bytecodePrimLessThan cells — the pushTrue cells are served from
        the baseline's records."""
        from repro.incremental import ResultStore

        cache_dir = str(tmp_path / "cache")
        run_recall(self.CONFIG, ("C1",), budgets=(4,), convergence=False,
                   cache_dir=cache_dir)
        store = ResultStore(cache_dir)
        store.load()
        # 6 baseline cells (2 bytecodes x 3 compilers) + 3 invalidated.
        assert store.stats.entries == 9
