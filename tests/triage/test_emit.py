"""Reproducer emission and the Causes report section (pure parts)."""

from __future__ import annotations

import ast

from hypothesis import given
from hypothesis import strategies as st

from repro.difftest.runner import CampaignConfig
from repro.triage import (
    CrashCause,
    TriageCause,
    TriageReport,
    format_causes,
)
from repro.triage.emit import (
    _literal,
    emit_reproducer,
    reproducer_filename,
    reproducer_source,
)
from tests.triage.test_signature import SIGNATURE

CONFIG = CampaignConfig(fault_describer_gaps=("R10", "R11"))


def make_cause(**overrides):
    values = dict(
        signature=SIGNATURE,
        count=12,
        backends=("arm32", "x86"),
        exemplar_backend="x86",
        exemplar_detail="InvalidMemoryAccess",
        confirmation="deterministic",
        confirmed_runs=2,
        total_runs=2,
        original_constraints=16,
        shrink_trials=21,
        shrunken_shape="is_float(receiver)",
        constraints=(("is_float(receiver)", True),),
        model={"int_values": {"stack_size": 1}, "kinds": {}},
    )
    values.update(overrides)
    return TriageCause(**values)


# Values _literal can render: lists come back as tuples, so the
# round-trip comparison normalizes lists first.
literal_values = st.recursive(
    st.none() | st.booleans() | st.integers() | st.text(max_size=8),
    lambda children: (
        st.lists(children, max_size=3)
        | st.dictionaries(st.text(max_size=5), children, max_size=3)
    ),
    max_leaves=12,
)


def as_tuples(value):
    if isinstance(value, dict):
        return {key: as_tuples(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple)):
        return tuple(as_tuples(entry) for entry in value)
    return value


class TestLiteralRendering:
    @given(literal_values)
    def test_renders_evaluable_equal_literals(self, value):
        assert ast.literal_eval(_literal(value)) == as_tuples(value)

    @given(st.dictionaries(st.text(max_size=5), st.integers(), max_size=5))
    def test_insertion_order_never_leaks(self, mapping):
        reversed_insertion = dict(reversed(list(mapping.items())))
        assert _literal(mapping) == _literal(reversed_insertion)


class TestReproducerSource:
    def test_rendering_is_deterministic(self):
        cause = make_cause()
        assert reproducer_source(cause, CONFIG) == reproducer_source(
            make_cause(), CONFIG
        )

    def test_embeds_signature_and_inputs(self):
        source = reproducer_source(make_cause(), CONFIG)
        assert SIGNATURE.canonical() in source
        assert SIGNATURE.digest in source
        assert "'backend': 'x86'" in source
        assert "('is_float(receiver)', True)" in source
        assert "FAULT_DESCRIBER_GAPS = ('R10', 'R11')" in source
        assert "from repro.triage.replay import replay" in source

    def test_filename_is_slug_plus_digest(self):
        name = reproducer_filename(SIGNATURE)
        assert name == (
            f"missing-getter-R10-primitiveFloatTruncated-{SIGNATURE.digest}.py"
        )

    def test_emission_is_idempotent_and_self_healing(self, tmp_path):
        cause = make_cause()
        path = emit_reproducer(cause, tmp_path, CONFIG)
        source = path.read_text(encoding="utf-8")
        assert emit_reproducer(cause, tmp_path, CONFIG) == path
        assert path.read_text(encoding="utf-8") == source
        path.write_text("clobbered", encoding="utf-8")
        emit_reproducer(cause, tmp_path, CONFIG)
        assert path.read_text(encoding="utf-8") == source


class TestCausesSection:
    def report(self):
        crash = CrashCause(
            signature=SIGNATURE,
            count=2,
            stage="compiler",
            error_class="CompilerCrash",
            exemplar_message="x" * 150,
            confirmation="unconfirmed",
            confirmed_runs=0,
            total_runs=0,
        )
        return TriageReport(
            causes=[make_cause(repro_file="repro.py", verified=True)],
            crash_causes=[crash],
            divergence_count=12,
            crash_count=2,
            repro_dir="repros",
        )

    def test_section_lists_buckets_and_crashes(self):
        text = format_causes(self.report())
        assert "Causes (--triage): 1 cause bucket(s) from 12" in text
        assert "[1] missing-getter:R10 — simulation error" in text
        assert "confirmation: deterministic (2/2)" in text
        assert "shrunken: 16 -> 1 constraint(s)" in text
        assert "repro: repro.py (self-check: asserted)" in text
        assert "Quarantined-crash causes: 1 bucket(s) from 2" in text
        assert "backends: arm32,x86" in text
        assert "Reproducers in: repros" in text

    def test_long_crash_messages_are_truncated(self):
        text = format_causes(self.report())
        assert "x" * 97 + "..." in text
        assert "x" * 101 not in text

    def test_unverified_repro_is_flagged_not_trusted(self):
        report = TriageReport(
            causes=[make_cause(repro_file="repro.py", verified=False)],
            divergence_count=1,
        )
        assert "self-check: NOT asserted" in format_causes(report)

    def test_round_trip_preserves_rendering(self):
        """Journal replay renders byte-identically to the live cause."""
        cause = make_cause(repro_file="repro.py", verified=True)
        rebuilt = TriageCause.from_dict(cause.to_dict())
        live = TriageReport(causes=[cause], divergence_count=12)
        replayed = TriageReport(causes=[rebuilt], divergence_count=12)
        assert format_causes(replayed) == format_causes(live)
