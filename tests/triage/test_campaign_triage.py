"""Acceptance tests: `campaign --triage` on a seeded defect flood.

The scenario is the paper's own: re-seed the R10/R11 fault-describer
gap (`RESILIENCE.md`), scope the campaign to the instructions that hit
it, and let the flood of differing executions pour in.  Triage must
fold the flood into a handful of confirmed cause buckets, shrink each
to a minimal input, and emit standalone reproducers that fail on their
own — byte-identically at every `-j` value and across a resume.
"""

from __future__ import annotations

import contextlib
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.difftest.runner import CampaignConfig, run_campaign
from repro.triage import TriageConfig, format_causes
from repro.triage.candidates import bucket_candidates, collect_divergences
from repro.triage.lab import TriageLab
from repro.triage.replay import replay
from repro.triage.shrink import shrink_candidate

#: The seeded-flood scenario: three natives that exercise the R10/R11
#: describer gap, producing dozens of differing executions from at
#: most a handful of root causes.
SCOPE = ("primitiveFloatTruncated", "primitiveMod", "primitiveConstantFill")
CONFIG = CampaignConfig(only=SCOPE, fault_describer_gaps=("R10", "R11"))


def triage_config():
    return TriageConfig(confirm_runs=2, repro_dir="repros")


def repro_files(workdir):
    return sorted((workdir / "repros").glob("*.py"))


@pytest.fixture(scope="module")
def triaged(tmp_path_factory):
    """The sequential seeded campaign every other run is compared to."""
    workdir = tmp_path_factory.mktemp("triage-seq")
    with contextlib.chdir(workdir):
        result = run_campaign(
            CONFIG,
            journal_path=workdir / "run.jsonl",
            triage=triage_config(),
        )
    return result, workdir


class TestSeededFlood:
    def test_flood_dedups_into_few_buckets(self, triaged):
        triage = triaged[0].triage
        assert 1 <= len(triage.causes) <= 5
        # Dedup must actually fold something: many executions, few causes.
        assert triage.divergence_count > len(triage.causes)
        assert sum(c.count for c in triage.causes) == triage.divergence_count

    def test_seeded_describer_gap_is_a_named_cause(self, triaged):
        causes = {c.signature.cause for c in triaged[0].triage.causes}
        assert any(cause.startswith("missing-getter:R1") for cause in causes)

    def test_every_cause_is_confirmed_deterministic(self, triaged):
        for cause in triaged[0].triage.causes:
            assert cause.confirmation == "deterministic"
            assert (cause.confirmed_runs, cause.total_runs) == (2, 2)

    def test_every_cause_shrank_to_a_minimal_input(self, triaged):
        for cause in triaged[0].triage.causes:
            assert cause.shrunken_shape is not None
            assert len(cause.constraints) <= cause.original_constraints
            assert cause.model is not None

    def test_backends_fold_into_one_bucket(self, triaged):
        assert all(
            cause.backends == ("arm32", "x86")
            for cause in triaged[0].triage.causes
        )

    def test_reproducers_emitted_and_self_verified(self, triaged):
        result, workdir = triaged
        emitted = {path.name for path in repro_files(workdir)}
        for cause in result.triage.causes:
            assert cause.repro_file in emitted
            assert cause.verified is True
        assert len(emitted) == len(result.triage.causes)

    def test_reproducer_fails_standalone(self, triaged):
        """An emitted script needs nothing but PYTHONPATH: exit 1 =
        divergence asserted."""
        _result, workdir = triaged
        script = repro_files(workdir)[0]
        src_dir = str(Path(repro.__file__).resolve().parent.parent)
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": src_dir, "PATH": "/usr/bin:/bin"},
            timeout=300,
        )
        assert proc.returncode == 1, proc.stderr
        assert "DIVERGENCE REPRODUCED" in proc.stdout


class TestEngineIdentity:
    def test_parallel_triage_is_byte_identical(self, triaged, tmp_path):
        """`-j 4` causes section and reproducer files match `-j 1`."""
        sequential, seq_dir = triaged
        with contextlib.chdir(tmp_path):
            parallel = run_campaign(CONFIG, jobs=4, triage=triage_config())
        assert format_causes(parallel.triage) == format_causes(
            sequential.triage
        )
        seq_repros = repro_files(seq_dir)
        par_repros = repro_files(tmp_path)
        assert [p.name for p in par_repros] == [p.name for p in seq_repros]
        for seq_file, par_file in zip(seq_repros, par_repros):
            assert par_file.read_bytes() == seq_file.read_bytes()

    def test_resume_replays_triage_without_reshrinking(
        self, triaged, monkeypatch
    ):
        """A `--resume` run reuses journaled triage state: the Causes
        section is byte-identical, nothing is re-confirmed or
        re-shrunk, and a deleted reproducer is re-emitted from the
        journal."""
        original, workdir = triaged

        def forbidden(*_args, **_kwargs):
            raise AssertionError("resume must not re-confirm or re-shrink")

        monkeypatch.setattr(
            "repro.triage.engine.shrink_candidate", forbidden
        )
        monkeypatch.setattr(TriageLab, "locate", forbidden)

        victim = repro_files(workdir)[0]
        source = victim.read_bytes()
        victim.unlink()

        with contextlib.chdir(workdir):
            resumed = run_campaign(
                CONFIG,
                journal_path=workdir / "run.jsonl",
                resume=True,
                triage=triage_config(),
            )

        assert format_causes(resumed.triage) == format_causes(
            original.triage
        )
        assert resumed.triage.reused_causes == len(resumed.triage.causes)
        assert victim.read_bytes() == source


class TestShrinkProperties:
    def test_shrunken_input_reproduces_identical_signature(self, triaged):
        """The acceptance predicate by construction: replaying the
        shrunken constraints + model must reproduce the *same*
        classification (category, cause, difference kind, exit pair),
        not just some defect."""
        for cause in triaged[0].triage.causes:
            expect = dict(
                cause.signature.to_dict(), backend=cause.exemplar_backend
            )
            verdict = replay(
                expect,
                cause.model,
                cause.constraints,
                max_sim_steps=CONFIG.max_sim_steps,
                fault_describer_gaps=CONFIG.fault_describer_gaps,
            )
            assert verdict.reproduced, cause.signature.canonical()

    def test_shrinking_is_deterministic(self, triaged):
        """Two independent labs shrink the same exemplar to the same
        constraints, model and shape."""
        candidates = collect_divergences(triaged[0])
        _signature, group = next(iter(bucket_candidates(candidates).values()))
        exemplar = group[0]
        outcomes = []
        for _ in range(2):
            lab = TriageLab(CONFIG)
            path = lab.locate(exemplar)
            assert path is not None
            outcome = shrink_candidate(lab, exemplar, path)
            outcomes.append((
                tuple((str(c.term), c.taken) for c in outcome.constraints),
                outcome.model.to_dict(),
                outcome.shape,
            ))
        assert outcomes[0] == outcomes[1]
