"""Defect signatures and candidate bucketing: the dedup layer."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.triage.candidates import DivergenceCandidate, bucket_candidates
from repro.triage.signature import DefectSignature, exit_pair

SIGNATURE = DefectSignature(
    kind="native",
    instruction="primitiveFloatTruncated",
    compiler="native",
    category="simulation error",
    cause="missing-getter:R10",
    exit_pair="failure x -",
    difference_kind="simulation_error",
)


def make_candidate(backend="x86", cause="missing-getter:R10",
                   instruction="primitiveFloatTruncated"):
    return DivergenceCandidate(
        kind="native",
        instruction=instruction,
        compiler="native",
        backend=backend,
        category="simulation error",
        cause=cause,
        difference_kind="simulation_error",
        exit_pair="failure x -",
        operand_shape="receiver:float",
        detail="InvalidMemoryAccess",
        path_signature=(("is_float(receiver)", True),),
    )


class TestExitPair:
    def test_both_sides(self):
        assert exit_pair("success", "fault") == "success x fault"

    def test_missing_machine_side(self):
        assert exit_pair("failure", None) == "failure x -"

    def test_missing_both(self):
        assert exit_pair(None, None) == "- x -"


class TestDefectSignature:
    def test_canonical_joins_every_field(self):
        text = SIGNATURE.canonical()
        for value in SIGNATURE.to_dict().values():
            assert value in text

    def test_digest_is_stable_and_short(self):
        assert len(SIGNATURE.digest) == 12
        assert SIGNATURE.digest == SIGNATURE.digest
        other = DefectSignature.from_dict(SIGNATURE.to_dict())
        assert other.digest == SIGNATURE.digest

    def test_different_cause_different_digest(self):
        other = DefectSignature.from_dict(
            dict(SIGNATURE.to_dict(), cause="missing-getter:R11")
        )
        assert other.digest != SIGNATURE.digest

    def test_slug_is_filesystem_safe(self):
        slug = SIGNATURE.slug()
        assert slug == "missing-getter-R10-primitiveFloatTruncated"
        assert "/" not in slug and ":" not in slug

    def test_degenerate_slug_falls_back(self):
        degenerate = DefectSignature.from_dict(
            dict(SIGNATURE.to_dict(), cause="::", instruction="//")
        )
        assert degenerate.slug() == "defect"

    @given(
        st.builds(
            DefectSignature,
            kind=st.text(max_size=12),
            instruction=st.text(max_size=12),
            compiler=st.text(max_size=12),
            category=st.text(max_size=12),
            cause=st.text(max_size=12),
            exit_pair=st.text(max_size=12),
            difference_kind=st.text(max_size=12),
        )
    )
    def test_dict_round_trip_preserves_identity(self, signature):
        rebuilt = DefectSignature.from_dict(signature.to_dict())
        assert rebuilt == signature
        assert rebuilt.digest == signature.digest
        assert len(signature.digest) == 12


class TestBucketing:
    def test_backends_fold_into_one_bucket(self):
        """One front-end defect seen on x86 and ARM32 is ONE cause."""
        candidates = [make_candidate("x86"), make_candidate("arm32")]
        buckets = bucket_candidates(candidates)
        assert len(buckets) == 1
        (_signature, group), = buckets.values()
        assert len(group) == 2
        assert {c.backend for c in group} == {"x86", "arm32"}

    def test_distinct_causes_stay_separate(self):
        candidates = [
            make_candidate(cause="missing-getter:R10"),
            make_candidate(cause="missing-getter:R11"),
        ]
        assert len(bucket_candidates(candidates)) == 2

    def test_bucket_order_is_first_appearance(self):
        candidates = [
            make_candidate(instruction="primitiveMod", cause="b"),
            make_candidate(cause="a"),
            make_candidate(instruction="primitiveMod", cause="b"),
        ]
        buckets = bucket_candidates(candidates)
        ordered = [sig.cause for sig, _group in buckets.values()]
        assert ordered == ["b", "a"]

    def test_exemplar_is_first_seen(self):
        first = make_candidate("arm32")
        buckets = bucket_candidates([first, make_candidate("x86")])
        (_signature, group), = buckets.values()
        assert group[0] is first
