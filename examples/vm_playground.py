#!/usr/bin/env python3
"""The VM substrate as a standalone system: write and run programs.

The reproduction's object memory + interpreter is a complete little
Smalltalk-style VM.  This example builds methods out of byte-codes,
installs them in the method dictionary, and runs real programs with
message sends, primitive methods with byte-code fallbacks, loops, and
heap objects — no concolic machinery involved.

Run:  python examples/vm_playground.py
"""

from __future__ import annotations

from repro.bytecode.assembler import assemble
from repro.bytecode.methods import MethodBuilder, SymbolTable
from repro.interpreter.frame import Frame
from repro.interpreter.interpreter import Interpreter
from repro.memory.bootstrap import bootstrap_memory


def build(vm, instructions, *, args=0, temps=None, literals=(), primitive=0):
    memory, symbols = vm
    builder = MethodBuilder(memory, symbols).args(args)
    builder.temps(temps if temps is not None else args)
    if primitive:
        builder.primitive(primitive)
    for literal in literals:
        builder.literal(symbols.intern(literal) if isinstance(literal, str)
                        else literal)
    for byte in assemble(instructions):
        builder.emit(byte)
    return builder.build()


def demo_factorial(memory, symbols, interpreter) -> None:
    """factorial: n <= 1 ifTrue: [^1] ifFalse: [^n * (self factorial: n-1)]"""
    vm = (memory, symbols)
    factorial = build(
        vm,
        [
            "pushTemporaryVariable0",       # n
            "pushOne",
            "bytecodePrimLessOrEqual",
            "shortJumpIfFalse0",            # skip the return when n > 1
            "returnTrue",                   # placeholder, replaced below
            "pushTemporaryVariable0",       # n
            "pushReceiver",
            "pushTemporaryVariable0",
            "pushOne",
            "bytecodePrimSubtract",         # n - 1
            "sendLiteralSelector1Arg0",     # self factorial: n-1
            "bytecodePrimMultiply",         # n * ...
            "returnTop",
        ],
        args=1,
        literals=["factorial:"],
    )
    # Patch the placeholder: return the SmallInteger 1, not true.
    code = bytearray(factorial.bytecodes)
    code[4:5] = assemble(["pushOne", "returnTop"])[:1]  # pushOne
    # simpler: rebuild with the correct sequence
    factorial = build(
        vm,
        [
            "pushTemporaryVariable0",
            "pushOne",
            "bytecodePrimLessOrEqual",
            "shortJumpIfFalse1",            # jump over pushOne/returnTop
            "pushOne",
            "returnTop",
            "pushTemporaryVariable0",
            "pushReceiver",
            "pushTemporaryVariable0",
            "pushOne",
            "bytecodePrimSubtract",
            "sendLiteralSelector1Arg0",
            "bytecodePrimMultiply",
            "returnTop",
        ],
        args=1,
        literals=["factorial:"],
    )
    small_int = memory.small_integer_class_index
    interpreter.install_method(small_int, "factorial:", factorial)

    main = build(
        vm,
        ["pushLiteralConstant1", "pushLiteralConstant1",
         "sendLiteralSelector1Arg0", "returnTop"],
        literals=["factorial:", memory.integer_object_of(10)],
    )
    result = interpreter.run(Frame(memory.nil_object, main))
    print(f"10 factorial = {memory.integer_value_of(result)}")
    assert memory.integer_value_of(result) == 3628800


def demo_primitive_with_fallback(memory, symbols, interpreter) -> None:
    """#+ as a primitive method whose byte-code body handles failure."""
    vm = (memory, symbols)
    # primitive 1 = primitiveAdd; the body answers -1 when it fails.
    plus = build(vm, ["pushMinusOne", "returnTop"], args=1, primitive=1)
    interpreter.install_method(memory.small_integer_class_index, "plus:", plus)

    def send_plus(a_oop, b_oop):
        main = build(
            vm,
            ["pushLiteralConstant1", "pushLiteralConstant2",
             "sendLiteralSelector1Arg0", "returnTop"],
            literals=["plus:", a_oop, b_oop],
        )
        return interpreter.run(Frame(memory.nil_object, main))

    ok = send_plus(memory.integer_object_of(20), memory.integer_object_of(22))
    print(f"20 plus: 22 = {memory.integer_value_of(ok)} (primitive succeeded)")
    fallback = send_plus(memory.integer_object_of(20), memory.nil_object)
    print(
        f"20 plus: nil = {memory.integer_value_of(fallback)} "
        "(primitive failed, byte-code fallback ran)"
    )


def demo_heap_objects(memory, symbols, interpreter) -> None:
    """Sum an Array's elements with a loop over at:-style primitives."""
    vm = (memory, symbols)
    values = [3, 14, 15, 92, 65]
    array = memory.new_array([memory.integer_object_of(v) for v in values])
    # at: backed by primitive 60 (no fallback needed for valid indices).
    at_method = build(vm, ["returnNil"], args=1, primitive=60)
    size_method = build(vm, ["returnNil"], args=0, primitive=62)
    array_class = memory.array_class_index
    interpreter.install_method(array_class, "at:", at_method)
    interpreter.install_method(array_class, "size", size_method)

    # | sum i | sum := 0. i := 1.
    # [i <= self size] whileTrue: [sum := sum + (self at: i). i := i + 1].
    # ^sum          (receiver = the array)
    summer = build(
        vm,
        [
            "pushZero", "popIntoTemporaryVariable0",   # sum := 0
            "pushOne", "popIntoTemporaryVariable1",    # i := 1
            # loop header (pc 4)
            "pushTemporaryVariable1",
            "pushReceiver", "sendLiteralSelector0Args1",   # self size
            "bytecodePrimLessOrEqual",
            ("longJumpIfFalse", 12),                   # exit to pc 22
            "pushTemporaryVariable0",
            "pushReceiver", "pushTemporaryVariable1",
            "sendLiteralSelector1Arg0",                # self at: i
            "bytecodePrimAdd",
            "popIntoTemporaryVariable0",               # sum := ...
            "pushTemporaryVariable1", "pushOne", "bytecodePrimAdd",
            "popIntoTemporaryVariable1",               # i := i + 1
            ("longJump", -18),                         # back to pc 4
            "pushTemporaryVariable0",                  # pc 22
            "returnTop",
        ],
        temps=2,
        literals=["at:", "size"],
    )
    interpreter.install_method(array_class, "sumElements", summer)
    main = build(
        vm,
        ["pushLiteralConstant1", "sendLiteralSelector0Args0", "returnTop"],
        literals=["sumElements", array],
    )
    result = interpreter.run(Frame(memory.nil_object, main))
    print(f"sum of {values} = {memory.integer_value_of(result)}")
    assert memory.integer_value_of(result) == sum(values)


def main() -> None:
    memory, known = bootstrap_memory()
    symbols = SymbolTable(memory)
    interpreter = Interpreter(memory, symbols)
    demo_factorial(memory, symbols, interpreter)
    demo_primitive_with_fallback(memory, symbols, interpreter)
    demo_heap_objects(memory, symbols, interpreter)
    print("\nall playground programs behaved as expected")


if __name__ == "__main__":
    main()
