#!/usr/bin/env python3
"""Inspect what each compiler generates for the same byte-codes.

Compiles an instruction (or sequence) with all three byte-code
compilers on both back-ends and prints the disassembled machine code
side by side.  The interesting comparison is the *code size*: the
StackToRegister compilers eliminate the machine-stack traffic the
simple compiler emits — and a push immediately consumed by a pop
compiles to nothing at all.

Run:  python examples/inspect_compilation.py
"""

from __future__ import annotations

from repro.bytecode.methods import MethodBuilder, SymbolTable
from repro.concolic.sequences import sequence_spec
from repro.jit.compiler import CompilationUnit
from repro.jit.machine import Arm32Backend, CodeCache, TrampolineTable, X86Backend
from repro.jit.machine.disassembler import format_disassembly
from repro.jit.register_allocating import RegisterAllocatingCogit
from repro.jit.simple_stack import SimpleStackBasedCogit
from repro.jit.stack_to_register import StackToRegisterCogit
from repro.memory.bootstrap import bootstrap_memory

COGITS = (SimpleStackBasedCogit, StackToRegisterCogit, RegisterAllocatingCogit)


def compile_and_print(spec, backend) -> None:
    memory, _known = bootstrap_memory(heap_words=2048)
    symbols = SymbolTable(memory)
    trampolines = TrampolineTable()
    trampolines.service("ceAllocateFloat", lambda sim: None)
    method = spec.build_method(memory, symbols)
    print("=" * 72)
    print(f"{spec.name}  [{backend.name}]")
    print("=" * 72)
    sizes = {}
    for cogit_class in COGITS:
        code_cache = CodeCache()
        compiler = cogit_class(memory, trampolines, code_cache, backend, symbols)
        unit = CompilationUnit(method=method, sequence=tuple(spec.sequence))
        compiled = compiler.compile(unit)
        sizes[cogit_class.name] = len(compiled.code_object.code)
        print(f"\n--- {cogit_class.name} "
              f"({len(compiled.code_object.code)} bytes)")
        print(format_disassembly(compiled.code_object, backend, trampolines))
    print("\ncode sizes:", ", ".join(f"{k}={v}B" for k, v in sizes.items()))
    simple = sizes["SimpleStackBasedCogit"]
    s2r = sizes["StackToRegisterCogit"]
    if s2r < simple:
        print(f"=> the parse-time stack saved {simple - s2r} bytes "
              f"({100 * (simple - s2r) / simple:.0f}%)")
    print()


def main() -> None:
    for entries in (
        ("pushTrue", "popStackTop"),
        ("pushOne", "pushTwo", "bytecodePrimAdd"),
    ):
        spec = sequence_spec(*entries)
        for backend in (X86Backend(), Arm32Backend()):
            compile_and_print(spec, backend)


if __name__ == "__main__":
    main()
