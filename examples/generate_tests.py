#!/usr/bin/env python3
"""Generate a persistent differential unit-test suite.

The paper's headline artifact: "our approach generated in less than 10
minutes more than 4.5K tests" that are unitary, fast and reproducible.
This example renders concolically discovered paths into standalone
pytest modules under ``generated_tests/`` — runnable with plain pytest,
with known interpreter/compiler differences emitted as strict xfails
(the bug reports).

Run:  python examples/generate_tests.py [output_dir]
      pytest generated_tests/ -q
"""

from __future__ import annotations

import sys

from repro import (
    BytecodeInstructionSpec,
    NativeMethodCompiler,
    NativeMethodSpec,
    SimpleStackBasedCogit,
    StackToRegisterCogit,
    bytecode_named,
    primitive_named,
)
from repro.difftest.testgen import write_test_suite

BYTECODES = ("bytecodePrimAdd", "bytecodePrimLessThan", "shortJumpIfTrue3",
             "duplicateTop", "returnTop")
NATIVES = ("primitiveAdd", "primitiveAsFloat", "primitiveBitAnd",
           "primitiveAt", "primitiveFloatAdd")


def main() -> None:
    output = sys.argv[1] if len(sys.argv) > 1 else "generated_tests"
    suites = write_test_suite(
        output,
        [BytecodeInstructionSpec(bytecode_named(name)) for name in BYTECODES],
        [SimpleStackBasedCogit, StackToRegisterCogit],
    )
    suites += write_test_suite(
        output,
        [NativeMethodSpec(primitive_named(name)) for name in NATIVES],
        [NativeMethodCompiler],
    )
    total = sum(s.test_count for s in suites)
    xfails = sum(s.xfail_count for s in suites)
    print(f"generated {len(suites)} modules / {total} tests "
          f"({xfails} known-difference xfails) into {output}/")
    for suite in suites:
        print(f"  {suite.instruction:28s} x {suite.compiler:24s} "
              f"{suite.test_count:3d} tests, {suite.xfail_count} xfail")
    print(f"\nrun them with:  pytest {output}/ -q")


if __name__ == "__main__":
    main()
