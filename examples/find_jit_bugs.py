#!/usr/bin/env python3
"""A focused bug-hunting campaign: find the VM's defect corpus blindly.

This is the paper's evaluation in miniature: a selection of byte-codes
and native methods is explored concolically and tested differentially
against all four compilers; every discovered difference is classified
into the paper's six defect families (Table 3) with no prior knowledge
of where the defects are.

Run:  python examples/find_jit_bugs.py            # defect-rich subset
      python examples/find_jit_bugs.py --full     # every instruction
"""

from __future__ import annotations

import sys
import time

from repro import (
    BytecodeInstructionSpec,
    CampaignConfig,
    NativeMethodCompiler,
    NativeMethodSpec,
    RegisterAllocatingCogit,
    SimpleStackBasedCogit,
    StackToRegisterCogit,
    bytecode_named,
    group_causes,
    primitive_named,
    test_instruction,
    testable_bytecodes,
    testable_primitives,
)
from repro.difftest.runner import explore_instruction
from repro.jit.machine.x86 import X86Backend

#: A subset that covers every defect family quickly.
INTERESTING_BYTECODES = (
    "bytecodePrimAdd", "bytecodePrimSubtract", "bytecodePrimMultiply",
    "bytecodePrimDivide", "bytecodePrimLessThan", "bytecodePrimEqual",
    "sendIsNil", "pushTrue", "duplicateTop",
)
INTERESTING_NATIVES = (
    "primitiveAsFloat", "primitiveFloatAdd", "primitiveFloatLessThan",
    "primitiveFloatTruncated", "primitiveBitAnd", "primitiveBitShift",
    "primitiveMod", "primitiveFFIReadInt32", "primitiveFFIWriteFloat64",
    "primitiveAdd", "primitiveAt",
)


def gather_specs(full: bool):
    if full:
        bytecode_specs = [BytecodeInstructionSpec(b) for b in testable_bytecodes()]
        native_specs = [NativeMethodSpec(n) for n in testable_primitives()]
    else:
        bytecode_specs = [
            BytecodeInstructionSpec(bytecode_named(name))
            for name in INTERESTING_BYTECODES
        ]
        native_specs = [
            NativeMethodSpec(primitive_named(name))
            for name in INTERESTING_NATIVES
        ]
    return bytecode_specs, native_specs


def main() -> None:
    full = "--full" in sys.argv
    config = CampaignConfig(backends=(X86Backend,))
    bytecode_specs, native_specs = gather_specs(full)

    start = time.perf_counter()
    comparisons = []
    total_paths = 0
    print("hunting for differences", end="", flush=True)
    for spec in native_specs:
        exploration = explore_instruction(spec, config)
        total_paths += exploration.path_count
        result = test_instruction(spec, NativeMethodCompiler, config, exploration)
        comparisons.extend(result.comparisons)
        print(".", end="", flush=True)
    for spec in bytecode_specs:
        exploration = explore_instruction(spec, config)
        total_paths += exploration.path_count
        for compiler in (SimpleStackBasedCogit, StackToRegisterCogit,
                         RegisterAllocatingCogit):
            result = test_instruction(spec, compiler, config, exploration)
            comparisons.extend(result.comparisons)
        print(".", end="", flush=True)
    elapsed = time.perf_counter() - start

    differences = [c for c in comparisons if c.is_difference]
    print(
        f"\n\nexplored {total_paths} paths over "
        f"{len(native_specs) + len(bytecode_specs)} instructions, ran "
        f"{len(comparisons)} differential executions in {elapsed:.1f}s"
    )
    print(f"found {len(differences)} differing executions\n")

    causes = group_causes(comparisons)
    print(f"grouped into {len(causes)} distinct root causes:\n")
    by_category: dict = {}
    for defect, results in causes.items():
        by_category.setdefault(defect.category, []).append((defect, results))
    for category in sorted(by_category, key=lambda c: c.value):
        entries = by_category[category]
        print(f"[{category.value}] — {len(entries)} cause(s)")
        for defect, results in sorted(entries, key=lambda e: e[0].cause):
            sample = results[0]
            print(f"    {defect.cause}  ({len(results)} executions)")
            print(f"        e.g. {sample.detail[:90]}")
        print()


if __name__ == "__main__":
    main()
