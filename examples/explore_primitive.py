#!/usr/bin/env python3
"""Explore native methods concolically and inspect their path structure.

Native methods (primitives) are *safe by design*: they check every
operand and fail with a failure code otherwise.  That safety shows up
as rich path structure — the paper's Fig. 5 observes that native
methods average ~10 paths where byte-codes average ~2.

This example explores a handful of primitives of increasing complexity
and prints their paths, exit-condition mix and exploration statistics.

Run:  python examples/explore_primitive.py [primitiveName ...]
"""

from __future__ import annotations

import sys

from repro import explore_native_method, primitive_named
from repro.interpreter.exits import ExitCondition

DEFAULT_SELECTION = (
    "primitiveAdd",  # types + overflow in both directions
    "primitiveAt",  # formats + bounds + raw-word range
    "primitiveNew",  # Behavior shape + class-table range
    "primitiveFFIReadInt16",  # alignment + bounds + field widths
    "primitiveAsFloat",  # the famous missing-check primitive
)


def explore_one(name: str) -> None:
    native = primitive_named(name)
    result = explore_native_method(native)
    exits = result.exits()
    print("=" * 72)
    print(
        f"{name} (index {native.index}, {native.argument_count} args, "
        f"category {native.category!r})"
    )
    print(
        f"  {result.path_count} paths / {result.iterations} iterations / "
        f"{result.unsat_prefixes} unsat prefixes / "
        f"{result.elapsed_seconds * 1000:.0f} ms"
    )
    print(
        "  exit mix: "
        + ", ".join(f"{cond.value}={count}" for cond, count in sorted(
            exits.items(), key=lambda item: item[0].value
        ))
    )
    for index, path in enumerate(result.paths, 1):
        marker = "!" if path.exit.condition == ExitCondition.FAILURE else " "
        detail = f" [{path.exit.detail}]" if path.exit.detail else ""
        print(f"  {marker} #{index:<2d} {path.exit.condition.value}{detail}")
        print(f"       inputs: {path.model.describe() or '(defaults)'}")
    print()


def main() -> None:
    names = sys.argv[1:] or list(DEFAULT_SELECTION)
    for name in names:
        try:
            explore_one(name)
        except KeyError:
            print(f"unknown primitive: {name}", file=sys.stderr)
            raise SystemExit(1)
    print(
        "Note how every operand check contributes failure paths — this is\n"
        "exactly the path structure the differential tester feeds to the\n"
        "JIT compilers."
    )


if __name__ == "__main__":
    main()
