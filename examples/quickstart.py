#!/usr/bin/env python3
"""Quickstart: concolic exploration + differential testing of one byte-code.

Reproduces the paper's guiding example (Listing 1 / Table 1 / Fig. 2):
the integer-addition byte-code is concolically explored against the
interpreter, the discovered paths are printed in the style of Table 1,
and each path is then executed differentially against the production
StackToRegister compiler on the simulated x86 machine.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    BytecodeInstructionSpec,
    CampaignConfig,
    StackToRegisterCogit,
    bytecode_named,
    explore_bytecode,
    test_instruction,
)
from repro.jit.machine.x86 import X86Backend


def show_exploration() -> None:
    print("=" * 72)
    print("Step 1 — concolic exploration of bytecodePrimAdd (paper Table 1)")
    print("=" * 72)
    result = explore_bytecode(bytecode_named("bytecodePrimAdd"))
    print(
        f"{result.iterations} concolic iterations discovered "
        f"{result.path_count} paths in {result.elapsed_seconds * 1000:.0f} ms\n"
    )
    for index, path in enumerate(result.paths, 1):
        print(f"Path #{index} — exit: {path.exit.describe()}")
        print(f"  inputs:      {path.model.describe() or '(default: empty frame)'}")
        print(f"  constraints: {' AND '.join(str(c) for c in path.constraints)}")
        print(f"  output:      {path.output.describe()}")
        print()


def show_differential_test() -> None:
    print("=" * 72)
    print("Steps 2-4 — differential test vs StackToRegisterCogit (x86)")
    print("=" * 72)
    spec = BytecodeInstructionSpec(bytecode_named("bytecodePrimAdd"))
    config = CampaignConfig(backends=(X86Backend,))
    report = test_instruction(spec, StackToRegisterCogit, config)
    for comparison in report.comparisons:
        print(f"  {comparison.describe()}")
    print()
    print(
        f"=> {report.differing_paths} differing path(s) out of "
        f"{report.curated_path_count} curated paths"
    )
    print(
        "   (the difference is the paper's 'optimisation difference': the\n"
        "   interpreter inlines float arithmetic, the compiler emits a send)"
    )


def main() -> None:
    show_exploration()
    show_differential_test()


if __name__ == "__main__":
    main()
