"""Self-verifying defect triage: confirm, shrink, dedup, reproduce.

The paper's headline result — 468 path differences collapsing into 91
root causes — was produced by hand ("we performed defect identification
by manually inspecting and debugging the source code", Section 5.3).
This package mechanizes that collapse for campaign output: every
divergence and quarantined crash flows through four stages before it
reaches the report.

1. **Confirmation** re-executes each failing cell N times with a fresh
   heap and fresh simulator, labelling it ``deterministic`` /
   ``flaky(k_of_n)`` / ``vanished`` so fault-injection noise and
   nondeterminism cannot masquerade as compiler bugs.
2. **Shrinking** delta-debugs the path-constraint prefix and the
   materialized operand stack / receiver shape — re-solving through the
   memoized incremental solver — down to the minimal input that still
   reproduces the same defect classification and exit pair.
3. **Dedup** folds the flood into cause buckets keyed by a canonical
   :class:`~repro.triage.signature.DefectSignature`, each with an
   exemplar and a count.
4. **Reproducer emission** writes one standalone ``repros/<sig>.py``
   per cause that rebuilds the frame and runs interpreter and JIT side
   by side with zero campaign machinery, asserting the divergence —
   and re-executes it once at emission time as self-verification.

Triage always runs in the *parent* process over the serialized cell
records both engines produce (workers ship candidate payloads inside
the existing ``("cell", ...)`` pipe records), so its output is
byte-identical across ``-j`` values and across kill/``--resume``
cycles.  Finished causes are persisted into the campaign journal under
the ``triage::`` key namespace; ``--resume`` replays them instead of
re-confirming and re-shrinking.

Operator guide: ``docs/TRIAGE.md``.  Design notes: ``DESIGN.md`` §14.
"""

from repro.triage.engine import (
    CrashCause,
    TriageCause,
    TriageConfig,
    TriageReport,
    run_triage,
)
from repro.triage.report import format_causes
from repro.triage.signature import DefectSignature, exit_pair

__all__ = [
    "CrashCause",
    "DefectSignature",
    "TriageCause",
    "TriageConfig",
    "TriageReport",
    "exit_pair",
    "format_causes",
    "run_triage",
]
