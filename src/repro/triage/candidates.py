"""Triage candidates: serialized facts about one failing execution.

Candidates are built from :class:`ComparisonResult` verdicts and
quarantine entries — the exact data that already travels over the
worker pipe and through the journal — never from live paths or heaps.
That is what makes triage engine-independent: a sequential run, a
parallel run and a ``--resume`` replay of the same campaign yield the
same candidate list in the same canonical plan order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.difftest.defects import classify
from repro.triage.signature import DefectSignature, exit_pair


@dataclass(frozen=True)
class DivergenceCandidate:
    """One differing comparison, reduced to its serialized facts."""

    kind: str
    instruction: str
    compiler: str
    backend: str
    category: str
    cause: str
    difference_kind: str
    exit_pair: str
    operand_shape: str
    detail: str
    #: ``((term, taken), ...)`` — enough to relocate the failing path
    #: in a deterministic re-exploration of the instruction.
    path_signature: tuple

    @property
    def signature(self) -> DefectSignature:
        return DefectSignature(
            kind=self.kind,
            instruction=self.instruction,
            compiler=self.compiler,
            category=self.category,
            cause=self.cause,
            exit_pair=self.exit_pair,
            difference_kind=self.difference_kind,
        )


@dataclass(frozen=True)
class CrashCandidate:
    """One quarantined (instruction, compiler) cell."""

    kind: str
    instruction: str
    compiler: str
    backend: str
    stage: str
    error_class: str
    message: str

    @property
    def signature(self) -> DefectSignature:
        return DefectSignature(
            kind=self.kind,
            instruction=self.instruction,
            compiler=self.compiler,
            category="crash",
            cause=f"{self.stage}:{self.error_class}",
            exit_pair=f"crash x {self.error_class}",
            difference_kind=self.error_class,
        )


def divergence_candidate(comparison) -> DivergenceCandidate:
    """Candidate for one differing :class:`ComparisonResult`."""
    defect = classify(comparison)
    interp = comparison.interpreter_exit
    outcome = comparison.machine_outcome
    return DivergenceCandidate(
        kind=comparison.kind,
        instruction=comparison.instruction,
        compiler=comparison.compiler,
        backend=comparison.backend,
        category=defect.category.value,
        cause=defect.cause,
        difference_kind=comparison.difference_kind or "",
        exit_pair=exit_pair(
            None if interp is None else interp.condition.value,
            None if outcome is None else outcome.kind.value,
        ),
        operand_shape=comparison.operand_shape(),
        detail=comparison.detail,
        path_signature=comparison.path_signature(),
    )


def collect_divergences(reports) -> list[DivergenceCandidate]:
    """Every differing comparison of a campaign, in plan order."""
    return [
        divergence_candidate(comparison)
        for report in reports
        for result in report.results
        for comparison in result.comparisons
        if comparison.is_difference
    ]


def collect_crashes(quarantine) -> list[CrashCandidate]:
    """Every quarantined cell of a campaign, in plan order."""
    return [
        CrashCandidate(
            kind=entry.kind,
            instruction=entry.instruction,
            compiler=entry.compiler,
            backend=entry.backend,
            stage=entry.stage,
            error_class=entry.error_class,
            message=entry.message,
        )
        for entry in quarantine
    ]


def bucket_candidates(candidates) -> dict:
    """Fold candidates into ``digest -> (signature, [candidate, ...])``.

    Insertion order is first appearance in the canonical plan, so
    bucket order — and hence the Causes report section — is identical
    for every engine and ``-j`` value.
    """
    buckets: dict = {}
    for candidate in candidates:
        signature = candidate.signature
        entry = buckets.get(signature.digest)
        if entry is None:
            buckets[signature.digest] = (signature, [candidate])
        else:
            entry[1].append(candidate)
    return buckets
