"""The "Causes" report section (``campaign --triage``).

Renders a :class:`~repro.triage.engine.TriageReport` deterministically:
bucket order is first appearance in the canonical plan, all values come
from serialized triage data, and no wall-clock or process-local detail
is printed — so the section is byte-identical across ``-j`` values and
kill/``--resume`` cycles (asserted by ``tests/triage``).
"""

from __future__ import annotations


def _confirmation_line(cause) -> str:
    line = f"      confirmation: {cause.confirmation}"
    if cause.total_runs:
        line += f" ({cause.confirmed_runs}/{cause.total_runs})"
    return line


def format_causes(triage) -> str:
    """Multi-line Causes section for the campaign report."""
    lines = [
        f"Causes (--triage): {len(triage.causes)} cause bucket(s) from "
        f"{triage.divergence_count} differing execution(s)"
    ]
    for index, cause in enumerate(triage.causes, 1):
        sig = cause.signature
        lines.append(f"  [{index}] {sig.cause} — {sig.category}")
        lines.append(
            f"      cell: {sig.instruction} [{sig.compiler}] ({sig.kind})"
        )
        lines.append(
            f"      exit pair: {sig.exit_pair}   executions: {cause.count}"
            f"   backends: {','.join(cause.backends)}"
        )
        lines.append(_confirmation_line(cause))
        if cause.shrunken_shape is not None:
            lines.append(
                f"      shrunken: {cause.original_constraints} -> "
                f"{len(cause.constraints)} constraint(s); "
                f"shape: {cause.shrunken_shape}"
            )
        if cause.repro_file:
            if cause.verified is None:
                check = "skipped"
            elif cause.verified:
                check = "asserted"
            else:
                check = "NOT asserted"
            lines.append(
                f"      repro: {cause.repro_file} (self-check: {check})"
            )
    if triage.crash_causes:
        lines.append(
            f"  Quarantined-crash causes: {len(triage.crash_causes)} "
            f"bucket(s) from {triage.crash_count} quarantined cell(s)"
        )
        for index, cause in enumerate(triage.crash_causes, 1):
            sig = cause.signature
            lines.append(
                f"  [C{index}] {sig.cause} — {sig.instruction} "
                f"[{sig.compiler}]"
            )
            lines.append(_confirmation_line(cause))
            message = cause.exemplar_message
            if len(message) > 100:
                message = message[:97] + "..."
            lines.append(f"      exemplar: {message}")
    if triage.repro_dir is not None:
        lines.append(f"  Reproducers in: {triage.repro_dir}")
    # Note: resume bookkeeping (reused_causes) is deliberately NOT part
    # of this section — the Causes output of a resumed run must stay
    # byte-identical to the original run's.  The CLI prints it
    # separately, next to the "resumed N cells" line.
    return "\n".join(lines)
