"""Canonical defect signatures: the dedup key of the triage layer.

A signature captures *what* a defect is, independent of how many paths
or back-ends happened to hit it: the cell identity (instruction kind,
instruction, compiler), the defect classification
(:mod:`repro.difftest.defects` category and cause key), the
interpreter-exit × machine-outcome pair, and the difference kind.  The
back-end is deliberately excluded — one compiler defect observed on
both x86 and ARM32 is one cause, matching the paper's "we count a
defect only once regardless of how many execution paths it lead to a
failure".

Signatures are pure value objects: canonical string, stable short
digest (used for journal keys and reproducer file names), and a
filesystem-safe slug.  Everything is derived from serialized record
data, never from live objects, so the same campaign produces the same
signatures from a live run, a worker pipe, or a journal replay.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass


def exit_pair(interpreter_condition: str | None,
              outcome_kind: str | None) -> str:
    """The interpreter-exit × machine-outcome pair, e.g. ``success x -``.

    ``-`` stands for "no exit recorded on that side": the machine side
    is ``-`` when the pipeline stopped before a machine outcome existed
    (compile refusal, simulation error).
    """
    return f"{interpreter_condition or '-'} x {outcome_kind or '-'}"


@dataclass(frozen=True)
class DefectSignature:
    """Identity of one root cause across paths, back-ends and runs."""

    kind: str  # "bytecode" | "native" | "sequence"
    instruction: str
    compiler: str
    #: :class:`repro.difftest.defects.DefectCategory` value, or
    #: ``"crash"`` for quarantined-cell causes.
    category: str
    #: Classification cause key (``missing-getter:R10``), or
    #: ``stage:ErrorClass`` for crashes.
    cause: str
    #: :func:`exit_pair` of the exemplar divergence.
    exit_pair: str
    #: harness difference kind, or the error class for crashes.
    difference_kind: str

    def canonical(self) -> str:
        """The canonical one-line form all identity derives from."""
        return "|".join((
            self.kind, self.instruction, self.compiler, self.category,
            self.cause, self.exit_pair, self.difference_kind,
        ))

    @property
    def digest(self) -> str:
        """Stable 12-hex-digit id: journal key, reproducer file name."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()[:12]

    def slug(self) -> str:
        """Filesystem-safe reproducer name stem, e.g.
        ``missing-getter-R10-primitiveFloatTruncated``."""
        raw = f"{self.cause}-{self.instruction}"
        slug = re.sub(r"[^A-Za-z0-9]+", "-", raw).strip("-")
        return slug or "defect"

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "instruction": self.instruction,
            "compiler": self.compiler,
            "category": self.category,
            "cause": self.cause,
            "exit_pair": self.exit_pair,
            "difference_kind": self.difference_kind,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DefectSignature":
        return cls(
            kind=data["kind"],
            instruction=data["instruction"],
            compiler=data["compiler"],
            category=data["category"],
            cause=data["cause"],
            exit_pair=data["exit_pair"],
            difference_kind=data["difference_kind"],
        )
