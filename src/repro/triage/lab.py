"""The triage lab: fresh-world re-execution of failing cells.

Confirmation and shrinking both need to re-run a divergence from
nothing but its serialized candidate facts.  The lab resolves the cell
identity (spec, compiler, backend) from names, re-explores the
instruction deterministically to relocate the failing path by its
constraint signature, and runs each trial in a **fresh**
:class:`DifferentialTester` — fresh heap, fresh simulator, fresh code
cache — so a confirmation run can never be contaminated by state left
behind by the campaign or by a previous trial.

Exploration is cached per instruction (it depends only on the
instruction, as in the campaign engines) but runs with the campaign's
own budgets, so the relocated path is the exact path the campaign
tested.
"""

from __future__ import annotations

from dataclasses import replace

from repro.bytecode.opcodes import bytecode_named
from repro.concolic.explorer import (
    BytecodeInstructionSpec,
    ExplorationCache,
    NativeMethodSpec,
    PathResult,
)
from repro.concolic.solver import SolverContext
from repro.concolic.symbolic_memory import SymbolicObjectMemory
from repro.difftest.curation import curate_paths
from repro.difftest.defects import classify
from repro.difftest.harness import DifferentialTester
from repro.difftest.runner import (
    BYTECODE_COMPILERS,
    execute_cell,
    explore_instruction,
)
from repro.interpreter.primitives import primitive_named
from repro.jit.machine.arm32 import Arm32Backend
from repro.jit.machine.x86 import X86Backend
from repro.jit.native_templates import NativeMethodCompiler
from repro.memory.bootstrap import bootstrap_memory
from repro.robustness.budgets import Deadline
from repro.robustness.errors import CampaignError, classify_crash, guard
from repro.triage.signature import exit_pair

_COMPILERS = {
    cls.name: cls for cls in (NativeMethodCompiler,) + BYTECODE_COMPILERS
}
_BACKENDS = {"x86": X86Backend, "arm32": Arm32Backend}


def spec_for(kind: str, instruction: str):
    """Resolve a (kind, instruction-name) pair back to its spec."""
    if kind == "stitched" or instruction.startswith("stitch:"):
        # Stitched names encode operand bytes, so the round-trip is
        # exact (sequence names drop them; see repro.stitch.spec).
        from repro.stitch.spec import stitched_spec_named

        return stitched_spec_named(instruction)
    if kind == "sequence" or instruction.startswith("seq:"):
        from repro.concolic.sequences import sequence_spec

        return sequence_spec(*instruction[len("seq:"):].split("+"))
    if kind == "native":
        return NativeMethodSpec(primitive_named(instruction))
    return BytecodeInstructionSpec(bytecode_named(instruction))


def compiler_for(name: str):
    try:
        return _COMPILERS[name]
    except KeyError:
        raise ValueError(f"unknown compiler {name!r}")


def backend_class_for(name: str):
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(f"unknown backend {name!r}")


def matches(candidate, comparison) -> bool:
    """Does this fresh execution reproduce the candidate's defect?

    The defect is defined by its full classification — category, cause,
    difference kind — plus the interpreter-exit × machine-outcome pair.
    This is the shrinker's acceptance predicate, so a shrunken input is
    guaranteed to carry the *same* defect signature as the original.
    """
    if comparison is None or not comparison.is_difference:
        return False
    if (comparison.difference_kind or "") != candidate.difference_kind:
        return False
    defect = classify(comparison)
    interp = comparison.interpreter_exit
    outcome = comparison.machine_outcome
    pair = exit_pair(
        None if interp is None else interp.condition.value,
        None if outcome is None else outcome.kind.value,
    )
    return (
        defect.category.value == candidate.category
        and defect.cause == candidate.cause
        and pair == candidate.exit_pair
    )


class TriageLab:
    """Shared resolution + exploration state for one triage pass."""

    def __init__(self, config) -> None:
        # Triage trials must never re-raise into the campaign: crashes
        # during a trial simply mean "did not reproduce".
        self.config = replace(config, fail_fast=False)
        self._explorations = ExplorationCache()
        self._context: SolverContext | None = None

    # ------------------------------------------------------------------
    # solver context (for re-solving shrunken path conditions)

    def solver_context(self) -> SolverContext:
        """One deterministic bootstrap context, shared by all trials.

        Bootstrap is deterministic, so this context agrees with the one
        every explorer and tester builds for itself — models solved
        here materialize identically in a fresh tester.
        """
        if self._context is None:
            memory, _known = bootstrap_memory(
                heap_words=8 * 1024, memory_class=SymbolicObjectMemory
            )
            self._context = SolverContext.from_memory(memory)
        return self._context

    # ------------------------------------------------------------------
    # path relocation

    def explore(self, kind: str, instruction: str):
        """Cached full-budget exploration; None if exploring crashes."""
        spec = spec_for(kind, instruction)
        exploration = self._explorations.get(spec)
        if exploration is None:
            try:
                with guard("explorer"):
                    exploration = explore_instruction(spec, self.config)
            except CampaignError:
                return None
            self._explorations.put(spec, exploration)
        return exploration

    def locate(self, candidate) -> PathResult | None:
        """Relocate the candidate's failing path by constraint signature.

        Exploration is deterministic, so the relocated path carries the
        same input model the campaign tested.  ``None`` when the record
        predates path signatures or the path no longer appears.
        """
        wanted = tuple(tuple(entry) for entry in candidate.path_signature)
        if not wanted:
            return None
        exploration = self.explore(candidate.kind, candidate.instruction)
        if exploration is None:
            return None
        for path in curate_paths(exploration.paths):
            if path.signature == wanted:
                return path
        return None

    # ------------------------------------------------------------------
    # fresh-world execution

    def run_trial(self, candidate, constraints, model):
        """One differential execution in a brand-new world.

        Returns the :class:`ComparisonResult`, or ``None`` when the
        pipeline itself crashed (a crash is "did not reproduce", never
        a triage failure).

        Runs under the config's active mutants (reference-counted, so
        the activation the triage engine already holds nests): a trial
        replayed against unmutated semantics would never reproduce a
        mutant-seeded defect.
        """
        from repro.mutation import activated

        try:
            with activated(getattr(self.config, "mutants", ())):
                return self._trial(candidate, constraints, model)
        except CampaignError:
            return None
        except Exception:
            return None

    def _trial(self, candidate, constraints, model):
        spec = spec_for(candidate.kind, candidate.instruction)
        tester = DifferentialTester(
            spec,
            backend_class_for(candidate.backend)(),
            compiler_for(candidate.compiler),
            max_sim_steps=self.config.max_sim_steps,
            deadline=None,
            fault_describer_gaps=self.config.fault_describer_gaps,
        )
        path = PathResult(
            instruction=spec.name,
            kind=spec.kind,
            constraints=list(constraints),
            model=model,
            exit=None,
            output=None,
        )
        return tester.run_path(path)

    def run_cell(self, candidate):
        """One fresh full-cell execution (crash confirmation).

        Returns the :class:`CampaignError` the cell died with, or
        ``None`` if it completed cleanly this time.
        """
        try:
            spec = spec_for(candidate.kind, candidate.instruction)
            compiler_class = compiler_for(candidate.compiler)
        except Exception:
            return None
        try:
            _result, error = execute_cell(
                self.config, Deadline(None), spec, compiler_class,
                ExplorationCache(),
            )
        except CampaignError as exc:
            error = exc
        except Exception as exc:  # pragma: no cover - guards net these
            error = classify_crash(exc, "harness")
        return error
