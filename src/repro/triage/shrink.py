"""Delta-debugging shrinker for confirmed divergences.

Two passes over the exemplar path, both re-validated by fresh
differential executions through :func:`TriageLab.run_trial` and both
accepting a trial only when it reproduces the **same** defect
classification and exit pair (:func:`repro.triage.lab.matches`):

1. **Constraint-prefix shrinking.**  Greedy one-at-a-time removal over
   the path condition, iterated to a fixpoint: drop a constraint,
   re-solve the remaining conjunction through the memoized incremental
   solver, re-run.  Constraints whose removal makes the condition
   unsolvable or the defect vanish are kept.
2. **Shape shrinking.**  The surviving model is minimized
   structurally: operand-stack depth and temp count walk down toward
   zero, and abstract-value kind assignments that the defect does not
   depend on are dropped (their variables fall back to the solver's
   deterministic default witnesses).

Every step is deterministic — fixed iteration order, deterministic
solver, deterministic simulator — so the shrunken shape is
byte-identical across ``-j`` values and repeated runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.concolic.solver import Model, solve
from repro.triage.lab import matches


@dataclass
class ShrinkOutcome:
    """The minimal reproducing input for one cause bucket."""

    #: The surviving path constraints, in original order.
    constraints: tuple
    #: The minimal input model (still satisfies ``constraints``).
    model: Model
    original_count: int
    trials: int

    @property
    def shrunken_count(self) -> int:
        return len(self.constraints)

    @property
    def shape(self) -> str:
        """Human-readable shrunken constraint shape for the report."""
        rendered = " AND ".join(str(c) for c in self.constraints)
        return rendered or "(unconstrained)"


def _clone_model(model: Model) -> Model:
    return Model(
        context=model.context,
        kinds=dict(model.kinds),
        float_values=dict(model.float_values),
        int_values=dict(model.int_values),
        aliases=dict(model.aliases),
    )


def _shrink_constraints(lab, candidate, constraints, model):
    """Pass 1: minimal constraint subset, greedy to a fixpoint."""
    context = lab.solver_context()
    trials = 0
    changed = True
    while changed:
        changed = False
        for index in range(len(constraints)):
            trial = constraints[:index] + constraints[index + 1:]
            trial_model = solve([c.literal for c in trial], context)
            if trial_model is None:
                continue
            trials += 1
            result = lab.run_trial(candidate, trial, trial_model)
            if matches(candidate, result):
                constraints, model = trial, trial_model
                changed = True
                break
    return constraints, model, trials


def _shrink_shape(lab, candidate, constraints, model):
    """Pass 2: minimal operand stack / receiver shape."""
    literals = [c.literal for c in constraints]
    trials = 0

    # Walk frame-size variables down toward zero.
    for var in ("stack_size", "temp_count"):
        current = model.int_values.get(var)
        if not isinstance(current, int) or current <= 0:
            continue
        for value in range(current):
            trial_model = _clone_model(model)
            trial_model.int_values[var] = value
            if not trial_model.satisfies(literals):
                continue
            trials += 1
            result = lab.run_trial(candidate, constraints, trial_model)
            if matches(candidate, result):
                model = trial_model
                break

    # Drop kind assignments the defect does not depend on; the freed
    # variables fall back to deterministic default witnesses.
    for name in sorted(model.kinds):
        trial_model = _clone_model(model)
        del trial_model.kinds[name]
        trial_model.float_values.pop(name, None)
        if not trial_model.satisfies(literals):
            continue
        trials += 1
        result = lab.run_trial(candidate, constraints, trial_model)
        if matches(candidate, result):
            model = trial_model

    return model, trials


def shrink_candidate(lab, candidate, path) -> ShrinkOutcome:
    """Shrink one exemplar path to its minimal reproducing input.

    ``path`` is the relocated :class:`PathResult`; the returned outcome
    always reproduces the candidate's defect (in the worst case it *is*
    the original path, untouched).
    """
    original = tuple(path.constraints)
    constraints, model, trials_a = _shrink_constraints(
        lab, candidate, original, path.model
    )
    model, trials_b = _shrink_shape(lab, candidate, constraints, model)
    return ShrinkOutcome(
        constraints=tuple(constraints),
        model=model,
        original_count=len(original),
        trials=trials_a + trials_b,
    )
