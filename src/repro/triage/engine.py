"""The triage engine: confirm → shrink → dedup → emit, with resume.

Runs in the parent process over the campaign's serialized verdicts
(see :mod:`repro.triage.candidates`), so the pipeline is identical for
the sequential engine, the parallel pool, and journal replays.

Persistence: each finished cause bucket is appended to the campaign
journal under ``triage::<digest>`` (same encoding, checksumming and
last-wins semantics as cell records).  A ``--resume`` run reuses those
records — confirmation counts, shrunken shapes, verification verdicts
— instead of re-confirming and re-shrinking, and re-emits reproducer
files byte-identically from the journaled data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.robustness.checkpoint import (
    CampaignJournal,
    triage_key,
    triage_records,
)
from repro.triage.candidates import (
    bucket_candidates,
    collect_crashes,
    collect_divergences,
)
from repro.triage.emit import emit_reproducer, self_verify
from repro.triage.lab import TriageLab, matches
from repro.triage.shrink import shrink_candidate
from repro.triage.signature import DefectSignature


@dataclass
class TriageConfig:
    """Operator knobs of one triage pass (``campaign --triage``)."""

    #: Fresh-world re-executions per cause bucket (``--confirm-runs``).
    confirm_runs: int = 3
    #: Directory for standalone reproducers (``--repro-dir``); None
    #: disables emission.
    repro_dir: str | None = None
    #: Delta-debug confirmed divergences down to minimal inputs.
    shrink: bool = True
    #: Re-execute each emitted reproducer once as self-verification.
    self_verify: bool = True


@dataclass
class TriageCause:
    """One deduplicated divergence bucket, fully triaged."""

    signature: DefectSignature
    #: Differing executions folded into this bucket.
    count: int
    #: Back-ends the defect was observed on (sorted).
    backends: tuple
    #: Back-end the exemplar (and reproducer) replays on.
    exemplar_backend: str
    exemplar_detail: str
    #: deterministic | flaky(k_of_n) | vanished | unconfirmed.
    confirmation: str
    confirmed_runs: int
    total_runs: int
    #: Path-condition length before shrinking (None: path not located).
    original_constraints: int | None = None
    #: Fresh executions the shrinker spent (None: shrinking skipped).
    shrink_trials: int | None = None
    #: Minimal constraint shape (None: shrinking skipped).
    shrunken_shape: str | None = None
    #: ``((term, taken), ...)`` — the (possibly shrunken) path condition.
    constraints: tuple = ()
    #: Minimal input model (``Model.to_dict``); None: no located path.
    model: dict | None = None
    #: Emitted reproducer file name (inside the repro dir).
    repro_file: str | None = None
    #: Emission-time self-check: True = asserted the divergence,
    #: False = did not, None = verification skipped or not emitted.
    verified: bool | None = None

    def to_dict(self) -> dict:
        return {
            "signature": self.signature.to_dict(),
            "count": self.count,
            "backends": list(self.backends),
            "exemplar_backend": self.exemplar_backend,
            "exemplar_detail": self.exemplar_detail,
            "confirmation": self.confirmation,
            "confirmed_runs": self.confirmed_runs,
            "total_runs": self.total_runs,
            "original_constraints": self.original_constraints,
            "shrink_trials": self.shrink_trials,
            "shrunken_shape": self.shrunken_shape,
            "constraints": [
                [term, taken] for term, taken in self.constraints
            ],
            "model": self.model,
            "repro_file": self.repro_file,
            "verified": self.verified,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TriageCause":
        return cls(
            signature=DefectSignature.from_dict(data["signature"]),
            count=data["count"],
            backends=tuple(data.get("backends", ())),
            exemplar_backend=data["exemplar_backend"],
            exemplar_detail=data.get("exemplar_detail", ""),
            confirmation=data["confirmation"],
            confirmed_runs=data.get("confirmed_runs", 0),
            total_runs=data.get("total_runs", 0),
            original_constraints=data.get("original_constraints"),
            shrink_trials=data.get("shrink_trials"),
            shrunken_shape=data.get("shrunken_shape"),
            constraints=tuple(
                (term, bool(taken))
                for term, taken in data.get("constraints", ())
            ),
            model=data.get("model"),
            repro_file=data.get("repro_file"),
            verified=data.get("verified"),
        )


@dataclass
class CrashCause:
    """One deduplicated quarantined-crash bucket."""

    signature: DefectSignature
    count: int
    stage: str
    error_class: str
    exemplar_message: str
    confirmation: str
    confirmed_runs: int
    total_runs: int

    def to_dict(self) -> dict:
        return {
            "signature": self.signature.to_dict(),
            "count": self.count,
            "stage": self.stage,
            "error_class": self.error_class,
            "exemplar_message": self.exemplar_message,
            "confirmation": self.confirmation,
            "confirmed_runs": self.confirmed_runs,
            "total_runs": self.total_runs,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CrashCause":
        return cls(
            signature=DefectSignature.from_dict(data["signature"]),
            count=data["count"],
            stage=data["stage"],
            error_class=data["error_class"],
            exemplar_message=data.get("exemplar_message", ""),
            confirmation=data["confirmation"],
            confirmed_runs=data.get("confirmed_runs", 0),
            total_runs=data.get("total_runs", 0),
        )


@dataclass
class TriageReport:
    """Everything the Causes report section renders."""

    causes: list = field(default_factory=list)
    crash_causes: list = field(default_factory=list)
    #: Differing executions that entered triage.
    divergence_count: int = 0
    #: Quarantined cells that entered triage.
    crash_count: int = 0
    repro_dir: str | None = None
    #: Cause buckets replayed from the journal instead of re-triaged.
    reused_causes: int = 0


def _label(confirmed: int, total: int, *, located: bool) -> str:
    if not located or total == 0:
        return "unconfirmed"
    if confirmed == total:
        return "deterministic"
    if confirmed == 0:
        return "vanished"
    return f"flaky({confirmed}_of_{total})"


def _constraint_pairs(constraints) -> tuple:
    return tuple((str(c.term), bool(c.taken)) for c in constraints)


def _triage_divergence(lab: TriageLab, signature, group, backends,
                       triage: TriageConfig) -> TriageCause:
    """Confirm and shrink one fresh divergence bucket."""
    exemplar = group[0]
    path = lab.locate(exemplar)
    runs = max(0, triage.confirm_runs)
    confirmed = total = 0
    if path is not None:
        total = runs
        for _ in range(runs):
            trial = lab.run_trial(exemplar, path.constraints, path.model)
            if matches(exemplar, trial):
                confirmed += 1
    cause = TriageCause(
        signature=signature,
        count=len(group),
        backends=backends,
        exemplar_backend=exemplar.backend,
        exemplar_detail=exemplar.detail,
        confirmation=_label(confirmed, total, located=path is not None),
        confirmed_runs=confirmed,
        total_runs=total,
    )
    if path is None:
        return cause
    cause.original_constraints = len(path.constraints)
    if triage.shrink and confirmed > 0:
        outcome = shrink_candidate(lab, exemplar, path)
        cause.constraints = _constraint_pairs(outcome.constraints)
        cause.model = outcome.model.to_dict()
        cause.shrunken_shape = outcome.shape
        cause.shrink_trials = outcome.trials
    else:
        # No shrinking (disabled, or nothing reproduced): the original
        # located path is still the best reproducer input we have.
        cause.constraints = _constraint_pairs(path.constraints)
        cause.model = path.model.to_dict()
    return cause


def _triage_crash(lab: TriageLab, signature, group,
                  triage: TriageConfig) -> CrashCause:
    """Confirm one fresh quarantined-crash bucket."""
    exemplar = group[0]
    runs = max(0, triage.confirm_runs)
    if exemplar.error_class == "WorkerCrash":
        # The cell killed a whole worker process; re-running it in the
        # parent could take down the campaign, so it stays unconfirmed.
        confirmed = total = 0
        located = False
    else:
        confirmed, total, located = 0, runs, True
        for _ in range(runs):
            error = lab.run_cell(exemplar)
            if error is not None and error.error_class == exemplar.error_class:
                confirmed += 1
    return CrashCause(
        signature=signature,
        count=len(group),
        stage=exemplar.stage,
        error_class=exemplar.error_class,
        exemplar_message=exemplar.message,
        confirmation=_label(confirmed, total, located=located),
        confirmed_runs=confirmed,
        total_runs=total,
    )


def run_triage(result, config, triage: TriageConfig, *,
               journal_path=None, resume: bool = False) -> TriageReport:
    """Triage one finished campaign; see the package docstring.

    ``result`` is the :class:`CampaignResult`, ``config`` the
    :class:`CampaignConfig` it ran under (budgets, seeded gaps and
    active mutants must match for confirmation to re-create the
    campaign's conditions).  The whole pass runs under
    ``config.mutants``: triage executes in the *parent* process, which
    — with ``jobs > 1`` — never ran a mutated cell itself, so without
    this activation confirmation and shrinking would replay against
    the unmutated semantics and report every seeded defect as
    ``vanished``.
    """
    from repro.mutation import activated

    with activated(config.mutants):
        return _run_triage_activated(result, config, triage,
                                     journal_path=journal_path,
                                     resume=resume)


def _run_triage_activated(result, config, triage: TriageConfig, *,
                          journal_path=None,
                          resume: bool = False) -> TriageReport:
    divergences = collect_divergences(result)
    crashes = collect_crashes(result.quarantine)
    journal = CampaignJournal(journal_path) if journal_path else None
    finished = (
        triage_records(journal.load())
        if (journal is not None and resume) else {}
    )
    lab = TriageLab(config)
    report = TriageReport(
        divergence_count=len(divergences),
        crash_count=len(crashes),
        repro_dir=triage.repro_dir,
    )

    for digest, (signature, group) in bucket_candidates(divergences).items():
        record = finished.get(digest)
        backends = tuple(sorted({c.backend for c in group}))
        if record is not None and not record.get("crash"):
            cause = TriageCause.from_dict(record["cause"])
            # Counts are recomputed from the (identical) campaign data;
            # the expensive confirmation/shrink/verify state is reused.
            cause.count = len(group)
            cause.backends = backends
            report.reused_causes += 1
            fresh = False
        else:
            cause = _triage_divergence(lab, signature, group, backends,
                                       triage)
            fresh = True
        if triage.repro_dir is not None and cause.model is not None:
            path = emit_reproducer(cause, triage.repro_dir, lab.config)
            cause.repro_file = path.name
            if fresh and triage.self_verify:
                cause.verified = self_verify(path)
        if fresh and journal is not None:
            journal.append({
                "key": triage_key(digest),
                "crash": False,
                "cause": cause.to_dict(),
            })
        report.causes.append(cause)

    for digest, (signature, group) in bucket_candidates(crashes).items():
        record = finished.get(digest)
        if record is not None and record.get("crash"):
            cause = CrashCause.from_dict(record["cause"])
            cause.count = len(group)
            report.reused_causes += 1
        else:
            cause = _triage_crash(lab, signature, group, triage)
            if journal is not None:
                journal.append({
                    "key": triage_key(digest),
                    "crash": True,
                    "cause": cause.to_dict(),
                })
        report.crash_causes.append(cause)

    return report
