"""Runtime support for emitted standalone reproducers.

An emitted ``repros/<signature>.py`` embeds nothing but plain data —
the cell identity, the expected defect classification, the shrunken
path condition (as recorded text) and the minimal solver model.  This
module turns that data back into one differential execution: rebuild
the frame from the model, run the interpreter and the JIT side by side
in a fresh world, classify the outcome, and compare it against the
expected signature.  No campaign machinery (runner, journal, pool) is
involved — only the harness itself.

Exit-status convention of the generated scripts: **1** when the
divergence reproduces (mirroring ``repro test``, which exits 1 on
differing paths), **0** when it has vanished.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.concolic.explorer import PathResult
from repro.concolic.solver import Model
from repro.difftest.defects import classify
from repro.difftest.harness import DifferentialTester
from repro.triage.lab import backend_class_for, compiler_for, spec_for
from repro.triage.signature import exit_pair


class RecordedConstraint:
    """A path constraint replayed from recorded text.

    Renders exactly like the live :class:`PathConstraint` it was
    recorded from, so operand-shape classification and path signatures
    agree between live and replayed runs.
    """

    __slots__ = ("term", "taken")

    def __init__(self, term: str, taken: bool) -> None:
        self.term = term
        self.taken = bool(taken)

    def __str__(self) -> str:
        return self.term if self.taken else f"not({self.term})"

    def __repr__(self) -> str:
        return f"RecordedConstraint({self.term!r}, {self.taken!r})"


@dataclass
class ReplayVerdict:
    """Outcome of replaying one emitted reproducer."""

    reproduced: bool
    expected: dict
    comparison: object = None

    def describe(self) -> str:
        expect = self.expected
        head = (
            f"{expect['instruction']} [{expect['compiler']}/"
            f"{expect['backend']}] expecting {expect['category']} "
            f"({expect['cause']})"
        )
        if self.comparison is None:
            return f"{head}\n  replay crashed before a verdict"
        observed = self.comparison.describe()
        verdict = (
            "DIVERGENCE REPRODUCED" if self.reproduced
            else "divergence vanished"
        )
        return f"{head}\n  observed: {observed}\n  {verdict}"


def replay(expect: dict, model_data: dict, constraints, *,
           max_sim_steps: int = 20_000,
           fault_describer_gaps: tuple = (),
           mutants: tuple = ()) -> ReplayVerdict:
    """One standalone interpreter-vs-JIT execution from recorded data.

    ``mutants`` names registry mutants (docs/MUTATION.md) to activate
    around the execution: a divergence triaged out of a mutated
    campaign only reproduces under the same mutated semantics, so the
    emitted reproducer embeds the campaign's mutant tuple and replays
    it here.
    """
    from repro.mutation import activated

    with activated(tuple(mutants)):
        return _replay_activated(
            expect, model_data, constraints,
            max_sim_steps=max_sim_steps,
            fault_describer_gaps=fault_describer_gaps,
        )


def _replay_activated(expect: dict, model_data: dict, constraints, *,
                      max_sim_steps: int,
                      fault_describer_gaps: tuple) -> ReplayVerdict:
    spec = spec_for(expect["kind"], expect["instruction"])
    backend = backend_class_for(expect["backend"])()
    compiler_class = compiler_for(expect["compiler"])
    try:
        tester = DifferentialTester(
            spec, backend, compiler_class,
            max_sim_steps=max_sim_steps,
            fault_describer_gaps=tuple(fault_describer_gaps),
        )
        model = Model.from_dict(tester.context, model_data)
        path = PathResult(
            instruction=spec.name,
            kind=spec.kind,
            constraints=[
                RecordedConstraint(term, taken) for term, taken in constraints
            ],
            model=model,
            exit=None,
            output=None,
        )
        comparison = tester.run_path(path)
    except Exception:
        return ReplayVerdict(reproduced=False, expected=expect)
    reproduced = False
    if comparison.is_difference:
        defect = classify(comparison)
        interp = comparison.interpreter_exit
        outcome = comparison.machine_outcome
        pair = exit_pair(
            None if interp is None else interp.condition.value,
            None if outcome is None else outcome.kind.value,
        )
        reproduced = (
            defect.category.value == expect["category"]
            and defect.cause == expect["cause"]
            and (comparison.difference_kind or "") == expect["difference_kind"]
            and pair == expect["exit_pair"]
        )
    return ReplayVerdict(
        reproduced=reproduced, expected=expect, comparison=comparison
    )
