"""Reproducer emission: one standalone, self-verified script per cause.

Each emitted file embeds only literal data (cell identity, expected
classification, shrunken constraints, minimal model) plus a call into
:mod:`repro.triage.replay`.  Rendering is fully deterministic — sorted
dict keys, fixed layout — so re-emitting the same cause (for example
after ``--resume``) writes byte-identical files.

Self-verification runs the freshly written file once in a subprocess
with the ``repro`` package on ``PYTHONPATH`` and requires the script's
divergence-asserted exit status (1).  A reproducer that does not fail
standalone is reported with ``self-check: NOT asserted`` rather than
silently trusted.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from repro.robustness import chaos


def _literal(value, indent: int = 0) -> str:
    """Deterministic Python literal rendering (sorted dict keys)."""
    if isinstance(value, dict):
        if not value:
            return "{}"
        pad = " " * (indent + 4)
        items = ",\n".join(
            f"{pad}{_literal(key)}: {_literal(value[key], indent + 4)}"
            for key in sorted(value)
        )
        return "{\n" + items + ",\n" + " " * indent + "}"
    if isinstance(value, (list, tuple)):
        if not value:
            return "()"
        items = ", ".join(_literal(entry) for entry in value)
        if len(value) == 1:
            items += ","
        return f"({items})"
    return repr(value)


def reproducer_filename(signature) -> str:
    return f"{signature.slug()}-{signature.digest}.py"


def reproducer_source(cause, config) -> str:
    """The full source text of one cause's standalone reproducer."""
    signature = cause.signature
    expect = dict(signature.to_dict(), backend=cause.exemplar_backend)
    lines = [
        "#!/usr/bin/env python3",
        '"""Standalone reproducer emitted by `repro campaign --triage`.',
        "",
        f"signature: {signature.canonical()}",
        f"digest:    {signature.digest}",
        f"shrunken:  {cause.shrunken_shape or '(not shrunk)'}",
        "",
        "Rebuilds the frame from the minimal model below and runs the",
        "interpreter and the JIT side by side — no campaign machinery.",
        "Exits 1 when the divergence reproduces, 0 when it has vanished.",
        "",
        "Run with:  PYTHONPATH=src python " + reproducer_filename(signature),
        '"""',
        "",
        "import sys",
        "",
        "from repro.triage.replay import replay",
        "",
        f"EXPECT = {_literal(expect)}",
        f"CONSTRAINTS = {_literal(tuple(cause.constraints))}",
        f"MODEL = {_literal(cause.model or {})}",
        f"MAX_SIM_STEPS = {config.max_sim_steps}",
        f"FAULT_DESCRIBER_GAPS = {_literal(tuple(config.fault_describer_gaps))}",
        f"MUTANTS = {_literal(tuple(getattr(config, 'mutants', ())))}",
        "",
        "",
        "def main() -> int:",
        "    verdict = replay(EXPECT, MODEL, CONSTRAINTS,",
        "                     max_sim_steps=MAX_SIM_STEPS,",
        "                     fault_describer_gaps=FAULT_DESCRIBER_GAPS,",
        "                     mutants=MUTANTS)",
        "    print(verdict.describe())",
        "    return 1 if verdict.reproduced else 0",
        "",
        "",
        'if __name__ == "__main__":',
        "    sys.exit(main())",
    ]
    return "\n".join(lines) + "\n"


def emit_reproducer(cause, repro_dir, config) -> Path:
    """Write (or deterministically re-write) one cause's reproducer."""
    path = Path(repro_dir) / reproducer_filename(cause.signature)
    path.parent.mkdir(parents=True, exist_ok=True)
    source = reproducer_source(cause, config)
    if not path.exists() or path.read_text(encoding="utf-8") != source:
        chaos.write_point("triage", path, source.encode("utf-8"))
        path.write_text(source, encoding="utf-8")
    return path


def self_verify(path, timeout: float = 300.0) -> bool:
    """Run an emitted reproducer once; True iff it asserts the divergence.

    The subprocess gets the currently imported ``repro`` package on
    ``PYTHONPATH``, so verification works regardless of how the parent
    was launched.
    """
    import repro

    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else src_dir + os.pathsep + existing
    )
    try:
        proc = subprocess.run(
            [sys.executable, str(path)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            timeout=timeout,
        )
    except (OSError, subprocess.TimeoutExpired):
        return False
    return proc.returncode == 1
