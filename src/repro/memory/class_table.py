"""Class table: class index <-> class description.

The paper's abstract class constraints (Fig. 3) are ``format`` plus
``class_id``: a class is identified by its *index in the class table*,
which is what object headers store and what the semantic constraint
``classIndexOf(v) == k`` talks about.

Class descriptions live on the Python side (they are VM metadata, not
part of the differential surface); their *identity* — the index — is what
flows through headers, constraints and compiled type checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.layout import ObjectFormat


@dataclass(frozen=True)
class ClassDescription:
    """Metadata for one class in the class table."""

    index: int
    name: str
    #: Memory format instances of this class use.
    instance_format: ObjectFormat
    #: Number of fixed named slots (for FIXED_POINTERS instances).
    fixed_slots: int = 0
    #: True when instances may have indexable slots beyond the fixed ones.
    is_variable: bool = field(default=False)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"<class {self.name} #{self.index}>"


class ClassTable:
    """Dense table of classes, indexed by class index."""

    def __init__(self) -> None:
        self._classes: list[ClassDescription] = []
        self._by_name: dict[str, ClassDescription] = {}

    def define(
        self,
        name: str,
        instance_format: ObjectFormat,
        fixed_slots: int = 0,
        is_variable: bool = False,
    ) -> ClassDescription:
        """Append a new class and return its description."""
        if name in self._by_name:
            raise ValueError(f"class already defined: {name}")
        description = ClassDescription(
            index=len(self._classes),
            name=name,
            instance_format=instance_format,
            fixed_slots=fixed_slots,
            is_variable=is_variable,
        )
        self._classes.append(description)
        self._by_name[name] = description
        return description

    def at(self, index: int) -> ClassDescription:
        if not 0 <= index < len(self._classes):
            raise IndexError(f"no class at index {index}")
        return self._classes[index]

    def named(self, name: str) -> ClassDescription:
        return self._by_name[name]

    def __len__(self) -> int:
        return len(self._classes)

    def __iter__(self):
        return iter(self._classes)
