"""Bootstrap a minimal but faithful object space.

Creates the class table with the classes the instruction set touches,
allocates the three immutable special objects (nil, false, true) at known
heap addresses, and wires the well-known class indices into the
:class:`~repro.memory.object_memory.ObjectMemory`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.class_table import ClassDescription, ClassTable
from repro.memory.heap import Heap
from repro.memory.layout import ObjectFormat
from repro.memory.object_memory import ObjectMemory


@dataclass(frozen=True)
class WellKnown:
    """Handles to everything the interpreter/compilers need by name."""

    undefined_object: ClassDescription
    boolean_false: ClassDescription
    boolean_true: ClassDescription
    small_integer: ClassDescription
    boxed_float: ClassDescription
    array: ClassDescription
    byte_array: ClassDescription
    word_array: ClassDescription
    byte_string: ClassDescription
    byte_symbol: ClassDescription
    association: ClassDescription
    point: ClassDescription
    compiled_method: ClassDescription
    block_closure: ClassDescription
    message: ClassDescription
    context: ClassDescription
    external_address: ClassDescription
    plain_object: ClassDescription
    large_integer: ClassDescription
    behavior: ClassDescription


def _define_classes(table: ClassTable) -> WellKnown:
    return WellKnown(
        undefined_object=table.define("UndefinedObject", ObjectFormat.FIXED_POINTERS),
        boolean_false=table.define("False", ObjectFormat.FIXED_POINTERS),
        boolean_true=table.define("True", ObjectFormat.FIXED_POINTERS),
        small_integer=table.define("SmallInteger", ObjectFormat.FIXED_POINTERS),
        boxed_float=table.define(
            "BoxedFloat64", ObjectFormat.BOXED_FLOAT, is_variable=True
        ),
        array=table.define("Array", ObjectFormat.VARIABLE_POINTERS, is_variable=True),
        byte_array=table.define("ByteArray", ObjectFormat.BYTES, is_variable=True),
        word_array=table.define("WordArray", ObjectFormat.WORDS, is_variable=True),
        byte_string=table.define("ByteString", ObjectFormat.BYTES, is_variable=True),
        byte_symbol=table.define("ByteSymbol", ObjectFormat.BYTES, is_variable=True),
        association=table.define(
            "Association", ObjectFormat.FIXED_POINTERS, fixed_slots=2
        ),
        point=table.define("Point", ObjectFormat.FIXED_POINTERS, fixed_slots=2),
        compiled_method=table.define(
            "CompiledMethod", ObjectFormat.COMPILED_METHOD, is_variable=True
        ),
        block_closure=table.define(
            "BlockClosure", ObjectFormat.FIXED_POINTERS, fixed_slots=3
        ),
        message=table.define("Message", ObjectFormat.FIXED_POINTERS, fixed_slots=2),
        context=table.define(
            "Context", ObjectFormat.VARIABLE_POINTERS, fixed_slots=4, is_variable=True
        ),
        external_address=table.define(
            "ExternalAddress", ObjectFormat.WORDS, is_variable=True
        ),
        plain_object=table.define(
            "PlainObject", ObjectFormat.FIXED_POINTERS, fixed_slots=4
        ),
        large_integer=table.define(
            "LargePositiveInteger", ObjectFormat.BYTES, is_variable=True
        ),
        behavior=table.define(
            "Behavior", ObjectFormat.FIXED_POINTERS, fixed_slots=2
        ),
    )


def make_behavior(memory: ObjectMemory, cls: ClassDescription) -> int:
    """Allocate a Behavior proxy for *cls* (receiver of primitiveNew).

    Slot 0 holds the class index as a tagged integer; slot 1 the fixed
    instance size.  This stands in for first-class class objects, which
    this reproduction does not model.
    """
    behavior_class = memory.class_table.named("Behavior")
    oop = memory.instantiate(behavior_class)
    memory.store_pointer(0, oop, memory.integer_object_of(cls.index))
    memory.store_pointer(1, oop, memory.integer_object_of(cls.fixed_slots))
    return oop


def bootstrap_memory(
    heap_words: int = 64 * 1024, memory_class: type = ObjectMemory
) -> tuple[ObjectMemory, WellKnown]:
    """Create a ready-to-run object memory.

    ``memory_class`` lets the concolic engine substitute its
    constraint-recording SymbolicObjectMemory while reusing the exact
    same bootstrap.

    Returns the memory and the well-known class handles.  The special
    objects nil, false, true are the first three allocations, so their
    oops are stable across runs — materialized frames and compiled code
    can embed them as immediates.
    """
    heap = Heap(size_words=heap_words)
    table = ClassTable()
    known = _define_classes(table)

    memory = memory_class(heap, table)
    memory.small_integer_class_index = known.small_integer.index
    memory.float_class_index = known.boxed_float.index
    memory.array_class_index = known.array.index

    memory.nil_object = memory.instantiate(known.undefined_object)
    memory.false_object = memory.instantiate(known.boolean_false)
    memory.true_object = memory.instantiate(known.boolean_true)
    # Re-nil the special objects' own slots now that nil exists.
    return memory, known
