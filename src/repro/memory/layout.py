"""Word size, tagging scheme, header encoding and object formats.

The reproduction targets the 32-bit configuration the paper evaluates
("we constrained our usage for now to 32bit compilations", Section 4.3).

Tagging
-------
An *oop* is a 32-bit machine word.

* ``oop & 1 == 1`` — a tagged SmallInteger.  The value is the signed
  31-bit quantity ``oop >> 1``; the representable range is
  ``[-2**30, 2**30 - 1]``.
* ``oop & 1 == 0`` — a pointer to a heap object.  Objects are aligned to
  4-byte (one-word) boundaries, so pointer oops always have their two low
  bits clear.

Object layout
-------------
Every heap object occupies ``HEADER_WORDS + num_slots`` words::

    word 0   header: [ class index (22 bits) | format (5 bits) | flags ]
    word 1   number of slots
    word 2+  slots (oops for pointer formats, raw words otherwise)

This is a simplified Spur-style header: the class is an *index* into the
class table, not a pointer, exactly the indirection the paper's abstract
class constraints model (``class_id`` in Fig. 3).
"""

from __future__ import annotations

import enum
import struct

WORD_SIZE = 4
WORD_BITS = 32
WORD_MASK = (1 << WORD_BITS) - 1

SMALL_INT_BITS = 31
MAX_SMALL_INT = (1 << (SMALL_INT_BITS - 1)) - 1  # 2**30 - 1
MIN_SMALL_INT = -(1 << (SMALL_INT_BITS - 1))  # -2**30

HEADER_WORDS = 2

CLASS_INDEX_BITS = 22
FORMAT_BITS = 5
CLASS_INDEX_SHIFT = FORMAT_BITS + 5  # 5 flag bits below the format field
FORMAT_SHIFT = 5
FORMAT_MASK = (1 << FORMAT_BITS) - 1
CLASS_INDEX_MASK = (1 << CLASS_INDEX_BITS) - 1


class ObjectFormat(enum.IntEnum):
    """Memory format of a heap object (paper Fig. 3, ``format`` field)."""

    #: No indexable slots; fixed named slots only (plain objects).
    FIXED_POINTERS = 1
    #: Variable pointer slots (Array).
    VARIABLE_POINTERS = 2
    #: Raw 32-bit word slots (word arrays, float bodies).
    WORDS = 3
    #: Raw byte slots, one byte stored per word slot (documented
    #: simplification; width checks still distinguish byte access).
    BYTES = 4
    #: Boxed float: exactly two raw word slots holding an IEEE-754 double.
    BOXED_FLOAT = 5
    #: Compiled method: literal oops followed by raw bytecode words.
    COMPILED_METHOD = 6

    @property
    def is_pointers(self) -> bool:
        return self in (ObjectFormat.FIXED_POINTERS, ObjectFormat.VARIABLE_POINTERS)

    @property
    def is_raw(self) -> bool:
        return not self.is_pointers


def is_small_int_oop(oop: int) -> bool:
    """True when *oop* is a tagged SmallInteger."""
    return (oop & 1) == 1


def fits_small_int(value: int) -> bool:
    """True when *value* is representable as a tagged SmallInteger.

    This is the interpreter's overflow check
    (``objectMemory isIntegerValue:`` in Listing 1 of the paper).
    """
    return MIN_SMALL_INT <= value <= MAX_SMALL_INT


def small_int_oop(value: int) -> int:
    """Tag *value* as a SmallInteger oop (``integerObjectOf:``)."""
    if not fits_small_int(value):
        raise OverflowError(f"{value} does not fit in a tagged SmallInteger")
    return ((value << 1) | 1) & WORD_MASK


def small_int_value(oop: int) -> int:
    """Untag a SmallInteger oop into a signed value (``integerValueOf:``).

    Like the real VM this performs *no* type check: untagging a pointer
    yields garbage.  Safety lives in callers (safe native methods check,
    unsafe bytecodes do not) — that asymmetry is what the paper tests.
    """
    unsigned = (oop & WORD_MASK) >> 1
    if unsigned >= 1 << (SMALL_INT_BITS - 1):
        unsigned -= 1 << SMALL_INT_BITS
    return unsigned


def encode_header(class_index: int, fmt: ObjectFormat) -> int:
    """Pack a class index and format into a header word."""
    if not 0 <= class_index <= CLASS_INDEX_MASK:
        raise ValueError(f"class index out of range: {class_index}")
    return ((class_index & CLASS_INDEX_MASK) << CLASS_INDEX_SHIFT) | (
        (int(fmt) & FORMAT_MASK) << FORMAT_SHIFT
    )


def header_class_index(header: int) -> int:
    return (header >> CLASS_INDEX_SHIFT) & CLASS_INDEX_MASK


def header_format(header: int) -> ObjectFormat:
    return ObjectFormat((header >> FORMAT_SHIFT) & FORMAT_MASK)


def float_to_words(value: float) -> tuple[int, int]:
    """Split an IEEE-754 double into (high, low) 32-bit words."""
    bits = struct.unpack("<Q", struct.pack("<d", value))[0]
    return (bits >> 32) & WORD_MASK, bits & WORD_MASK


def words_to_float(high: int, low: int) -> float:
    """Rebuild an IEEE-754 double from (high, low) 32-bit words.

    Used by *unchecked* unboxing too: reading the body of a non-float
    object through this function yields exactly the "random numbers" the
    paper observed for the missing-type-check defects.
    """
    bits = ((high & WORD_MASK) << 32) | (low & WORD_MASK)
    return struct.unpack("<d", struct.pack("<Q", bits))[0]
