"""Object memory substrate: tagged values, heap, class table, bootstrap.

The Pharo VM that the paper targets stores every value as an *oop* (object
pointer): either a 1-bit-tagged small integer or the address of a heap
object with a header carrying a class index and a format.  This package
reimplements that model on a flat word-addressable heap so that both the
byte-code interpreter and the simulated JIT-compiled machine code operate
on the *same* memory — differential effects (including memory corruption
from missing type checks) are therefore real, not modelled.
"""

from repro.memory.layout import (
    WORD_SIZE,
    WORD_BITS,
    SMALL_INT_BITS,
    MIN_SMALL_INT,
    MAX_SMALL_INT,
    ObjectFormat,
    is_small_int_oop,
    small_int_value,
    small_int_oop,
    fits_small_int,
)
from repro.memory.heap import Heap
from repro.memory.class_table import ClassTable, ClassDescription
from repro.memory.object_memory import ObjectMemory
from repro.memory.bootstrap import bootstrap_memory, WellKnown

__all__ = [
    "WORD_SIZE",
    "WORD_BITS",
    "SMALL_INT_BITS",
    "MIN_SMALL_INT",
    "MAX_SMALL_INT",
    "ObjectFormat",
    "is_small_int_oop",
    "small_int_value",
    "small_int_oop",
    "fits_small_int",
    "Heap",
    "ClassTable",
    "ClassDescription",
    "ObjectMemory",
    "bootstrap_memory",
    "WellKnown",
]
