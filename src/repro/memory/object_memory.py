"""High-level object memory API used by the interpreter and the JIT.

This is the reproduction of the ``objectMemory`` protocol the paper's
interpreter code is written against (Listing 1 uses ``areIntegers:and:``,
``integerValueOf:``, ``isIntegerValue:``, ``integerObjectOf:``).  The
concolic engine replaces this object with a constraint-recording wrapper
(:mod:`repro.concolic.symbolic_memory`) while the *same interpreter code*
keeps running — that is the paper's "interpreters are executable
specifications" insight realized at the API boundary.

Safety policy (paper Section 3.1): the accessors here mirror the VM and
perform **no type checks** — ``integer_value_of`` on a pointer yields
garbage, ``float_value_of`` on a non-float unboxes random bits.  Safe
native methods perform their own checks; unsafe byte-codes do not.
"""

from __future__ import annotations

from repro.errors import InvalidMemoryAccess, UntaggedValueError
from repro.memory.class_table import ClassDescription, ClassTable
from repro.memory.heap import Heap
from repro.memory.layout import (
    HEADER_WORDS,
    WORD_SIZE,
    ObjectFormat,
    encode_header,
    fits_small_int,
    float_to_words,
    header_class_index,
    header_format,
    is_small_int_oop,
    small_int_oop,
    small_int_value,
    words_to_float,
)


class ObjectMemory:
    """Tagged-oop object memory over a flat :class:`Heap`."""

    def __init__(self, heap: Heap, class_table: ClassTable) -> None:
        self.heap = heap
        self.class_table = class_table
        # Special oops; filled in by bootstrap.
        self.nil_object: int = 0
        self.true_object: int = 0
        self.false_object: int = 0
        # Well-known class indices; filled in by bootstrap.
        self.small_integer_class_index: int = -1
        self.float_class_index: int = -1
        self.array_class_index: int = -1

    # ------------------------------------------------------------------
    # tagged SmallIntegers (Listing 1 protocol)

    def is_integer_object(self, oop: int) -> bool:
        """``isIntegerObject:`` — is this oop a tagged SmallInteger?"""
        return is_small_int_oop(oop)

    def are_integers(self, receiver: int, argument: int) -> bool:
        """``areIntegers:and:`` — both oops tagged SmallIntegers?"""
        return is_small_int_oop(receiver) and is_small_int_oop(argument)

    def integer_value_of(self, oop: int) -> int:
        """``integerValueOf:`` — untag without checking (unsafe)."""
        return small_int_value(oop)

    def is_integer_value(self, value: int) -> bool:
        """``isIntegerValue:`` — does *value* fit a tagged SmallInteger?"""
        return fits_small_int(value)

    def integer_object_of(self, value: int) -> int:
        """``integerObjectOf:`` — tag a value known to fit."""
        return small_int_oop(value)

    # ------------------------------------------------------------------
    # booleans

    def boolean_object_of(self, value: bool) -> int:
        return self.true_object if value else self.false_object

    def is_boolean_object(self, oop: int) -> bool:
        return oop in (self.true_object, self.false_object)

    def is_true_object(self, oop: int) -> bool:
        return oop == self.true_object

    def is_false_object(self, oop: int) -> bool:
        return oop == self.false_object

    def is_nil_object(self, oop: int) -> bool:
        return oop == self.nil_object

    def are_identical(self, left: int, right: int) -> bool:
        """Pointer-identity comparison (the ``==`` byte-code semantics)."""
        return left == right

    def identity_hash_of(self, oop: int) -> int:
        """Identity hash derived from the (word-aligned) oop."""
        return (oop >> 2) & 0xFFFFFF

    # ------------------------------------------------------------------
    # headers

    def _header_address(self, oop: int) -> int:
        if is_small_int_oop(oop):
            raise UntaggedValueError(f"oop {oop:#x} is a tagged integer, not a pointer")
        return oop

    def class_index_of(self, oop: int) -> int:
        """Class index of any oop (SmallIntegers report their own class)."""
        if is_small_int_oop(oop):
            return self.small_integer_class_index
        return header_class_index(self.heap.read_word(self._header_address(oop)))

    def class_of(self, oop: int) -> ClassDescription:
        return self.class_table.at(self.class_index_of(oop))

    def format_of(self, oop: int) -> ObjectFormat:
        return header_format(self.heap.read_word(self._header_address(oop)))

    def num_slots_of(self, oop: int) -> int:
        return self.heap.read_word(self._header_address(oop) + WORD_SIZE)

    def is_float_object(self, oop: int) -> bool:
        return (
            not is_small_int_oop(oop)
            and self.class_index_of(oop) == self.float_class_index
        )

    def is_pointer_format(self, oop: int) -> bool:
        return self.format_of(oop).is_pointers

    # ------------------------------------------------------------------
    # slots

    def slot_address(self, oop: int, index: int) -> int:
        """Raw byte address of slot *index* — no bounds check (unsafe)."""
        return self._header_address(oop) + (HEADER_WORDS + index) * WORD_SIZE

    def fetch_pointer(self, index: int, oop: int) -> int:
        """``fetchPointer:ofObject:`` — raw slot read, VM-style unsafe.

        Out-of-bounds indices read whatever word follows the object (a
        neighbour's header or slot) or raise
        :class:`~repro.errors.InvalidMemoryAccess` past the heap end —
        exactly the corruption surface missing type checks expose.
        """
        return self.heap.read_word(self.slot_address(oop, index))

    def store_pointer(self, index: int, oop: int, value: int) -> None:
        """``storePointer:ofObject:withValue:`` — raw slot write (unsafe)."""
        self.heap.write_word(self.slot_address(oop, index), value)

    def checked_fetch_pointer(self, index: int, oop: int) -> int:
        """Bounds-checked slot read, as safe native methods perform it."""
        self._check_slot_bounds(index, oop)
        return self.fetch_pointer(index, oop)

    def checked_store_pointer(self, index: int, oop: int, value: int) -> None:
        """Bounds-checked slot write, as safe native methods perform it."""
        self._check_slot_bounds(index, oop)
        self.store_pointer(index, oop, value)

    def _check_slot_bounds(self, index: int, oop: int) -> None:
        if not 0 <= index < self.num_slots_of(oop):
            raise InvalidMemoryAccess(
                self.slot_address(oop, index), "(slot index out of bounds)"
            )

    # ------------------------------------------------------------------
    # allocation

    def instantiate(self, cls: ClassDescription, indexable_size: int = 0) -> int:
        """Allocate a fresh instance of *cls* and return its oop."""
        if indexable_size and not cls.is_variable:
            raise ValueError(f"{cls.name} instances have no indexable slots")
        n_slots = cls.fixed_slots + indexable_size
        address = self.heap.allocate(HEADER_WORDS + n_slots)
        self.heap.write_word(address, encode_header(cls.index, cls.instance_format))
        self.heap.write_word(address + WORD_SIZE, n_slots)
        nil = self.nil_object
        if cls.instance_format.is_pointers:
            for index in range(n_slots):
                self.store_pointer(index, address, nil)
        return address

    def instantiate_class_index(self, class_index: int, indexable_size: int = 0) -> int:
        return self.instantiate(self.class_table.at(class_index), indexable_size)

    # ------------------------------------------------------------------
    # boxed floats

    def float_object_of(self, value: float) -> int:
        """Allocate a boxed float holding *value*."""
        cls = self.class_table.at(self.float_class_index)
        oop = self.instantiate(cls, indexable_size=2)
        high, low = float_to_words(value)
        self.store_pointer(0, oop, high)
        self.store_pointer(1, oop, low)
        return oop

    def float_value_of(self, oop: int) -> float:
        """Unbox a double from *oop*'s body — **no type check** (unsafe).

        Reading a non-float object through this accessor produces the
        "random numbers" / segfault behaviour of the paper's missing
        type-check defects; past-the-heap bodies raise
        :class:`~repro.errors.InvalidMemoryAccess` (the simulated
        segmentation fault).
        """
        high = self.fetch_pointer(0, oop)
        low = self.fetch_pointer(1, oop)
        return words_to_float(high, low)

    # ------------------------------------------------------------------
    # convenience constructors

    def new_array(self, elements: list[int]) -> int:
        cls = self.class_table.at(self.array_class_index)
        oop = self.instantiate(cls, indexable_size=len(elements))
        for index, element in enumerate(elements):
            self.store_pointer(index, oop, element)
        return oop

    def array_elements(self, oop: int) -> list[int]:
        return [
            self.fetch_pointer(index, oop) for index in range(self.num_slots_of(oop))
        ]
