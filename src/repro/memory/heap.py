"""Flat word-addressable heap with a bump allocator.

The heap is the single source of truth shared by the byte-code interpreter
and the JIT-compiled machine code running on the CPU simulator.  All
addresses are byte addresses that must be word aligned; every read/write
is bounds-checked and raises :class:`~repro.errors.InvalidMemoryAccess`,
which the differential tester maps onto the paper's *Invalid Memory
Access* exit condition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HeapExhausted, InvalidMemoryAccess
from repro.memory.layout import WORD_MASK, WORD_SIZE


@dataclass(frozen=True)
class HeapCheckpoint:
    """A lightweight mark into a heap's copy-on-write journal.

    Creating one is O(1) — no words are copied.  The old value of every
    word written after the mark lives in the journal, so rewinding costs
    O(words written since) instead of O(heap size).
    """

    journal_length: int
    alloc_index: int


class Heap:
    """A fixed-size array of 32-bit words with bump allocation."""

    def __init__(self, size_words: int = 64 * 1024, base_address: int = 0x1000) -> None:
        if base_address % WORD_SIZE != 0:
            raise ValueError("heap base address must be word aligned")
        self._base = base_address
        self._words = [0] * size_words
        self._alloc_index = 0
        #: Monotonic counter of writes; cheap heap-mutation fingerprinting
        #: for the differential tester.
        self.write_count = 0
        #: Copy-on-write journal: ``(index, old_value)`` per write while
        #: journaling is on (``None`` = off).  See :meth:`checkpoint`.
        self._journal: list | None = None

    # ------------------------------------------------------------------
    # address arithmetic

    @property
    def base_address(self) -> int:
        return self._base

    @property
    def size_words(self) -> int:
        return len(self._words)

    @property
    def allocated_words(self) -> int:
        return self._alloc_index

    @property
    def free_pointer(self) -> int:
        """Byte address of the next free word (Pharo's ``freeStart``)."""
        return self._base + self._alloc_index * WORD_SIZE

    def contains(self, address: int) -> bool:
        """True when *address* points at an allocated, aligned heap word."""
        if address % WORD_SIZE != 0:
            return False
        index = (address - self._base) // WORD_SIZE
        return 0 <= index < self._alloc_index

    def _index_of(self, address: int, for_write: bool) -> int:
        if address % WORD_SIZE != 0:
            raise InvalidMemoryAccess(address, "(unaligned)")
        index = (address - self._base) // WORD_SIZE
        if not 0 <= index < self._alloc_index:
            kind = "write" if for_write else "read"
            raise InvalidMemoryAccess(address, f"({kind} outside allocated heap)")
        return index

    # ------------------------------------------------------------------
    # word access

    def read_word(self, address: int) -> int:
        return self._words[self._index_of(address, for_write=False)]

    def write_word(self, address: int, value: int) -> None:
        index = self._index_of(address, for_write=True)
        if self._journal is not None:
            self._journal.append((index, self._words[index]))
        self._words[index] = value & WORD_MASK
        self.write_count += 1

    # ------------------------------------------------------------------
    # allocation

    def allocate(self, n_words: int) -> int:
        """Bump-allocate *n_words* zeroed words; return their byte address."""
        if n_words < 0:
            raise ValueError("cannot allocate a negative number of words")
        if self._alloc_index + n_words > len(self._words):
            raise HeapExhausted(
                f"allocation of {n_words} words exceeds heap of {len(self._words)}"
            )
        address = self._base + self._alloc_index * WORD_SIZE
        self._alloc_index += n_words
        return address

    # ------------------------------------------------------------------
    # snapshots (used to compare side effects between engines)

    def snapshot(self) -> tuple[int, ...]:
        """Immutable copy of the allocated portion of the heap."""
        return tuple(self._words[: self._alloc_index])

    def restore(self, snapshot: tuple[int, ...]) -> None:
        """Restore a snapshot taken earlier, truncating later allocations.

        Restoring resets any active copy-on-write journal: checkpoints
        taken before the restore are invalidated (the journal no longer
        describes the words it would rewind).
        """
        if len(snapshot) > len(self._words):
            raise ValueError("snapshot larger than heap")
        self._words[: len(snapshot)] = list(snapshot)
        for index in range(len(snapshot), self._alloc_index):
            self._words[index] = 0
        self._alloc_index = len(snapshot)
        if self._journal is not None:
            self._journal = []

    # ------------------------------------------------------------------
    # copy-on-write checkpoints (undo journal)

    @property
    def journaling(self) -> bool:
        return self._journal is not None

    def start_journal(self) -> HeapCheckpoint:
        """Turn on copy-on-write journaling; returns the base checkpoint.

        While journaling is on, every :meth:`write_word` appends the
        word's *old* value to the journal, so any :meth:`checkpoint` can
        later be rewound in time proportional to the writes since it.
        Starting (or re-starting) empties the journal.
        """
        self._journal = []
        return HeapCheckpoint(0, self._alloc_index)

    def stop_journal(self) -> None:
        self._journal = None

    def checkpoint(self) -> HeapCheckpoint:
        """O(1) copy-on-write snapshot of the current heap state."""
        if self._journal is None:
            raise ValueError("checkpoint requires start_journal() first")
        return HeapCheckpoint(len(self._journal), self._alloc_index)

    def rewind(self, mark: HeapCheckpoint) -> None:
        """Undo every write and allocation made since *mark*."""
        journal = self._journal
        if journal is None:
            raise ValueError("rewind requires an active journal")
        if mark.journal_length > len(journal):
            raise ValueError("checkpoint is newer than the journal")
        for position in range(len(journal) - 1, mark.journal_length - 1, -1):
            index, old = journal[position]
            self._words[index] = old
        del journal[mark.journal_length:]
        self._alloc_index = mark.alloc_index

    def writes_since(self, mark: HeapCheckpoint) -> dict[int, tuple[int, int]]:
        """Net word changes since *mark*; same shape as :meth:`diff`.

        Words that existed at the mark appear only when their value
        actually changed; words allocated after the mark are all
        reported (old value 0), mirroring :meth:`diff` exactly so the
        two capture paths produce byte-identical results.
        """
        journal = self._journal
        if journal is None:
            raise ValueError("writes_since requires an active journal")
        first_old: dict[int, int] = {}
        for index, old in journal[mark.journal_length:]:
            if index not in first_old:
                first_old[index] = old
        changes: dict[int, tuple[int, int]] = {}
        for index in sorted(first_old):
            if index < mark.alloc_index:
                old, new = first_old[index], self._words[index]
                if old != new:
                    changes[self._base + index * WORD_SIZE] = (old, new)
        for index in range(mark.alloc_index, self._alloc_index):
            changes[self._base + index * WORD_SIZE] = (0, self._words[index])
        return changes

    def diff(self, snapshot: tuple[int, ...]) -> dict[int, tuple[int, int]]:
        """Map of byte address -> (old, new) for words that changed."""
        changes: dict[int, tuple[int, int]] = {}
        common = min(len(snapshot), self._alloc_index)
        for index in range(common):
            old, new = snapshot[index], self._words[index]
            if old != new:
                changes[self._base + index * WORD_SIZE] = (old, new)
        for index in range(common, self._alloc_index):
            changes[self._base + index * WORD_SIZE] = (0, self._words[index])
        return changes
