"""Flat word-addressable heap with a bump allocator.

The heap is the single source of truth shared by the byte-code interpreter
and the JIT-compiled machine code running on the CPU simulator.  All
addresses are byte addresses that must be word aligned; every read/write
is bounds-checked and raises :class:`~repro.errors.InvalidMemoryAccess`,
which the differential tester maps onto the paper's *Invalid Memory
Access* exit condition.
"""

from __future__ import annotations

from repro.errors import HeapExhausted, InvalidMemoryAccess
from repro.memory.layout import WORD_MASK, WORD_SIZE


class Heap:
    """A fixed-size array of 32-bit words with bump allocation."""

    def __init__(self, size_words: int = 64 * 1024, base_address: int = 0x1000) -> None:
        if base_address % WORD_SIZE != 0:
            raise ValueError("heap base address must be word aligned")
        self._base = base_address
        self._words = [0] * size_words
        self._alloc_index = 0
        #: Monotonic counter of writes; cheap heap-mutation fingerprinting
        #: for the differential tester.
        self.write_count = 0

    # ------------------------------------------------------------------
    # address arithmetic

    @property
    def base_address(self) -> int:
        return self._base

    @property
    def size_words(self) -> int:
        return len(self._words)

    @property
    def allocated_words(self) -> int:
        return self._alloc_index

    @property
    def free_pointer(self) -> int:
        """Byte address of the next free word (Pharo's ``freeStart``)."""
        return self._base + self._alloc_index * WORD_SIZE

    def contains(self, address: int) -> bool:
        """True when *address* points at an allocated, aligned heap word."""
        if address % WORD_SIZE != 0:
            return False
        index = (address - self._base) // WORD_SIZE
        return 0 <= index < self._alloc_index

    def _index_of(self, address: int, for_write: bool) -> int:
        if address % WORD_SIZE != 0:
            raise InvalidMemoryAccess(address, "(unaligned)")
        index = (address - self._base) // WORD_SIZE
        if not 0 <= index < self._alloc_index:
            kind = "write" if for_write else "read"
            raise InvalidMemoryAccess(address, f"({kind} outside allocated heap)")
        return index

    # ------------------------------------------------------------------
    # word access

    def read_word(self, address: int) -> int:
        return self._words[self._index_of(address, for_write=False)]

    def write_word(self, address: int, value: int) -> None:
        self._words[self._index_of(address, for_write=True)] = value & WORD_MASK
        self.write_count += 1

    # ------------------------------------------------------------------
    # allocation

    def allocate(self, n_words: int) -> int:
        """Bump-allocate *n_words* zeroed words; return their byte address."""
        if n_words < 0:
            raise ValueError("cannot allocate a negative number of words")
        if self._alloc_index + n_words > len(self._words):
            raise HeapExhausted(
                f"allocation of {n_words} words exceeds heap of {len(self._words)}"
            )
        address = self._base + self._alloc_index * WORD_SIZE
        self._alloc_index += n_words
        return address

    # ------------------------------------------------------------------
    # snapshots (used to compare side effects between engines)

    def snapshot(self) -> tuple[int, ...]:
        """Immutable copy of the allocated portion of the heap."""
        return tuple(self._words[: self._alloc_index])

    def restore(self, snapshot: tuple[int, ...]) -> None:
        """Restore a snapshot taken earlier, truncating later allocations."""
        if len(snapshot) > len(self._words):
            raise ValueError("snapshot larger than heap")
        self._words[: len(snapshot)] = list(snapshot)
        for index in range(len(snapshot), self._alloc_index):
            self._words[index] = 0
        self._alloc_index = len(snapshot)

    def diff(self, snapshot: tuple[int, ...]) -> dict[int, tuple[int, int]]:
        """Map of byte address -> (old, new) for words that changed."""
        changes: dict[int, tuple[int, int]] = {}
        common = min(len(snapshot), self._alloc_index)
        for index in range(common):
            old, new = snapshot[index], self._words[index]
            if old != new:
                changes[self._base + index * WORD_SIZE] = (old, new)
        for index in range(common, self._alloc_index):
            changes[self._base + index * WORD_SIZE] = (0, self._words[index])
        return changes
