"""The worker entrypoint: one shard, executed in a child process.

A worker owns a full OS process, so `guard()`'s in-process crash
isolation is upgraded to real process isolation: a segfault,
``os._exit`` or OOM kill takes out the worker, the parent notices the
dead process and charges exactly the in-flight cell (see
:mod:`repro.parallel.pool`).  Everything *recoverable* is still
handled in-worker with the same retry/quarantine policy as the
sequential engine, via the shared
:func:`~repro.difftest.runner.execute_cell`.

The worker streams one message per completed cell back through its
pipe and appends the same record to the shared journal itself —
journal appends are concurrency-safe
(:mod:`repro.robustness.checkpoint`), and worker-side appends mean a
parent crash loses nothing a worker finished.

Wire protocol (worker -> parent), all plain picklable data:

* ``("cell", key, record)`` — one completed (or quarantined) cell.
  Since PR 5 the record's comparison entries also carry the triage
  candidate payload (path constraint signatures, exit pairs, operand
  shapes, retry counts) — workers never confirm or shrink; the parent
  runs the whole ``--triage`` pipeline over these serialized records
  (:mod:`repro.triage`), which is what keeps triage output identical
  across ``-j`` values;
* ``("budget", message)`` — the campaign deadline expired in-worker;
  the shard's remaining cells were not run;
* ``("fail", error_class, message)`` — ``fail_fast`` is set and a cell
  crashed; the parent re-raises;
* ``("done", cache_hits, cache_misses[, perf_snapshot])`` — the shard
  completed; the trailing perf snapshot dict is present only when the
  campaign runs with ``profile`` set (parents accept both shapes).
"""

from __future__ import annotations

from repro import perf
from repro.concolic.explorer import ExplorationCache
from repro.difftest.runner import (
    _crashed_result,
    _backend_scope,
    _serialize_cell,
    execute_cell,
)
from repro.robustness.budgets import Deadline
from repro.robustness.checkpoint import CampaignJournal
from repro.robustness.errors import BudgetExhausted, CampaignError
from repro.robustness.quarantine import QuarantineEntry


def resolve_rows(plan: str, config):
    """Rebuild the canonical plan inside the worker process.

    The plan is a pure function of the config, so parent and worker
    independently derive identical rows; shards address into them by
    ``(row_index, spec_index)``.
    """
    from repro.difftest.runner import (
        campaign_rows,
        sequence_campaign_rows,
        stitched_campaign_rows,
    )

    if plan == "main":
        return campaign_rows(config)
    if plan == "sequences":
        return sequence_campaign_rows(config)
    if plan == "stitched":
        # The stitched corpus is memoized per budget; workers are
        # forked, so they inherit the parent's memo and resolve the
        # plan without re-deriving templates (see repro.stitch.corpus).
        return stitched_campaign_rows(config)
    raise ValueError(f"unknown campaign plan {plan!r}")


def run_shard(conn, plan: str, config, shard, remaining_seconds,
              journal_path) -> None:
    """Execute *shard* cell by cell, streaming records to *conn*.

    ``config.mutants`` crosses the fork boundary inside the pickled
    config; activating it here (reference-counted, so the per-cell
    activation inside ``execute_cell`` nests) makes the whole shard —
    including plan resolution and the shared exploration cache — run
    under the same mutated semantics as a sequential campaign of the
    same config (see docs/MUTATION.md).
    """
    from repro.mutation import activated

    with activated(getattr(config, "mutants", ())):
        _run_shard_activated(conn, plan, config, shard, remaining_seconds,
                             journal_path)


def _run_shard_activated(conn, plan: str, config, shard, remaining_seconds,
                         journal_path) -> None:
    rows = resolve_rows(plan, config)
    deadline = Deadline(remaining_seconds)
    journal = CampaignJournal(journal_path) if journal_path else None
    if getattr(config, "profile", False):
        perf.enable()
    # One cache per shard = one exploration per instruction, shared by
    # every compiler cell of the shard (the shard planner guarantees a
    # shard never spans instructions).
    cache = ExplorationCache()
    try:
        for cell in shard.cells:
            row = rows[cell.row_index]
            spec = row.specs[cell.spec_index]
            compiler_class = row.compiler_class
            try:
                result, error = execute_cell(config, deadline, spec,
                                             compiler_class, cache)
            except BudgetExhausted as exc:
                conn.send(("budget", str(exc)))
                return
            except CampaignError as exc:
                # Only reachable with fail_fast: hand the classified
                # error to the parent for re-raising.
                conn.send(("fail", exc.error_class, str(exc)))
                return
            entry = None
            if error is not None:
                entry = QuarantineEntry.from_error(
                    error,
                    instruction=spec.name,
                    kind=spec.kind,
                    compiler=compiler_class.name,
                    backend=_backend_scope(config),
                )
                result = _crashed_result(spec, compiler_class, config, error)
            record = _serialize_cell(cell.key, result, entry)
            if journal is not None:
                journal.append(record)
            conn.send(("cell", cell.key, record))
        if perf.enabled():
            from repro.concolic.solver.incremental import record_solver_gauges

            perf.incr("explore.cache_hits", cache.hits)
            perf.incr("explore.cache_misses", cache.misses)
            record_solver_gauges()
            conn.send(("done", cache.hits, cache.misses, perf.snapshot()))
        else:
            conn.send(("done", cache.hits, cache.misses))
    finally:
        conn.close()
