"""The worker entrypoint: a persistent cell executor in a child process.

A worker owns a full OS process, so `guard()`'s in-process crash
isolation is upgraded to real process isolation: a segfault,
``os._exit`` or OOM kill takes out the worker, the parent notices the
dead process and charges exactly the in-flight cell (see
:mod:`repro.parallel.pool`).  Everything *recoverable* is still
handled in-worker with the same retry/quarantine policy as the
sequential engine, via the shared
:func:`~repro.difftest.runner.execute_cell`.

Since PR 9 workers are *persistent pullers*: one process serves many
shards, requesting the next one from the parent's dynamic queue
whenever it goes idle (work stealing — see docs/INCREMENTAL.md).  Each
shard still gets a fresh :class:`ExplorationCache`, so per-instruction
exploration sharing is identical to the old one-process-per-shard
pool, and merge-order determinism is untouched (the parent merges by
plan order, never by arrival order).

The worker streams one message per completed cell back through its
pipe and appends the same record to the shared journal itself —
journal appends are concurrency-safe
(:mod:`repro.robustness.checkpoint`), and worker-side appends mean a
parent crash loses nothing a worker finished.  With a result cache
attached (``cache_dir``), clean first-attempt cells are also appended
to the persistent store under their semantic fingerprint
(:mod:`repro.incremental.store` — same O_APPEND+CRC discipline, safe
under concurrent workers).

Wire protocol, all plain picklable data.  Worker -> parent:

* ``("next",)`` — the worker is idle and wants a shard;
* ``("cell_start", key)`` — heartbeat: the worker is about to execute
  this cell.  The parent's supervisor starts the per-cell wall clock
  here; a cell whose record never follows within ``--cell-timeout``
  gets its worker SIGKILLed (:mod:`repro.robustness.supervise`);
* ``("cell", key, record)`` — one completed (or quarantined) cell.
  Since PR 5 the record's comparison entries also carry the triage
  candidate payload (path constraint signatures, exit pairs, operand
  shapes, retry counts) — workers never confirm or shrink; the parent
  runs the whole ``--triage`` pipeline over these serialized records
  (:mod:`repro.triage`), which is what keeps triage output identical
  across ``-j`` values;
* ``("shard_done", cache_hits, cache_misses)`` — one shard finished;
  the exploration-cache accounting for it;
* ``("budget", message)`` — the campaign deadline expired in-worker;
  the shard's remaining cells were not run;
* ``("fail", error_class, message)`` — ``fail_fast`` is set and a cell
  crashed; the parent re-raises;
* ``("done", perf_snapshot | None)`` — the worker is exiting cleanly;
  the perf snapshot dict is present only under ``profile``.

Parent -> worker:

* ``("shard", shard, fingerprints)`` — run this shard; *fingerprints*
  maps the shard's cell keys to semantic fingerprints (empty when the
  result cache is off);
* ``("stop",)`` — no work left; send ``done`` and exit.
"""

from __future__ import annotations

from repro import perf
from repro.concolic.explorer import ExplorationCache
from repro.difftest.runner import (
    _crashed_result,
    _backend_scope,
    _serialize_cell,
    execute_cell,
)
from repro.robustness.budgets import Deadline
from repro.robustness.checkpoint import CampaignJournal
from repro.robustness.errors import BudgetExhausted, CampaignError
from repro.robustness.quarantine import QuarantineEntry
from repro.robustness.supervise import apply_worker_rlimits


def resolve_rows(plan: str, config):
    """Rebuild the canonical plan inside the worker process.

    The plan is a pure function of the config, so parent and worker
    independently derive identical rows; shards address into them by
    ``(row_index, spec_index)``.
    """
    from repro.difftest.runner import (
        campaign_rows,
        sequence_campaign_rows,
        stitched_campaign_rows,
    )

    if plan == "main":
        return campaign_rows(config)
    if plan == "sequences":
        return sequence_campaign_rows(config)
    if plan == "stitched":
        # The stitched corpus is memoized per budget; workers are
        # forked, so they inherit the parent's memo and resolve the
        # plan without re-deriving templates (see repro.stitch.corpus).
        return stitched_campaign_rows(config)
    raise ValueError(f"unknown campaign plan {plan!r}")


def run_worker(conn, plan: str, config, remaining_seconds, journal_path,
               cache_dir=None) -> None:
    """Serve shards pulled from *conn* until the parent says stop.

    ``config.mutants`` crosses the fork boundary inside the pickled
    config; activating it here (reference-counted, so the per-cell
    activation inside ``execute_cell`` nests) makes every shard —
    including plan resolution and the shared exploration cache — run
    under the same mutated semantics as a sequential campaign of the
    same config (see docs/MUTATION.md).
    """
    from repro.mutation import activated

    with activated(getattr(config, "mutants", ())):
        _run_worker_activated(conn, plan, config, remaining_seconds,
                              journal_path, cache_dir)


def _run_worker_activated(conn, plan: str, config, remaining_seconds,
                          journal_path, cache_dir) -> None:
    apply_worker_rlimits(config)
    rows = resolve_rows(plan, config)
    deadline = Deadline(remaining_seconds)
    journal = CampaignJournal(journal_path) if journal_path else None
    store = None
    if cache_dir:
        from repro.incremental import ResultStore

        store = ResultStore(str(cache_dir))
    if getattr(config, "profile", False):
        perf.enable()
    try:
        conn.send(("next",))
        while True:
            try:
                message = conn.recv()
            except EOFError:
                return
            if message[0] == "stop":
                break
            _tag, shard, fingerprints = message
            if not _serve_shard(conn, rows, config, deadline, journal,
                                store, shard, fingerprints):
                return
            conn.send(("next",))
        if perf.enabled():
            from repro.concolic.solver.incremental import record_solver_gauges

            record_solver_gauges()
            conn.send(("done", perf.snapshot()))
        else:
            conn.send(("done", None))
    finally:
        conn.close()


def _serve_shard(conn, rows, config, deadline, journal, store, shard,
                 fingerprints) -> bool:
    """One shard, cell by cell; False = fatal, the worker must exit."""
    # One cache per shard = one exploration per instruction, shared by
    # every compiler cell of the shard (the shard planner guarantees a
    # shard never spans instructions).
    cache = ExplorationCache()
    for cell in shard.cells:
        row = rows[cell.row_index]
        spec = row.specs[cell.spec_index]
        compiler_class = row.compiler_class
        conn.send(("cell_start", cell.key))
        try:
            result, error = execute_cell(config, deadline, spec,
                                         compiler_class, cache)
        except BudgetExhausted as exc:
            conn.send(("budget", str(exc)))
            return False
        except CampaignError as exc:
            # Only reachable with fail_fast: hand the classified
            # error to the parent for re-raising.
            conn.send(("fail", exc.error_class, str(exc)))
            return False
        entry = None
        if error is not None:
            entry = QuarantineEntry.from_error(
                error,
                instruction=spec.name,
                kind=spec.kind,
                compiler=compiler_class.name,
                backend=_backend_scope(config),
            )
            result = _crashed_result(spec, compiler_class, config, error)
        record = _serialize_cell(cell.key, result, entry)
        if journal is not None:
            journal.append(record)
        if (store is not None and error is None
                and getattr(result, "retries", 0) == 0
                and not getattr(result.exploration, "budget_exhausted",
                                False)):
            fingerprint = fingerprints.get(cell.key)
            if fingerprint:
                store.put(fingerprint, record)
        conn.send(("cell", cell.key, record))
    if perf.enabled():
        perf.incr("explore.cache_hits", cache.hits)
        perf.incr("explore.cache_misses", cache.misses)
    conn.send(("shard_done", cache.hits, cache.misses))
    return True
