"""The process-pool campaign engine (``python -m repro campaign -j N``).

Shards the campaign's (instruction x compiler x backend) cell grid
across OS worker processes and merges worker results back into the
canonical plan order, so aggregate reports are byte-identical to a
sequential run of the same config:

* :mod:`repro.parallel.shard` — the shard planner: one shard per
  instruction, carrying every compiler cell of that instruction so a
  worker explores each instruction exactly once (the exploration
  cache);
* :mod:`repro.parallel.worker` — the worker entrypoint executed in a
  child process: a persistent puller that serves shards cell by cell
  behind the robustness layer, appends completed cells to the shared
  journal (and clean cells to the result store), streams records to
  the parent;
* :mod:`repro.parallel.pool` — the pool driver: a work-stealing shard
  queue (idle workers pull the next shard; see docs/INCREMENTAL.md),
  per-worker deadlines, crash detection (a dead worker costs one cell;
  the rest of its shard is re-queued and a replacement spawned),
  checkpoint/resume;
* :mod:`repro.parallel.merge` — the deterministic merge of cell
  records into :class:`~repro.difftest.runner.CampaignResult`.
"""

from repro.parallel.pool import resolve_jobs, run_parallel_rows
from repro.parallel.shard import Cell, Shard, plan_cells, plan_shards

__all__ = [
    "Cell",
    "Shard",
    "plan_cells",
    "plan_shards",
    "resolve_jobs",
    "run_parallel_rows",
]
