"""Deterministic merge: cell records -> campaign reports.

Workers complete cells in whatever order scheduling produces; the
merge erases that nondeterminism by replaying the records against the
canonical plan — the same row order, the same spec order, the same
accumulation the sequential engine uses.  Aggregate counts, report row
ordering and the quarantine section are therefore byte-identical
between ``-j 1`` and ``-j N`` (asserted by
``tests/parallel/test_determinism.py``).

Rebuilt cells preserve the full serialized payload — including the
per-cell retry counts and the triage candidate data (path signatures,
exit pairs) that ``--triage`` consumes after the merge — so triage
over a parallel run sees exactly what a sequential run produces.
"""

from __future__ import annotations

from repro.difftest.runner import (
    CampaignResult,
    CompilerReport,
    _accumulate,
    _rebuild_cell,
)
from repro.robustness.checkpoint import cell_key
from repro.robustness.quarantine import Quarantine, QuarantineEntry


def merge_records(rows, records: dict) -> CampaignResult:
    """Fold ``key -> record`` into reports, in canonical plan order.

    Cells without a record (deadline expired before they ran) are
    simply absent, mirroring the sequential engine stopping mid-row.
    Quarantine entries ride inside their cell's record, so the
    quarantine section also comes out in plan order.
    """
    result = CampaignResult()
    quarantine = Quarantine()
    for row in rows:
        report = CompilerReport(compiler=row.label)
        for spec in row.specs:
            key = cell_key(row.experiment, row.compiler_class.name,
                           spec.kind, spec.name)
            record = records.get(key)
            if record is None:
                continue
            _accumulate(report, _rebuild_cell(record))
            if record.get("quarantined"):
                quarantine.add(
                    QuarantineEntry.from_dict(record["quarantined"])
                )
        result.append(report)
    result.quarantine = quarantine
    return result
