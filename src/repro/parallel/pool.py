"""The process pool: bounded fan-out of shards with crash containment.

One child process per shard, at most ``jobs`` alive at once.  The
parent multiplexes over every worker's result pipe and process
sentinel (``multiprocessing.connection.wait``), so it reacts to both
completed cells and dying processes without polling loops.

Failure semantics, composing with the PR-2 robustness layer:

* **Recoverable crashes** (exceptions at any pipeline stage) are
  handled *inside* the worker by the shared cell executor — retry with
  reduced budgets, then quarantine — identically to ``-j 1``.
* **Process death** (segfault, ``os._exit``, kill) is detected by the
  parent via the process sentinel: the first cell of the shard without
  a delivered record is charged as a ``WorkerCrash`` quarantine, and
  the rest of the shard is re-queued on a fresh process.  A dead
  worker costs one cell, never the run.
* **Deadlines** are enforced twice: each worker rebuilds the remaining
  campaign budget at spawn (`Deadline.child` semantics — monotonic
  clocks do not cross ``fork``), and the parent uses the same deadline
  as its ``wait`` timeout, terminating workers that outlive it (a hung
  worker cannot outlive the budget).  Expiry stops the campaign
  cleanly with ``budget_exhausted`` set; a journal makes it resumable.
* **Checkpointing**: workers append their own records to the journal
  (appends are single-``write`` and checksummed, safe under concurrent
  writers); the parent journals only the ``WorkerCrash`` cells it
  synthesizes.  ``--resume`` therefore works on a journal written by
  any mix of parallel and sequential runs.
* **Triage**: the pool never triages.  ``--triage`` confirmation,
  shrinking and reproducer emission all run in the parent after the
  merge, over the same serialized cell records the workers shipped
  (:mod:`repro.triage`).  Journaled triage state rides in the same
  file under ``triage::`` keys; the planned-key filter below keeps
  those records invisible to cell resume.
"""

from __future__ import annotations

import multiprocessing
import os
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection

from repro.robustness import errors as error_taxonomy
from repro.robustness.budgets import Deadline
from repro.robustness.checkpoint import CampaignJournal
from repro.robustness.errors import CampaignError, WorkerCrash
from repro.robustness.quarantine import QuarantineEntry


def resolve_jobs(jobs: int | None) -> int:
    """``-j 0`` (or None) means one worker per available CPU."""
    if not jobs:
        return max(1, os.cpu_count() or 1)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


@dataclass
class _Running:
    """Parent-side state of one live worker process."""

    shard: object
    process: object
    conn: object
    received: set = field(default_factory=set)
    done: bool = False
    budget: str | None = None
    failure: tuple | None = None
    cache_hits: int = 0
    cache_misses: int = 0
    perf: dict | None = None


def _handle_message(running: _Running, message, records: dict) -> None:
    tag = message[0]
    if tag == "cell":
        _, key, record = message
        records[key] = record
        running.received.add(key)
    elif tag == "budget":
        running.budget = message[1]
    elif tag == "fail":
        running.failure = (message[1], message[2])
    elif tag == "done":
        running.done = True
        running.cache_hits, running.cache_misses = message[1], message[2]
        if len(message) > 3:
            running.perf = message[3]


def _drain(running: _Running, records: dict) -> None:
    """Consume every message currently buffered on the worker's pipe."""
    try:
        while running.conn.poll():
            _handle_message(running, running.conn.recv(), records)
    except (EOFError, OSError):
        pass


def _charge_worker_crash(running: _Running, rows, config, records: dict,
                         journal, pending: deque) -> None:
    """A worker died mid-shard: quarantine the in-flight cell, re-queue
    the rest of its shard."""
    from repro.difftest.runner import (
        _backend_scope,
        _crashed_result,
        _serialize_cell,
    )

    victim = next(
        (cell for cell in running.shard.cells
         if cell.key not in running.received),
        None,
    )
    if victim is None:
        # Every record arrived but the final handshake was lost —
        # nothing to charge, nothing to re-run.
        return
    row = rows[victim.row_index]
    spec = row.specs[victim.spec_index]
    error = WorkerCrash(
        f"worker process exited with code {running.process.exitcode} "
        f"while running {victim.instruction}/{victim.compiler}"
    )
    entry = QuarantineEntry.from_error(
        error,
        instruction=spec.name,
        kind=spec.kind,
        compiler=row.compiler_class.name,
        backend=_backend_scope(config),
        attempts=1,
    )
    record = _serialize_cell(
        victim.key, _crashed_result(spec, row.compiler_class, config, error),
        entry,
    )
    records[victim.key] = record
    if journal is not None:
        journal.append(record)
    remainder = running.shard.remainder_after(victim)
    if remainder is not None:
        pending.appendleft(remainder)


def run_parallel_rows(config, rows, *, jobs: int, journal_path=None,
                      resume: bool = False):
    """Execute a canonical plan on a worker pool; see module docstring."""
    from repro.parallel.merge import merge_records
    from repro.parallel.shard import plan_cells, plan_shards
    from repro.parallel.worker import run_shard

    jobs = resolve_jobs(jobs)
    plan = rows[0].experiment if rows else "main"
    journal = CampaignJournal(journal_path) if journal_path else None
    if journal is not None and not resume:
        journal.path.unlink(missing_ok=True)
    completed = journal.load() if (journal is not None and resume) else {}
    planned = {cell.key for cell in plan_cells(rows)}
    records = {key: rec for key, rec in completed.items() if key in planned}
    resumed_cells = len(records)

    deadline = Deadline(config.deadline_seconds)
    pending: deque = deque(plan_shards(rows, records))
    running: dict = {}  # process sentinel -> _Running
    context = multiprocessing.get_context("fork")
    budget_exhausted = False
    failure = None
    cache_hits = cache_misses = 0
    perf_snapshots: list = []

    try:
        while pending or running:
            if deadline.expired:
                budget_exhausted = True
                break
            while pending and len(running) < jobs:
                shard = pending.popleft()
                parent_conn, child_conn = context.Pipe(duplex=False)
                process = context.Process(
                    target=run_shard,
                    args=(child_conn, plan, config, shard,
                          deadline.remaining(), journal_path),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                running[process.sentinel] = _Running(shard, process,
                                                     parent_conn)
            by_conn = {entry.conn: entry for entry in running.values()}
            handles = list(by_conn) + list(running)
            ready = connection.wait(handles, timeout=deadline.remaining())
            exited = []
            for handle in ready:
                entry = by_conn.get(handle)
                if entry is not None:
                    _drain(entry, records)
                elif handle in running:
                    exited.append(handle)
            for sentinel in exited:
                entry = running.pop(sentinel)
                entry.process.join()
                _drain(entry, records)
                entry.conn.close()
                cache_hits += entry.cache_hits
                cache_misses += entry.cache_misses
                if entry.perf is not None:
                    perf_snapshots.append(entry.perf)
                if entry.failure is not None:
                    failure = entry.failure
                elif entry.budget is not None:
                    budget_exhausted = True
                elif not entry.done:
                    _charge_worker_crash(entry, rows, config, records,
                                         journal, pending)
            if failure is not None or budget_exhausted:
                break
    finally:
        for entry in running.values():
            entry.process.terminate()
        for entry in running.values():
            entry.process.join()
            entry.conn.close()

    if failure is not None:
        error_class, message = failure
        crash_class = getattr(error_taxonomy, error_class, CampaignError)
        raise crash_class(message)

    result = merge_records(rows, records)
    result.budget_exhausted = budget_exhausted
    result.resumed_cells = resumed_cells
    result.journal_path = journal_path
    result.workers = jobs
    result.cache_hits = cache_hits
    result.cache_misses = cache_misses
    if getattr(config, "profile", False):
        from repro.perf import merge_snapshots

        result.perf = merge_snapshots(perf_snapshots)
    return result
