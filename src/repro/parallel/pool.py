"""The process pool: a work-stealing shard queue with crash containment.

``jobs`` persistent worker processes are spawned once; each pulls the
next shard from the parent's dynamic queue whenever it goes idle
(``("next",)`` -> ``("shard", ...)``), instead of the old static
one-process-per-shard assignment.  With a warm result cache most
shards vanish before scheduling (their cells were served from the
store), leaving a few expensive stragglers — a dynamic queue keeps
every worker busy until the queue is empty, so wall-clock tracks the
*remaining* work, not the unluckiest static assignment.  The parent
multiplexes over every worker's duplex pipe and process sentinel
(``multiprocessing.connection.wait``), so it reacts to pull requests,
completed cells and dying processes without polling loops.

Determinism is unaffected by scheduling: workers stream records keyed
by cell, and the parent merges them back into canonical plan order
(:mod:`repro.parallel.merge`) — reports are byte-identical across
``-j`` values, with or without cache hits, whatever order shards were
stolen in.

Failure semantics, composing with the PR-2 robustness layer:

* **Recoverable crashes** (exceptions at any pipeline stage) are
  handled *inside* the worker by the shared cell executor — retry with
  reduced budgets, then quarantine — identically to ``-j 1``.
* **Process death** (segfault, ``os._exit``, kill) is detected by the
  parent via the process sentinel: the first cell of the worker's
  *current* shard without a delivered record is charged as a
  ``WorkerCrash`` quarantine, the rest of that shard is re-queued, and
  a replacement worker is spawned while work remains.  A dead worker
  costs one cell, never the run.
* **Deadlines** are enforced twice: each worker rebuilds the remaining
  campaign budget at spawn (`Deadline.child` semantics — monotonic
  clocks do not cross ``fork``), and the parent uses the same deadline
  as its ``wait`` timeout, terminating workers that outlive it (a hung
  worker cannot outlive the budget).  Expiry stops the campaign
  cleanly with ``budget_exhausted`` set; a journal makes it resumable.
* **Per-cell supervision** (:mod:`repro.robustness.supervise`): each
  worker announces the cell it is about to run with a ``cell_start``
  heartbeat.  When a cell outlives the effective ``--cell-timeout``
  (explicit flag, or a quarter of the deadline), the parent SIGKILLs
  the worker, charges that one cell a ``BudgetExhausted`` quarantine
  entry, re-queues the rest of the shard, and respawns under capped
  exponential backoff — a hung cell costs ``--cell-timeout``, not the
  whole campaign deadline.  A worker killed by ``SIGXCPU``
  (``--worker-cpu-seconds``) is classified ``WorkerResourceExceeded``
  rather than a generic ``WorkerCrash``.
* **Checkpointing**: workers append their own records to the journal
  (appends are single-``write`` and checksummed, safe under concurrent
  writers); the parent journals only the ``WorkerCrash`` cells it
  synthesizes.  ``--resume`` therefore works on a journal written by
  any mix of parallel and sequential runs.
* **Result cache**: cache *lookups* happen in the parent before
  planning (a fully-warm campaign forks zero workers); cache-missed
  shards carry their cells' fingerprints to the worker, which appends
  clean results to the store itself (:mod:`repro.incremental.store`).
* **Triage**: the pool never triages.  ``--triage`` confirmation,
  shrinking and reproducer emission all run in the parent after the
  merge, over the same serialized cell records the workers shipped
  (:mod:`repro.triage`).  Journaled triage state rides in the same
  file under ``triage::`` keys; the planned-key filter below keeps
  those records invisible to cell resume.
"""

from __future__ import annotations

import errno
import multiprocessing
import os
import signal
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection

from repro import perf
from repro.robustness import errors as error_taxonomy
from repro.robustness.budgets import Deadline
from repro.robustness.checkpoint import CampaignJournal
from repro.robustness.errors import (
    BudgetExhausted,
    CampaignError,
    WorkerCrash,
    WorkerResourceExceeded,
)
from repro.robustness.quarantine import QuarantineEntry
from repro.robustness.supervise import RespawnBackoff, effective_cell_timeout


def resolve_jobs(jobs: int | None) -> int:
    """``-j 0`` (or None) means one worker per available CPU."""
    if not jobs:
        return max(1, os.cpu_count() or 1)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


#: Errnos a dying worker's pipe is expected to produce; anything else
#: on a drain/close path is still contained but counted and warned
#: about (``pool.unexpected_io_errors``) instead of silently swallowed.
EXPECTED_PIPE_ERRNOS = frozenset(
    {errno.EPIPE, errno.ECONNRESET, errno.ESHUTDOWN}
)

_PIPE_ERRORS = {"count": 0, "warned": False}


def unexpected_io_errors() -> int:
    """Unexpected pipe errors swallowed since the current run started."""
    return _PIPE_ERRORS["count"]


def _reset_pipe_errors() -> None:
    _PIPE_ERRORS["count"] = 0
    _PIPE_ERRORS["warned"] = False


def _note_pipe_error(error: BaseException, where: str) -> None:
    """Account for an error swallowed on a worker-pipe path.

    ``BrokenPipeError``/``ConnectionResetError``/``EOFError`` (and raw
    ``OSError`` with the matching errnos) are the modelled death throes
    of a worker pipe.  Anything else is unexpected: count it, warn once
    per run, and keep containing it — a bad pipe must never be worth
    more than the shard it interrupts.
    """
    if isinstance(error, (BrokenPipeError, ConnectionResetError, EOFError)):
        return
    if isinstance(error, OSError) and error.errno in EXPECTED_PIPE_ERRNOS:
        return
    _PIPE_ERRORS["count"] += 1
    perf.incr("pool.unexpected_io_errors")
    if not _PIPE_ERRORS["warned"]:
        _PIPE_ERRORS["warned"] = True
        print(
            f"warning: unexpected I/O error on a worker pipe ({where}): "
            f"{error!r}; containing (counted in pool.unexpected_io_errors)",
            file=sys.stderr,
        )


@dataclass
class _Worker:
    """Parent-side state of one live worker process."""

    process: object
    conn: object
    #: Shard currently assigned (None = idle or told to stop).
    current: object = None
    #: Keys of the current shard already delivered as records.
    received: set = field(default_factory=set)
    done: bool = False
    stopping: bool = False
    budget: str | None = None
    failure: tuple | None = None
    cache_hits: int = 0
    cache_misses: int = 0
    perf: dict | None = None
    #: Key of the cell announced by the last ``cell_start`` heartbeat,
    #: and the parent-side monotonic instant it arrived; cleared when
    #: the cell's record (or the shard's completion) is delivered.
    cell_key: str | None = None
    cell_started: float | None = None


def _assign(entry: _Worker, pending: deque, fingerprints: dict) -> None:
    """Reply to a pull request: hand out the next shard, or stop."""
    if pending:
        shard = pending.popleft()
        shard_fingerprints = {
            cell.key: fingerprints[cell.key]
            for cell in shard.cells
            if cell.key in fingerprints
        }
        entry.current = shard
        entry.received = set()
        try:
            entry.conn.send(("shard", shard, shard_fingerprints))
        except (EOFError, OSError) as error:
            # The worker died between pulling and receiving; the shard
            # was never started — put it back, the sentinel handler
            # cleans up the process.
            _note_pipe_error(error, "assign")
            entry.current = None
            pending.appendleft(shard)
    else:
        entry.stopping = True
        entry.current = None
        try:
            entry.conn.send(("stop",))
        except (EOFError, OSError) as error:
            _note_pipe_error(error, "stop")


def _handle_message(entry: _Worker, message, records: dict, pending: deque,
                    fingerprints: dict) -> None:
    tag = message[0]
    if tag == "next":
        _assign(entry, pending, fingerprints)
    elif tag == "cell_start":
        entry.cell_key = message[1]
        entry.cell_started = time.monotonic()
        perf.incr("supervision.heartbeats")
    elif tag == "cell":
        _, key, record = message
        records[key] = record
        entry.received.add(key)
        entry.cell_key = None
        entry.cell_started = None
    elif tag == "shard_done":
        entry.cache_hits += message[1]
        entry.cache_misses += message[2]
        entry.current = None
        entry.cell_key = None
        entry.cell_started = None
    elif tag == "budget":
        entry.budget = message[1]
    elif tag == "fail":
        entry.failure = (message[1], message[2])
    elif tag == "done":
        entry.done = True
        if len(message) > 1 and message[1] is not None:
            entry.perf = message[1]


def _drain(entry: _Worker, records: dict, pending: deque,
           fingerprints: dict) -> None:
    """Consume every message currently buffered on the worker's pipe."""
    try:
        while entry.conn.poll():
            _handle_message(entry, entry.conn.recv(), records, pending,
                            fingerprints)
    except (EOFError, OSError) as error:
        _note_pipe_error(error, "drain")


def _death_error(entry: _Worker, victim) -> CampaignError:
    """Classify a worker death by its exit status."""
    exitcode = entry.process.exitcode
    sigxcpu = getattr(signal, "SIGXCPU", None)
    what = f"while running {victim.instruction}/{victim.compiler}"
    if sigxcpu is not None and exitcode == -sigxcpu:
        return WorkerResourceExceeded(
            f"worker killed by SIGXCPU (RLIMIT_CPU via "
            f"--worker-cpu-seconds) {what}"
        )
    return WorkerCrash(
        f"worker process exited with code {exitcode} {what}"
    )


def _charge_lost_cell(entry: _Worker, rows, config, records: dict,
                      journal, pending: deque, error=None) -> None:
    """A worker died (or was preempted) mid-shard: quarantine the
    in-flight cell, re-queue the rest of its shard."""
    from repro.difftest.runner import (
        _backend_scope,
        _crashed_result,
        _serialize_cell,
    )

    shard = entry.current
    victim = next(
        (cell for cell in shard.cells if cell.key not in entry.received),
        None,
    )
    if victim is None:
        # Every record arrived but the final handshake was lost —
        # nothing to charge, nothing to re-run.
        return
    row = rows[victim.row_index]
    spec = row.specs[victim.spec_index]
    if error is None:
        error = _death_error(entry, victim)
    quarantine_entry = QuarantineEntry.from_error(
        error,
        instruction=spec.name,
        kind=spec.kind,
        compiler=row.compiler_class.name,
        backend=_backend_scope(config),
        attempts=1,
    )
    record = _serialize_cell(
        victim.key, _crashed_result(spec, row.compiler_class, config, error),
        quarantine_entry,
    )
    records[victim.key] = record
    if journal is not None:
        journal.append(record)
    remainder = shard.remainder_after(victim)
    if remainder is not None:
        pending.appendleft(remainder)


def run_parallel_rows(config, rows, *, jobs: int, journal_path=None,
                      resume: bool = False, cached=None, fingerprints=None,
                      cache_dir=None):
    """Execute a canonical plan on a worker pool; see module docstring.

    *cached* maps cell keys to serialized records already served from
    the result store (parent-side lookups); *fingerprints* maps cell
    keys to semantic fingerprints so workers can append misses back to
    the store at *cache_dir*.
    """
    from repro.parallel.merge import merge_records
    from repro.parallel.shard import plan_cells, plan_shards
    from repro.parallel.worker import run_worker

    jobs = resolve_jobs(jobs)
    plan = rows[0].experiment if rows else "main"
    journal = CampaignJournal(journal_path) if journal_path else None
    if journal is not None and not resume:
        journal.path.unlink(missing_ok=True)
    completed = journal.load() if (journal is not None and resume) else {}
    planned = {cell.key for cell in plan_cells(rows)}
    records = {key: rec for key, rec in completed.items() if key in planned}
    resumed_cells = len(records)
    cached_cells = 0
    for key, record in (cached or {}).items():
        if key in planned and key not in records:
            records[key] = record
            cached_cells += 1
    fingerprints = dict(fingerprints or {})

    deadline = Deadline(config.deadline_seconds)
    cell_timeout = effective_cell_timeout(config)
    backoff = RespawnBackoff()
    _reset_pipe_errors()
    pending: deque = deque(plan_shards(rows, records))
    workers: dict = {}  # process sentinel -> _Worker
    context = multiprocessing.get_context("fork")
    budget_exhausted = False
    failure = None
    cache_hits = cache_misses = 0
    preempted = respawned = 0
    initial_fleet_done = False
    perf_snapshots: list = []

    def spawn() -> None:
        nonlocal respawned
        parent_conn, child_conn = context.Pipe(duplex=True)
        process = context.Process(
            target=run_worker,
            args=(child_conn, plan, config, deadline.remaining(),
                  journal_path, cache_dir),
            daemon=True,
        )
        process.start()
        child_conn.close()
        workers[process.sentinel] = _Worker(process, parent_conn)
        if initial_fleet_done:
            respawned += 1
            perf.incr("supervision.respawned")

    def retire(entry: _Worker) -> None:
        """Fold a finished/kill-ed worker's state into the run totals."""
        nonlocal cache_hits, cache_misses, failure, budget_exhausted
        _drain(entry, records, pending, fingerprints)
        try:
            entry.conn.close()
        except OSError as error:
            _note_pipe_error(error, "close")
        cache_hits += entry.cache_hits
        cache_misses += entry.cache_misses
        if entry.perf is not None:
            perf_snapshots.append(entry.perf)
        if entry.failure is not None:
            failure = entry.failure
        elif entry.budget is not None:
            budget_exhausted = True

    def preempt_overdue(now: float) -> None:
        """SIGKILL every worker whose announced cell outlived the
        timeout; charge that one cell, re-queue the rest of the shard."""
        nonlocal preempted
        for sentinel, entry in list(workers.items()):
            if entry.cell_started is None:
                continue
            elapsed = now - entry.cell_started
            if elapsed <= cell_timeout:
                continue
            workers.pop(sentinel)
            entry.process.kill()
            entry.process.join()
            # Records delivered before the hang are still on the pipe.
            retire(entry)
            if entry.done or entry.current is None:
                continue  # finished in the race window; nothing lost
            if entry.cell_key is None:
                # The overdue cell's record arrived while we were
                # killing: charge nothing, re-queue every cell the
                # dead worker never delivered.
                shard = entry.current
                rest = tuple(cell for cell in shard.cells
                             if cell.key not in entry.received)
                if rest:
                    pending.appendleft(type(shard)(shard.index, rest))
                continue
            error = BudgetExhausted(
                f"cell exceeded the {cell_timeout:g}s --cell-timeout; "
                f"worker preempted after {elapsed:.1f}s"
            )
            _charge_lost_cell(entry, rows, config, records, journal,
                              pending, error=error)
            preempted += 1
            perf.incr("supervision.preempted")
            backoff.record_failure(now)

    def wait_timeout(now: float) -> float | None:
        """Sleep until the next deadline/cell-timeout/backoff event."""
        candidates = []
        remaining = deadline.remaining()
        if remaining is not None:
            candidates.append(remaining)
        if cell_timeout is not None:
            for entry in workers.values():
                if entry.cell_started is not None:
                    due = entry.cell_started + cell_timeout - now
                    candidates.append(max(due, 0.01))
        if pending and len(workers) < jobs and not backoff.ready(now):
            candidates.append(backoff.remaining(now))
        return min(candidates) if candidates else None

    try:
        while pending or workers:
            if deadline.expired:
                budget_exhausted = True
                break
            # Keep the pool at strength while work remains: initial
            # spawn and replacements after crashes/preemptions both
            # land here, the latter gated by the respawn backoff.
            while (pending and len(workers) < jobs
                   and backoff.ready(time.monotonic())):
                spawn()
            initial_fleet_done = True
            now = time.monotonic()
            timeout = wait_timeout(now)
            by_conn = {entry.conn: entry for entry in workers.values()}
            handles = list(by_conn) + list(workers)
            if handles:
                ready = connection.wait(handles, timeout=timeout)
            else:
                # Whole fleet lost and respawn backed off: just sleep.
                time.sleep(min(timeout or 0.05, 0.05))
                ready = []
            progressed = len(records)
            exited = []
            for handle in ready:
                entry = by_conn.get(handle)
                if entry is not None:
                    _drain(entry, records, pending, fingerprints)
                elif handle in workers:
                    exited.append(handle)
            if len(records) > progressed:
                backoff.record_success()
            for sentinel in exited:
                entry = workers.pop(sentinel)
                entry.process.join()
                retire(entry)
                if (entry.failure is None and entry.budget is None
                        and not entry.done and entry.current is not None):
                    _charge_lost_cell(entry, rows, config, records,
                                      journal, pending)
                    backoff.record_failure(time.monotonic())
            if cell_timeout is not None:
                preempt_overdue(time.monotonic())
            if failure is not None or budget_exhausted:
                break
    finally:
        for entry in workers.values():
            entry.process.terminate()
        for entry in workers.values():
            entry.process.join()
            try:
                entry.conn.close()
            except OSError as error:
                _note_pipe_error(error, "close")

    if failure is not None:
        error_class, message = failure
        crash_class = getattr(error_taxonomy, error_class, CampaignError)
        raise crash_class(message)

    result = merge_records(rows, records)
    result.budget_exhausted = budget_exhausted
    result.resumed_cells = resumed_cells
    result.cached_cells = cached_cells
    result.journal_path = journal_path
    result.workers = jobs
    result.cache_hits = cache_hits
    result.cache_misses = cache_misses
    result.preempted_cells = preempted
    result.respawned_workers = respawned
    result.unexpected_io_errors = unexpected_io_errors()
    result.journal_replay = journal.replay if (journal is not None
                                               and resume) else None
    if getattr(config, "profile", False):
        from repro.perf import merge_snapshots

        result.perf = merge_snapshots(perf_snapshots)
    return result
