"""The shard planner: instruction-granular slices of the cell grid.

The unit of parallel work is a :class:`Shard` — *every* compiler cell
of one instruction, in canonical plan order.  That granularity is what
makes the exploration cache work across processes: concolic
exploration depends only on the instruction, so a worker that owns all
of an instruction's cells explores it once and reuses the path
summaries for each compiler x backend cell, exactly like the
sequential engine's campaign-wide cache.  Finer sharding (per cell)
would re-explore per compiler; coarser (per report row) would
serialize the grid again.

Shards are plain data — ``(row_index, spec_index)`` coordinates into
the canonical plan plus the names that form the journal key — so a
worker rebuilds its specs from the same
:func:`~repro.difftest.runner.campaign_rows` plan the parent used,
whatever the process start method.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.robustness.checkpoint import cell_key


@dataclass(frozen=True)
class Cell:
    """One (instruction, compiler) cell, addressed into the plan."""

    row_index: int
    spec_index: int
    experiment: str
    compiler: str
    kind: str
    instruction: str

    @property
    def key(self) -> str:
        """The cell's journal identity (stable across runs and modes)."""
        return cell_key(self.experiment, self.compiler, self.kind,
                        self.instruction)


@dataclass(frozen=True)
class Shard:
    """All not-yet-completed cells of one instruction, in plan order."""

    index: int
    cells: tuple

    @property
    def instruction(self) -> str:
        return self.cells[0].instruction

    def remainder_after(self, victim: Cell) -> "Shard | None":
        """The shard minus everything up to and including *victim* —
        what gets re-queued after a worker crash costs one cell."""
        position = self.cells.index(victim)
        rest = self.cells[position + 1:]
        if not rest:
            return None
        return Shard(self.index, rest)


def plan_cells(rows):
    """Every cell of the canonical plan, row-major (sequential order)."""
    for row_index, row in enumerate(rows):
        for spec_index, spec in enumerate(row.specs):
            yield Cell(
                row_index=row_index,
                spec_index=spec_index,
                experiment=row.experiment,
                compiler=row.compiler_class.name,
                kind=spec.kind,
                instruction=spec.name,
            )


def plan_shards(rows, completed=()) -> list:
    """Group the plan's remaining cells into per-instruction shards.

    ``completed`` is the set of journal keys already replayed (resume);
    cells with journaled records never re-run.  Shard order follows the
    first appearance of each instruction in the plan, so scheduling is
    deterministic; result determinism does not depend on it (the merge
    reorders by plan), but stable scheduling keeps wall-clock behaviour
    reproducible.
    """
    completed = set(completed)
    groups: dict = {}
    order: list = []
    for cell in plan_cells(rows):
        if cell.key in completed:
            continue
        group = (cell.experiment, cell.kind, cell.instruction)
        if group not in groups:
            groups[group] = []
            order.append(group)
        groups[group].append(cell)
    return [
        Shard(index, tuple(groups[group]))
        for index, group in enumerate(order)
    ]
