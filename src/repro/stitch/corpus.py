"""Deterministic stitched-corpus generation under budget knobs.

The builder is a pure function of a :class:`StitchBudget`:

1. take the first ``fragments`` specs of the sequence corpus (the
   curated interesting sequences, then the generated producer/consumer
   pairs) and derive path templates for each at the
   ``paths_per_fragment`` exploration budget;
2. compute the fragment-level compatibility relation — fragments
   *i → j* when some clean template of *i* satisfies some template of
   *j* through the solver (:mod:`repro.stitch.compat`), first witness
   short-circuits;
3. enumerate chains up to ``depth`` fragments, rank them by a
   template-derived relevance score, and emit the top
   ``max_methods`` as :class:`StitchedMethodSpec`s (chains that break
   a sequence restriction — mixed literal frames — are skipped and
   counted).

Determinism is the whole point: byte-identical campaign output across
``-j1`` / ``-jN`` / ``--resume`` requires parent and every worker to
derive the *same* plan from the same config, so nothing here may
depend on wall-clock, hashing order or process identity.  The corpus
is memoized per budget; pool workers are forked, so they inherit the
parent's memo and skip re-derivation entirely.

Derivation always runs with the mutation registry **suspended**
(:func:`repro.mutation.registry.suspended`): the corpus is a test
asset, the mutant is the system under test.  Deriving fragments under
mutated interpreter semantics would make the baseline and the mutated
campaign run *different plans*, which would turn the recall sweep's
fingerprint delta into a plan diff instead of a detection signal.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import perf
from repro.concolic.solver import SolverContext
from repro.concolic.symbolic_memory import SymbolicObjectMemory
from repro.errors import BytecodeError
from repro.memory.bootstrap import bootstrap_memory
from repro.stitch.compat import compatible, reads_entry_state
from repro.stitch.spec import StitchedMethodSpec, stitched_spec
from repro.stitch.templates import derive_templates


@dataclass(frozen=True)
class StitchBudget:
    """The stitched-corpus budget knobs (CLI: ``--stitch-*``)."""

    #: How many fragment specs enter template derivation (prefix of the
    #: sequence corpus: interesting sequences first, then pairs).
    fragments: int = 12
    #: Cap on emitted stitched methods.
    max_methods: int = 24
    #: Fragments per stitched method (2 = pairs, 3 adds triples).
    depth: int = 2
    #: Concolic path budget per fragment during template derivation.
    paths_per_fragment: int = 8

    @classmethod
    def from_config(cls, config) -> "StitchBudget":
        return cls(
            fragments=config.stitch_fragments,
            max_methods=config.stitch_max_methods,
            depth=config.stitch_depth,
            paths_per_fragment=config.stitch_paths_per_fragment,
        )


@dataclass(frozen=True)
class StitchReport:
    """Deterministic provenance of one corpus derivation."""

    budget: StitchBudget
    fragment_names: tuple
    #: Per fragment (aligned with ``fragment_names``): template count
    #: and clean-handoff count.
    template_counts: tuple
    clean_counts: tuple
    #: Compatible (prefix_name, suffix_name) fragment pairs.
    compatible_pairs: tuple
    #: Emitted stitched-method names, in corpus order.
    emitted: tuple
    #: Candidate chains dropped for breaking a sequence restriction.
    skipped_invalid: int
    #: True when the ``max_methods`` cap cut candidates.
    truncated: bool


#: budget -> (specs tuple, StitchReport); forked workers inherit this.
_MEMO: dict = {}


def clear_corpus_memo() -> None:
    """Testing hook: force fresh derivation."""
    _MEMO.clear()


def build_stitched_corpus(budget: StitchBudget | None = None) -> tuple:
    """``(specs, report)`` for *budget*, memoized per process."""
    budget = budget or StitchBudget()
    cached = _MEMO.get(budget)
    if cached is not None:
        perf.incr("stitch.corpus_memo_hits")
        return cached
    from repro.mutation.registry import suspended

    with suspended():
        result = _build(budget)
    _MEMO[budget] = result
    return result


def _fragment_specs(budget: StitchBudget) -> list:
    from repro.concolic.sequences import (
        generate_pair_sequences,
        interesting_sequences,
    )

    specs = interesting_sequences() + generate_pair_sequences()
    return specs[: max(0, budget.fragments)]


def _score(prefix_spec, prefix_templates, suffix_templates) -> int:
    """Template-derived relevance of a (prefix, suffix) stitch.

    Jump-carrying prefixes force a parse-time flush at the fragment
    boundary, prefixes with leftover stack feed real values across it,
    and suffixes whose path conditions read entry state engage the
    handoff — exactly the cross-fragment mechanics single fragments
    cannot exercise.
    """
    score = 0
    if any("Jump" in bc.name for bc, _ in prefix_spec.sequence):
        score += 2
    if any(t.clean and t.out_stack for t in prefix_templates):
        score += 1
    if any(reads_entry_state(t) for t in suffix_templates):
        score += 1
    return score


def _build(budget: StitchBudget) -> tuple:
    specs = _fragment_specs(budget)
    perf.incr("stitch.fragments", len(specs))
    iterations = max(16, 4 * budget.paths_per_fragment)
    templates = [
        derive_templates(
            spec,
            max_paths=budget.paths_per_fragment,
            max_iterations=iterations,
        )
        for spec in specs
    ]
    memory, _known = bootstrap_memory(
        heap_words=8 * 1024, memory_class=SymbolicObjectMemory
    )
    context = SolverContext.from_memory(memory)

    # Fragment-level compatibility: first template witness wins.
    memo: dict = {}
    compat: set = set()
    for i, prefix_templates in enumerate(templates):
        cleans = [t for t in prefix_templates if t.clean]
        if not cleans:
            continue
        for j, suffix_templates in enumerate(templates):
            if any(
                compatible(a, b, context, memo=memo)
                for a in cleans
                for b in suffix_templates
            ):
                compat.add((i, j))

    # Chains up to the depth knob, ranked by relevance then position.
    scores = {
        (i, j): _score(specs[i], templates[i], templates[j])
        for (i, j) in compat
    }
    chains = [(i, j) for (i, j) in sorted(compat)]
    if budget.depth >= 3:
        chains += [
            (i, j, k)
            for (i, j) in sorted(compat)
            for k in range(len(specs))
            if (j, k) in compat
        ]
    chains.sort(key=lambda chain: (
        -sum(scores[pair] for pair in zip(chain, chain[1:])),
        len(chain),
        chain,
    ))

    emitted = []
    seen: set = set()
    skipped = 0
    truncated = False
    for chain in chains:
        if len(emitted) >= budget.max_methods:
            truncated = True
            break
        entries = tuple(
            entry for index in chain for entry in specs[index].sequence
        )
        try:
            spec = StitchedMethodSpec(
                entries,
                fragments=tuple(specs[index].name for index in chain),
            )
        except BytecodeError:
            skipped += 1
            continue
        if spec.name in seen:
            continue
        seen.add(spec.name)
        emitted.append(spec)
    perf.incr("stitch.emitted", len(emitted))

    report = StitchReport(
        budget=budget,
        fragment_names=tuple(spec.name for spec in specs),
        template_counts=tuple(len(t) for t in templates),
        clean_counts=tuple(
            sum(1 for template in t if template.clean) for t in templates
        ),
        compatible_pairs=tuple(
            (specs[i].name, specs[j].name) for (i, j) in sorted(compat)
        ),
        emitted=tuple(spec.name for spec in emitted),
        skipped_invalid=skipped,
        truncated=truncated,
    )
    return tuple(emitted), report


def format_stitch_report(report: StitchReport) -> str:
    """Deterministic text rendering for ``repro stitch``."""
    budget = report.budget
    lines = [
        "Stitched-method corpus (repro stitch)",
        (
            f"fragments: {len(report.fragment_names)} "
            f"(paths per fragment: {budget.paths_per_fragment})"
        ),
        (
            f"templates: {sum(report.template_counts)} "
            f"({sum(report.clean_counts)} clean handoffs)"
        ),
        (
            f"compatible fragment pairs: {len(report.compatible_pairs)}"
        ),
        (
            f"emitted: {len(report.emitted)} stitched methods "
            f"(cap {budget.max_methods}, depth {budget.depth}, "
            f"{report.skipped_invalid} skipped invalid"
            + (", truncated" if report.truncated else "")
            + ")"
        ),
    ]
    for name in report.emitted:
        lines.append(f"  {name}")
    return "\n".join(lines)
