"""Stitched whole-method specs: concatenated fragments as one test.

A :class:`StitchedMethodSpec` is a :class:`BytecodeSequenceSpec` whose
byte-codes came from concatenating compatible fragments.  It inherits
the sequence machinery wholesale — construction-time validation
(forward jumps only, no mixed literal frames), method building, the
bounded interpreter loop — and changes only its identity:

* ``kind`` is ``"stitched"`` so journal keys, triage signatures and
  report rows distinguish the corpus;
* ``name`` is ``"stitch:"`` plus ``+``-joined tokens that **encode
  operand bytes** (``longJump.1``), unlike sequence names which drop
  them.  Names therefore round-trip: :func:`stitched_spec_named`
  rebuilds the exact spec from its name, which is what lets triage
  reproducers and ``--only`` scoping address stitched methods.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bytecode.opcodes import bytecode_named
from repro.concolic.sequences import BytecodeSequenceSpec, _encode
from repro.errors import BytecodeError


def _token(bytecode, operands) -> str:
    if not operands:
        return bytecode.name
    return bytecode.name + "." + ".".join(str(op) for op in operands)


def _parse_token(token: str) -> tuple:
    name, *operands = token.split(".")
    try:
        bytecode = bytecode_named(name)
    except BytecodeError:
        raise BytecodeError(f"unknown byte-code {name!r} in stitched name")
    try:
        return (bytecode, *(int(op) for op in operands))
    except ValueError:
        raise BytecodeError(f"bad operand bytes in stitched token {token!r}")


@dataclass(frozen=True)
class StitchedMethodSpec(BytecodeSequenceSpec):
    """A whole-method test stitched from compatible path templates."""

    #: Names of the fragments this method was stitched from, in order
    #: (informational: reports and ``repro stitch`` provenance).
    fragments: tuple = ()

    @property
    def name(self) -> str:
        return "stitch:" + "+".join(
            _token(bc, operands) for bc, operands in self.sequence
        )

    @property
    def kind(self) -> str:
        return "stitched"


def stitched_spec(entries, fragments=()) -> StitchedMethodSpec:
    """Build a stitched spec from sequence entries (mnemonics or
    ``(name, operand, ...)`` tuples), validating like any sequence."""
    return StitchedMethodSpec(
        tuple(_encode(entry) for entry in entries),
        fragments=tuple(fragments),
    )


def stitched_spec_named(name: str) -> StitchedMethodSpec:
    """Rebuild a stitched spec from its ``stitch:`` name (round-trip)."""
    if not name.startswith("stitch:"):
        raise BytecodeError(f"not a stitched-method name: {name!r}")
    body = name[len("stitch:"):]
    if not body:
        raise BytecodeError("empty stitched-method name")
    return stitched_spec(
        _parse_token(token) for token in body.split("+")
    )
