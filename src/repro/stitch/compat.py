"""The compatibility relation: can path *a* feed path *b*?

Two templates stitch when the *output shape* of a clean prefix path
satisfies the *input constraints* of a suffix path — decided by the
existing memoized incremental solver, never by a new decision
procedure.  The query is the conjunction

    suffix.literals  ∧  shape_literals(prefix.out_stack)

solved through :func:`repro.concolic.solver.solve_with_hint` with the
suffix path's own witness model as the warm-start hint: the hint
already satisfies every suffix literal, so only the components touched
by the shape bindings re-solve (and any hint mismatch falls back to a
full incremental solve — warm-starting changes time, never answers).

The relation is a deliberate over-approximation.  It binds the values
the prefix *leaves* onto the suffix's entry-stack variables
(``stack0`` = top) and requires at least that many operands available
(``stack_size >= len(out_stack)``), but it does not model operands
below the handoff or heap effects.  That is sound for its purpose:
stitched specs are re-explored concolically from scratch, so the
relation only prunes type-incompatible stitches early — it never
vouches for the final tests.
"""

from __future__ import annotations

import re

from repro import perf
from repro.concolic.solver import solve_with_hint
from repro.concolic.terms import (
    Sort,
    compare,
    const,
    kind_predicate,
    not_,
    oop_attribute,
    var,
)
from repro.stitch.templates import FALSE, INT, NIL, TRUE

#: All kind predicates, used to encode the opaque ("object",) shape as
#: "none of the immediate kinds".
_KIND_OPS = ("is_small_int", "is_float", "is_nil", "is_true", "is_false")

#: Entry-state variables a suffix path may constrain (the explorer's
#: materialization naming convention).
_DATA_VAR = re.compile(r"^(recv|stack\d+|temp\d+)$")


def shape_literals(out_stack) -> list:
    """Encode a prefix's output stack as constraints on a suffix's
    entry-stack variables (``stack0`` is the top of the entry stack)."""
    literals = []
    for depth, token in enumerate(reversed(out_stack)):
        slot = var(f"stack{depth}", Sort.OOP)
        kind = token[0]
        if kind == INT:
            literals.append(kind_predicate("is_small_int", slot))
            literals.append(compare(
                "eq", oop_attribute("int_value_of", slot), const(token[1])
            ))
        elif kind in (NIL, TRUE, FALSE):
            literals.append(kind_predicate(f"is_{kind}", slot))
        elif kind == "float":
            literals.append(kind_predicate("is_float", slot))
        else:  # opaque object: not any immediate kind
            for op in _KIND_OPS:
                literals.append(not_(kind_predicate(op, slot)))
    if out_stack:
        literals.append(compare(
            "ge", var("stack_size", Sort.INT), const(len(out_stack))
        ))
    return literals


def compatible(prefix, suffix, context, *, memo=None) -> bool:
    """Does some entry state satisfy *suffix* given what *prefix* left?

    ``memo`` (optional dict) caches verdicts by the pair's identity —
    the prefix's output shape and the suffix path's id — since many
    prefix paths share one shape.
    """
    if not prefix.clean:
        return False
    key = None
    if memo is not None:
        key = (prefix.out_stack, suffix.fragment_name, suffix.path_index)
        cached = memo.get(key)
        if cached is not None:
            return cached
    literals = list(suffix.literals) + shape_literals(prefix.out_stack)
    perf.incr("stitch.compat_queries")
    model, _stats = solve_with_hint(literals, context, suffix.model)
    verdict = model is not None
    if verdict:
        perf.incr("stitch.compat_sat")
    if memo is not None:
        memo[key] = verdict
    return verdict


def reads_entry_state(template) -> bool:
    """Does this path constrain the frame's entry values at all?

    Used by the corpus builder's prioritization: a suffix whose path
    condition mentions ``recv``/``stack{d}``/``temp{i}`` actually
    engages cross-fragment dataflow, which is where stitching earns
    its keep.
    """
    for literal in template.literals:
        if any(_DATA_VAR.match(name) for name in literal.var_names()):
            return True
    return False
