"""Template-stitched method campaigns (docs/STITCHING.md).

The sequence corpus (:mod:`repro.concolic.sequences`) tests short
hand-curated fragments in isolation.  This package multiplies those
assets combinatorially, in the spirit of template-extraction compiler
testing (JAttack): every curated concolic path of a fragment becomes a
:class:`~repro.stitch.templates.PathTemplate` — its path condition as
*input holes*, its output shape and exit as a *post-state summary* —
and two fragments are **stitched** into one whole-method test when
some clean-handoff path of the first can feed some path of the second,
decided by the existing memoized incremental solver
(:func:`repro.concolic.solver.solve_with_hint`; no new solver).

The result is a third row family, ``experiment="stitched"``, that runs
through the same canonical-plan machinery as the main and sequence
campaigns: the ``-j N`` shard pool, journaling/``--resume``, triage,
and the mutation recall sweep (the ``C3`` dropped-spill mutant is only
observable across fragment boundaries and is gated through this
corpus).  Stitched-corpus generation is a deterministic pure function
of the budget knobs, so campaign output stays byte-identical across
``-j1`` / ``-jN`` / ``--resume``.
"""

from repro.stitch.compat import compatible, shape_literals  # noqa: F401
from repro.stitch.corpus import (  # noqa: F401
    StitchBudget,
    StitchReport,
    build_stitched_corpus,
    clear_corpus_memo,
    format_stitch_report,
)
from repro.stitch.spec import (  # noqa: F401
    StitchedMethodSpec,
    stitched_spec,
    stitched_spec_named,
)
from repro.stitch.templates import PathTemplate, derive_templates  # noqa: F401
