"""Path templates: curated concolic paths as stitchable units.

A :class:`PathTemplate` summarizes one curated path of a fragment spec
for stitching purposes:

* the **input holes** — the path condition's literals, exactly as the
  explorer recorded them (over ``recv``/``stack{d}``/``temp{i}`` entry
  variables), plus the witness model that realized the path;
* the **post-state summary** — the exit condition, the final pc, and
  the *shape* of every value the path left on the operand stack
  (bottom to top), parsed from the output snapshot's rendered
  descriptors.

A template is a **clean handoff** when the path ran to the fragment's
end successfully (exit ``SUCCESS`` at ``pc == byte_size``): only clean
templates may act as the *prefix* of a stitch, because a return, send
or failure exit never reaches the suffix.  Shapes are a deliberately
coarse abstraction — kind plus (for small integers) the concrete value
— matching exactly what the solver's kind predicates can express.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import perf
from repro.concolic.explorer import ConcolicExplorer
from repro.difftest.curation import curate_paths
from repro.interpreter.exits import ExitCondition

#: Shape tokens: ("int", value) | ("float",) | ("nil",) | ("true",)
#: | ("false",) | ("object",).  Kept as plain tuples so templates stay
#: hashable and trivially picklable.
INT, FLOAT, NIL, TRUE, FALSE, OBJECT = (
    "int", "float", "nil", "true", "false", "object",
)


def shape_of(descriptor) -> tuple:
    """Parse one output :class:`ValueDescriptor` into a shape token.

    The rendered string is the stable reporting surface
    (``"int(5)"``, ``"nil"``, ``"float(1.5)"``, ``"Point@0x…"``);
    anything unrecognized degrades to the opaque ``("object",)`` shape,
    which only ever *weakens* the compatibility relation.
    """
    rendered = descriptor.rendered
    if rendered.startswith("int(") and rendered.endswith(")"):
        try:
            return (INT, int(rendered[4:-1]))
        except ValueError:
            return (OBJECT,)
    if rendered == "nil":
        return (NIL,)
    if rendered == "true":
        return (TRUE,)
    if rendered == "false":
        return (FALSE,)
    if rendered.startswith("float("):
        return (FLOAT,)
    return (OBJECT,)


@dataclass(frozen=True)
class PathTemplate:
    """One curated path of one fragment, summarized for stitching."""

    fragment_name: str
    #: Index of this path within the fragment's curated path list
    #: (derivation is deterministic, so the index is a stable id).
    path_index: int
    #: The input holes: the path condition as positive literals.
    literals: tuple
    #: The witness model that realized this path (warm-start hint for
    #: compatibility queries).
    model: object
    exit_condition: str
    final_pc: int
    fragment_size: int
    #: Shape tokens for the operand stack the path left, bottom -> top.
    out_stack: tuple

    @property
    def clean(self) -> bool:
        """May this path hand off control to a stitched suffix?"""
        return (
            self.exit_condition == ExitCondition.SUCCESS.value
            and self.final_pc == self.fragment_size
        )


def derive_templates(spec, *, max_paths: int, max_iterations: int,
                     deadline=None) -> tuple:
    """Explore *spec* and summarize every curated path as a template.

    Exploration is the regular concolic loop at the stitching budget;
    curation applies the same path filter as the campaign, so every
    template corresponds to a path the differential tester could run.
    """
    exploration = ConcolicExplorer(
        spec,
        max_iterations=max_iterations,
        max_paths=max_paths,
        deadline=deadline,
    ).explore()
    templates = []
    for index, path in enumerate(curate_paths(exploration.paths)):
        templates.append(PathTemplate(
            fragment_name=spec.name,
            path_index=index,
            literals=tuple(c.literal for c in path.constraints),
            model=path.model,
            exit_condition=path.exit.condition.value,
            final_pc=path.output.pc,
            fragment_size=spec.byte_size,
            out_stack=tuple(shape_of(d) for d in path.output.stack),
        ))
    perf.incr("stitch.templates", len(templates))
    perf.incr("stitch.clean_templates",
              sum(1 for t in templates if t.clean))
    return tuple(templates)
