"""Checkpoint/resume: the append-only JSONL campaign journal.

The runner appends one JSON record per *completed* cell — counters plus
per-comparison verdicts, enough to rebuild the aggregate report rows
exactly.  On ``--resume`` the journal is replayed and completed cells
are skipped, so an interrupted campaign (crash, ^C, expired deadline)
picks up where it left off and still produces identical aggregate
counts.

Records are written with an explicit flush per cell, so at most the
cell in flight is lost on a hard kill.  A torn trailing line (partial
write) is tolerated and ignored on load.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

#: Bumped when the record shape changes; mismatched journals are ignored
#: rather than mis-replayed.
JOURNAL_VERSION = 1


def cell_key(experiment: str, compiler: str, kind: str, instruction: str) -> str:
    """Stable identity of one campaign cell across runs."""
    return f"{experiment}::{compiler}::{kind}::{instruction}"


class CampaignJournal:
    """One JSONL file journaling completed campaign cells."""

    def __init__(self, path) -> None:
        self.path = Path(path)

    # ------------------------------------------------------------------

    def load(self) -> dict:
        """key -> record for every well-formed journaled cell."""
        if not self.path.exists():
            return {}
        completed: dict = {}
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # Torn write from an interrupted run: the cell was
                    # not completed, drop it and every later line.
                    break
                if record.get("version") != JOURNAL_VERSION:
                    continue
                key = record.get("key")
                if key:
                    completed[key] = record
        return completed

    def append(self, record: dict) -> None:
        """Durably append one completed-cell record."""
        record = dict(record, version=JOURNAL_VERSION)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
