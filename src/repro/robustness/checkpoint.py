"""Checkpoint/resume: the append-only JSONL campaign journal.

The runner appends one JSON record per *completed* cell — counters plus
per-comparison verdicts, enough to rebuild the aggregate report rows
exactly.  On ``--resume`` the journal is replayed and completed cells
are skipped, so an interrupted campaign (crash, ^C, expired deadline)
picks up where it left off and still produces identical aggregate
counts.

The journal is safe under **concurrent writers** (the parallel engine's
workers append directly):

* each record is emitted as one ``os.write`` on an ``O_APPEND``
  descriptor, so lines from different processes never interleave;
* each record carries a CRC-32 of its own payload, verified on load —
  a torn or corrupted line is skipped (not trusted, not fatal) and
  every later well-formed record is still replayed;
* duplicate keys resolve last-wins, so a cell re-run after a partial
  failure supersedes its earlier record.

Replay health is not silent: :meth:`CampaignJournal.load` counts torn
and foreign lines in :class:`JournalReplay` (surfaced in the campaign
report's resilience section and ``repro cache --journal``), and a
journal whose *writes* keep failing (disk full, I/O errors) disables
itself after :data:`MAX_WRITE_FAILURES` consecutive errors with one
stderr warning — the campaign finishes correctly in-memory, never
worse than running journal-less.
"""

from __future__ import annotations

import json
import os
import sys
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro import perf
from repro.robustness import chaos
from repro.robustness.faults import maybe_inject

#: Bumped when the record shape changes; mismatched journals are ignored
#: rather than mis-replayed.
JOURNAL_VERSION = 1

#: Consecutive write failures after which a sink (journal or result
#: store) disables itself for the rest of the run.  Transient errors
#: below the threshold lose at most their own record; the counter
#: resets on every successful write.
MAX_WRITE_FAILURES = 3


def cell_key(experiment: str, compiler: str, kind: str, instruction: str) -> str:
    """Stable identity of one campaign cell across runs."""
    return f"{experiment}::{compiler}::{kind}::{instruction}"


#: Journal-key namespace for triage cause records.  Triage shares the
#: campaign journal: cause records ride alongside cell records (same
#: versioning, checksumming, last-wins semantics) but live under this
#: prefix so cell replay and triage replay never collide.
TRIAGE_KEY_PREFIX = "triage::"


def triage_key(digest: str) -> str:
    """Stable identity of one triaged cause bucket across runs."""
    return f"{TRIAGE_KEY_PREFIX}{digest}"


def triage_records(completed: dict) -> dict:
    """The triage sub-map of a loaded journal: digest -> record."""
    return {
        key[len(TRIAGE_KEY_PREFIX):]: record
        for key, record in completed.items()
        if key.startswith(TRIAGE_KEY_PREFIX)
    }


def _checksum(payload: str) -> int:
    return zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF


def encode_record(record: dict, version: int = JOURNAL_VERSION) -> bytes:
    """One journal line: versioned, checksummed, newline-terminated.

    The same discipline serves the campaign journal and the persistent
    result store (:mod:`repro.incremental.store`), each under its own
    *version* namespace.
    """
    record = dict(record, version=version)
    payload = json.dumps(record, sort_keys=True)
    record["crc"] = _checksum(payload)
    return (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")


def _decode_line(line: str, version: int) -> tuple[dict | None, str]:
    """(record, reason) for one journal line.

    Reasons: ``"ok"`` — replayable; ``"torn"`` — undecodable (a torn
    write or bit rot: unparseable JSON or a checksum mismatch);
    ``"foreign"`` — intact but not ours (another format version).
    """
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return None, "torn"
    if not isinstance(record, dict):
        return None, "torn"
    crc = record.pop("crc", None)
    if crc != _checksum(json.dumps(record, sort_keys=True)):
        return None, "torn"
    if record.get("version") != version:
        return None, "foreign"
    return record, "ok"


def decode_record(line: str, version: int = JOURNAL_VERSION) -> dict | None:
    """Parse and verify one journal line; None if torn/corrupt/foreign."""
    record, _reason = _decode_line(line, version)
    return record


@dataclass
class JournalReplay:
    """Accounting of one journal load — the replay-health report."""

    #: Well-formed records replayed (after last-wins dedup collapses
    #: duplicates, this can exceed the number of distinct keys).
    records: int = 0
    #: Undecodable lines skipped: torn writes, checksum mismatches.
    torn_lines: int = 0
    #: Decodable lines skipped as foreign: version mismatch or no key.
    skipped_lines: int = 0


class CampaignJournal:
    """One JSONL file journaling completed campaign cells."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.replay = JournalReplay()
        self.degraded = False
        self._write_failures = 0
        self._tail_checked = False

    # ------------------------------------------------------------------

    def load(self) -> dict:
        """key -> record for every well-formed journaled cell.

        Malformed lines (torn writes, checksum mismatches) are skipped
        individually: with concurrent writers a bad line is not
        necessarily the last one.  Duplicate keys resolve last-wins.
        What was skipped is counted in :attr:`replay` and the
        ``journal.torn_lines`` / ``journal.skipped_lines`` perf
        counters — replay health is reported, not silent.
        """
        self.replay = JournalReplay()
        if not self.path.exists():
            return {}
        completed: dict = {}
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record, reason = _decode_line(line, JOURNAL_VERSION)
                if record is None:
                    if reason == "torn":
                        self.replay.torn_lines += 1
                        perf.incr("journal.torn_lines")
                    else:
                        self.replay.skipped_lines += 1
                        perf.incr("journal.skipped_lines")
                    continue
                key = record.get("key")
                if not key:
                    self.replay.skipped_lines += 1
                    perf.incr("journal.skipped_lines")
                    continue
                completed[key] = record
                self.replay.records += 1
        return completed

    def append(self, record: dict) -> None:
        """Durably append one completed-cell record.

        The entire line goes out in a single ``write(2)`` on an
        ``O_APPEND`` descriptor, so concurrent appenders (parallel
        workers) never tear each other's records.  If the file's last
        line is unterminated — the tail a SIGKILL mid-write leaves
        behind — the first append of this process prepends a newline so
        the new record is never glued onto the torn fragment.

        Write failures degrade instead of crashing the campaign: the
        failed record is lost (it will simply re-run on resume), and
        after :data:`MAX_WRITE_FAILURES` consecutive failures the
        journal disables itself with one stderr warning.
        """
        if self.degraded:
            return
        key = str(record.get("key", ""))
        site = "triage" if key.startswith(TRIAGE_KEY_PREFIX) else "journal"
        try:
            maybe_inject(site)
            data = encode_record(record)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            chaos.write_point(site, self.path, data)
            fd = os.open(
                self.path, os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644
            )
            try:
                if not self._tail_checked:
                    self._tail_checked = True
                    if torn_tail(fd):
                        data = b"\n" + data
                os.write(fd, data)
                os.fsync(fd)
            finally:
                os.close(fd)
        except OSError as error:
            self._write_failures += 1
            perf.incr("journal.write_errors")
            if self._write_failures >= MAX_WRITE_FAILURES:
                self.degraded = True
                perf.incr("io.degraded")
                print(
                    f"warning: campaign journal {self.path} disabled after "
                    f"{self._write_failures} consecutive write failures "
                    f"({error}); continuing without checkpointing",
                    file=sys.stderr,
                )
            return
        self._write_failures = 0


def torn_tail(fd: int) -> bool:
    """True if the file ends mid-line (no trailing newline)."""
    size = os.fstat(fd).st_size
    if size == 0:
        return False
    return os.pread(fd, 1, size - 1) != b"\n"
