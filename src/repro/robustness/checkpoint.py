"""Checkpoint/resume: the append-only JSONL campaign journal.

The runner appends one JSON record per *completed* cell — counters plus
per-comparison verdicts, enough to rebuild the aggregate report rows
exactly.  On ``--resume`` the journal is replayed and completed cells
are skipped, so an interrupted campaign (crash, ^C, expired deadline)
picks up where it left off and still produces identical aggregate
counts.

The journal is safe under **concurrent writers** (the parallel engine's
workers append directly):

* each record is emitted as one ``os.write`` on an ``O_APPEND``
  descriptor, so lines from different processes never interleave;
* each record carries a CRC-32 of its own payload, verified on load —
  a torn or corrupted line is skipped (not trusted, not fatal) and
  every later well-formed record is still replayed;
* duplicate keys resolve last-wins, so a cell re-run after a partial
  failure supersedes its earlier record.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path

#: Bumped when the record shape changes; mismatched journals are ignored
#: rather than mis-replayed.
JOURNAL_VERSION = 1


def cell_key(experiment: str, compiler: str, kind: str, instruction: str) -> str:
    """Stable identity of one campaign cell across runs."""
    return f"{experiment}::{compiler}::{kind}::{instruction}"


#: Journal-key namespace for triage cause records.  Triage shares the
#: campaign journal: cause records ride alongside cell records (same
#: versioning, checksumming, last-wins semantics) but live under this
#: prefix so cell replay and triage replay never collide.
TRIAGE_KEY_PREFIX = "triage::"


def triage_key(digest: str) -> str:
    """Stable identity of one triaged cause bucket across runs."""
    return f"{TRIAGE_KEY_PREFIX}{digest}"


def triage_records(completed: dict) -> dict:
    """The triage sub-map of a loaded journal: digest -> record."""
    return {
        key[len(TRIAGE_KEY_PREFIX):]: record
        for key, record in completed.items()
        if key.startswith(TRIAGE_KEY_PREFIX)
    }


def _checksum(payload: str) -> int:
    return zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF


def encode_record(record: dict, version: int = JOURNAL_VERSION) -> bytes:
    """One journal line: versioned, checksummed, newline-terminated.

    The same discipline serves the campaign journal and the persistent
    result store (:mod:`repro.incremental.store`), each under its own
    *version* namespace.
    """
    record = dict(record, version=version)
    payload = json.dumps(record, sort_keys=True)
    record["crc"] = _checksum(payload)
    return (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")


def decode_record(line: str, version: int = JOURNAL_VERSION) -> dict | None:
    """Parse and verify one journal line; None if torn/corrupt/foreign."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(record, dict):
        return None
    crc = record.pop("crc", None)
    if crc != _checksum(json.dumps(record, sort_keys=True)):
        return None
    if record.get("version") != version:
        return None
    return record


class CampaignJournal:
    """One JSONL file journaling completed campaign cells."""

    def __init__(self, path) -> None:
        self.path = Path(path)

    # ------------------------------------------------------------------

    def load(self) -> dict:
        """key -> record for every well-formed journaled cell.

        Malformed lines (torn writes, checksum mismatches) are skipped
        individually: with concurrent writers a bad line is not
        necessarily the last one.  Duplicate keys resolve last-wins.
        """
        if not self.path.exists():
            return {}
        completed: dict = {}
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = decode_record(line)
                if record is None:
                    continue
                key = record.get("key")
                if key:
                    completed[key] = record
        return completed

    def append(self, record: dict) -> None:
        """Durably append one completed-cell record.

        The entire line goes out in a single ``write(2)`` on an
        ``O_APPEND`` descriptor, so concurrent appenders (parallel
        workers) never tear each other's records.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        data = encode_record(record)
        fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)
