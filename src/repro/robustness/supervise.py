"""Supervision policy for the parallel engine's worker processes.

Three small, separately testable pieces, all consumed by
:mod:`repro.parallel`:

* :func:`effective_cell_timeout` — the per-cell wall-clock budget the
  parent enforces.  Workers announce each cell with a ``cell_start``
  heartbeat over their result pipe; a worker whose announced cell is
  still unfinished after the timeout is SIGKILLed by the parent, the
  cell is charged one ``BudgetExhausted`` quarantine entry, and the
  rest of its shard is re-queued.  Explicit ``--cell-timeout`` wins;
  otherwise a campaign ``--deadline`` derives a default (a quarter of
  the deadline, floored at one second) so a single hung cell can never
  ride the run to its global budget; with neither, supervision is off.

* :class:`RespawnBackoff` — capped exponential backoff between worker
  respawns, so a systematically dying target (every cell segfaults,
  say) cannot turn the pool into a fork bomb.  The delay doubles on
  each consecutive worker loss and resets as soon as a replacement
  delivers a result.

* :func:`apply_worker_rlimits` — ``RLIMIT_AS``/``RLIMIT_CPU`` applied
  inside the forked child (``--worker-memory-mb``,
  ``--worker-cpu-seconds``).  A failed allocation raises MemoryError
  in-process and classifies as
  :class:`~repro.robustness.errors.WorkerResourceExceeded`; a CPU
  overrun kills the worker with SIGXCPU, which the parent recognizes
  by exit code and classifies the same way instead of as a generic
  ``WorkerCrash``.

The sequential engine (``-j 1``) runs cells in-process and keeps
relying on the cooperative deadline checks; per-cell preemption needs
process isolation and is therefore a `-j N` feature.
"""

from __future__ import annotations

#: Fraction of the campaign deadline used as the derived cell timeout.
DEADLINE_FRACTION = 0.25

#: Floor for the derived timeout: never preempt sub-second cells just
#: because the operator asked for a short campaign deadline.
MIN_DERIVED_TIMEOUT = 1.0

#: First respawn delay after a worker loss, in seconds.
BACKOFF_BASE = 0.05

#: Ceiling on the respawn delay, in seconds.
BACKOFF_CAP = 2.0


def effective_cell_timeout(config) -> float | None:
    """The per-cell wall-clock budget, or None when supervision is off."""
    explicit = getattr(config, "cell_timeout_seconds", None)
    if explicit:
        return float(explicit)
    deadline = getattr(config, "deadline_seconds", None)
    if deadline:
        return max(MIN_DERIVED_TIMEOUT, float(deadline) * DEADLINE_FRACTION)
    return None


class RespawnBackoff:
    """Capped exponential backoff between worker respawns."""

    def __init__(self, base: float = BACKOFF_BASE,
                 cap: float = BACKOFF_CAP) -> None:
        self.base = base
        self.cap = cap
        self.consecutive_failures = 0
        self._ready_at = 0.0

    def current_delay(self) -> float:
        """The delay a failure recorded *now* would impose."""
        if self.consecutive_failures == 0:
            return 0.0
        return min(self.cap,
                   self.base * 2 ** (self.consecutive_failures - 1))

    def record_failure(self, now: float) -> None:
        """A worker was lost (crash, kill, preemption): back off."""
        self.consecutive_failures += 1
        self._ready_at = now + self.current_delay()

    def record_success(self) -> None:
        """A worker delivered a result: the fleet is healthy again."""
        self.consecutive_failures = 0
        self._ready_at = 0.0

    def ready(self, now: float) -> bool:
        return now >= self._ready_at

    def remaining(self, now: float) -> float:
        return max(0.0, self._ready_at - now)


def apply_worker_rlimits(config) -> list[str]:
    """Apply the operator's worker resource limits in a forked child.

    Returns the names of the limits actually applied (for tests and
    logging).  Platforms without the ``resource`` module, or kernels
    refusing the values, degrade to no limit — supervision still
    bounds the cell by wall clock.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - POSIX-only module
        return []
    applied = []
    memory_mb = getattr(config, "worker_memory_mb", None)
    if memory_mb:
        limit = int(memory_mb) * 1024 * 1024
        try:
            resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
            applied.append("memory")
        except (ValueError, OSError):  # pragma: no cover - kernel refusal
            pass
    cpu_seconds = getattr(config, "worker_cpu_seconds", None)
    if cpu_seconds:
        # Soft limit delivers SIGXCPU (a recognizable exit code for the
        # parent); the hard limit one second later is the backstop.
        soft = int(cpu_seconds)
        try:
            resource.setrlimit(resource.RLIMIT_CPU, (soft, soft + 1))
            applied.append("cpu")
        except (ValueError, OSError):  # pragma: no cover - kernel refusal
            pass
    return applied
