"""The campaign error taxonomy and the crash-isolation guard.

A campaign cell runs a five-stage pipeline (explore -> solve ->
compile -> simulate -> compare).  Any stage may crash in ways the
expected-failure machinery of the harness does not model — a bug in the
explorer, a compiler front-end throwing something other than
:class:`~repro.errors.CompilerError`, the simulator's own environment
failing.  :func:`guard` converts those unexpected exceptions into one
classified :class:`CampaignError` subclass per stage, preserving the
original exception and a truncated traceback for the quarantine report,
while letting the *expected* control-flow exceptions of each stage pass
through untouched.
"""

from __future__ import annotations

import traceback
from contextlib import contextmanager

from repro.errors import ReproError

#: Default number of traceback lines kept in quarantine records.
TRACEBACK_LINES = 12


class CampaignError(ReproError):
    """A classified, stage-attributed failure of one campaign cell."""

    stage = "harness"

    def __init__(self, message: str, original: BaseException | None = None):
        super().__init__(message)
        self.original = original
        self.traceback = (
            truncated_traceback(original) if original is not None else ""
        )

    @property
    def error_class(self) -> str:
        return type(self).__name__


class ExplorerCrash(CampaignError):
    """The concolic explorer failed outside its expected exits."""

    stage = "explorer"


class CompilerCrash(CampaignError):
    """A JIT front-end raised something other than a CompilerError."""

    stage = "compiler"


class SimulatorCrash(CampaignError):
    """The CPU simulator's own environment failed (not the code under
    test faulting — that is a FAULT outcome, a first-class verdict)."""

    stage = "simulator"


class SolverCrash(CampaignError):
    """The constraint solver raised instead of answering sat/unsat/unknown."""

    stage = "solver"


class HarnessCrash(CampaignError):
    """The differential harness itself failed (materialization, world
    construction, comparison)."""

    stage = "harness"


class WorkerCrash(CampaignError):
    """A parallel worker process died without delivering a cell result
    (segfault, ``os._exit``, OOM kill).  Attributed to the cell that
    was in flight when the process disappeared; the rest of the
    worker's shard is re-queued on a fresh process."""

    stage = "worker"


class WorkerResourceExceeded(CampaignError):
    """A worker hit an operator-set resource limit: an allocation
    failed under ``RLIMIT_AS`` (``--worker-memory-mb``, surfacing as
    ``MemoryError``) or the kernel delivered ``SIGXCPU`` under
    ``RLIMIT_CPU`` (``--worker-cpu-seconds``).  Kept distinct from
    :class:`WorkerCrash` so quarantine reports separate "the cell needs
    a bigger box" from "the cell found a genuine crash"."""

    stage = "resources"


class BudgetExhausted(CampaignError):
    """A wall-clock or fuel budget ran out.

    ``scope`` distinguishes a cell-local exhaustion (the cell is
    retried/quarantined and the campaign continues) from the campaign
    deadline expiring (the run stops; the journal allows resuming).
    """

    stage = "budget"

    def __init__(self, message: str, scope: str = "cell",
                 original: BaseException | None = None):
        super().__init__(message, original)
        self.scope = scope


_STAGE_CRASHES = {
    "explorer": ExplorerCrash,
    "compiler": CompilerCrash,
    "simulator": SimulatorCrash,
    "solver": SolverCrash,
    "harness": HarnessCrash,
    "worker": WorkerCrash,
    "resources": WorkerResourceExceeded,
}


def classify_crash(error: BaseException, stage: str) -> CampaignError:
    """Wrap *error* into the CampaignError subclass for *stage*.

    Already-classified errors are returned unchanged — a SolverCrash
    surfacing through the explorer stays a SolverCrash.  A
    ``MemoryError`` is resource exhaustion regardless of the stage it
    surfaced in: whatever allocation tripped first is incidental.
    """
    if isinstance(error, CampaignError):
        return error
    if isinstance(error, MemoryError):
        return WorkerResourceExceeded(
            f"MemoryError: {error}", original=error
        )
    crash_class = _STAGE_CRASHES.get(stage, HarnessCrash)
    return crash_class(f"{type(error).__name__}: {error}", original=error)


def truncated_traceback(error: BaseException,
                        limit: int = TRACEBACK_LINES) -> str:
    """The last *limit* lines of *error*'s formatted traceback."""
    lines = traceback.format_exception(type(error), error, error.__traceback__)
    flat = "".join(lines).rstrip().splitlines()
    if len(flat) > limit:
        flat = [f"... ({len(flat) - limit} lines elided)"] + flat[-limit:]
    return "\n".join(flat)


@contextmanager
def guard(stage: str, expected: tuple = ()):
    """Classify unexpected exceptions escaping a pipeline stage.

    Exceptions listed in *expected* are the stage's modelled control
    flow (e.g. ``CompilerError`` for curation) and propagate untouched,
    as do already-classified :class:`CampaignError` instances and
    ``BaseException``s such as ``KeyboardInterrupt``.  Everything else
    becomes the stage's :class:`CampaignError` subclass.
    """
    try:
        yield
    except CampaignError:
        raise
    except expected:
        raise
    except Exception as error:
        raise classify_crash(error, stage) from error
