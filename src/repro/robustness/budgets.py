"""Wall-clock deadlines for the campaign engine.

A :class:`Deadline` is the live object threaded from the campaign
driver down into the explorer loop and the machine simulator.  Fuel
budgets (iteration counts, simulator steps, solver nodes) stay plain
integers on :class:`~repro.difftest.runner.CampaignConfig`; the
deadline is the only budget that needs shared mutable state — all
stages race against the same clock.
"""

from __future__ import annotations

import time

from repro.robustness.errors import BudgetExhausted


class Deadline:
    """A monotonic wall-clock budget; ``None`` seconds never expires."""

    def __init__(self, seconds: float | None = None) -> None:
        self.seconds = seconds
        self._expires = None if seconds is None else time.monotonic() + seconds

    @classmethod
    def never(cls) -> "Deadline":
        return cls(None)

    def remaining(self) -> float | None:
        """Seconds left, clamped at 0.0; None when unbounded."""
        if self._expires is None:
            return None
        return max(0.0, self._expires - time.monotonic())

    def child(self) -> "Deadline":
        """A fresh deadline covering this one's remaining budget.

        Monotonic clocks are per-process, so a ``Deadline`` cannot
        cross a ``fork``: the parallel engine hands each worker the
        *remaining seconds* at spawn time and the worker rebuilds its
        own clock from them.  The parent keeps enforcing the original
        deadline; the child's copy makes every in-worker budget check
        (explorer loop, simulator, per-path test loop) work unchanged.
        """
        return Deadline(self.remaining())

    @property
    def expired(self) -> bool:
        return self._expires is not None and time.monotonic() >= self._expires

    def check(self, what: str = "campaign", scope: str = "campaign") -> None:
        """Raise :class:`BudgetExhausted` if the deadline has passed."""
        if self.expired:
            raise BudgetExhausted(
                f"deadline of {self.seconds:g}s expired during {what}",
                scope=scope,
            )
