"""The torn-run chaos harness: crash-consistency, tested adversarially.

The journal and the result store promise that a campaign killed at
*any* instant resumes to a byte-identical report and never serves a
corrupt record.  Hand-picked truncation tests check convenient
instants; this module checks hostile ones — it SIGKILLs a **real
campaign subprocess** immediately before durable writes, at seeded
randomized points, and proves the promise for each.

Two halves:

**Write points** (run inside the campaign under test).  Every durable
sink announces each write by calling :func:`write_point` immediately
before its ``write(2)``: the journal (site ``"journal"``), triage
cause records (site ``"triage"`` — same file, separate key namespace),
and the persistent result store (site ``"store"``).  Behaviour is
driven by environment variables so the hooks survive ``fork`` and
``exec`` and cost two dict lookups when disarmed:

* ``REPRO_CHAOS_TRACE=PATH`` — append one site name per write point to
  *PATH*; never kills.  Used to census a run's write schedule.
* ``REPRO_CHAOS_KILL_AFTER=K`` — SIGKILL the calling process at the
  K-th counted write point, *before* the durable write lands.
* ``REPRO_CHAOS_TEAR=1`` — before dying, append the first half of the
  record (no newline) to the sink: the torn line the CRC layer must
  skip — and the torn tail the next append must not glue onto.
* ``REPRO_CHAOS_SITES=a,b`` — count only these sites.

**The harness** (run from tests and the CI ``chaos-smoke`` job).
:func:`run_torn_campaign` runs one uninterrupted baseline campaign to
learn the write schedule, picks seeded kill points covering every
site, and for each point runs the campaign to its death, resumes it
with ``--resume``, and asserts (a) the resumed report is byte-identical
to the baseline (modulo resume status lines), and (b) the journal and
store files contain at most the one deliberately-torn line and no
other damage.  ``python -m repro.robustness.chaos`` drives it from the
command line.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from random import Random

#: The sinks that announce durable writes.
SITES = ("journal", "store", "triage")

#: Subprocess guard rail; a chaos campaign is seconds, not minutes.
RUN_TIMEOUT = 300

_WRITES_SEEN = 0


def write_point(site: str, path=None, data: bytes | None = None) -> None:
    """Announce one durable write (called just before the ``write(2)``).

    *path*/*data* let ``REPRO_CHAOS_TEAR`` leave a genuinely torn line
    behind before the SIGKILL.
    """
    env = os.environ
    trace = env.get("REPRO_CHAOS_TRACE")
    kill_after = env.get("REPRO_CHAOS_KILL_AFTER")
    if not trace and not kill_after:
        return
    sites = env.get("REPRO_CHAOS_SITES")
    if sites and site not in sites.split(","):
        return
    if trace:
        fd = os.open(trace, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, f"{site}\n".encode("utf-8"))
        finally:
            os.close(fd)
    if not kill_after:
        return
    global _WRITES_SEEN
    _WRITES_SEEN += 1
    if _WRITES_SEEN < int(kill_after):
        return
    if env.get("REPRO_CHAOS_TEAR") == "1" and path is not None and data:
        torn = bytes(data)[: max(1, len(bytes(data)) // 2)]
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, torn)
        finally:
            os.close(fd)
    os.kill(os.getpid(), signal.SIGKILL)


# ----------------------------------------------------------------------
# The harness side.


def default_argv(resume: bool = False) -> list[str]:
    """A small campaign writing to all three sites.

    Three seeded-defect natives produce triage causes (journal records
    under the triage namespace plus reproducer scripts); two bytecodes
    spread cells across all three byte-code compilers.  All paths are
    relative — the harness runs each campaign with ``cwd`` set to a
    fresh work directory so reports are byte-comparable across
    directories.
    """
    argv = [
        sys.executable, "-m", "repro", "campaign",
        "--only", "primitiveFloatTruncated", "--only", "primitiveMod",
        "--only", "pushReceiverVariable0", "--only", "pushReceiverVariable1",
        "--backend", "x86",
        "--fault-describer-gaps", "R10,R11",
        "--triage", "--confirm-runs", "1",
        "--repro-dir", "repros",
        "--journal", "run.jsonl",
        "--cache-dir", "cache",
    ]
    if resume:
        argv.append("--resume")
    return argv


#: Report lines that legitimately differ between an uninterrupted run
#: and a killed-then-resumed run (resume/cache/resilience status).
STATUS_PREFIXES = (
    "resumed ", "replayed ", "result cache:", "resilience:", "warning:",
)


def normalize_report(text: str) -> str:
    """Strip resume-status lines; collapse the blank lines they leave."""
    kept = [line for line in text.splitlines()
            if not line.startswith(STATUS_PREFIXES)]
    out: list[str] = []
    for line in kept:
        if line == "" and (not out or out[-1] == ""):
            continue
        out.append(line)
    while out and out[-1] == "":
        out.pop()
    return "\n".join(out) + "\n"


@dataclass
class PointOutcome:
    """One kill point: where we killed, and every broken promise."""

    point: int
    tear: bool
    failures: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass
class ChaosReport:
    """The verdict of one seeded torn-run sweep."""

    baseline_writes: int
    site_counts: dict
    outcomes: list

    @property
    def ok(self) -> bool:
        covered = {site for site, count in self.site_counts.items() if count}
        return (all(outcome.ok for outcome in self.outcomes)
                and set(SITES) <= covered)

    def describe(self) -> str:
        lines = [
            "chaos: baseline campaign performed "
            f"{self.baseline_writes} durable writes ("
            + " ".join(f"{site}={self.site_counts.get(site, 0)}"
                       for site in SITES)
            + ")"
        ]
        for outcome in self.outcomes:
            label = f"kill@write {outcome.point:3d}" + (
                " +torn line" if outcome.tear else ""
            )
            if outcome.ok:
                lines.append(f"chaos: {label}: resumed byte-identical")
            else:
                lines.append(f"chaos: {label}: FAIL")
                lines.extend(f"chaos:   - {failure}"
                             for failure in outcome.failures)
        good = sum(1 for outcome in self.outcomes if outcome.ok)
        lines.append(f"chaos: {good}/{len(self.outcomes)} kill points ok")
        if set(SITES) - {s for s, c in self.site_counts.items() if c}:
            lines.append("chaos: FAIL: not every write site was exercised")
        return "\n".join(lines)


def _base_env() -> dict:
    env = {key: value for key, value in os.environ.items()
           if not key.startswith("REPRO_CHAOS_")}
    src = str(Path(__file__).resolve().parents[2])
    pythonpath = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + pythonpath if pythonpath else "")
    return env


def _run(argv, cwd, env) -> subprocess.CompletedProcess:
    return subprocess.run(argv, cwd=cwd, env=env, capture_output=True,
                          text=True, timeout=RUN_TIMEOUT)


def _pick_points(site_sequence: list, points: int, rng: Random) -> list:
    """Seeded kill points: every site covered, the rest uniform."""
    by_site: dict = {}
    for index, site in enumerate(site_sequence):
        by_site.setdefault(site, []).append(index + 1)
    chosen: list = []
    for site in sorted(by_site):
        want = min(2, len(by_site[site]), max(0, points - len(chosen)))
        chosen.extend(rng.sample(by_site[site], want))
    while len(chosen) < points:
        chosen.append(rng.randint(1, len(site_sequence)))
    return chosen[:points]


def _check_sinks(workdir: Path, tear: bool) -> list:
    """Post-resume integrity of the journal and the result store."""
    from repro.incremental.store import ResultStore
    from repro.robustness.checkpoint import CampaignJournal

    failures = []
    budget = 1 if tear else 0
    journal = CampaignJournal(workdir / "run.jsonl")
    journal.load()
    if journal.replay.torn_lines > budget:
        failures.append(
            f"journal: {journal.replay.torn_lines} torn lines "
            f"(at most {budget} expected)"
        )
    if journal.replay.skipped_lines:
        failures.append(
            f"journal: {journal.replay.skipped_lines} foreign lines"
        )
    store = ResultStore(str(workdir / "cache"))
    store.load()
    if store.stats.corrupt_lines > budget:
        failures.append(
            f"store: {store.stats.corrupt_lines} corrupt lines "
            f"(at most {budget} expected)"
        )
    for fingerprint, cell in store.records().items():
        if "key" not in cell or "comparisons" not in cell:
            failures.append(f"store: fingerprint {fingerprint[:12]} serves "
                            "a structurally corrupt cell")
    return failures


def _run_point(argv, resume_argv, base_env, workdir: Path, point: int,
               tear: bool, baseline_report: str) -> PointOutcome:
    workdir.mkdir(parents=True, exist_ok=True)
    outcome = PointOutcome(point=point, tear=tear)
    env = dict(base_env, REPRO_CHAOS_KILL_AFTER=str(point))
    if tear:
        env["REPRO_CHAOS_TEAR"] = "1"
    killed = _run(argv, workdir, env)
    if killed.returncode != -signal.SIGKILL:
        outcome.failures.append(
            f"expected SIGKILL at write {point}, run exited "
            f"{killed.returncode}: {killed.stderr.strip()[-200:]}"
        )
        return outcome
    resumed = _run(resume_argv, workdir, base_env)
    if resumed.returncode != 0:
        outcome.failures.append(
            f"resume exited {resumed.returncode}: "
            f"{resumed.stderr.strip()[-300:]}"
        )
        return outcome
    report = normalize_report(resumed.stdout)
    if report != baseline_report:
        for got, want in zip(report.splitlines(),
                             baseline_report.splitlines()):
            if got != want:
                outcome.failures.append(
                    "resumed report differs from the uninterrupted "
                    f"baseline: {got!r} != {want!r}"
                )
                break
        else:
            outcome.failures.append(
                "resumed report differs from the uninterrupted baseline "
                "in length"
            )
    outcome.failures.extend(_check_sinks(workdir, tear))
    return outcome


def run_torn_campaign(points: int = 20, seed: int = 0, workdir=None,
                      argv=None, resume_argv=None,
                      tear_every: int = 2) -> ChaosReport:
    """One seeded torn-run sweep; see the module docstring."""
    # Absolute: REPRO_CHAOS_TRACE must resolve from inside subprocesses
    # whose cwd is the work directory itself.
    workdir = Path(workdir if workdir is not None else "chaos-out").resolve()
    argv = list(argv) if argv is not None else default_argv()
    resume_argv = (list(resume_argv) if resume_argv is not None
                   else default_argv(resume=True))
    base_env = _base_env()

    baseline_dir = workdir / "baseline"
    baseline_dir.mkdir(parents=True, exist_ok=True)
    trace = baseline_dir / "trace.txt"
    baseline = _run(argv, baseline_dir,
                    dict(base_env, REPRO_CHAOS_TRACE=str(trace)))
    if baseline.returncode != 0:
        raise RuntimeError(
            f"baseline chaos campaign failed ({baseline.returncode}):\n"
            f"{baseline.stderr}"
        )
    baseline_report = normalize_report(baseline.stdout)
    site_sequence = trace.read_text(encoding="utf-8").split()
    site_counts = {site: site_sequence.count(site) for site in SITES}

    rng = Random(seed)
    outcomes = []
    for index, point in enumerate(_pick_points(site_sequence, points, rng)):
        tear = bool(tear_every) and index % tear_every == 0
        outcomes.append(_run_point(
            argv, resume_argv, base_env, workdir / f"point{index:02d}",
            point, tear, baseline_report,
        ))
    return ChaosReport(baseline_writes=len(site_sequence),
                       site_counts=site_counts, outcomes=outcomes)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.robustness.chaos",
        description="SIGKILL a live campaign at seeded durable-write "
                    "points; gate on byte-identical resumed reports and "
                    "uncorrupted sinks.",
    )
    parser.add_argument("--points", type=int, default=20,
                        help="number of seeded kill points (default 20)")
    parser.add_argument("--seed", type=int, default=0,
                        help="RNG seed for kill-point selection")
    parser.add_argument("--workdir", default="chaos-out",
                        help="scratch directory for the campaign runs")
    parser.add_argument("--tear-every", type=int, default=2,
                        help="leave a torn half-line behind at every Nth "
                             "kill point (0 = never)")
    parser.add_argument("--json", metavar="PATH",
                        help="also write the sweep result as JSON")
    args = parser.parse_args(argv)
    report = run_torn_campaign(points=args.points, seed=args.seed,
                               workdir=args.workdir,
                               tear_every=args.tear_every)
    print(report.describe())
    if args.json:
        payload = {
            "baseline_writes": report.baseline_writes,
            "site_counts": report.site_counts,
            "ok": report.ok,
            "outcomes": [
                {"point": outcome.point, "tear": outcome.tear,
                 "failures": outcome.failures}
                for outcome in report.outcomes
            ],
        }
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n",
                                   encoding="utf-8")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
