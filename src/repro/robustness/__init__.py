"""The resilience layer: budgets, crash isolation, quarantine, resume.

The paper's pipeline is only a practical tool because one misbehaving
(instruction, compiler, backend) cell never takes down the whole
campaign — each cell is an independent experiment.  This package gives
the campaign engine that property:

* :mod:`repro.robustness.budgets` — wall-clock deadlines and fuel
  limits, so divergence is a first-class outcome instead of a hang;
* :mod:`repro.robustness.errors` — the :class:`CampaignError` taxonomy
  classifying explorer / compiler / simulator / solver / harness
  failures, plus the :func:`guard` wrapper that converts unexpected
  exceptions into classified crashes;
* :mod:`repro.robustness.quarantine` — crashed cells, after one retry
  with reduced budgets, land in a quarantine report section;
* :mod:`repro.robustness.checkpoint` — a JSONL journal of completed
  cells so an interrupted campaign resumes where it left off;
* :mod:`repro.robustness.supervise` — per-cell wall-clock supervision
  policy, respawn backoff and worker resource limits for the parallel
  engine;
* :mod:`repro.robustness.chaos` — the torn-run chaos harness:
  SIGKILL a live campaign at seeded durable-write points and prove the
  resumed report is byte-identical;
* :mod:`repro.robustness.faults` — test-only fault injection proving
  the engine degrades gracefully.
"""

from repro.robustness.budgets import Deadline
from repro.robustness.checkpoint import CampaignJournal, JournalReplay
from repro.robustness.errors import (
    BudgetExhausted,
    CampaignError,
    CompilerCrash,
    ExplorerCrash,
    HarnessCrash,
    SimulatorCrash,
    SolverCrash,
    WorkerCrash,
    WorkerResourceExceeded,
    classify_crash,
    guard,
    truncated_traceback,
)
from repro.robustness.faults import FaultPlan, inject_faults, maybe_inject
from repro.robustness.quarantine import Quarantine, QuarantineEntry

__all__ = [
    "BudgetExhausted",
    "CampaignError",
    "CampaignJournal",
    "CompilerCrash",
    "Deadline",
    "ExplorerCrash",
    "FaultPlan",
    "HarnessCrash",
    "JournalReplay",
    "Quarantine",
    "QuarantineEntry",
    "SimulatorCrash",
    "SolverCrash",
    "WorkerCrash",
    "WorkerResourceExceeded",
    "classify_crash",
    "guard",
    "inject_faults",
    "maybe_inject",
    "truncated_traceback",
]
