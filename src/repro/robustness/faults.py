"""Test-only fault injection at campaign pipeline stages.

The resilience engine is itself validated mutation-style: a
:class:`FaultPlan` arms a failure at a chosen stage (``explore``,
``solve``, ``compile``, ``simulate``, ``harness`` — or
``journal``/``store``/``triage``, the durable-write sites) for matching
cells, and the tests assert the campaign degrades gracefully — the cell
is quarantined, every other cell is unaffected, and interrupted runs
resume.  Production code paths call :func:`maybe_inject`, which is a
no-op (one empty-list check) unless a test armed a plan via
:func:`inject_faults`.
"""

from __future__ import annotations

import errno
import time
from contextlib import contextmanager
from dataclasses import dataclass

from repro.errors import InvalidMemoryAccess
from repro.robustness.errors import BudgetExhausted

#: Fault kinds: raise a generic exception, raise a raw memory fault,
#: busy-wait until the deadline trips (a simulated hang), burn CPU
#: until RLIMIT_CPU or the deadline trips (``spin``), raise
#: KeyboardInterrupt (a simulated ^C for checkpoint/resume tests),
#: kill the hosting process outright (a simulated segfault; only
#: meaningful inside a parallel worker — see repro.parallel), raise
#: MemoryError (``oom``, a simulated allocation failure under
#: RLIMIT_AS), or raise OSError EIO/ENOSPC (``io_error``/``enospc``,
#: armed at the journal/result-store write sites).
FAULT_KINDS = ("raise", "memory", "hang", "spin", "interrupt", "die",
               "oom", "io_error", "enospc")

#: Exit status of a "die" fault, distinguishable from a normal exit.
DIE_EXIT_CODE = 86


@dataclass(frozen=True)
class FaultPlan:
    """Arm one failure at a pipeline stage for matching cells."""

    stage: str
    kind: str = "raise"
    #: Match filters; None matches anything.
    instruction: str | None = None
    compiler: str | None = None
    message: str = "injected fault"
    #: Fire only this many times (None = every match).
    times: int | None = None

    def matches(self, stage, instruction, compiler) -> bool:
        if self.stage != stage:
            return False
        if self.instruction is not None and self.instruction != instruction:
            return False
        if self.compiler is not None and self.compiler != compiler:
            return False
        return True


_ACTIVE: list = []  # [FaultPlan, remaining_fires|None] pairs


@contextmanager
def inject_faults(*plans: FaultPlan):
    """Arm *plans* for the duration of the with-block (tests only)."""
    armed = [[plan, plan.times] for plan in plans]
    _ACTIVE.extend(armed)
    try:
        yield
    finally:
        for entry in armed:
            _ACTIVE.remove(entry)


def maybe_inject(stage: str, instruction: str | None = None,
                 compiler: str | None = None, deadline=None) -> None:
    """Fire any armed fault matching this pipeline point."""
    if not _ACTIVE:
        return
    for entry in _ACTIVE:
        plan, remaining = entry
        if remaining is not None and remaining <= 0:
            continue
        if not plan.matches(stage, instruction, compiler):
            continue
        if remaining is not None:
            entry[1] = remaining - 1
        _fire(plan, deadline)


def _fire(plan: FaultPlan, deadline) -> None:
    if plan.kind == "raise":
        raise RuntimeError(f"injected at {plan.stage}: {plan.message}")
    if plan.kind == "memory":
        raise InvalidMemoryAccess(0x0DEAD000, f"injected: {plan.message}")
    if plan.kind == "interrupt":
        raise KeyboardInterrupt(f"injected at {plan.stage}: {plan.message}")
    if plan.kind == "die":
        # A hard process death: no cleanup, no exception propagation —
        # the way a segfault or OOM kill takes out a worker.  Only the
        # parallel engine's process isolation can absorb this.
        import os

        os._exit(DIE_EXIT_CODE)
    if plan.kind == "oom":
        # A failed allocation, the in-process face of RLIMIT_AS: the
        # interpreter raises MemoryError instead of being killed, and
        # the taxonomy must classify it as resource exhaustion rather
        # than a generic crash.
        raise MemoryError(f"injected at {plan.stage}: {plan.message}")
    if plan.kind == "io_error":
        raise OSError(errno.EIO, f"injected at {plan.stage}: {plan.message}")
    if plan.kind == "enospc":
        raise OSError(errno.ENOSPC,
                      f"injected at {plan.stage}: {plan.message}")
    if plan.kind == "spin":
        # Like "hang", but burning CPU instead of sleeping: under
        # RLIMIT_CPU (--worker-cpu-seconds) the kernel delivers SIGXCPU
        # long before the wall-clock deadline; without the rlimit the
        # deadline still bounds it.
        if deadline is None or deadline.remaining() is None:
            raise BudgetExhausted(
                f"injected spin at {plan.stage} with no deadline to bound it"
            )
        while not deadline.expired:
            pass
        deadline.check(f"injected spin at {plan.stage}", scope="cell")
        raise BudgetExhausted(f"injected spin at {plan.stage}")
    if plan.kind == "hang":
        # A hang only terminates because a budget bounds it: burn the
        # clock until the deadline trips, then report exhaustion.  With
        # no deadline armed the hang would never return, which is
        # exactly what the budget layer exists to prevent — fail fast.
        if deadline is None or deadline.remaining() is None:
            raise BudgetExhausted(
                f"injected hang at {plan.stage} with no deadline to bound it"
            )
        while not deadline.expired:
            time.sleep(min(0.005, max(deadline.remaining(), 0.0001)))
        deadline.check(f"injected hang at {plan.stage}", scope="cell")
        raise BudgetExhausted(f"injected hang at {plan.stage}")
    raise ValueError(f"unknown fault kind {plan.kind!r}")
