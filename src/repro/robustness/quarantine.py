"""Quarantine: the campaign's record of cells that kept crashing.

A cell that crashes is retried once with reduced budgets; a second
crash lands it here.  The quarantine is part of the campaign result and
renders as its own report section listing instruction, compiler,
backend scope, pipeline stage, error class, and a truncated traceback —
enough to reproduce and triage without rerunning the campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.robustness.errors import CampaignError


@dataclass
class QuarantineEntry:
    """One quarantined (instruction, compiler) cell."""

    instruction: str
    kind: str
    compiler: str
    backend: str
    stage: str
    error_class: str
    message: str
    traceback: str = ""
    attempts: int = 2
    #: Fields from journal records written by newer code, preserved
    #: verbatim so ``to_dict``/``from_dict`` round-trips them instead of
    #: crashing or dropping them (forward compatibility; mirrors the
    #: additive-field policy of ComparisonResult records).
    extra: dict = field(default_factory=dict)

    @classmethod
    def from_error(cls, error: CampaignError, *, instruction: str, kind: str,
                   compiler: str, backend: str = "*",
                   attempts: int = 2) -> "QuarantineEntry":
        return cls(
            instruction=instruction,
            kind=kind,
            compiler=compiler,
            backend=backend,
            stage=error.stage,
            error_class=error.error_class,
            message=str(error),
            traceback=error.traceback,
            attempts=attempts,
        )

    def describe(self) -> str:
        return (
            f"{self.instruction} [{self.compiler}/{self.backend}] "
            f"stage={self.stage} error={self.error_class} "
            f"attempts={self.attempts}: {self.message}"
        )

    def to_dict(self) -> dict:
        data = dict(self.extra)
        data.update({
            "instruction": self.instruction,
            "kind": self.kind,
            "compiler": self.compiler,
            "backend": self.backend,
            "stage": self.stage,
            "error_class": self.error_class,
            "message": self.message,
            "traceback": self.traceback,
            "attempts": self.attempts,
        })
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "QuarantineEntry":
        known = {f.name for f in fields(cls)} - {"extra"}
        kwargs = {key: value for key, value in data.items() if key in known}
        extra = {key: value for key, value in data.items() if key not in known}
        return cls(**kwargs, extra=extra)


@dataclass
class Quarantine:
    """The collection of quarantined cells of one campaign run."""

    entries: list = field(default_factory=list)

    def add(self, entry: QuarantineEntry) -> None:
        self.entries.append(entry)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def by_error_class(self) -> dict:
        """error class name -> list of entries, for the report section."""
        groups: dict = {}
        for entry in self.entries:
            groups.setdefault(entry.error_class, []).append(entry)
        return groups
