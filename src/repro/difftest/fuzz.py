"""Random input generation: the baseline the paper improves on.

Related work tests VMs with random/fuzzed programs (CSmith-style
generation, byte-code fuzzing of the JVM, compiler fuzzing of
JavaScript engines — paper Section 6); the paper's contribution is that
*interpreter-guided* generation is exhaustive and unitary where random
generation is probabilistic.

This module implements the random baseline over the same substrate: a
:class:`RandomInputGenerator` draws frames (stack depth, value kinds,
integer/float values, object shapes) from a seeded RNG, executions are
traced exactly like concolic ones, and :func:`measure_path_coverage`
reports how many of the concolically known paths N random inputs
actually reach — the quantitative form of the paper's exhaustiveness
argument.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.concolic.explorer import ConcolicExplorer, ExplorationResult
from repro.concolic.solver.model import Kind, KindTag, Model, SolverContext
from repro.memory.layout import MAX_SMALL_INT, MIN_SMALL_INT

#: Values random integer inputs are drawn from: mostly small, with the
#: boundary values fuzzers know to include.
_INTERESTING_INTS = (
    0, 1, -1, 2, -2, 7, 100, 255, 256, -256,
    MAX_SMALL_INT, MIN_SMALL_INT, MAX_SMALL_INT - 1, MIN_SMALL_INT + 1,
)
_INTERESTING_FLOATS = (0.0, 1.0, -1.0, 0.5, 2.0, 1e10, -1e10, 1e300)


class RandomInputGenerator:
    """Draws random input models for one instruction."""

    def __init__(self, context: SolverContext, seed: int = 0xFEED):
        self.context = context
        self.rng = random.Random(seed)

    def _random_kind(self, depth: int = 0) -> Kind:
        roll = self.rng.random()
        if roll < 0.45:
            return Kind(KindTag.SMALL_INT, value=self._random_int())
        if roll < 0.60:
            return Kind(KindTag.FLOAT)
        if roll < 0.70:
            return Kind(
                self.rng.choice((KindTag.NIL, KindTag.TRUE, KindTag.FALSE))
            )
        class_index = self.rng.choice(self.context.default_object_classes)
        fixed = self.context.fixed_slot_counts.get(class_index, 0)
        if self.context.class_is_variable.get(class_index, False):
            num_slots = fixed + self.rng.randint(0, 6)
        else:
            num_slots = fixed
        return Kind(KindTag.OBJECT, class_index=class_index, num_slots=num_slots)

    def _random_int(self) -> int:
        if self.rng.random() < 0.7:
            return self.rng.choice(_INTERESTING_INTS)
        return self.rng.randint(MIN_SMALL_INT, MAX_SMALL_INT)

    def random_model(self, max_stack: int = 5, max_temps: int = 3) -> Model:
        """One random input frame as a solver-style model."""
        model = Model(context=self.context)
        stack_size = self.rng.randint(0, max_stack)
        temp_count = self.rng.randint(0, max_temps)
        model.int_values["stack_size"] = stack_size
        model.int_values["temp_count"] = temp_count
        names = (
            ["recv"]
            + [f"stack{d}" for d in range(stack_size)]
            + [f"temp{i}" for i in range(temp_count)]
        )
        for name in names:
            kind = self._random_kind()
            model.kinds[name] = kind
            if kind.tag == KindTag.FLOAT:
                model.float_values[name] = self.rng.choice(_INTERESTING_FLOATS)
            if kind.tag == KindTag.OBJECT and kind.num_slots:
                # Populate a couple of slots so slot-reading paths see
                # non-nil values sometimes.
                for index in range(min(kind.num_slots, 2)):
                    if self.rng.random() < 0.5:
                        model.kinds[f"{name}.slot{index}"] = Kind(
                            KindTag.SMALL_INT, value=self._random_int()
                        )
        return model


@dataclass
class CoverageReport:
    """Random-vs-concolic path coverage for one instruction."""

    instruction: str
    concolic_paths: int
    concolic_iterations: int
    random_tests: int
    covered_paths: int
    #: Signatures random testing reached that concolic exploration also
    #: recorded (coverage is measured against the concolic path set).
    new_signatures: int = 0

    @property
    def coverage(self) -> float:
        if not self.concolic_paths:
            return 1.0
        return self.covered_paths / self.concolic_paths


def measure_path_coverage(
    spec,
    random_tests: int = 100,
    seed: int = 0xFEED,
    exploration: ExplorationResult | None = None,
) -> CoverageReport:
    """How many concolically known paths do N random inputs reach?"""
    explorer = ConcolicExplorer(spec)
    if exploration is None:
        exploration = explorer.explore()
    known = {path.signature for path in exploration.paths}
    generator = RandomInputGenerator(explorer.context, seed=seed)
    seen: set = set()
    new = 0
    for _ in range(random_tests):
        model = generator.random_model()
        path = explorer.execute_with_model(model)
        if path.signature in known:
            seen.add(path.signature)
        else:
            new += 1
    return CoverageReport(
        instruction=spec.name,
        concolic_paths=len(known),
        concolic_iterations=exploration.iterations,
        random_tests=random_tests,
        covered_paths=len(seen),
        new_signatures=new,
    )
