"""Boundary-witness enrichment: extra inputs per concolic path.

One witness per path cannot distinguish operators that agree on that
witness: a compiled ``<`` mutated to ``<=`` behaves identically unless
some input sits exactly on the equality boundary — and because the
interpreter never *branches* on a comparison's result, no path
constraint ever pins that boundary (see
``tests/difftest/test_fault_injection.py`` for the escape).

This module derives additional witnesses for a path by augmenting its
path condition with *boundary probes* and re-solving:

* ``int_value_of(a) == int_value_of(b)`` for every pair of
  integer-constrained operands (kills boundary-adjacent comparison
  mutants);
* ``int_value_of(a) == probe`` for a handful of distinguished values
  (0, 1, -1) that are common algebraic fixpoints.

Every returned model still satisfies the original path condition, so
the interpreter follows the same path; the differential comparison then
runs on inputs where more mutants are observable.  This is an
*extension* beyond the paper, enabled via
``CampaignConfig(boundary_witnesses=True)``.
"""

from __future__ import annotations

from itertools import combinations

from repro.concolic.explorer import PathResult
from repro.concolic.solver import Model, SolverContext, solve
from repro.concolic.terms import (
    KIND_PREDICATES,
    Sort,
    Term,
    compare,
    oop_attribute,
    var,
)

#: Distinguished single-variable probe values.
PROBE_VALUES = (0, 1, -1)

#: Cap on extra witnesses per path (each costs a differential run).
MAX_BOUNDARY_WITNESSES = 4


def _positive_small_int_vars(path: PathResult) -> list[str]:
    """Variables the path constrains to be tagged integers."""
    names = []
    for constraint in path.constraints:
        term = constraint.term
        if (
            constraint.taken
            and term.op == "is_small_int"
            and term.args[0].is_var
        ):
            name = term.args[0].args[0]
            if name not in names:
                names.append(name)
    return names


def _int_value(name: str) -> Term:
    return oop_attribute("int_value_of", var(name, Sort.OOP))


def boundary_models(path: PathResult, context: SolverContext) -> list[Model]:
    """Extra witnesses for *path*, all satisfying its path condition."""
    literals = [constraint.literal for constraint in path.constraints]
    int_vars = _positive_small_int_vars(path)
    probes: list[Term] = []
    for left, right in combinations(int_vars, 2):
        probes.append(compare("eq", _int_value(left), _int_value(right)))
    for name in int_vars:
        for value in PROBE_VALUES:
            probes.append(compare("eq", _int_value(name), value))

    models: list[Model] = []
    seen = {repr(path.model.to_dict())}
    for probe in probes:
        if len(models) >= MAX_BOUNDARY_WITNESSES:
            break
        model = solve(literals + [probe], context)
        if model is None:
            continue
        key = repr(model.to_dict())
        if key in seen:
            continue
        # The augmented model must still satisfy the original path.
        if not model.satisfies(literals):
            continue
        seen.add(key)
        models.append(model)
    return models
