"""Path curation (paper Section 5.2).

"We semi-automatically curated the list of explored paths keeping only
those paths that do work in our prototype implementation ... they
either make our concolic execution to fail, they produce errors on the
constraint solver, or they require special initializations on the JIT
compiler we have not implemented."

In this reproduction the curation rules are mechanical:

* paths whose model does not satisfy their own constraints (solver
  incompleteness) are dropped;
* paths that exited through a send whose selector could not be resolved
  to an interned symbol are dropped (they would need send-site
  initialization the test JIT does not implement);
* exploration-diverged duplicates were already removed by the explorer.
"""

from __future__ import annotations

from repro import perf
from repro.concolic.explorer import PathResult
from repro.interpreter.exits import ExitCondition


def is_curated_in(path: PathResult) -> bool:
    """True when the differential tester can run this path."""
    literals = [constraint.literal for constraint in path.constraints]
    if not path.model.satisfies(literals):
        return False
    if path.exit.condition == ExitCondition.MESSAGE_SEND:
        selector = path.exit.selector or ""
        if selector.startswith("selector@"):
            return False
    return True


def curate_paths(paths) -> list[PathResult]:
    """Filter to the paths the prototype supports.

    Dropped paths are coverage silently lost to prototype limitations;
    the ``curation_dropped`` perf counter makes that loss observable in
    ``campaign --profile`` output instead of disappearing without trace.
    """
    paths = list(paths)
    curated = [path for path in paths if is_curated_in(path)]
    dropped = len(paths) - len(curated)
    if dropped:
        perf.incr("curation_dropped", dropped)
    return curated
