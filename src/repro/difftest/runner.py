"""Campaign driver: explore, curate, differentially test, aggregate.

Reproduces the paper's evaluation methodology (Section 5.1): four main
experiments — the native-method template compiler plus the three
byte-code compilers — with every test-case scenario executed on two
architectures (x86 and ARM32).

The concolic exploration of each instruction is performed once and its
paths are reused across compilers and back-ends, matching the paper's
note that "the results of the concolic exploration can be cached and
reused multiple times".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.bytecode.opcodes import testable_bytecodes
from repro.concolic.explorer import (
    BytecodeInstructionSpec,
    ConcolicExplorer,
    ExplorationResult,
    NativeMethodSpec,
)
from repro.difftest.curation import curate_paths
from repro.difftest.harness import ComparisonResult, DifferentialTester
from repro.interpreter.primitives import testable_primitives
from repro.jit.machine.arm32 import Arm32Backend
from repro.jit.machine.x86 import X86Backend
from repro.jit.native_templates import NativeMethodCompiler
from repro.jit.register_allocating import RegisterAllocatingCogit
from repro.jit.simple_stack import SimpleStackBasedCogit
from repro.jit.stack_to_register import StackToRegisterCogit

BYTECODE_COMPILERS = (
    SimpleStackBasedCogit,
    StackToRegisterCogit,
    RegisterAllocatingCogit,
)
BACKENDS = (X86Backend, Arm32Backend)


@dataclass
class InstructionTestResult:
    """All comparisons for one instruction on one compiler."""

    instruction: str
    kind: str
    compiler: str
    exploration: ExplorationResult
    curated_path_count: int = 0
    comparisons: list = field(default_factory=list)
    test_seconds: float = 0.0

    @property
    def differing_paths(self) -> int:
        """Paths that differ on at least one backend."""
        by_path: dict[int, bool] = {}
        for comparison in self.comparisons:
            key = id(comparison.path)
            by_path[key] = by_path.get(key, False) or comparison.is_difference
        return sum(1 for differs in by_path.values() if differs)

    def differences(self) -> list:
        return [c for c in self.comparisons if c.is_difference]


@dataclass
class CompilerReport:
    """One row of the paper's Table 2."""

    compiler: str
    tested_instructions: int = 0
    interpreter_paths: int = 0
    curated_paths: int = 0
    differing_paths: int = 0
    results: list = field(default_factory=list)

    @property
    def difference_percentage(self) -> float:
        if not self.curated_paths:
            return 0.0
        return 100.0 * self.differing_paths / self.curated_paths

    def row(self) -> tuple:
        return (
            self.compiler,
            self.tested_instructions,
            self.interpreter_paths,
            self.curated_paths,
            f"{self.differing_paths} ({self.difference_percentage:.2f}%)",
        )


@dataclass
class CampaignConfig:
    """Scope controls for a campaign run."""

    #: Limit instruction counts (None = all); used by tests/benchmarks.
    max_bytecodes: int | None = None
    max_natives: int | None = None
    backends: tuple = BACKENDS
    max_paths_per_instruction: int = 64
    max_iterations: int = 200
    #: Run extra boundary witnesses per path (extension beyond the
    #: paper; see repro.difftest.boundary).
    boundary_witnesses: bool = False


def explore_instruction(spec, config: CampaignConfig) -> ExplorationResult:
    explorer = ConcolicExplorer(
        spec,
        max_iterations=config.max_iterations,
        max_paths=config.max_paths_per_instruction,
    )
    return explorer.explore()


def test_instruction(
    spec,
    compiler_class,
    config: CampaignConfig | None = None,
    exploration: ExplorationResult | None = None,
) -> InstructionTestResult:
    """Explore (or reuse an exploration) and differentially test."""
    config = config or CampaignConfig()
    if exploration is None:
        exploration = explore_instruction(spec, config)
    curated = curate_paths(exploration.paths)
    result = InstructionTestResult(
        instruction=spec.name,
        kind=spec.kind,
        compiler=compiler_class.name,
        exploration=exploration,
        curated_path_count=len(curated),
    )
    start = time.perf_counter()
    for backend_class in config.backends:
        tester = DifferentialTester(spec, backend_class(), compiler_class)
        for path in curated:
            result.comparisons.append(tester.run_path(path))
            if config.boundary_witnesses:
                from repro.difftest.boundary import boundary_models

                for model in boundary_models(path, tester.context):
                    result.comparisons.append(tester.run_path(path, model))
    result.test_seconds = time.perf_counter() - start
    return result


def bytecode_specs(config: CampaignConfig) -> list:
    bytecodes = testable_bytecodes()
    if config.max_bytecodes is not None:
        bytecodes = bytecodes[: config.max_bytecodes]
    return [BytecodeInstructionSpec(bytecode) for bytecode in bytecodes]


def native_specs(config: CampaignConfig) -> list:
    natives = testable_primitives()
    if config.max_natives is not None:
        natives = natives[: config.max_natives]
    return [NativeMethodSpec(native) for native in natives]


def run_campaign(config: CampaignConfig | None = None) -> list[CompilerReport]:
    """The full four-experiment evaluation (paper Table 2).

    Returns one report per compiler: native methods first, then the
    three byte-code compilers, mirroring the paper's table rows.
    """
    config = config or CampaignConfig()
    reports: list[CompilerReport] = []

    natives = native_specs(config)
    native_explorations = {
        spec.name: explore_instruction(spec, config) for spec in natives
    }
    report = CompilerReport(compiler="Native Methods (primitives)")
    for spec in natives:
        result = test_instruction(
            spec, NativeMethodCompiler, config, native_explorations[spec.name]
        )
        _accumulate(report, result)
    reports.append(report)

    bytecodes = bytecode_specs(config)
    bytecode_explorations = {
        spec.name: explore_instruction(spec, config) for spec in bytecodes
    }
    for compiler_class in BYTECODE_COMPILERS:
        report = CompilerReport(compiler=compiler_class.name)
        for spec in bytecodes:
            result = test_instruction(
                spec, compiler_class, config, bytecode_explorations[spec.name]
            )
            _accumulate(report, result)
        reports.append(report)
    return reports


def run_sequence_campaign(
    config: CampaignConfig | None = None,
) -> list[CompilerReport]:
    """Extension experiment: the byte-code *sequence* corpus.

    Runs the curated interesting sequences plus the generated minimal
    producer/consumer pairs through the three byte-code compilers —
    the paper's future work (Section 7) as a campaign of its own.
    """
    from repro.concolic.sequences import (
        generate_pair_sequences,
        interesting_sequences,
    )

    config = config or CampaignConfig()
    specs = interesting_sequences() + generate_pair_sequences()
    explorations = {
        spec.name: explore_instruction(spec, config) for spec in specs
    }
    reports = []
    for compiler_class in BYTECODE_COMPILERS:
        report = CompilerReport(compiler=f"{compiler_class.name} (sequences)")
        for spec in specs:
            result = test_instruction(
                spec, compiler_class, config, explorations[spec.name]
            )
            _accumulate(report, result)
        reports.append(report)
    return reports


def _accumulate(report: CompilerReport, result: InstructionTestResult) -> None:
    report.tested_instructions += 1
    report.interpreter_paths += result.exploration.path_count
    report.curated_paths += result.curated_path_count
    report.differing_paths += result.differing_paths
    report.results.append(result)


def all_comparisons(reports) -> list[ComparisonResult]:
    return [
        comparison
        for report in reports
        for result in report.results
        for comparison in result.comparisons
    ]
