"""Campaign driver: explore, curate, differentially test, aggregate.

Reproduces the paper's evaluation methodology (Section 5.1): four main
experiments — the native-method template compiler plus the three
byte-code compilers — with every test-case scenario executed on two
architectures (x86 and ARM32).

The concolic exploration of each instruction is performed once and its
paths are reused across compilers and back-ends, matching the paper's
note that "the results of the concolic exploration can be cached and
reused multiple times".

The driver is fault tolerant: every (instruction, compiler) cell runs
behind the robustness layer's :func:`~repro.robustness.errors.guard`.
A crashing cell is retried once with reduced budgets, then quarantined
— recorded as a ``CRASHED`` comparison while the campaign continues.
With a journal attached, completed cells are checkpointed to JSONL and
``resume=True`` replays them, so an interrupted campaign (crash, ^C,
expired deadline) picks up where it left off with identical aggregate
counts.

Two execution engines share one canonical plan (:func:`campaign_rows`):
the in-process sequential engine below, and the process-pool engine in
:mod:`repro.parallel` (``jobs > 1``), which shards the plan by
instruction across OS worker processes and merges worker records back
into plan order — aggregate reports are byte-identical across ``-j``
values.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro import perf
from repro.bytecode.opcodes import testable_bytecodes
from repro.concolic.explorer import (
    BytecodeInstructionSpec,
    ConcolicExplorer,
    ExplorationCache,
    ExplorationResult,
    NativeMethodSpec,
)
from repro.difftest.curation import curate_paths
from repro.difftest.harness import ComparisonResult, DifferentialTester, Status
from repro.interpreter.primitives import testable_primitives
from repro.jit.machine.arm32 import Arm32Backend
from repro.jit.machine.x86 import X86Backend
from repro.jit.native_templates import NativeMethodCompiler
from repro.jit.register_allocating import RegisterAllocatingCogit
from repro.jit.simple_stack import SimpleStackBasedCogit
from repro.jit.stack_to_register import StackToRegisterCogit
from repro.robustness.budgets import Deadline
from repro.robustness.checkpoint import CampaignJournal, cell_key
from repro.robustness.errors import (
    BudgetExhausted,
    CampaignError,
    classify_crash,
    guard,
)
from repro.robustness.quarantine import Quarantine, QuarantineEntry

BYTECODE_COMPILERS = (
    SimpleStackBasedCogit,
    StackToRegisterCogit,
    RegisterAllocatingCogit,
)
BACKENDS = (X86Backend, Arm32Backend)


@dataclass
class InstructionTestResult:
    """All comparisons for one instruction on one compiler."""

    instruction: str
    kind: str
    compiler: str
    exploration: ExplorationResult
    curated_path_count: int = 0
    comparisons: list = field(default_factory=list)
    test_seconds: float = 0.0
    #: Reduced-budget retries the robustness layer spent on this cell
    #: (0 = clean first attempt); surfaced in the report summary so
    #: operators can cross-check flaky-confirmation counts.
    retries: int = 0

    @property
    def differing_paths(self) -> int:
        """Paths that differ on at least one backend."""
        by_path: dict[int, bool] = {}
        for comparison in self.comparisons:
            key = id(comparison.path)
            by_path[key] = by_path.get(key, False) or comparison.is_difference
        return sum(1 for differs in by_path.values() if differs)

    def differences(self) -> list:
        return [c for c in self.comparisons if c.is_difference]


@dataclass
class CompilerReport:
    """One row of the paper's Table 2."""

    compiler: str
    tested_instructions: int = 0
    interpreter_paths: int = 0
    curated_paths: int = 0
    differing_paths: int = 0
    results: list = field(default_factory=list)

    @property
    def difference_percentage(self) -> float:
        if not self.curated_paths:
            return 0.0
        return 100.0 * self.differing_paths / self.curated_paths

    def row(self) -> tuple:
        return (
            self.compiler,
            self.tested_instructions,
            self.interpreter_paths,
            self.curated_paths,
            f"{self.differing_paths} ({self.difference_percentage:.2f}%)",
        )


@dataclass
class CampaignConfig:
    """Scope and budget controls for a campaign run."""

    #: Limit instruction counts (None = all); used by tests/benchmarks.
    max_bytecodes: int | None = None
    max_natives: int | None = None
    #: Restrict the plan to these instruction names (empty = no filter).
    #: Applied after ``max_bytecodes``/``max_natives`` slicing; used to
    #: scope seeded-defect campaigns (CI triage smoke, acceptance runs)
    #: to the instructions that actually exhibit the defect.
    only: tuple = ()
    backends: tuple = BACKENDS
    max_paths_per_instruction: int = 64
    max_iterations: int = 200
    #: Run extra boundary witnesses per path (extension beyond the
    #: paper; see repro.difftest.boundary).
    boundary_witnesses: bool = False
    #: Hard fuel limit for each simulated machine execution; exceeding
    #: it is a DIVERGED outcome, not a hang.
    max_sim_steps: int = 20_000
    #: Wall-clock budget for the whole campaign (None = unbounded).
    deadline_seconds: float | None = None
    #: Per-cell wall-clock budget enforced by the parallel engine's
    #: supervisor (``--cell-timeout``): a worker whose current cell
    #: outlives it is SIGKILLed, the cell is quarantined as
    #: ``BudgetExhausted`` and the rest of its shard re-queued.  None
    #: derives a default from ``deadline_seconds`` (a quarter, floored
    #: at 1s); with neither set, supervision is off.  The sequential
    #: engine relies on cooperative deadline checks instead.
    cell_timeout_seconds: float | None = None
    #: Worker resource limits, applied via ``setrlimit`` in each forked
    #: child (``--worker-memory-mb`` -> RLIMIT_AS,
    #: ``--worker-cpu-seconds`` -> RLIMIT_CPU); breaches classify as
    #: ``WorkerResourceExceeded``, not a generic ``WorkerCrash``.
    worker_memory_mb: int | None = None
    worker_cpu_seconds: int | None = None
    #: Re-raise the first cell crash instead of quarantining (debugging).
    fail_fast: bool = False
    #: Budget multiplier applied for the single quarantine retry.
    retry_scale: float = 0.5
    #: Re-seed the historical R10/R11 fault-describer defect (paper
    #: fidelity benchmarks and fault-injection tests only).
    fault_describer_gaps: tuple = ()
    #: Active mutant ids from the semantic mutation registry
    #: (``campaign --mutant`` / ``repro mutate``; see docs/MUTATION.md).
    #: Part of the config so the mutated semantics cross the fork
    #: boundary with the pickled config and reach every engine: the
    #: sequential runner, pool workers, quarantine retries, triage
    #: trials and emitted reproducers all activate exactly this tuple.
    mutants: tuple = ()
    #: Collect cache/solver instrumentation (``campaign --profile``).
    #: Profiling observes counters and wall-clock only; reports stay
    #: byte-identical with it on or off.
    profile: bool = False
    #: Explore with the from-the-root loop instead of the prefix-sharing
    #: path tree (``campaign --raw-explorer``); ablation only — results
    #: are identical, the tree is just faster.
    raw_explorer: bool = False
    #: Stitched-corpus budget knobs (``campaign --stitch`` /
    #: ``repro stitch``; docs/STITCHING.md).  Part of the config so the
    #: corpus — a deterministic pure function of these four values — is
    #: re-derived identically by pool workers from the pickled config.
    stitch_fragments: int = 12
    stitch_max_methods: int = 24
    stitch_depth: int = 2
    stitch_paths_per_fragment: int = 8

    def reduced(self) -> "CampaignConfig":
        """The smaller-budget config used for the quarantine retry.

        Only the *budgets* shrink.  The semantic knobs — the seeded
        describer gaps and the active mutants — are threaded through
        explicitly: a quarantine retry must re-run the cell under the
        exact semantics the first attempt saw, or the retry would
        "fix" a seeded defect by accident (see
        tests/mutation/test_retry_semantics.py).
        """
        scale = self.retry_scale
        return replace(
            self,
            max_paths_per_instruction=max(
                1, int(self.max_paths_per_instruction * scale)
            ),
            max_iterations=max(1, int(self.max_iterations * scale)),
            max_sim_steps=max(256, int(self.max_sim_steps * scale)),
            fault_describer_gaps=self.fault_describer_gaps,
            mutants=self.mutants,
        )


def explore_instruction(spec, config: CampaignConfig,
                        deadline=None) -> ExplorationResult:
    explorer = ConcolicExplorer(
        spec,
        max_iterations=config.max_iterations,
        max_paths=config.max_paths_per_instruction,
        deadline=deadline,
    )
    if config.raw_explorer:
        return explorer.explore_raw()
    return explorer.explore()


def test_instruction(
    spec,
    compiler_class,
    config: CampaignConfig | None = None,
    exploration: ExplorationResult | None = None,
    deadline=None,
) -> InstructionTestResult:
    """Explore (or reuse an exploration) and differentially test."""
    config = config or CampaignConfig()
    if exploration is None:
        exploration = explore_instruction(spec, config, deadline)
    curated = curate_paths(exploration.paths)
    result = InstructionTestResult(
        instruction=spec.name,
        kind=spec.kind,
        compiler=compiler_class.name,
        exploration=exploration,
        curated_path_count=len(curated),
    )
    start = time.perf_counter()
    for backend_class in config.backends:
        with guard("harness"):
            tester = DifferentialTester(
                spec, backend_class(), compiler_class,
                max_sim_steps=config.max_sim_steps,
                deadline=deadline,
                fault_describer_gaps=config.fault_describer_gaps,
            )
        for path in curated:
            if deadline is not None:
                deadline.check(f"testing {spec.name}")
            result.comparisons.append(tester.run_path(path))
            if config.boundary_witnesses:
                from repro.difftest.boundary import boundary_models

                for model in boundary_models(path, tester.context):
                    result.comparisons.append(tester.run_path(path, model))
    result.test_seconds = time.perf_counter() - start
    perf.observe("test", result.test_seconds)
    perf.incr("test.cells")
    perf.incr("test.comparisons", len(result.comparisons))
    return result


def _scope_specs(specs: list, config: CampaignConfig) -> list:
    """Apply the ``only`` instruction-name filter, preserving order."""
    if not config.only:
        return specs
    wanted = set(config.only)
    return [spec for spec in specs if spec.name in wanted]


def bytecode_specs(config: CampaignConfig) -> list:
    bytecodes = testable_bytecodes()
    if config.max_bytecodes is not None:
        bytecodes = bytecodes[: config.max_bytecodes]
    return _scope_specs(
        [BytecodeInstructionSpec(bytecode) for bytecode in bytecodes], config
    )


def native_specs(config: CampaignConfig) -> list:
    natives = testable_primitives()
    if config.max_natives is not None:
        natives = natives[: config.max_natives]
    return _scope_specs(
        [NativeMethodSpec(native) for native in natives], config
    )


# ======================================================================
# the canonical campaign plan


@dataclass(frozen=True)
class ExperimentRow:
    """One report row of the campaign: a compiler over a spec list.

    The row sequence returned by :func:`campaign_rows` /
    :func:`sequence_campaign_rows` is the *canonical plan*: the
    sequential engine executes it in order, the parallel engine shards
    it and merges results back into exactly this order, and ``--resume``
    replays against it.  Determinism across ``-j`` values holds because
    every mode reports through the same plan.
    """

    experiment: str  # journal namespace: "main" | "sequences" | "stitched"
    label: str  # report row label
    compiler_class: type
    specs: tuple


def campaign_rows(config: CampaignConfig) -> list[ExperimentRow]:
    """The four main-experiment rows, in the paper's Table 2 order."""
    rows = [
        ExperimentRow("main", "Native Methods (primitives)",
                      NativeMethodCompiler, tuple(native_specs(config)))
    ]
    bytecodes = tuple(bytecode_specs(config))
    for compiler_class in BYTECODE_COMPILERS:
        rows.append(
            ExperimentRow("main", compiler_class.name, compiler_class,
                          bytecodes)
        )
    return rows


def sequence_campaign_rows(config: CampaignConfig) -> list[ExperimentRow]:
    """The extension experiment's rows: the sequence corpus per
    byte-code compiler."""
    from repro.concolic.sequences import (
        generate_pair_sequences,
        interesting_sequences,
    )

    specs = tuple(_scope_specs(
        interesting_sequences() + generate_pair_sequences(), config
    ))
    return [
        ExperimentRow("sequences", f"{compiler_class.name} (sequences)",
                      compiler_class, specs)
        for compiler_class in BYTECODE_COMPILERS
    ]


def stitched_campaign_rows(config: CampaignConfig) -> list[ExperimentRow]:
    """The template-stitched corpus per byte-code compiler.

    The corpus is derived (memoized per budget, mutants suspended) by
    :func:`repro.stitch.corpus.build_stitched_corpus` — a deterministic
    pure function of the config's ``stitch_*`` knobs, so parent and
    pool workers independently resolve identical rows.
    """
    from repro.stitch.corpus import StitchBudget, build_stitched_corpus

    specs, _report = build_stitched_corpus(StitchBudget.from_config(config))
    specs = tuple(_scope_specs(list(specs), config))
    return [
        ExperimentRow("stitched", f"{compiler_class.name} (stitched)",
                      compiler_class, specs)
        for compiler_class in BYTECODE_COMPILERS
    ]


# ======================================================================
# the fault-tolerant campaign engine


class CampaignResult(list):
    """The campaign reports plus the resilience layer's bookkeeping.

    A list subclass so every existing consumer of
    ``list[CompilerReport]`` (tables, figures, benchmarks) keeps
    working; the extra attributes carry the quarantine, resume and
    budget state of the run.
    """

    def __init__(self, reports=()):
        super().__init__(reports)
        self.quarantine = Quarantine()
        self.budget_exhausted = False
        self.resumed_cells = 0
        self.journal_path = None
        #: Worker processes used (1 = in-process sequential engine).
        self.workers = 1
        #: Exploration-cache effectiveness over the whole run.
        self.cache_hits = 0
        self.cache_misses = 0
        #: Cells served from the persistent cross-run result store
        #: (docs/INCREMENTAL.md), and the store's
        #: :class:`repro.incremental.CacheStats` (None = cache off).
        self.cached_cells = 0
        self.cache = None
        #: Perf snapshot dict when the run was profiled, else None.
        self.perf = None
        #: :class:`repro.triage.TriageReport` when the run was triaged
        #: (``campaign --triage``), else None.
        self.triage = None
        #: Supervision bookkeeping (parallel engine): cells preempted
        #: at --cell-timeout and replacement workers spawned.
        self.preempted_cells = 0
        self.respawned_workers = 0
        #: Unexpected (non-pipe-death) I/O errors contained on worker
        #: pipes; see ``pool.unexpected_io_errors``.
        self.unexpected_io_errors = 0
        #: :class:`repro.robustness.checkpoint.JournalReplay` stats of
        #: the --resume replay, else None (no journal / fresh run).
        self.journal_replay = None


@dataclass
class JournaledExploration:
    """Exploration counters rebuilt from a journal record."""

    instruction: str
    kind: str
    path_count: int
    elapsed_seconds: float = 0.0


@dataclass
class ResumedCellResult:
    """An :class:`InstructionTestResult` stand-in replayed from the
    journal: same counters and comparison verdicts, no live paths."""

    instruction: str
    kind: str
    compiler: str
    exploration: JournaledExploration
    curated_path_count: int
    comparisons: list
    test_seconds: float
    differing_path_count: int
    retries: int = 0

    @property
    def differing_paths(self) -> int:
        return self.differing_path_count

    def differences(self) -> list:
        return [c for c in self.comparisons if c.is_difference]


class _CampaignContext:
    """Shared mutable state of one campaign run."""

    def __init__(self, config: CampaignConfig, journal_path=None,
                 resume: bool = False, cached=None, store=None,
                 fingerprints=None):
        self.config = config
        self.deadline = Deadline(config.deadline_seconds)
        self.quarantine = Quarantine()
        self.explorations = ExplorationCache()
        self.resume = resume
        self.journal = CampaignJournal(journal_path) if journal_path else None
        if self.journal is not None and not resume:
            # A fresh (non-resuming) run must not append to stale state.
            self.journal.path.unlink(missing_ok=True)
        self.completed = (
            self.journal.load() if (self.journal is not None and resume) else {}
        )
        self.resumed_cells = 0
        self.budget_exhausted = False
        #: Persistent result-store state (docs/INCREMENTAL.md): records
        #: already served by fingerprint, the store for write-back, and
        #: the plan's key -> fingerprint map.
        self.cached = cached or {}
        self.store = store
        self.fingerprints = fingerprints or {}
        self.cached_cells = 0


def _backend_scope(config: CampaignConfig) -> str:
    return "+".join(
        getattr(backend, "name", str(backend)) for backend in config.backends
    )


def execute_cell(config: CampaignConfig, deadline, spec, compiler_class,
                 explorations: ExplorationCache):
    """Run one cell with crash isolation: (result, None) on success,
    (None, CampaignError) after the reduced-budget retry also failed.

    This is the cell executor shared by both engines: the sequential
    runner calls it in the main process, a parallel worker calls it
    inside its own OS process.  A campaign-scoped
    :class:`BudgetExhausted` (the shared deadline expiring) always
    propagates — stopping the run is the caller's decision.

    ``config.mutants`` is activated around the whole cell — both the
    full-budget attempt and the reduced-budget quarantine retry — so
    every execution path sees the same (possibly mutated) semantics
    regardless of which engine called in.  Activation is
    reference-counted (:mod:`repro.mutation.registry`), so a caller
    that already holds the mutants active (a pool worker forked under
    them, a triage pass) nests safely.
    """
    # Local import: repro.mutation's operator modules patch the same
    # interpreter/jit classes this module imports, and its recall
    # driver imports this module — a top-level import would cycle.
    from repro.mutation import activated

    with activated(config.mutants):
        return _execute_cell_attempts(config, deadline, spec,
                                      compiler_class, explorations)


def _execute_cell_attempts(config: CampaignConfig, deadline, spec,
                           compiler_class, explorations: ExplorationCache):
    error = None
    for attempt, cfg in enumerate((config, config.reduced())):
        deadline.check(f"cell {spec.name}/{compiler_class.name}")
        try:
            exploration = explorations.get(spec)
            if exploration is None:
                with guard("explorer"):
                    exploration = explore_instruction(spec, cfg, deadline)
                if attempt == 0:
                    # Only full-budget explorations enter the shared
                    # cache; retries keep their reduced paths private.
                    explorations.put(spec, exploration)
            result = test_instruction(
                spec, compiler_class, cfg, exploration, deadline
            )
            result.retries = attempt
            return result, None
        except BudgetExhausted as exc:
            if exc.scope == "campaign":
                raise
            error = exc
        except CampaignError as exc:
            error = exc
        except Exception as exc:  # pragma: no cover - guards net these
            error = classify_crash(exc, "harness")
        if config.fail_fast:
            raise error
    return None, error


def _crashed_result(spec, compiler_class, config,
                    error: CampaignError) -> InstructionTestResult:
    """The visible record of a quarantined cell: one CRASHED comparison."""
    result = InstructionTestResult(
        instruction=spec.name,
        kind=spec.kind,
        compiler=compiler_class.name,
        exploration=ExplorationResult(spec.name, spec.kind),
        retries=1,  # the reduced-budget retry ran and also failed
    )
    result.comparisons.append(
        ComparisonResult(
            instruction=spec.name,
            kind=spec.kind,
            compiler=compiler_class.name,
            backend=_backend_scope(config),
            status=Status.CRASHED,
            difference_kind=error.error_class,
            detail=str(error),
        )
    )
    return result


def _serialize_cell(key: str, result, quarantine_entry=None) -> dict:
    return {
        "key": key,
        "instruction": result.instruction,
        "kind": result.kind,
        "compiler": result.compiler,
        "interpreter_paths": result.exploration.path_count,
        "curated_paths": result.curated_path_count,
        "differing_paths": result.differing_paths,
        "test_seconds": result.test_seconds,
        "retries": getattr(result, "retries", 0),
        "comparisons": [
            comparison.to_record() for comparison in result.comparisons
        ],
        "quarantined": (
            quarantine_entry.to_dict() if quarantine_entry is not None else None
        ),
    }


def _rebuild_cell(record: dict) -> ResumedCellResult:
    comparisons = [
        ComparisonResult.from_record(
            entry,
            instruction=record["instruction"],
            kind=record["kind"],
            compiler=record["compiler"],
        )
        for entry in record["comparisons"]
    ]
    return ResumedCellResult(
        instruction=record["instruction"],
        kind=record["kind"],
        compiler=record["compiler"],
        exploration=JournaledExploration(
            instruction=record["instruction"],
            kind=record["kind"],
            path_count=record["interpreter_paths"],
        ),
        curated_path_count=record["curated_paths"],
        comparisons=comparisons,
        test_seconds=record.get("test_seconds", 0.0),
        differing_path_count=record["differing_paths"],
        retries=record.get("retries", 0),
    )


def _run_experiment(ctx: _CampaignContext, row: ExperimentRow) -> CompilerReport:
    """One report row, cell by cell, with checkpointing and quarantine."""
    compiler_class = row.compiler_class
    report = CompilerReport(compiler=row.label)
    for spec in row.specs:
        if ctx.budget_exhausted:
            break
        key = cell_key(row.experiment, compiler_class.name, spec.kind,
                       spec.name)
        record = ctx.completed.get(key)
        if record is not None:
            _accumulate(report, _rebuild_cell(record))
            ctx.resumed_cells += 1
            if record.get("quarantined"):
                ctx.quarantine.add(
                    QuarantineEntry.from_dict(record["quarantined"])
                )
            continue
        cached = ctx.cached.get(key)
        if cached is not None:
            # Served from the persistent result store: rebuilt by the
            # same machinery as a journal-resumed cell, so aggregate
            # reports are byte-identical to a cold run.
            _accumulate(report, _rebuild_cell(cached))
            ctx.cached_cells += 1
            continue
        try:
            result, error = execute_cell(ctx.config, ctx.deadline, spec,
                                         compiler_class, ctx.explorations)
        except BudgetExhausted as exc:
            if exc.scope == "campaign":
                # Campaign deadline expired: stop cleanly; the journal
                # allows this run to be resumed.
                ctx.budget_exhausted = True
                break
            raise
        entry = None
        if error is not None:
            entry = QuarantineEntry.from_error(
                error,
                instruction=spec.name,
                kind=spec.kind,
                compiler=compiler_class.name,
                backend=_backend_scope(ctx.config),
            )
            ctx.quarantine.add(entry)
            result = _crashed_result(spec, compiler_class, ctx.config, error)
        _accumulate(report, result)
        record = _serialize_cell(key, result, entry)
        if ctx.journal is not None:
            ctx.journal.append(record)
        if (ctx.store is not None and error is None
                and getattr(result, "retries", 0) == 0
                and not getattr(result.exploration, "budget_exhausted",
                                False)):
            # Only clean first-attempt cells with a complete exploration
            # enter the cross-run store; quarantines, retried cells and
            # budget-truncated explorations always re-run.
            fingerprint = ctx.fingerprints.get(key)
            if fingerprint:
                ctx.store.put(fingerprint, record)
    return report


def _finish(result: CampaignResult, ctx: _CampaignContext,
            journal_path) -> CampaignResult:
    result.quarantine = ctx.quarantine
    result.budget_exhausted = ctx.budget_exhausted
    result.resumed_cells = ctx.resumed_cells
    result.cached_cells = ctx.cached_cells
    result.journal_path = journal_path
    result.cache_hits = ctx.explorations.hits
    result.cache_misses = ctx.explorations.misses
    if ctx.journal is not None and ctx.resume:
        result.journal_replay = ctx.journal.replay
    return result


def _run_rows(config: CampaignConfig, rows: list[ExperimentRow], *,
              journal_path, resume: bool, jobs: int,
              triage=None, cache_dir=None) -> CampaignResult:
    """Dispatch a canonical plan to the sequential or parallel engine.

    With *cache_dir* set, the persistent result store is consulted
    *before* engine dispatch: every plan cell is fingerprinted
    (:mod:`repro.incremental.fingerprint`) and hits are injected as
    pre-completed records into whichever engine runs — a fully-warm
    parallel campaign therefore forks zero workers.
    """
    if config.profile:
        perf.enable()
    store = None
    fingerprints: dict = {}
    cached_records: dict = {}
    if cache_dir:
        from repro.incremental import ResultStore, plan_fingerprints

        store = ResultStore(str(cache_dir))
        store.load()
        fingerprints = plan_fingerprints(rows, config)
        for key, fingerprint in fingerprints.items():
            cached = store.get(fingerprint, key)
            if cached is not None:
                cached_records[key] = cached
    if jobs is None or jobs == 1:
        try:
            ctx = _CampaignContext(config, journal_path, resume,
                                   cached=cached_records, store=store,
                                   fingerprints=fingerprints)
            result = CampaignResult()
            for row in rows:
                result.append(_run_experiment(ctx, row))
            result = _finish(result, ctx, journal_path)
            if config.profile:
                result.perf = _capture_perf(result)
        finally:
            if config.profile:
                perf.disable()
    else:
        from repro.parallel.pool import run_parallel_rows

        try:
            result = run_parallel_rows(config, rows, jobs=jobs,
                                       journal_path=journal_path,
                                       resume=resume, cached=cached_records,
                                       fingerprints=fingerprints,
                                       cache_dir=cache_dir)
            if config.profile:
                # Cache lookups happen in the parent; fold its counters
                # into the workers' merged snapshot.
                result.perf = perf.merge_snapshots(
                    [result.perf or {}, perf.snapshot() or {}]
                )
        finally:
            if config.profile:
                perf.disable()
    if store is not None:
        result.cache = store.stats
    if triage is not None:
        # Triage always runs in the parent process, over the serialized
        # cell records both engines produce, so confirmation/shrinking
        # are engine-independent and byte-identical across -j values.
        from repro.triage import run_triage

        result.triage = run_triage(
            result, config, triage, journal_path=journal_path, resume=resume
        )
    return result


def _capture_perf(result: CampaignResult) -> dict:
    """Fold run-wide cache accounting into the recorder and snapshot it."""
    from repro.concolic.solver.incremental import record_solver_gauges

    perf.incr("explore.cache_hits", result.cache_hits)
    perf.incr("explore.cache_misses", result.cache_misses)
    record_solver_gauges()
    return perf.snapshot()


def run_campaign(config: CampaignConfig | None = None, *,
                 journal_path=None, resume: bool = False,
                 jobs: int = 1, triage=None,
                 cache_dir=None) -> CampaignResult:
    """The full four-experiment evaluation (paper Table 2).

    Returns one report per compiler: native methods first, then the
    three byte-code compilers, mirroring the paper's table rows.  With
    ``journal_path`` set, completed cells are checkpointed to JSONL;
    ``resume=True`` replays them instead of re-running.  ``jobs > 1``
    shards the cell grid across that many worker processes
    (``jobs=0`` = one per CPU); aggregate reports are byte-identical
    to a sequential run of the same config.  ``triage`` takes a
    :class:`repro.triage.TriageConfig` to confirm/shrink/dedup the
    run's divergences and emit standalone reproducers
    (``result.triage`` carries the :class:`~repro.triage.TriageReport`).
    ``cache_dir`` attaches the persistent cross-run result store
    (docs/INCREMENTAL.md): semantically-unchanged cells are served from
    it instead of re-run, and ``result.cache`` carries the
    :class:`~repro.incremental.CacheStats`.
    """
    config = config or CampaignConfig()
    return _run_rows(config, campaign_rows(config),
                     journal_path=journal_path, resume=resume, jobs=jobs,
                     triage=triage, cache_dir=cache_dir)


def run_sequence_campaign(
    config: CampaignConfig | None = None, *,
    journal_path=None, resume: bool = False, jobs: int = 1, triage=None,
    cache_dir=None,
) -> CampaignResult:
    """Extension experiment: the byte-code *sequence* corpus.

    Runs the curated interesting sequences plus the generated minimal
    producer/consumer pairs through the three byte-code compilers —
    the paper's future work (Section 7) as a campaign of its own.
    """
    config = config or CampaignConfig()
    return _run_rows(config, sequence_campaign_rows(config),
                     journal_path=journal_path, resume=resume, jobs=jobs,
                     triage=triage, cache_dir=cache_dir)


def run_stitched_campaign(
    config: CampaignConfig | None = None, *,
    journal_path=None, resume: bool = False, jobs: int = 1, triage=None,
    cache_dir=None,
) -> CampaignResult:
    """Extension experiment: the template-stitched method corpus.

    Runs whole-method byte-code tests stitched from
    constraint-compatible fragment paths (docs/STITCHING.md) through
    the three byte-code compilers, with the same sharding, journaling
    and triage semantics as the other campaigns.
    """
    config = config or CampaignConfig()
    return _run_rows(config, stitched_campaign_rows(config),
                     journal_path=journal_path, resume=resume, jobs=jobs,
                     triage=triage, cache_dir=cache_dir)


def _accumulate(report: CompilerReport, result: InstructionTestResult) -> None:
    report.tested_instructions += 1
    report.interpreter_paths += result.exploration.path_count
    report.curated_paths += result.curated_path_count
    report.differing_paths += result.differing_paths
    report.results.append(result)


def all_comparisons(reports) -> list[ComparisonResult]:
    return [
        comparison
        for report in reports
        for result in report.results
        for comparison in result.comparisons
    ]
