"""Report assembly: the paper's tables and figures as data + text.

Regenerates, from campaign results:

* **Table 2** — per-compiler tested instructions / interpreter paths /
  curated paths / differences;
* **Table 3** — defect causes per family;
* **Figure 5** — paths-per-instruction distributions per kind;
* **Figures 6/7** — concolic-exploration and test-execution timings.

Formatting helpers render the same rows the paper prints so the
benchmark harness output is directly comparable.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.difftest.defects import DefectCategory, category_summary, group_causes
from repro.difftest.runner import CompilerReport, all_comparisons


# ----------------------------------------------------------------------
# Table 2


def table2(reports: list[CompilerReport]) -> list[tuple]:
    """Rows of Table 2 plus the totals row."""
    rows = [report.row() for report in reports]
    total_instructions = sum(r.tested_instructions for r in reports)
    total_paths = sum(r.interpreter_paths for r in reports)
    total_curated = sum(r.curated_paths for r in reports)
    total_diff = sum(r.differing_paths for r in reports)
    percentage = 100.0 * total_diff / total_curated if total_curated else 0.0
    rows.append(
        (
            "Total",
            total_instructions,
            total_paths,
            total_curated,
            f"{total_diff} ({percentage:.2f}%)",
        )
    )
    return rows


def format_table2(reports: list[CompilerReport]) -> str:
    header = (
        f"{'Compiler':36s} {'#Instr':>7s} {'#Paths':>7s} "
        f"{'#Curated':>9s} {'#Differences':>16s}"
    )
    lines = [header, "-" * len(header)]
    for name, instructions, paths, curated, differences in table2(reports):
        lines.append(
            f"{name:36s} {instructions:7d} {paths:7d} {curated:9d} "
            f"{differences:>16s}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Table 3

#: Fixed presentation order matching the paper.
TABLE3_ORDER = (
    DefectCategory.MISSING_INTERPRETER_TYPE_CHECK,
    DefectCategory.MISSING_COMPILED_TYPE_CHECK,
    DefectCategory.OPTIMISATION_DIFFERENCE,
    DefectCategory.BEHAVIOURAL_DIFFERENCE,
    DefectCategory.MISSING_FUNCTIONALITY,
    DefectCategory.SIMULATION_ERROR,
    DefectCategory.UNCLASSIFIED,
)


def table3(reports: list[CompilerReport]) -> list[tuple]:
    summary = category_summary(all_comparisons(reports))
    rows = []
    for category in TABLE3_ORDER:
        count = summary.get(category, 0)
        if count or category != DefectCategory.UNCLASSIFIED:
            rows.append((category.value, count))
    rows.append(("Total", sum(count for _, count in rows)))
    return rows


def format_table3(reports: list[CompilerReport]) -> str:
    header = f"{'Family':36s} {'#Cases':>7s}"
    lines = [header, "-" * len(header)]
    for family, count in table3(reports):
        lines.append(f"{family:36s} {count:7d}")
    return "\n".join(lines)


def cause_listing(reports: list[CompilerReport]) -> str:
    """Every distinct cause with its path count — the defect inventory."""
    causes = group_causes(all_comparisons(reports))
    lines = []
    for defect in sorted(causes, key=lambda d: (d.category.value, d.cause)):
        lines.append(
            f"  [{defect.category.value}] {defect.cause} "
            f"({len(causes[defect])} differing executions)"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figure 5: paths per instruction


@dataclass
class Distribution:
    """Summary statistics of a per-instruction series."""

    label: str
    values: list = field(default_factory=list)

    @property
    def mean(self) -> float:
        return statistics.mean(self.values) if self.values else 0.0

    @property
    def median(self) -> float:
        return statistics.median(self.values) if self.values else 0.0

    @property
    def minimum(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def maximum(self) -> float:
        return max(self.values) if self.values else 0.0

    def row(self) -> str:
        return (
            f"{self.label:14s} n={len(self.values):4d} "
            f"min={self.minimum:8.2f} median={self.median:8.2f} "
            f"mean={self.mean:8.2f} max={self.maximum:8.2f}"
        )


def paths_per_instruction(explorations) -> dict[str, Distribution]:
    """Figure 5 data: path-count distribution per instruction kind."""
    by_kind: dict[str, Distribution] = {}
    for exploration in explorations:
        dist = by_kind.setdefault(
            exploration.kind, Distribution(exploration.kind)
        )
        dist.values.append(exploration.path_count)
    return by_kind


def exploration_times(explorations) -> dict[str, Distribution]:
    """Figure 6 data: concolic exploration seconds per kind."""
    by_kind: dict[str, Distribution] = {}
    for exploration in explorations:
        dist = by_kind.setdefault(
            exploration.kind, Distribution(exploration.kind)
        )
        dist.values.append(exploration.elapsed_seconds)
    return by_kind


def test_times(reports: list[CompilerReport]) -> dict[str, Distribution]:
    """Figure 7 data: per-instruction differential test seconds, by
    compiler."""
    by_compiler: dict[str, Distribution] = {}
    for report in reports:
        dist = by_compiler.setdefault(
            report.compiler, Distribution(report.compiler)
        )
        for result in report.results:
            dist.values.append(result.test_seconds)
    return by_compiler


def format_distributions(title: str, distributions: dict) -> str:
    lines = [title]
    for label in sorted(distributions):
        lines.append("  " + distributions[label].row())
    return "\n".join(lines)


# ----------------------------------------------------------------------
# retry summary (robustness extension)


def retried_cells(reports) -> list[tuple]:
    """``(instruction, compiler, retries)`` for every retried cell.

    Retries come from the robustness layer's reduced-budget re-attempt;
    a retried-but-succeeded cell is easy to miss in aggregate counts,
    yet it is exactly where flaky triage confirmations come from —
    operators cross-check these numbers against the Causes section's
    ``flaky(k_of_n)`` labels (see docs/TRIAGE.md).
    """
    rows = []
    for report in reports:
        for result in report.results:
            retries = getattr(result, "retries", 0)
            if retries:
                rows.append((result.instruction, result.compiler, retries))
    return rows


def format_retries(reports) -> str:
    """Per-cell retry section; empty string when nothing was retried."""
    rows = retried_cells(reports)
    if not rows:
        return ""
    total = sum(retries for _instr, _compiler, retries in rows)
    lines = [
        f"Retried cells: {len(rows)} ({total} reduced-budget retries)"
    ]
    for instruction, compiler, retries in rows:
        lines.append(f"  {instruction} [{compiler}] retries={retries}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# quarantine report (robustness extension)


def format_quarantine(quarantine) -> str:
    """The campaign's quarantine section: crashed cells by error class.

    Empty string when nothing was quarantined, so callers can print the
    result unconditionally.
    """
    if not quarantine:
        return ""
    lines = [f"Quarantined cells: {len(quarantine)}"]
    for error_class, entries in sorted(quarantine.by_error_class().items()):
        lines.append(f"  {error_class} ({len(entries)}):")
        for entry in entries:
            lines.append(f"    {entry.describe()}")
            for tb_line in entry.traceback.splitlines()[-3:]:
                lines.append(f"      | {tb_line}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# resilience report (supervision + replay health)


def format_resilience(result) -> str:
    """Campaign resilience section: supervision events and replay health.

    Each fact prints only when it actually happened (a clean run stays
    byte-identical to one from before supervision existed), so callers
    can print the result unconditionally.  Lines are prefixed
    ``resilience:`` for CI-side filtering (see docs/RESILIENCE.md).
    """
    lines = []
    preempted = getattr(result, "preempted_cells", 0)
    respawned = getattr(result, "respawned_workers", 0)
    if preempted or respawned:
        lines.append(
            f"resilience: {preempted} cell(s) preempted by --cell-timeout; "
            f"{respawned} worker(s) respawned"
        )
    replay = getattr(result, "journal_replay", None)
    if replay is not None and (replay.torn_lines or replay.skipped_lines):
        lines.append(
            f"resilience: journal replay skipped {replay.torn_lines} "
            f"torn and {replay.skipped_lines} foreign line(s) "
            f"({replay.records} records replayed)"
        )
    pipe_errors = getattr(result, "unexpected_io_errors", 0)
    if pipe_errors:
        lines.append(
            f"resilience: {pipe_errors} unexpected worker-pipe I/O "
            f"error(s) tolerated (see stderr)"
        )
    return "\n".join(lines)
