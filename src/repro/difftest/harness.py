"""The differential execution harness.

One :class:`DifferentialTester` owns a VM world (object memory, symbol
table, interpreter, concolic explorer artifacts) plus, per back-end, a
code cache, trampoline table (with the runtime service routines
registered) and CPU simulator.

For each concolic path the harness:

1. materializes the path's solver model into concrete VM state;
2. runs the interpreter on it and snapshots the observable effects;
3. rolls the heap back, compiles the instruction (input operand stack
   compiled in as pushed literals, per paper Section 4.2), sets up the
   machine frame per the compiler's convention — receiver/temps in the
   frame record for byte-codes, receiver+arguments in registers for
   native methods — and runs the simulator from the same heap state;
4. compares exits, values and heap effects.

Because both executions start from the *same* heap snapshot and
allocate deterministically, freshly allocated results land at identical
addresses and raw oop comparison is exact.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.bytecode.methods import SymbolTable
from repro.concolic.explorer import (
    BytecodeInstructionSpec,
    NativeMethodSpec,
    PathResult,
)
from repro.concolic.materialize import Materializer
from repro.concolic.symbolic_memory import SymbolicObjectMemory
from repro.concolic.values import oop_concrete
from repro.errors import (
    CompilerError,
    NotImplementedInCompiler,
    SimulationError,
)
from repro.interpreter.exits import ExitCondition, ExitResult
from repro.interpreter.interpreter import Interpreter
from repro.jit.compiler import (
    CompilationUnit,
    NATIVE_FAILURE_MARKER,
    pc_marker,
)
from repro.jit.machine.codecache import CodeCache
from repro.jit.machine.simulator import (
    END_SENTINEL,
    MachineOutcome,
    MachineSimulator,
    OutcomeKind,
    STACK_TOP,
    TrampolineTable,
)
from repro.memory.bootstrap import bootstrap_memory
from repro.memory.layout import WORD_SIZE
from repro.robustness.errors import BudgetExhausted, guard
from repro.robustness.faults import maybe_inject


class Status(enum.Enum):
    """Verdict of one path's differential comparison."""

    MATCH = "match"
    DIFFERENCE = "difference"
    #: Invalid frame / invalid memory paths: expected failures the test
    #: runner does not compare (paper Section 3.4).
    EXPECTED_FAILURE = "expected_failure"
    #: Paths our prototype cannot run (compile limitations) — the
    #: paper's curation step.
    CURATED = "curated"
    #: The pipeline itself crashed on this cell (classified by the
    #: robustness layer); not a behavioural difference.
    CRASHED = "crashed"


@dataclass
class ComparisonResult:
    """The outcome of comparing one path on one compiler/backend."""

    instruction: str
    kind: str  # "bytecode" | "native"
    compiler: str
    backend: str
    status: Status
    #: What differed: exit_mismatch | output_mismatch |
    #: heap_effect_mismatch | machine_fault | compile_missing |
    #: simulation_error
    difference_kind: str | None = None
    interpreter_exit: ExitResult | None = None
    machine_outcome: MachineOutcome | None = None
    detail: str = ""
    path: PathResult | None = None
    #: Operand shape replayed from a journal/worker record when the
    #: live ``path`` is gone; read via :meth:`operand_shape`.
    _operand_shape: str | None = None
    #: Path-constraint signature replayed from a record when the live
    #: ``path`` is gone; read via :meth:`path_signature`.
    _path_signature: tuple | None = None

    @property
    def is_difference(self) -> bool:
        return self.status == Status.DIFFERENCE

    def describe(self) -> str:
        parts = [
            f"{self.instruction} [{self.compiler}/{self.backend}]",
            self.status.value,
        ]
        if self.difference_kind:
            parts.append(self.difference_kind)
        if self.detail:
            parts.append(self.detail)
        return " ".join(parts)

    # ------------------------------------------------------------------
    # journal / worker-message serialization

    def operand_shape(self) -> str:
        """Coarse operand-type signature of the path (int vs float).

        Survives serialization: computed from the live path when we
        have one, replayed from the record otherwise (defect
        classification keys optimisation differences on it)."""
        if self.path is None:
            return self._operand_shape or "unknown"
        has_float = any(
            str(c).startswith("is_float") for c in self.path.constraints
        )
        if has_float:
            return "float"
        has_int = any(
            str(c).startswith("is_small_int") for c in self.path.constraints
        )
        if has_int:
            return "int"
        return "generic"

    def path_signature(self) -> tuple:
        """The path's constraint-key signature: ``((term, taken), ...)``.

        Matches :attr:`repro.concolic.explorer.PathResult.signature`, so
        a triage pass in another process (or a later ``--resume`` run)
        can re-explore the instruction and locate this exact path again.
        Empty when neither a live path nor a replayed record carries one.
        """
        if self.path is not None:
            return tuple(
                (str(c.term), bool(c.taken)) for c in self.path.constraints
            )
        return self._path_signature or ()

    def to_record(self) -> dict:
        """The journaled verdict: everything the aggregate reports —
        including defect classification — need, nothing process-local
        (no live paths, heaps or simulators).  The exit condition,
        outcome kind and operand shape are exactly the facts
        ``repro.difftest.defects.classify`` dispatches on; dropping
        them would silently demote differences to *unclassified* after
        a worker-pipe or journal round-trip.  The path signature is the
        triage candidate payload: it lets the parent process relocate
        the failing path without shipping live heaps over the pipe."""
        return {
            "backend": self.backend,
            "status": self.status.value,
            "difference_kind": self.difference_kind,
            "detail": self.detail,
            "interpreter_condition": (
                None if self.interpreter_exit is None
                else self.interpreter_exit.condition.value
            ),
            "outcome_kind": (
                None if self.machine_outcome is None
                else self.machine_outcome.kind.value
            ),
            "operand_shape": self.operand_shape(),
            "path_signature": [
                [term, taken] for term, taken in self.path_signature()
            ],
        }

    @classmethod
    def from_record(cls, record: dict, *, instruction: str, kind: str,
                    compiler: str) -> "ComparisonResult":
        condition = record.get("interpreter_condition")
        outcome_kind = record.get("outcome_kind")
        return cls(
            instruction=instruction,
            kind=kind,
            compiler=compiler,
            backend=record["backend"],
            status=Status(record["status"]),
            difference_kind=record.get("difference_kind"),
            detail=record.get("detail", ""),
            interpreter_exit=(
                None if condition is None
                else ExitResult(condition=ExitCondition(condition))
            ),
            machine_outcome=(
                None if outcome_kind is None
                else MachineOutcome(kind=OutcomeKind(outcome_kind))
            ),
            _operand_shape=record.get("operand_shape"),
            _path_signature=tuple(
                (term, bool(taken))
                for term, taken in record.get("path_signature") or ()
            ) or None,
        )


#: Machine frame record: receiver + 16 temps above the operand stack.
FRAME_WORDS = 1 + 16


class DifferentialTester:
    """Runs interpreter-vs-compiled comparisons for one instruction."""

    def __init__(self, spec, backend, compiler_class, *,
                 max_sim_steps: int = 20_000, deadline=None,
                 fault_describer_gaps: tuple = ()) -> None:
        self.spec = spec
        self.backend = backend
        self.max_sim_steps = max_sim_steps
        self.deadline = deadline
        self.memory, self.known = bootstrap_memory(
            heap_words=8 * 1024, memory_class=SymbolicObjectMemory
        )
        self.symbols = SymbolTable(self.memory)
        self.interpreter = Interpreter(self.memory, self.symbols)
        self.method = spec.build_method(self.memory, self.symbols)
        self.code_cache = CodeCache()
        self.trampolines = TrampolineTable()
        self._register_services()
        self.simulator = MachineSimulator(
            self.memory.heap, self.code_cache, self.trampolines,
            fault_describer_gaps=fault_describer_gaps,
        )
        self.compiler = compiler_class(
            self.memory, self.trampolines, self.code_cache, backend, self.symbols
        )
        from repro.concolic.solver import SolverContext

        self.context = SolverContext.from_memory(self.memory)
        self._base_heap = self.memory.heap.snapshot()

    # ------------------------------------------------------------------
    # runtime service routines (Cogit's ceXxx helpers)

    def _register_services(self) -> None:
        memory = self.memory

        def allocate_float(sim) -> None:
            sim.set("R0", memory.float_object_of(sim.fget("F0")))

        def new_fixed_instance(sim) -> None:
            class_index = sim.get("R6")
            cls = memory.class_table.at(class_index)
            if cls.is_variable:
                sim.set("R0", 0)
                return
            sim.set("R0", memory.instantiate(cls))

        def new_variable_instance(sim) -> None:
            class_index = sim.get("R6")
            size = sim.get("R7")
            cls = memory.class_table.at(class_index)
            if not cls.is_variable:
                sim.set("R0", 0)
                return
            sim.set("R0", memory.instantiate(cls, size))

        def make_point(sim) -> None:
            point_class = memory.class_table.named("Point")
            point = memory.instantiate(point_class)
            memory.store_pointer(0, point, sim.get("R0") & 0xFFFFFFFF)
            memory.store_pointer(1, point, sim.get("R1") & 0xFFFFFFFF)
            sim.set("R0", point)

        self.trampolines.service("ceAllocateFloat", allocate_float)
        self.trampolines.service("ceNewFixedInstance", new_fixed_instance)
        self.trampolines.service("ceNewVariableInstance", new_variable_instance)
        self.trampolines.service("ceMakePoint", make_point)

    # ------------------------------------------------------------------

    def run_path(self, path: PathResult, model=None) -> ComparisonResult:
        """Differentially execute one concolic path.

        ``model`` overrides the path's own input model; boundary-witness
        enrichment passes alternative solutions of the same path
        condition through here.
        """
        result = ComparisonResult(
            instruction=self.spec.name,
            kind=self.spec.kind,
            compiler=self.compiler.name,
            backend=self.backend.name,
            status=Status.MATCH,
            path=path,
        )
        memory = self.memory
        memory.heap.restore(self._base_heap)
        memory._registry.clear()

        # --- materialize the shared input state -----------------------
        with guard("harness"):
            maybe_inject("harness", self.spec.name, self.compiler.name,
                         deadline=self.deadline)
            materializer = Materializer(memory, model if model is not None
                                        else path.model)
            frame = materializer.materialize_frame(self.method)
        input_heap = memory.heap.snapshot()
        input_stack = [oop_concrete(value) for value in frame.stack]
        input_temps = [oop_concrete(value) for value in frame.temps]
        receiver = oop_concrete(frame.receiver)

        # --- interpreter reference execution --------------------------
        interp_exit = self.spec.execute(self.interpreter, frame)
        result.interpreter_exit = interp_exit
        interp_stack = [oop_concrete(value) for value in frame.stack]
        interp_temps = [
            oop_concrete(value) if value is not None else None
            for value in frame.temps
        ]
        interp_pc = frame.pc
        interp_heap_diff = memory.heap.diff(input_heap)
        interp_returned = (
            oop_concrete(interp_exit.returned_value)
            if interp_exit.returned_value is not None
            else None
        )

        # --- expected failures are recorded, not compared ---------------
        # Invalid-frame / invalid-memory exits feed the concolic engine
        # ("subsequent executions need extra elements") and are expected
        # failures in the test runner (paper Section 3.4).
        if interp_exit.condition.is_expected_failure and self.spec.kind != "native":
            result.status = Status.EXPECTED_FAILURE
            return result
        if self.spec.kind == "native" and interp_exit.condition in (
            ExitCondition.INVALID_FRAME,
            ExitCondition.NEEDS_GARBAGE_COLLECTION,
        ):
            result.status = Status.EXPECTED_FAILURE
            return result

        # --- compile ----------------------------------------------------
        memory.heap.restore(input_heap)
        unit = CompilationUnit(
            method=self.method,
            bytecode=getattr(self.spec, "bytecode", None),
            operands=self._instruction_operands(),
            native=getattr(self.spec, "native", None),
            input_stack=tuple(input_stack),
            sequence=tuple(getattr(self.spec, "sequence", ())),
        )
        try:
            with guard("compiler", expected=(CompilerError,)):
                maybe_inject("compile", self.spec.name, self.compiler.name,
                             deadline=self.deadline)
                compiled = self.compiler.compile(unit)
        except NotImplementedInCompiler as error:
            result.status = Status.DIFFERENCE
            result.difference_kind = "compile_missing"
            result.detail = str(error)
            return result
        except CompilerError as error:
            result.status = Status.CURATED
            result.detail = str(error)
            return result

        # --- machine execution -----------------------------------------
        # Compilation may intern trampoline metadata but must not touch
        # the heap; re-assert the input state for the machine run.
        memory.heap.restore(input_heap)
        try:
            with guard("simulator", expected=(SimulationError,)):
                maybe_inject("simulate", self.spec.name, self.compiler.name,
                             deadline=self.deadline)
                outcome, machine_stack = self._run_machine(
                    compiled, receiver, input_temps
                )
        except SimulationError as error:
            result.status = Status.DIFFERENCE
            result.difference_kind = "simulation_error"
            result.detail = str(error)
            return result
        if outcome.kind == OutcomeKind.BUDGET_EXHAUSTED:
            # The campaign deadline expired mid-simulation; this is a
            # budget event, not a behavioural verdict for this cell.
            raise BudgetExhausted(
                f"simulation of {self.spec.name} stopped after "
                f"{outcome.steps} steps: campaign deadline expired",
                scope="campaign",
            )
        result.machine_outcome = outcome
        machine_heap_diff = memory.heap.diff(input_heap)
        machine_temps = self._read_machine_temps(len(input_temps))

        # --- compare ----------------------------------------------------
        self._compare(
            result,
            interp_exit,
            interp_stack,
            interp_temps,
            interp_pc,
            interp_heap_diff,
            interp_returned,
            outcome,
            machine_stack,
            machine_temps,
            machine_heap_diff,
        )
        return result

    # ------------------------------------------------------------------

    def _instruction_operands(self) -> tuple:
        bytecode = getattr(self.spec, "bytecode", None)
        if bytecode is None:
            return ()
        code = self.method.bytecodes
        return tuple(code[1:bytecode.size])

    def _run_machine(self, compiled, receiver: int, temps: list):
        sim = self.simulator
        sim.reset()
        # Build the frame record at the top of the machine stack.
        frame_base = STACK_TOP - FRAME_WORDS * WORD_SIZE
        sim.set("FP", frame_base)
        sim.set("SP", frame_base)
        sim.write_word(frame_base, receiver)
        for index in range(16):
            value = temps[index] if index < len(temps) else self.memory.nil_object
            sim.write_word(frame_base + WORD_SIZE * (1 + index), value)
        sim._push(END_SENTINEL)
        operand_base = sim.get("SP")
        if self.spec.kind == "native":
            # Native calling convention: receiver + args in registers.
            native = self.spec.native
            argc = native.argument_count
            # Receiver at stack depth argc, arguments above it.
            stack = compiled.unit.input_stack
            values = list(stack[-(argc + 1):]) if argc + 1 <= len(stack) else (
                [self.memory.nil_object] * (argc + 1 - len(stack)) + list(stack)
            )
            sim.set("R0", values[0] if values else self.memory.nil_object)
            for index, reg in enumerate(("R1", "R2", "R3", "R4")):
                if index + 1 < len(values):
                    sim.set(reg, values[index + 1])
        outcome = sim.run(compiled.entry, max_steps=self.max_sim_steps,
                          deadline=self.deadline)
        final_sp = sim.get("SP")
        count = max(0, (operand_base - final_sp) // WORD_SIZE)
        machine_stack = [
            sim.read_word(final_sp + offset * WORD_SIZE)
            for offset in range(count)
        ]
        machine_stack.reverse()  # bottom to top
        return outcome, machine_stack

    def _read_machine_temps(self, count: int) -> list:
        frame_base = STACK_TOP - FRAME_WORDS * WORD_SIZE
        return [
            self.simulator.read_word(frame_base + WORD_SIZE * (1 + index))
            for index in range(count)
        ]

    # ------------------------------------------------------------------

    def _compare(
        self,
        result,
        interp_exit,
        interp_stack,
        interp_temps,
        interp_pc,
        interp_heap_diff,
        interp_returned,
        outcome,
        machine_stack,
        machine_temps,
        machine_heap_diff,
    ) -> None:
        def differ(kind: str, detail: str) -> None:
            result.status = Status.DIFFERENCE
            result.difference_kind = kind
            result.detail = detail

        if outcome.kind == OutcomeKind.FAULT:
            differ("machine_fault", outcome.fault_reason or "fault")
            return
        if outcome.kind == OutcomeKind.DIVERGED:
            differ("machine_fault", f"compiled code {outcome.describe()}")
            return

        condition = interp_exit.condition
        if self.spec.kind == "native":
            if condition == ExitCondition.SUCCESS:
                if outcome.kind != OutcomeKind.RETURNED:
                    differ("exit_mismatch",
                           f"interpreter succeeded, machine {outcome.describe()}")
                    return
                expected = interp_stack[-1] if interp_stack else None
                if expected is not None and outcome.result & 0xFFFFFFFF != (
                    expected & 0xFFFFFFFF
                ):
                    differ("output_mismatch",
                           f"result {outcome.result:#x} != {expected:#x}")
                    return
            elif condition == ExitCondition.FAILURE:
                if not (
                    outcome.kind == OutcomeKind.STOPPED
                    and outcome.marker == NATIVE_FAILURE_MARKER
                ):
                    differ("exit_mismatch",
                           f"interpreter failed, machine {outcome.describe()}")
                    return
            elif condition == ExitCondition.INVALID_MEMORY_ACCESS:
                # Errors for native methods by definition (Section 3.4);
                # they indicate an unsafe native method.
                differ("exit_mismatch", "native method made an invalid access")
                return
            else:
                differ("exit_mismatch", f"unexpected native exit {condition}")
                return
        else:  # bytecode
            if condition == ExitCondition.SUCCESS:
                if outcome.kind != OutcomeKind.STOPPED:
                    differ("exit_mismatch",
                           f"interpreter succeeded, machine {outcome.describe()}")
                    return
                if outcome.marker != pc_marker(interp_pc):
                    differ("output_mismatch",
                           f"fell through at marker {outcome.marker}, "
                           f"interpreter pc {interp_pc}")
                    return
                if machine_stack != interp_stack:
                    differ("output_mismatch",
                           f"stacks differ: {machine_stack} != {interp_stack}")
                    return
                for index, interp_value in enumerate(interp_temps):
                    if interp_value is None:
                        continue
                    if machine_temps[index] != interp_value:
                        differ("output_mismatch", f"temp {index} differs")
                        return
            elif condition == ExitCondition.MESSAGE_SEND:
                expected = f"send:{interp_exit.selector}/{interp_exit.argument_count}"
                if outcome.kind != OutcomeKind.TRAMPOLINE:
                    differ("exit_mismatch",
                           f"interpreter sends {expected}, machine "
                           f"{outcome.describe()}")
                    return
                if outcome.trampoline != expected:
                    differ("exit_mismatch",
                           f"trampoline {outcome.trampoline} != {expected}")
                    return
                if machine_stack != interp_stack:
                    differ("output_mismatch", "send operands differ")
                    return
            elif condition == ExitCondition.METHOD_RETURN:
                if outcome.kind != OutcomeKind.RETURNED:
                    differ("exit_mismatch",
                           f"interpreter returns, machine {outcome.describe()}")
                    return
                if interp_returned is not None and (
                    outcome.result & 0xFFFFFFFF
                ) != (interp_returned & 0xFFFFFFFF):
                    differ("output_mismatch", "returned values differ")
                    return
            else:
                differ("exit_mismatch", f"unexpected bytecode exit {condition}")
                return

        if interp_heap_diff != machine_heap_diff:
            differ(
                "heap_effect_mismatch",
                f"{len(interp_heap_diff)} interpreter writes vs "
                f"{len(machine_heap_diff)} machine writes",
            )
