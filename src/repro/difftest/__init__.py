"""Interpreter-compiler differential testing (paper Fig. 1, steps 2-4).

Given the concolic exploration of an instruction (step 1), this package
compiles the instruction with a JIT front-end, materializes the input
constraints into concrete VM state *shaped for the compiler's calling
convention*, executes the compiled code on the CPU simulator, and
validates that the machine behaved like the interpreter: same exit
condition, same operand-stack/result values, same heap side effects.
"""

from repro.difftest.harness import DifferentialTester, ComparisonResult, Status
from repro.difftest.defects import DefectCategory, classify, group_causes
from repro.difftest.runner import (
    CampaignConfig,
    CompilerReport,
    run_campaign,
    test_instruction,
)

__all__ = [
    "DifferentialTester",
    "ComparisonResult",
    "Status",
    "DefectCategory",
    "classify",
    "group_causes",
    "CampaignConfig",
    "CompilerReport",
    "run_campaign",
    "test_instruction",
]
