"""Defect identification: grouping differences by root cause.

The paper performed this analysis manually ("we performed defect
identification by manually inspecting and debugging the source code",
Section 5.3) and organized the 91 causes into six families (Table 3).
This module encodes that manual analysis as classification rules:
"because many paths do fail because of a same defect, we count a defect
only once regardless of how many execution paths it lead to a failure".
"""

from __future__ import annotations

import enum
import re
from collections import defaultdict
from dataclasses import dataclass

from repro.difftest.harness import ComparisonResult
from repro.interpreter.exits import ExitCondition
from repro.jit.machine.simulator import OutcomeKind


class DefectCategory(enum.Enum):
    """The six defect families of the paper's Table 3."""

    MISSING_INTERPRETER_TYPE_CHECK = "missing interpreter type check"
    MISSING_COMPILED_TYPE_CHECK = "missing compiled type check"
    OPTIMISATION_DIFFERENCE = "optimisation difference"
    BEHAVIOURAL_DIFFERENCE = "behavioural difference"
    MISSING_FUNCTIONALITY = "missing functionality"
    SIMULATION_ERROR = "simulation error"
    UNCLASSIFIED = "unclassified"


@dataclass(frozen=True)
class Defect:
    """One classified difference."""

    category: DefectCategory
    #: Stable key identifying the root cause; differences sharing a key
    #: are counted as one defect.
    cause: str


def _family_of(result: ComparisonResult) -> str:
    """Instruction family: strips the embedded index from the name."""
    return result.instruction.rstrip("0123456789")


def classify(result: ComparisonResult) -> Defect:
    """Map one difference to its defect family and cause key."""
    if not result.is_difference:
        raise ValueError("only differences can be classified")

    if result.difference_kind == "compile_missing":
        return Defect(DefectCategory.MISSING_FUNCTIONALITY, result.instruction)

    if result.difference_kind == "simulation_error":
        match = re.search(r"getter for (\w+)", result.detail)
        register = match.group(1) if match else "unknown-register"
        return Defect(
            DefectCategory.SIMULATION_ERROR, f"missing-getter:{register}"
        )

    interp = result.interpreter_exit
    outcome = result.machine_outcome

    if result.difference_kind == "machine_fault":
        # Compiled code crashed where the (safe) interpreter did not:
        # a type/shape check is missing in the compiled code.
        return Defect(
            DefectCategory.MISSING_COMPILED_TYPE_CHECK,
            f"{result.instruction}:unchecked-access",
        )

    if result.kind == "native":
        if (
            interp is not None
            and interp.condition == ExitCondition.SUCCESS
            and outcome is not None
            and outcome.kind == OutcomeKind.STOPPED
        ):
            # The compiled code is stricter than the interpreter: the
            # interpreter ran a path it should have rejected.
            return Defect(
                DefectCategory.MISSING_INTERPRETER_TYPE_CHECK,
                f"{result.instruction}:assertion-removed",
            )
        if (
            interp is not None
            and interp.condition == ExitCondition.FAILURE
            and outcome is not None
            and outcome.kind == OutcomeKind.RETURNED
        ):
            # Compiled code accepts operands the interpreter rejects.
            return Defect(
                DefectCategory.BEHAVIOURAL_DIFFERENCE,
                f"{result.instruction}:accepts-more",
            )
        if result.difference_kind in ("output_mismatch", "heap_effect_mismatch"):
            # Both engines "succeed" with different results.
            return Defect(
                DefectCategory.BEHAVIOURAL_DIFFERENCE,
                f"{result.instruction}:wrong-result",
            )
        if (
            interp is not None
            and interp.condition == ExitCondition.SUCCESS
            and outcome is not None
            and outcome.kind != OutcomeKind.RETURNED
        ):
            return Defect(
                DefectCategory.MISSING_COMPILED_TYPE_CHECK,
                f"{result.instruction}:unchecked-access",
            )
        return Defect(DefectCategory.UNCLASSIFIED, result.describe())

    # byte-code differences
    if (
        interp is not None
        and interp.condition == ExitCondition.SUCCESS
        and outcome is not None
        and outcome.kind == OutcomeKind.TRAMPOLINE
    ):
        # The interpreter inlines this path; the compiler emits a send:
        # "optimizations exist ... on the interpreter instruction" but
        # not in the compiler.  The cause is per instruction family and
        # operand shape, shared across compilers.
        operand_shape = _operand_shape(result)
        return Defect(
            DefectCategory.OPTIMISATION_DIFFERENCE,
            f"{_family_of(result)}:{operand_shape}-not-inlined",
        )
    if result.difference_kind in ("output_mismatch", "heap_effect_mismatch"):
        return Defect(
            DefectCategory.BEHAVIOURAL_DIFFERENCE,
            f"{result.instruction}:wrong-result",
        )
    return Defect(DefectCategory.UNCLASSIFIED, result.describe())


def _operand_shape(result: ComparisonResult) -> str:
    """Coarse operand-type signature of the path (int vs float)."""
    return result.operand_shape()


def group_causes(results) -> dict:
    """Group differences into {Defect -> [ComparisonResult, ...]}."""
    groups: dict[Defect, list] = defaultdict(list)
    for result in results:
        if result.is_difference:
            groups[classify(result)].append(result)
    return dict(groups)


def category_summary(results) -> dict:
    """Category -> number of distinct causes (the paper's Table 3)."""
    causes = group_causes(results)
    summary: dict[DefectCategory, set] = defaultdict(set)
    for defect in causes:
        summary[defect.category].add(defect.cause)
    return {category: len(keys) for category, keys in summary.items()}
