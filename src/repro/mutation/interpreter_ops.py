"""Interpreter-family mutants: defects seeded into the reference oracle.

The interpreter is both the reference semantics of every differential
comparison *and* the concolic exploration engine (the explorer runs
the same handler classes over symbolic memory).  An interpreter mutant
therefore changes what the campaign believes is *correct* — detection
happens because the (unmutated) JIT compilers now disagree with the
mutated oracle, exactly the signal the paper's Table 3 families
"Missing type check in the interpreter" and "Wrong implementation"
describe from the other direction.

Three operators, one per seeded-defect category of the ROADMAP item:

* ``I1`` — drop a receiver/argument type check: the ``Listing 1``
  arithmetic fast path checks only the receiver tag, so a SmallInteger
  receiver with a non-integer argument takes the integer fast path on
  garbage.
* ``I2`` — off-by-one the SmallInteger tag mask: ``oop & 1 == 1``
  becomes ``oop & 3 == 1``, so odd-valued SmallIntegers are no longer
  recognized as integers anywhere the memory protocol is consulted
  (the symbolic memory inherits the defect through ``super()``).
* ``I3`` — skip a failure-code write: primitive overflow "fails"
  without recording the failure, so the interpreter reports success
  with the operands still on the stack.

Every patch replaces a class/module attribute and the undo restores
the captured original object — see :mod:`repro.mutation.registry` for
the activation contract.
"""

from __future__ import annotations

from repro.interpreter import primitives as _primitives
from repro.interpreter.exits import ExitResult
from repro.interpreter.interpreter import Interpreter
from repro.memory.object_memory import ObjectMemory
from repro.mutation.registry import Mutant, register


def _install_drop_argument_check():
    original = Interpreter._arith_binary

    def mutated(self, frame, selector, int_op, float_op):
        # Mutated copy of Interpreter._arith_binary: the fast-path
        # guard tests only the receiver, not the argument.
        rcvr = frame.stack_value(1)
        arg = frame.stack_value(0)
        memory = self.memory
        if memory.is_integer_object(rcvr):  # mutant: arg check dropped
            result = int_op(
                memory.integer_value_of(rcvr), memory.integer_value_of(arg)
            )
            if memory.is_integer_value(result):
                frame.pop_then_push(2, memory.integer_object_of(result))
                return ExitResult.success()
        elif memory.is_float_object(rcvr) and memory.is_float_object(arg):
            result_value = float_op(
                memory.float_value_of(rcvr), memory.float_value_of(arg)
            )
            frame.pop_then_push(2, memory.float_object_of(result_value))
            return ExitResult.success()
        return self._normal_send(selector, 1)

    Interpreter._arith_binary = mutated

    def undo():
        Interpreter._arith_binary = original

    return undo


def _install_tag_mask_off_by_one():
    original_is_integer = ObjectMemory.is_integer_object
    original_are_integers = ObjectMemory.are_integers

    def is_integer_object(self, oop):
        # Mutant: the tag test widens to the low *two* bits, so tagged
        # SmallIntegers with an odd payload (bit 1 set) stop looking
        # like integers.  Pointer oops (bit 0 clear) are unaffected.
        return (oop & 3) == 1

    def are_integers(self, receiver, argument):
        return self.is_integer_object(receiver) and self.is_integer_object(
            argument
        )

    ObjectMemory.is_integer_object = is_integer_object
    ObjectMemory.are_integers = are_integers

    def undo():
        ObjectMemory.is_integer_object = original_is_integer
        ObjectMemory.are_integers = original_are_integers

    return undo


def _install_skip_overflow_failure():
    original = _primitives._fail

    def mutated(reason):
        if reason == "overflow":
            # Mutant: the overflow failure code is never written, so
            # the primitive reports success without pushing a result —
            # the caller sees a "successful" primitive and a stack that
            # still holds both operands.
            return ExitResult.success()
        return original(reason)

    _primitives._fail = mutated

    def undo():
        _primitives._fail = original

    return undo


register(Mutant(
    id="I1",
    family="interpreter",
    target="repro.interpreter.interpreter.Interpreter._arith_binary",
    description=(
        "drop the argument type check on the arithmetic fast path "
        "(receiver-only guard)"
    ),
    install=_install_drop_argument_check,
))

register(Mutant(
    id="I2",
    family="interpreter",
    target="repro.memory.object_memory.ObjectMemory.is_integer_object",
    description=(
        "off-by-one the SmallInteger tag mask (test the low two bits "
        "instead of the tag bit)"
    ),
    install=_install_tag_mask_off_by_one,
))

register(Mutant(
    id="I3",
    family="interpreter",
    target="repro.interpreter.primitives._fail",
    description=(
        "skip the failure-code write on primitive overflow (report "
        "success, leave the operands on the stack)"
    ),
    install=_install_skip_overflow_failure,
))
