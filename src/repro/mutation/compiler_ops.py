"""Compiler-family mutants: defects seeded into the JIT front-ends.

These are the defects the campaign exists to find (paper Table 3:
"Missing type check in compiled code", "Wrong implementation",
"Wrong spill management"), seeded on purpose so recall is measurable.
All three byte-code front-ends share :class:`BytecodeCogit`'s code
generators, so a base-class patch mutates ``simple``, ``s2r`` and
``linear`` at once — the recall report shows which front-ends'
campaign rows actually move.

* ``C1`` — wrong condition flag: ``#<`` compiles to a ``ge`` boolean,
  inverting every inline integer comparison.
* ``C2`` — clobbered scratch register: the two untagging scratch
  registers alias, so the untagged receiver is overwritten by the
  untagged argument before the ALU op (``a + b`` computes ``b + b``).
* ``C3`` — dropped spill: :class:`StackToRegisterCogit.gen_flush`
  materializes deferred stack entries without counting them as
  spilled, desynchronizing the compiler's stack-depth model from the
  machine stack.

Every patch replaces a class attribute and the undo restores the
captured original — see :mod:`repro.mutation.registry`.
"""

from __future__ import annotations

from repro.jit.compiler import BytecodeCogit
from repro.jit.stack_to_register import StackToRegisterCogit
from repro.mutation.registry import Mutant, register


def _install_wrong_condition_flag():
    original = BytecodeCogit.gen_bytecodePrimLessThan

    def mutated(self, unit):
        # Mutant: the `<` comparison materializes the `ge` flag.
        self._gen_int_comparison("<", "ge")

    BytecodeCogit.gen_bytecodePrimLessThan = mutated

    def undo():
        BytecodeCogit.gen_bytecodePrimLessThan = original

    return undo


def _install_clobbered_scratch_register():
    original = BytecodeCogit.TMP_B

    # Mutant: TMP_B aliases TMP_A, so `move TMP_B, ARG; untag TMP_B`
    # clobbers the untagged receiver every generator staged in TMP_A.
    BytecodeCogit.TMP_B = BytecodeCogit.TMP_A

    def undo():
        BytecodeCogit.TMP_B = original

    return undo


def _install_dropped_spill():
    original = StackToRegisterCogit.gen_flush

    def mutated(self):
        # Mutated copy of StackToRegisterCogit.gen_flush: entries are
        # materialized onto the machine stack but the spill counter is
        # never advanced, so later stack-depth reasoning under-counts.
        for entry in self._sim:
            if entry.kind == "const":
                self.ir.push_const(entry.value, self.TMP_D)
            else:
                self.ir.push(entry.reg)
        self._sim.clear()

    StackToRegisterCogit.gen_flush = mutated

    def undo():
        StackToRegisterCogit.gen_flush = original

    return undo


register(Mutant(
    id="C1",
    family="compiler",
    target="repro.jit.compiler.BytecodeCogit.gen_bytecodePrimLessThan",
    description=(
        "wrong condition flag: compile #< with the ge condition "
        "(inverted inline comparison)"
    ),
    install=_install_wrong_condition_flag,
))

register(Mutant(
    id="C2",
    family="compiler",
    target="repro.jit.compiler.BytecodeCogit.TMP_B",
    description=(
        "clobbered scratch register: alias the two untagging scratch "
        "registers so the receiver is overwritten by the argument"
    ),
    install=_install_clobbered_scratch_register,
    # One mechanical defect, many phenotypes: every generator that
    # stages its receiver in TMP_A misbehaves in its own way, so triage
    # correctly reports one explanation per affected instruction rather
    # than one per defect.  No convergence bound.
    convergence_bound=None,
))

register(Mutant(
    id="C3",
    family="compiler",
    target="repro.jit.stack_to_register.StackToRegisterCogit.gen_flush",
    description=(
        "dropped spill: flush deferred stack entries without counting "
        "them as spilled"
    ),
    install=_install_dropped_spill,
    # Single-instruction tests start from a pre-materialized stack, so
    # the deferred-entry flush rarely runs with entries pending.  The
    # stitched-method corpus (docs/STITCHING.md) exists for exactly
    # this: a jump-carrying prefix fragment forces a flush at the
    # stitch boundary while deferred entries are live, and the suffix's
    # consumption then under-counts — typically a parse-time stack
    # underflow at compile time, a clean fingerprint delta.
    corpus="stitched",
))
