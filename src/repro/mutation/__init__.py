"""Semantic mutation engine: differential-test the tester.

``repro.mutation`` seeds *known* defects — mutants — into the live
interpreter, JIT front-ends and CPU simulator, runs the regular
campaign under each one, and measures whether the campaign notices
(recall), how fast (time-to-first-detection, in deterministic plan
order) and how cleanly triage explains it (cause-bucket convergence).
Operator guide: docs/MUTATION.md; CLI: ``repro mutate`` and
``campaign --mutant ID``.

Importing this package registers the full operator corpus
(interpreter, compiler and simulator families).
"""

from repro.mutation.registry import (  # noqa: F401
    FAMILIES,
    MUTANTS,
    Mutant,
    activated,
    active_ids,
    all_ids,
    by_family,
    get,
    parse_mutants,
    register,
    suspended,
)
from repro.mutation import (  # noqa: E402,F401  (registration side effects)
    compiler_ops,
    interpreter_ops,
    simulator_ops,
)

# NOTE: the recall benchmark driver lives in repro.mutation.recall and
# is imported lazily by its consumers (CLI, benchmarks) — it depends on
# the campaign runner, which itself activates mutants, and importing it
# here would close that cycle.
