"""Simulator-family mutants: the historical fault-describer gaps.

The paper's "Simulation Error" Table 3 family came from two real
defects: the CPU simulator's reflective fault describer had no getter
for ``R10`` and ``R11``, so any machine fault whose description needed
one of those registers crashed the *simulation* instead of producing a
comparable outcome.  The shipped simulator derives its getter table
from the register file (the fix), and ``CampaignConfig
.fault_describer_gaps`` re-seeds the gap on demand.

These two mutants subsume that config knob as named registry entries:
``R10``/``R11`` wrap :class:`MachineSimulator.__init__` and append
their register to whatever ``fault_describer_gaps`` the caller passed,
so a campaign run under mutant ``R10`` is semantically identical to
one run with ``--fault-describer-gaps R10`` (asserted byte-for-byte by
``tests/mutation/test_fidelity.py``).
"""

from __future__ import annotations

from repro.jit.machine.simulator import MachineSimulator
from repro.mutation.registry import Mutant, register


def _install_describer_gap(register_name: str):
    def install():
        original = MachineSimulator.__init__

        def mutated(self, heap, code_cache, trampolines,
                    fault_describer_gaps: tuple = ()):
            gaps = tuple(fault_describer_gaps)
            if register_name not in gaps:
                gaps = gaps + (register_name,)
            original(self, heap, code_cache, trampolines,
                     fault_describer_gaps=gaps)

        MachineSimulator.__init__ = mutated

        def undo():
            MachineSimulator.__init__ = original

        return undo

    return install


for _register_name in ("R10", "R11"):
    register(Mutant(
        id=_register_name,
        family="simulator",
        target="repro.jit.machine.simulator.MachineSimulator.__init__",
        description=(
            f"remove the fault describer's reflective getter for "
            f"{_register_name} (the historical defect behind "
            f"--fault-describer-gaps)"
        ),
        install=_install_describer_gap(_register_name),
        # A describer gap only fires when a machine fault's base
        # register *is* the gapped register.  R11 was long annotated
        # as latent, but the main corpus does reach it:
        # primitiveFloatTruncated faults with base R10 and
        # primitiveFloatFractionPart with base R11
        # ("FLOAD at address 0xb (base R11=0x3)"), at every default
        # budget on both backends, so both halves of the historical
        # defect now sit inside the CI recall gate.  The stitched
        # corpus reaches neither: no stitched method faults with R10
        # or R11 as base (measured in docs/MUTATION.md §R11).
    ))
