"""The detection-recall benchmark: run the campaign under each mutant.

The campaign's job is to *notice* defects.  This module measures that
directly: for every registered mutant and every path budget it runs
the regular campaign twice — once unmutated (the baseline), once with
the mutant active — and compares the two reports record by record, in
canonical plan order.  Because the unmutated campaign already reports
legitimate interpreter/JIT differences (the paper's Tables 2 and 3),
"detected" is defined as a *delta against the baseline*, never as
"any difference was reported".

Three quantities per mutant (docs/MUTATION.md):

* **recall** — ``caught`` when the mutated report differs from the
  baseline at every budget, ``missed`` when it never does, ``flaky``
  when detection depends on the budget;
* **time-to-first-detection** — the plan-order index of the first
  comparison record that deviates from the baseline.  Indices, not
  wall-clock: the whole report stays byte-identical across ``-j1`` /
  ``-jN`` / ``--resume`` (wall-clock seconds are collected too, but
  only surface in the benchmark JSON when explicitly requested);
* **triage convergence** — cause buckets the triage pipeline creates
  for the mutant *beyond* the baseline's buckets, at the largest
  budget (ideally 1: one seeded defect, one explanation).

Every run is a plain :func:`repro.difftest.runner.run_campaign` call
with ``config.mutants`` set, so parallel sharding, journaling and
``--resume`` all work unchanged; with a ``journal_dir`` each
(phase, budget) pair checkpoints to its own JSONL file.

Mutants declare which corpus can catch them (``Mutant.corpus``): most
run through the main single-instruction campaign, but defects that
only fire inside whole methods — C3's dropped spill needs a
jump-boundary flush with deferred entries pending — are swept through
the stitched-method corpus instead
(:func:`repro.difftest.runner.run_stitched_campaign`,
docs/STITCHING.md).  The sweep runs one baseline per corpus per
budget and compares every mutant against its own corpus's baseline.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro import perf
from repro.difftest.runner import CampaignConfig, run_campaign
from repro.mutation import registry
from repro.triage import TriageConfig

#: Default path budgets (``max_paths_per_instruction``) the recall
#: sweep runs at; mirrors the paper's budget axis in Fig. 5.
DEFAULT_BUDGETS = (4, 16, 64)


# ----------------------------------------------------------------------
# detection: canonical report fingerprints


def campaign_fingerprint(result) -> tuple:
    """The campaign's detection surface as canonical JSON lines.

    One line per comparison, in plan order, carrying the cell identity
    plus the full serialized verdict (:meth:`ComparisonResult
    .to_record` — status, difference kind, classification facts, path
    signature).  Quarantined cells are present too: they surface as
    ``CRASHED`` comparisons in the same stream.  No wall-clock fields,
    so fingerprints are byte-identical across engines and resumes.
    """
    lines = []
    for report in result:
        for cell in report.results:
            for comparison in cell.comparisons:
                record = dict(comparison.to_record())
                record["instruction"] = cell.instruction
                record["compiler"] = cell.compiler
                lines.append(json.dumps(record, sort_keys=True))
    return tuple(lines)


def _record_label(line: str, index: int) -> str:
    record = json.loads(line)
    return (
        f"{record['instruction']}[{record['compiler']}/"
        f"{record.get('backend', '?')}]#{index}"
    )


def first_divergence(baseline: tuple, mutated: tuple):
    """``(index, label)`` of the first deviating record, else ``None``.

    The index counts comparison records in canonical plan order — the
    deterministic stand-in for "how long until the campaign noticed".
    """
    for index, (base, mut) in enumerate(zip(baseline, mutated)):
        if base != mut:
            return index, _record_label(mut, index)
    if len(baseline) != len(mutated):
        index = min(len(baseline), len(mutated))
        longer = mutated if len(mutated) > len(baseline) else baseline
        return index, _record_label(longer[index], index)
    return None


# ----------------------------------------------------------------------
# the recall report


@dataclass
class MutantOutcome:
    """Everything the recall sweep learned about one mutant."""

    mutant_id: str
    family: str
    description: str
    expected_caught: bool
    #: Which corpus swept this mutant ("main" | "stitched").
    corpus: str = "main"
    #: budget -> the mutated report deviated from the baseline.
    detected: dict = field(default_factory=dict)
    #: budget -> (record index, cell label) of the first deviation.
    first_detection: dict = field(default_factory=dict)
    #: budget -> wall-clock seconds of the mutated campaign (collected
    #: always, reported only in timing-enabled JSON).
    seconds: dict = field(default_factory=dict)
    #: Cause buckets triage created beyond the baseline's (None when
    #: convergence was not measured for this mutant).
    new_cause_buckets: int | None = None
    total_cause_buckets: int | None = None
    #: The new buckets collapsed by defect explanation — distinct
    #: (category, cause) pairs.  One seeded defect observed through
    #: three front-ends is three signature buckets (the signature keys
    #: on the compiler) but one explanation; this is the "ideally 1"
    #: convergence number and what the CI gate bounds.
    new_cause_explanations: int | None = None
    convergence_budget: int | None = None

    @property
    def status(self) -> str:
        hits = [bool(v) for v in self.detected.values()]
        if hits and all(hits):
            return "caught"
        if any(hits):
            return "flaky"
        return "missed"

    def to_dict(self, include_timing: bool = False) -> dict:
        payload = {
            "family": self.family,
            "description": self.description,
            "expected_caught": self.expected_caught,
            "corpus": self.corpus,
            "status": self.status,
            "detected": {
                str(budget): bool(hit)
                for budget, hit in sorted(self.detected.items())
            },
            "first_detection": {
                str(budget): (
                    None if entry is None
                    else {"index": entry[0], "cell": entry[1]}
                )
                for budget, entry in sorted(self.first_detection.items())
            },
            "new_cause_buckets": self.new_cause_buckets,
            "total_cause_buckets": self.total_cause_buckets,
            "new_cause_explanations": self.new_cause_explanations,
            "convergence_budget": self.convergence_budget,
        }
        if include_timing:
            payload["seconds"] = {
                str(budget): round(value, 3)
                for budget, value in sorted(self.seconds.items())
            }
        return payload


@dataclass
class RecallReport:
    """The full sweep: per-mutant outcomes plus baseline accounting."""

    budgets: tuple
    outcomes: list = field(default_factory=list)
    #: budget -> comparison-record count of the unmutated main-corpus
    #: baseline (absent when no selected mutant uses the main corpus).
    baseline_records: dict = field(default_factory=dict)
    #: Baseline triage cause-bucket count at the convergence budget
    #: (None when convergence was skipped).
    baseline_cause_buckets: int | None = None
    #: Same accounting for the stitched-method corpus, populated only
    #: when a selected mutant declares ``corpus="stitched"``.
    stitched_baseline_records: dict = field(default_factory=dict)
    stitched_baseline_cause_buckets: int | None = None
    convergence_budget: int | None = None

    def outcome(self, mutant_id: str) -> MutantOutcome:
        for outcome in self.outcomes:
            if outcome.mutant_id == mutant_id:
                return outcome
        raise KeyError(mutant_id)

    @property
    def expected_subset(self) -> list:
        return [o for o in self.outcomes if o.expected_caught]

    @property
    def recall(self) -> float:
        """Caught fraction over the ``expected_caught`` subset."""
        subset = self.expected_subset
        if not subset:
            return 1.0
        return sum(1 for o in subset if o.status == "caught") / len(subset)

    def to_dict(self, include_timing: bool = False) -> dict:
        subset = self.expected_subset
        return {
            "budgets": list(self.budgets),
            "mutants": {
                o.mutant_id: o.to_dict(include_timing=include_timing)
                for o in self.outcomes
            },
            "baseline": {
                "records": {
                    str(budget): count
                    for budget, count in sorted(self.baseline_records.items())
                },
                "cause_buckets": self.baseline_cause_buckets,
                "stitched_records": {
                    str(budget): count
                    for budget, count
                    in sorted(self.stitched_baseline_records.items())
                },
                "stitched_cause_buckets":
                    self.stitched_baseline_cause_buckets,
            },
            "convergence_budget": self.convergence_budget,
            "recall": {
                "caught": sum(1 for o in subset if o.status == "caught"),
                "expected": len(subset),
                "rate": self.recall,
            },
        }


# ----------------------------------------------------------------------
# the sweep driver


def _journal_for(journal_dir, phase: str, budget: int):
    if journal_dir is None:
        return None, False
    path = Path(journal_dir) / f"{phase}-b{budget}.jsonl"
    path.parent.mkdir(parents=True, exist_ok=True)
    return str(path), path.exists()


def _all_causes(triage_report) -> list:
    return list(triage_report.causes) + list(triage_report.crash_causes)


def _cause_digests(triage_report) -> set:
    return {c.signature.digest for c in _all_causes(triage_report)}


#: corpus name -> journal phase of its unmutated baseline run.
_BASELINE_PHASES = {"main": "baseline", "stitched": "baseline-stitched"}


def _runner_for(corpus: str):
    if corpus == "stitched":
        from repro.difftest.runner import run_stitched_campaign

        return run_stitched_campaign
    return run_campaign


def _corpus_config(config: CampaignConfig, corpus: str) -> CampaignConfig:
    """Scope ``config.only`` to the entries the corpus can resolve.

    A mixed ``--only`` list (main instruction names plus ``stitch:``
    method names) would otherwise zero out one corpus or the other;
    each corpus keeps its own entries, and a corpus whose filter comes
    up empty runs unrestricted.
    """
    stitched = tuple(n for n in config.only if n.startswith("stitch:"))
    only = stitched if corpus == "stitched" else tuple(
        n for n in config.only if not n.startswith("stitch:")
    )
    return replace(config, only=only)


def _run_one(config: CampaignConfig, *, runner, jobs, journal_dir, resume,
             phase: str, budget: int, triage: TriageConfig | None,
             cache_dir=None):
    journal_path, exists = _journal_for(journal_dir, phase, budget)
    return runner(
        config,
        jobs=jobs,
        journal_path=journal_path,
        resume=bool(resume and exists),
        triage=triage,
        cache_dir=cache_dir,
    )


def run_recall(
    config: CampaignConfig | None = None,
    mutant_ids=None,
    budgets=DEFAULT_BUDGETS,
    *,
    jobs: int = 1,
    journal_dir=None,
    resume: bool = False,
    convergence: bool = True,
    confirm_runs: int = 2,
    progress=None,
    cache_dir=None,
) -> RecallReport:
    """Run the full detection-recall sweep; see the module docstring.

    ``config`` scopes the corpus exactly like a campaign config
    (``only``, ``max_bytecodes``…); its ``max_paths_per_instruction``
    is overridden by each entry of ``budgets`` in turn, and its
    ``mutants`` field by each mutant.  ``progress`` is an optional
    ``callable(str)`` for CLI status lines (sent to stderr by the CLI
    so stdout stays byte-identical across runs).  ``cache_dir``
    attaches the persistent result store to every campaign of the
    sweep: semantic fingerprints let a mutant run reuse every baseline
    cell the mutant does not touch — the bulk of the sweep's work —
    while the touched cells re-run under the mutated semantics
    (docs/INCREMENTAL.md).
    """
    config = config or CampaignConfig()
    ids = tuple(mutant_ids) if mutant_ids else registry.all_ids()
    for mid in ids:
        registry.get(mid)  # fail fast on typos
    budgets = tuple(dict.fromkeys(budgets)) or DEFAULT_BUDGETS
    convergence_budget = max(budgets) if convergence else None

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    report = RecallReport(budgets=budgets,
                          convergence_budget=convergence_budget)
    outcomes = {
        mid: MutantOutcome(
            mutant_id=mid,
            family=registry.get(mid).family,
            description=registry.get(mid).description,
            expected_caught=registry.get(mid).expected_caught,
            corpus=registry.get(mid).corpus,
        )
        for mid in ids
    }
    report.outcomes = list(outcomes.values())
    # One baseline per corpus per budget: only the corpora the selected
    # mutants actually declare ("main" first, in registration order).
    corpora = tuple(dict.fromkeys(outcomes[mid].corpus for mid in ids))

    baseline_digests: dict = {}
    for budget in budgets:
        measure_convergence = budget == convergence_budget
        triage = (
            TriageConfig(confirm_runs=confirm_runs, repro_dir=None,
                         shrink=False, self_verify=False)
            if measure_convergence else None
        )
        baseline_fps: dict = {}
        for corpus in corpora:
            base_config = replace(
                _corpus_config(config, corpus),
                max_paths_per_instruction=budget, mutants=(),
            )
            phase = _BASELINE_PHASES[corpus]
            note(f"{phase} @ budget {budget}"
                 + (" (+triage)" if triage else ""))
            baseline = _run_one(
                base_config, runner=_runner_for(corpus), jobs=jobs,
                journal_dir=journal_dir, resume=resume, phase=phase,
                budget=budget, triage=triage, cache_dir=cache_dir,
            )
            baseline_fps[corpus] = campaign_fingerprint(baseline)
            records = report.baseline_records if corpus == "main" \
                else report.stitched_baseline_records
            records[budget] = len(baseline_fps[corpus])
            if measure_convergence and baseline.triage is not None:
                baseline_digests[corpus] = _cause_digests(baseline.triage)
                if corpus == "main":
                    report.baseline_cause_buckets = \
                        len(baseline_digests[corpus])
                else:
                    report.stitched_baseline_cause_buckets = \
                        len(baseline_digests[corpus])

        for mid in ids:
            outcome = outcomes[mid]
            corpus = outcome.corpus
            mutant_config = replace(
                _corpus_config(config, corpus),
                max_paths_per_instruction=budget, mutants=(mid,),
            )
            note(f"mutant {mid} @ budget {budget}")
            start = time.perf_counter()
            mutated = _run_one(
                mutant_config, runner=_runner_for(corpus), jobs=jobs,
                journal_dir=journal_dir, resume=resume,
                phase=f"mutant-{mid}", budget=budget, triage=triage,
                cache_dir=cache_dir,
            )
            outcome.seconds[budget] = time.perf_counter() - start
            mutated_fp = campaign_fingerprint(mutated)
            deviation = first_divergence(baseline_fps[corpus], mutated_fp)
            outcome.detected[budget] = deviation is not None
            outcome.first_detection[budget] = deviation
            perf.incr("mutation.runs")
            if deviation is not None:
                perf.incr("mutation.detections")
            if measure_convergence and mutated.triage is not None:
                causes = _all_causes(mutated.triage)
                known = baseline_digests.get(corpus, set())
                new = [
                    c for c in causes
                    if c.signature.digest not in known
                ]
                outcome.new_cause_buckets = len(new)
                outcome.total_cause_buckets = len(causes)
                outcome.new_cause_explanations = len({
                    (c.signature.category, c.signature.cause) for c in new
                })
                outcome.convergence_budget = budget
    return report


# ----------------------------------------------------------------------
# rendering


def format_recall(report: RecallReport) -> str:
    """Deterministic text rendering of one recall sweep."""
    budgets = report.budgets
    header = (
        f"{'Mutant':8s} {'Family':12s} {'Corpus':8s} {'Status':8s} "
        + " ".join(f"{'@' + str(b):>6s}" for b in budgets)
        + f" {'First detection':28s} {'Causes':>18s}"
    )
    lines = [
        "Mutation recall (repro mutate)",
        header,
        "-" * len(header),
    ]
    for outcome in report.outcomes:
        per_budget = " ".join(
            f"{'yes' if outcome.detected.get(b) else 'no':>6s}"
            for b in budgets
        )
        first = next(
            (
                entry for b in budgets
                if (entry := outcome.first_detection.get(b)) is not None
            ),
            None,
        )
        first_text = "-" if first is None else f"#{first[0]} {first[1]}"
        if outcome.new_cause_buckets is None:
            causes = "-"
        else:
            causes = (
                f"{outcome.new_cause_buckets} new "
                f"({outcome.new_cause_explanations} expl)"
                f"/{outcome.total_cause_buckets}"
            )
        lines.append(
            f"{outcome.mutant_id:8s} {outcome.family:12s} "
            f"{outcome.corpus:8s} {outcome.status:8s} "
            f"{per_budget} {first_text:28s} {causes:>18s}"
        )
    subset = report.expected_subset
    caught = sum(1 for o in subset if o.status == "caught")
    lines.append("")
    lines.append(
        f"Recall over the expected-caught subset: {caught}/{len(subset)} "
        f"({100.0 * report.recall:.1f}%)"
    )
    if report.baseline_cause_buckets is not None:
        lines.append(
            f"Baseline cause buckets at budget "
            f"{report.convergence_budget}: {report.baseline_cause_buckets}"
        )
    if report.stitched_baseline_cause_buckets is not None:
        lines.append(
            f"Stitched-corpus baseline cause buckets at budget "
            f"{report.convergence_budget}: "
            f"{report.stitched_baseline_cause_buckets}"
        )
    return "\n".join(lines)
