"""The mutant registry: named, reversible semantic mutation operators.

A :class:`Mutant` is one seeded defect in the system under test — an
interpreter handler, a compiler front-end, or the machine simulator —
installed by monkey-patching the live classes and reverted by
restoring the saved originals.  Mutants are the ground truth of the
detection-recall benchmark (``repro mutate``, see docs/MUTATION.md):
each one is a defect we *know* exists, so "does the campaign report
change?" becomes a measurable recall question.

Design rules every operator follows:

* **Deterministic.**  Applying a mutant is a pure class-attribute swap;
  mutated semantics depend only on the mutant id, never on wall-clock,
  process id or import order.
* **Reversible.**  ``install()`` returns an undo closure that restores
  the exact original attribute objects.  ``activated()`` asserts this
  by construction: originals are captured before patching and restored
  in reverse order, even when the body raises.
* **Reference-counted.**  Activation nests.  The campaign engine
  activates around every cell (:func:`repro.difftest.runner
  .execute_cell`), the triage engine around the whole
  confirm/shrink/emit pass, and replayed reproducers around their
  single execution — any of these may already run inside an outer
  activation (same process, or inherited across ``fork`` by a pool
  worker).  A per-id counter applies the patch only on the 0→1
  transition and reverts on 1→0, so nesting is safe and idempotent.

The operators themselves live in sibling modules
(:mod:`repro.mutation.interpreter_ops`, :mod:`~repro.mutation
.compiler_ops`, :mod:`~repro.mutation.simulator_ops`) and register
here at import time.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable

from repro import perf

#: The operator families, in report order (paper Table 3 groups the
#: defect corpus the same way: interpreter checks, compiled code,
#: simulation errors).
FAMILIES = ("interpreter", "compiler", "simulator")


@dataclass(frozen=True)
class Mutant:
    """One named, reversible semantic mutation operator.

    ``install`` performs the patch and returns the undo closure; it is
    only ever called through :func:`activated`, which guarantees
    balanced revert.
    """

    id: str
    family: str
    #: Dotted name of the patched attribute (documentation; the patch
    #: itself is whatever ``install`` does).
    target: str
    description: str
    install: Callable[[], Callable[[], None]] = field(repr=False)
    #: Whether the seeded corpus is expected to detect this mutant at
    #: the default budgets — the CI recall gate runs over exactly the
    #: ``expected_caught`` subset (see docs/MUTATION.md).
    expected_caught: bool = True
    #: Triage-convergence bound: the most *new* defect explanations
    #: (distinct (category, cause) pairs beyond the baseline's) this
    #: mutant may create when caught.  One seeded defect should yield
    #: one explanation (the gate default allows two); ``None`` opts a
    #: mutant out — e.g. a register clobber whose phenotype genuinely
    #: spans every generator that uses the register.
    convergence_bound: int | None = 2
    #: Which campaign corpus detects this mutant: ``"main"`` (the
    #: regular four-row evaluation) or ``"stitched"`` (the
    #: template-stitched method corpus, docs/STITCHING.md).  The recall
    #: sweep runs each mutant against its own corpus, with a matching
    #: unmutated baseline per corpus.
    corpus: str = "main"


#: id -> Mutant, in registration order (report order).
MUTANTS: dict[str, Mutant] = {}

_lock = threading.Lock()
#: id -> (active count, undo closure); guarded by ``_lock``.
_active: dict[str, list] = {}


def register(mutant: Mutant) -> Mutant:
    if mutant.id in MUTANTS:
        raise ValueError(f"duplicate mutant id {mutant.id!r}")
    if mutant.family not in FAMILIES:
        raise ValueError(f"unknown mutant family {mutant.family!r}")
    MUTANTS[mutant.id] = mutant
    return mutant


def get(mutant_id: str) -> Mutant:
    try:
        return MUTANTS[mutant_id]
    except KeyError:
        raise KeyError(
            f"unknown mutant {mutant_id!r} (registered: "
            f"{', '.join(all_ids())})"
        )


def all_ids() -> tuple:
    return tuple(MUTANTS)


def by_family(family: str) -> tuple:
    return tuple(m for m in MUTANTS.values() if m.family == family)


def active_ids() -> tuple:
    """Ids currently applied in this process (nesting collapsed)."""
    with _lock:
        return tuple(mid for mid, state in _active.items() if state[0] > 0)


def parse_mutants(values) -> tuple:
    """Validate and dedupe mutant ids from CLI input (order-preserving).

    Raises ``SystemExit`` with the registered inventory on a typo, the
    same contract as the ``--fault-describer-gaps`` register validation
    (see :func:`repro.cli.parse_fault_describer_gaps`).
    """
    seen: list[str] = []
    for value in values or ():
        for part in str(value).split(","):
            mid = part.strip()
            if not mid:
                continue
            if mid not in MUTANTS:
                raise SystemExit(
                    f"unknown mutant {mid!r}; registered mutants: "
                    + ", ".join(all_ids())
                )
            if mid not in seen:
                seen.append(mid)
    return tuple(seen)


def _apply(mutant_id: str) -> None:
    mutant = get(mutant_id)
    with _lock:
        state = _active.setdefault(mutant_id, [0, None])
        if state[0] == 0:
            state[1] = mutant.install()
            perf.incr("mutation.applied")
        state[0] += 1
        perf.gauge_max("mutation.active", sum(
            1 for entry in _active.values() if entry[0] > 0
        ))


def _revert(mutant_id: str) -> None:
    with _lock:
        state = _active.get(mutant_id)
        if state is None or state[0] == 0:
            raise RuntimeError(f"mutant {mutant_id!r} is not active")
        state[0] -= 1
        if state[0] == 0:
            undo, state[1] = state[1], None
            undo()
            perf.incr("mutation.reverted")


@contextmanager
def suspended():
    """Temporarily revert every active mutant; reapply on exit.

    Reference counts are preserved — only the patches come off — so
    nesting inside any depth of :func:`activated` is balanced.  Used by
    stitched-corpus derivation (:mod:`repro.stitch.corpus`): the corpus
    is a test *asset* and must be derived from unmutated semantics even
    when the surrounding campaign runs under a mutant, or baseline and
    mutated campaigns would execute different plans.

    Single-threaded by design (like activation itself): suspending
    while another thread races ``activated()`` is unsupported.
    """
    with _lock:
        ids = [mid for mid, state in _active.items() if state[0] > 0]
        for mid in reversed(ids):
            state = _active[mid]
            undo, state[1] = state[1], None
            undo()
    try:
        yield
    finally:
        with _lock:
            for mid in ids:
                _active[mid][1] = MUTANTS[mid].install()


@contextmanager
def activated(mutant_ids):
    """Apply *mutant_ids* in order; revert in reverse order on exit.

    Reference-counted per id: nesting (or activation inherited across
    ``fork``) never double-applies and never reverts early.  With an
    empty id tuple this is a no-op, so callers can wrap
    unconditionally with ``activated(config.mutants)``.
    """
    ids = tuple(mutant_ids or ())
    applied: list[str] = []
    try:
        for mid in ids:
            _apply(mid)
            applied.append(mid)
        yield
    finally:
        for mid in reversed(applied):
            _revert(mid)
