"""Stack-based VM frames.

A frame holds the receiver, the executing method, the temporaries (which
include the arguments, Smalltalk style) and the operand stack.  This
mirrors the paper's ``AbstractVMFrame`` constraint group (Fig. 3):
``receiver, method, argument_size, arguments, operand_stack_size,
operand_stack``.

All accesses funnel through small methods so that the concolic engine's
frame subclass can observe them; the *base* frame raises
:class:`~repro.errors.InvalidFrameAccess` on under-materialized access,
which maps onto the Invalid Frame exit condition.
"""

from __future__ import annotations

from repro.bytecode.methods import CompiledMethod
from repro.errors import InvalidFrameAccess


class Frame:
    """A concrete interpreter frame."""

    def __init__(
        self,
        receiver: object,
        method: CompiledMethod,
        arguments: list | None = None,
    ) -> None:
        self.receiver = receiver
        self.method = method
        self.pc = 0
        arguments = list(arguments or [])
        if len(arguments) != method.num_args:
            raise InvalidFrameAccess("arguments", len(arguments))
        #: Temporaries: arguments first, then locals (initially nil-less
        #: None placeholders; the interpreter nils them at activation).
        self.temps: list = arguments + [None] * (method.num_temps - method.num_args)
        self.stack: list = []

    # ------------------------------------------------------------------
    # operand stack

    @property
    def stack_depth(self) -> int:
        return len(self.stack)

    def push(self, value: object) -> None:
        self.stack.append(value)

    def pop(self) -> object:
        if not self.stack:
            raise InvalidFrameAccess("operand_stack", -1)
        return self.stack.pop()

    def top(self) -> object:
        return self.stack_value(0)

    def stack_value(self, depth: int) -> object:
        """``internalStackValue:`` — element *depth* below the top."""
        index = len(self.stack) - 1 - depth
        if index < 0:
            raise InvalidFrameAccess("operand_stack", depth)
        return self.stack[index]

    def pop_then_push(self, count: int, value: object) -> None:
        """``internalPop:thenPush:`` — the Listing 1 success-path effect."""
        if count > len(self.stack):
            raise InvalidFrameAccess("operand_stack", count - 1)
        del self.stack[len(self.stack) - count :]
        self.stack.append(value)

    def pop_n(self, count: int) -> None:
        if count > len(self.stack):
            raise InvalidFrameAccess("operand_stack", count - 1)
        if count:
            del self.stack[len(self.stack) - count :]

    # ------------------------------------------------------------------
    # temporaries

    def temp_at(self, index: int) -> object:
        if not 0 <= index < len(self.temps):
            raise InvalidFrameAccess("temps", index)
        value = self.temps[index]
        if value is None:
            raise InvalidFrameAccess("temps", index)
        return value

    def temp_at_put(self, index: int, value: object) -> None:
        if not 0 <= index < len(self.temps):
            raise InvalidFrameAccess("temps", index)
        self.temps[index] = value

    # ------------------------------------------------------------------
    # arguments view (for native methods: receiver + args convention)

    @property
    def argument_count(self) -> int:
        return self.method.num_args

    def argument_at(self, index: int) -> object:
        if not 0 <= index < self.method.num_args:
            raise InvalidFrameAccess("arguments", index)
        return self.temp_at(index)

    def snapshot(self) -> dict:
        """Shallow structural copy for before/after comparisons."""
        return {
            "receiver": self.receiver,
            "pc": self.pc,
            "temps": list(self.temps),
            "stack": list(self.stack),
        }
