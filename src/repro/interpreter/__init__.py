"""The byte-code interpreter: the VM's executable specification.

The paper's core insight is that the interpreter *is* the language
specification and can therefore drive test generation for the JIT
compilers.  Everything in this package is written against the
:class:`~repro.memory.object_memory.ObjectMemory` protocol and the
:class:`~repro.interpreter.frame.Frame` protocol, so the concolic engine
can substitute constraint-recording implementations and execute this
exact code symbolically.
"""

from repro.interpreter.exits import ExitCondition, ExitResult
from repro.interpreter.frame import Frame
from repro.interpreter.interpreter import Interpreter
from repro.interpreter.primitives import (
    NativeMethod,
    PRIMITIVE_TABLE,
    primitive_named,
    testable_primitives,
)
# Importing registers the FFI primitive family in PRIMITIVE_TABLE.
from repro.interpreter import ffi_primitives  # noqa: F401

__all__ = [
    "ExitCondition",
    "ExitResult",
    "Frame",
    "Interpreter",
    "NativeMethod",
    "PRIMITIVE_TABLE",
    "primitive_named",
    "testable_primitives",
]
