"""FFI acceleration primitives: external memory and struct accessors.

The paper found that "several native methods introduced to accelerate FFI
(Foreign Function Interface) memory and structure accesses were never
implemented in the 32 bit compiler version" — the *Missing Functionality*
defect family, by far the largest (60 of 91 causes).

This module reproduces that situation: every primitive here is fully
implemented in the interpreter, while the 32-bit native-method compiler
(:mod:`repro.jit.native_templates`) has no template for any of them and
raises :class:`~repro.errors.NotImplementedInCompiler`.

External memory is simulated: an ``ExternalAddress`` object is a raw
WORDS-format heap object whose slots are the foreign buffer, addressed by
*byte offset* from 0.  Accesses must be aligned to their width, widths of
1/2/4 bytes pack into 32-bit words little-endian, and 8-byte accesses use
two consecutive words.  This preserves the relevant behaviour — type and
bounds checks, signedness, width handling — without real foreign memory.
"""

from __future__ import annotations

import math
import struct as _struct

from repro.interpreter.exits import ExitResult
from repro.interpreter.primitives import _fail, primitive
from repro.memory.layout import ObjectFormat


def _is_external_address(memory, oop) -> bool:
    if memory.is_integer_object(oop):
        return False
    external = memory.class_table.named("ExternalAddress")
    return memory.class_index_of(oop) == external.index


def _buffer_byte_size(memory, oop) -> int:
    return memory.num_slots_of(oop) * 4


def _read_packed(memory, oop, byte_offset: int, width: int) -> int:
    """Read an aligned little-endian field of *width* bytes (1/2/4)."""
    word = memory.fetch_pointer(byte_offset // 4, oop)
    shift = (byte_offset % 4) * 8
    mask = (1 << (width * 8)) - 1
    return (word >> shift) & mask

def _write_packed(memory, oop, byte_offset: int, width: int, value: int) -> None:
    index = byte_offset // 4
    word = memory.fetch_pointer(index, oop)
    shift = (byte_offset % 4) * 8
    mask = ((1 << (width * 8)) - 1) << shift
    word = (word & ~mask) | ((value << shift) & mask)
    memory.store_pointer(index, oop, word)


def _to_signed(value: int, bits: int) -> int:
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def _ffi_read(width: int, signed: bool):
    """Build an aligned integer-read primitive body for *width* bytes."""

    def body(interp, frame, argc):
        memory = interp.memory
        rcvr = frame.stack_value(1)
        arg = frame.stack_value(0)
        if not _is_external_address(memory, rcvr):
            return _fail("receiver must be an ExternalAddress")
        if not memory.is_integer_object(arg):
            return _fail("offset must be a SmallInteger")
        offset = memory.integer_value_of(arg)
        if offset < 0 or offset % width != 0:
            return _fail("offset must be aligned and non-negative")
        if offset + width > _buffer_byte_size(memory, rcvr):
            return _fail("read past end of external memory")
        if width == 8:
            low = memory.fetch_pointer(offset // 4, rcvr)
            high = memory.fetch_pointer(offset // 4 + 1, rcvr)
            raw = (high << 32) | low
            bits = 64
        else:
            raw = _read_packed(memory, rcvr, offset, width)
            bits = width * 8
        value = _to_signed(raw, bits) if signed else raw
        if not memory.is_integer_value(value):
            return _fail("value does not fit a SmallInteger")
        frame.pop_then_push(2, memory.integer_object_of(value))
        return ExitResult.success()

    return body


def _ffi_write(width: int, signed: bool):
    def body(interp, frame, argc):
        memory = interp.memory
        rcvr = frame.stack_value(2)
        offset_oop = frame.stack_value(1)
        value_oop = frame.stack_value(0)
        if not _is_external_address(memory, rcvr):
            return _fail("receiver must be an ExternalAddress")
        if not memory.is_integer_object(offset_oop):
            return _fail("offset must be a SmallInteger")
        if not memory.is_integer_object(value_oop):
            return _fail("value must be a SmallInteger")
        offset = memory.integer_value_of(offset_oop)
        value = memory.integer_value_of(value_oop)
        if offset < 0 or offset % width != 0:
            return _fail("offset must be aligned and non-negative")
        if offset + width > _buffer_byte_size(memory, rcvr):
            return _fail("write past end of external memory")
        bits = width * 8
        if signed:
            limit = 1 << (bits - 1)
            if not -limit <= value < limit:
                return _fail("value out of range for field width")
        else:
            if not 0 <= value < (1 << bits):
                return _fail("value out of range for field width")
        raw = value & ((1 << bits) - 1)
        if width == 8:
            memory.store_pointer(offset // 4, rcvr, raw & 0xFFFFFFFF)
            memory.store_pointer(offset // 4 + 1, rcvr, raw >> 32)
        else:
            _write_packed(memory, rcvr, offset, width, raw)
        frame.pop_then_push(3, value_oop)
        return ExitResult.success()

    return body


# Integer reads/writes, every width, both signednesses (indices 120-135).
primitive(120, "primitiveFFIReadInt8", 1, "ffi")(_ffi_read(1, signed=True))
primitive(121, "primitiveFFIReadUint8", 1, "ffi")(_ffi_read(1, signed=False))
primitive(122, "primitiveFFIReadInt16", 1, "ffi")(_ffi_read(2, signed=True))
primitive(123, "primitiveFFIReadUint16", 1, "ffi")(_ffi_read(2, signed=False))
primitive(124, "primitiveFFIReadInt32", 1, "ffi")(_ffi_read(4, signed=True))
primitive(125, "primitiveFFIReadUint32", 1, "ffi")(_ffi_read(4, signed=False))
primitive(126, "primitiveFFIReadInt64", 1, "ffi")(_ffi_read(8, signed=True))
primitive(127, "primitiveFFIReadUint64", 1, "ffi")(_ffi_read(8, signed=False))
primitive(128, "primitiveFFIWriteInt8", 2, "ffi")(_ffi_write(1, signed=True))
primitive(129, "primitiveFFIWriteUint8", 2, "ffi")(_ffi_write(1, signed=False))
primitive(130, "primitiveFFIWriteInt16", 2, "ffi")(_ffi_write(2, signed=True))
primitive(131, "primitiveFFIWriteUint16", 2, "ffi")(_ffi_write(2, signed=False))
primitive(132, "primitiveFFIWriteInt32", 2, "ffi")(_ffi_write(4, signed=True))
primitive(133, "primitiveFFIWriteUint32", 2, "ffi")(_ffi_write(4, signed=False))
primitive(134, "primitiveFFIWriteInt64", 2, "ffi")(_ffi_write(8, signed=True))
primitive(135, "primitiveFFIWriteUint64", 2, "ffi")(_ffi_write(8, signed=False))


@primitive(136, "primitiveFFIReadFloat32", 1, "ffi")
def primitive_ffi_read_float32(interp, frame, argc):
    memory = interp.memory
    rcvr = frame.stack_value(1)
    arg = frame.stack_value(0)
    if not _is_external_address(memory, rcvr):
        return _fail("receiver must be an ExternalAddress")
    if not memory.is_integer_object(arg):
        return _fail("offset must be a SmallInteger")
    offset = memory.integer_value_of(arg)
    if offset < 0 or offset % 4 != 0:
        return _fail("offset must be 4-byte aligned")
    if offset + 4 > _buffer_byte_size(memory, rcvr):
        return _fail("read past end of external memory")
    raw = memory.fetch_pointer(offset // 4, rcvr)
    value = _struct.unpack("<f", _struct.pack("<I", raw))[0]
    frame.pop_then_push(2, memory.float_object_of(value))
    return ExitResult.success()


@primitive(137, "primitiveFFIReadFloat64", 1, "ffi")
def primitive_ffi_read_float64(interp, frame, argc):
    memory = interp.memory
    rcvr = frame.stack_value(1)
    arg = frame.stack_value(0)
    if not _is_external_address(memory, rcvr):
        return _fail("receiver must be an ExternalAddress")
    if not memory.is_integer_object(arg):
        return _fail("offset must be a SmallInteger")
    offset = memory.integer_value_of(arg)
    if offset < 0 or offset % 8 != 0:
        return _fail("offset must be 8-byte aligned")
    if offset + 8 > _buffer_byte_size(memory, rcvr):
        return _fail("read past end of external memory")
    low = memory.fetch_pointer(offset // 4, rcvr)
    high = memory.fetch_pointer(offset // 4 + 1, rcvr)
    value = _struct.unpack("<d", _struct.pack("<Q", (high << 32) | low))[0]
    frame.pop_then_push(2, memory.float_object_of(value))
    return ExitResult.success()


@primitive(138, "primitiveFFIWriteFloat32", 2, "ffi")
def primitive_ffi_write_float32(interp, frame, argc):
    memory = interp.memory
    rcvr = frame.stack_value(2)
    offset_oop = frame.stack_value(1)
    value_oop = frame.stack_value(0)
    if not _is_external_address(memory, rcvr):
        return _fail("receiver must be an ExternalAddress")
    if not memory.is_integer_object(offset_oop):
        return _fail("offset must be a SmallInteger")
    if not memory.is_float_object(value_oop):
        return _fail("value must be a Float")
    offset = memory.integer_value_of(offset_oop)
    if offset < 0 or offset % 4 != 0:
        return _fail("offset must be 4-byte aligned")
    if offset + 4 > _buffer_byte_size(memory, rcvr):
        return _fail("write past end of external memory")
    value = memory.float_value_of(value_oop)
    if math.isfinite(value) and abs(value) > 3.4e38:
        return _fail("value out of float32 range")
    raw = _struct.unpack("<I", _struct.pack("<f", value))[0]
    memory.store_pointer(offset // 4, rcvr, raw)
    frame.pop_then_push(3, value_oop)
    return ExitResult.success()


@primitive(139, "primitiveFFIWriteFloat64", 2, "ffi")
def primitive_ffi_write_float64(interp, frame, argc):
    memory = interp.memory
    rcvr = frame.stack_value(2)
    offset_oop = frame.stack_value(1)
    value_oop = frame.stack_value(0)
    if not _is_external_address(memory, rcvr):
        return _fail("receiver must be an ExternalAddress")
    if not memory.is_integer_object(offset_oop):
        return _fail("offset must be a SmallInteger")
    if not memory.is_float_object(value_oop):
        return _fail("value must be a Float")
    offset = memory.integer_value_of(offset_oop)
    if offset < 0 or offset % 8 != 0:
        return _fail("offset must be 8-byte aligned")
    if offset + 8 > _buffer_byte_size(memory, rcvr):
        return _fail("write past end of external memory")
    raw = _struct.unpack("<Q", _struct.pack("<d", memory.float_value_of(value_oop)))[0]
    memory.store_pointer(offset // 4, rcvr, raw & 0xFFFFFFFF)
    memory.store_pointer(offset // 4 + 1, rcvr, raw >> 32)
    frame.pop_then_push(3, value_oop)
    return ExitResult.success()


@primitive(140, "primitiveFFIByteSize", 0, "ffi")
def primitive_ffi_byte_size(interp, frame, argc):
    memory = interp.memory
    rcvr = frame.stack_value(0)
    if not _is_external_address(memory, rcvr):
        return _fail("receiver must be an ExternalAddress")
    frame.pop_then_push(1, memory.integer_object_of(_buffer_byte_size(memory, rcvr)))
    return ExitResult.success()


@primitive(141, "primitiveFFIAllocate", 0, "ffi")
def primitive_ffi_allocate(interp, frame, argc):
    """Allocate external memory: receiver is the byte size."""
    memory = interp.memory
    rcvr = frame.stack_value(0)
    if not memory.is_integer_object(rcvr):
        return _fail("size must be a SmallInteger")
    size = memory.integer_value_of(rcvr)
    if size <= 0 or size > 4096:
        return _fail("size out of range")
    external = memory.class_table.named("ExternalAddress")
    words = (size + 3) // 4
    frame.pop_then_push(1, memory.instantiate(external, words))
    return ExitResult.success()


@primitive(142, "primitiveFFIFill", 2, "ffi")
def primitive_ffi_fill(interp, frame, argc):
    """Fill the whole buffer with a byte value (memset)."""
    memory = interp.memory
    rcvr = frame.stack_value(2)
    byte_oop = frame.stack_value(1)
    count_oop = frame.stack_value(0)
    if not _is_external_address(memory, rcvr):
        return _fail("receiver must be an ExternalAddress")
    if not memory.is_integer_object(byte_oop):
        return _fail("fill byte must be a SmallInteger")
    if not memory.is_integer_object(count_oop):
        return _fail("count must be a SmallInteger")
    byte = memory.integer_value_of(byte_oop)
    count = memory.integer_value_of(count_oop)
    if byte < 0 or byte > 255:
        return _fail("fill byte out of range")
    if count < 0 or count > _buffer_byte_size(memory, rcvr):
        return _fail("count out of range")
    for offset in range(count):
        _write_packed(memory, rcvr, offset, 1, byte)
    frame.pop_then_push(3, rcvr)
    return ExitResult.success()


@primitive(143, "primitiveFFICopyBytes", 2, "ffi")
def primitive_ffi_copy_bytes(interp, frame, argc):
    """Copy *count* bytes from another external buffer (memcpy)."""
    memory = interp.memory
    rcvr = frame.stack_value(2)
    source = frame.stack_value(1)
    count_oop = frame.stack_value(0)
    if not _is_external_address(memory, rcvr):
        return _fail("receiver must be an ExternalAddress")
    if not _is_external_address(memory, source):
        return _fail("source must be an ExternalAddress")
    if not memory.is_integer_object(count_oop):
        return _fail("count must be a SmallInteger")
    count = memory.integer_value_of(count_oop)
    if count < 0:
        return _fail("count must be non-negative")
    if count > _buffer_byte_size(memory, rcvr):
        return _fail("count exceeds destination")
    if count > _buffer_byte_size(memory, source):
        return _fail("count exceeds source")
    for offset in range(count):
        _write_packed(
            memory, rcvr, offset, 1, _read_packed(memory, source, offset, 1)
        )
    frame.pop_then_push(3, rcvr)
    return ExitResult.success()


def _struct_field_read(width: int, signed: bool):
    """Struct accessor: field read by (1-based) field index of *width*."""

    def body(interp, frame, argc):
        memory = interp.memory
        rcvr = frame.stack_value(1)
        arg = frame.stack_value(0)
        if not _is_external_address(memory, rcvr):
            return _fail("receiver must be an ExternalAddress")
        if not memory.is_integer_object(arg):
            return _fail("field index must be a SmallInteger")
        field = memory.integer_value_of(arg)
        if field < 1:
            return _fail("field index must be positive")
        offset = (field - 1) * width
        if offset + width > _buffer_byte_size(memory, rcvr):
            return _fail("field outside struct")
        if width == 8:
            low = memory.fetch_pointer(offset // 4, rcvr)
            high = memory.fetch_pointer(offset // 4 + 1, rcvr)
            raw, bits = (high << 32) | low, 64
        else:
            raw, bits = _read_packed(memory, rcvr, offset, width), width * 8
        value = _to_signed(raw, bits) if signed else raw
        if not memory.is_integer_value(value):
            return _fail("value does not fit a SmallInteger")
        frame.pop_then_push(2, memory.integer_object_of(value))
        return ExitResult.success()

    return body


def _struct_field_write(width: int, signed: bool):
    def body(interp, frame, argc):
        memory = interp.memory
        rcvr = frame.stack_value(2)
        field_oop = frame.stack_value(1)
        value_oop = frame.stack_value(0)
        if not _is_external_address(memory, rcvr):
            return _fail("receiver must be an ExternalAddress")
        if not memory.is_integer_object(field_oop):
            return _fail("field index must be a SmallInteger")
        if not memory.is_integer_object(value_oop):
            return _fail("value must be a SmallInteger")
        field = memory.integer_value_of(field_oop)
        value = memory.integer_value_of(value_oop)
        if field < 1:
            return _fail("field index must be positive")
        offset = (field - 1) * width
        if offset + width > _buffer_byte_size(memory, rcvr):
            return _fail("field outside struct")
        bits = width * 8
        if signed:
            limit = 1 << (bits - 1)
            if not -limit <= value < limit:
                return _fail("value out of range for field width")
        elif not 0 <= value < (1 << bits):
            return _fail("value out of range for field width")
        raw = value & ((1 << bits) - 1)
        if width == 8:
            memory.store_pointer(offset // 4, rcvr, raw & 0xFFFFFFFF)
            memory.store_pointer(offset // 4 + 1, rcvr, raw >> 32)
        else:
            _write_packed(memory, rcvr, offset, width, raw)
        frame.pop_then_push(3, value_oop)
        return ExitResult.success()

    return body


# Struct field accessors (indices 144-159).
primitive(144, "primitiveFFIStructInt8At", 1, "ffi")(_struct_field_read(1, True))
primitive(145, "primitiveFFIStructUint8At", 1, "ffi")(_struct_field_read(1, False))
primitive(146, "primitiveFFIStructInt16At", 1, "ffi")(_struct_field_read(2, True))
primitive(147, "primitiveFFIStructUint16At", 1, "ffi")(_struct_field_read(2, False))
primitive(148, "primitiveFFIStructInt32At", 1, "ffi")(_struct_field_read(4, True))
primitive(149, "primitiveFFIStructUint32At", 1, "ffi")(_struct_field_read(4, False))
primitive(150, "primitiveFFIStructInt64At", 1, "ffi")(_struct_field_read(8, True))
primitive(151, "primitiveFFIStructUint64At", 1, "ffi")(_struct_field_read(8, False))
primitive(152, "primitiveFFIStructInt8AtPut", 2, "ffi")(_struct_field_write(1, True))
primitive(153, "primitiveFFIStructUint8AtPut", 2, "ffi")(_struct_field_write(1, False))
primitive(154, "primitiveFFIStructInt16AtPut", 2, "ffi")(_struct_field_write(2, True))
primitive(155, "primitiveFFIStructUint16AtPut", 2, "ffi")(
    _struct_field_write(2, False)
)
primitive(156, "primitiveFFIStructInt32AtPut", 2, "ffi")(_struct_field_write(4, True))
primitive(157, "primitiveFFIStructUint32AtPut", 2, "ffi")(
    _struct_field_write(4, False)
)
primitive(158, "primitiveFFIStructInt64AtPut", 2, "ffi")(_struct_field_write(8, True))
primitive(159, "primitiveFFIStructUint64AtPut", 2, "ffi")(
    _struct_field_write(8, False)
)


@primitive(160, "primitiveFFIPointerAt", 1, "ffi")
def primitive_ffi_pointer_at(interp, frame, argc):
    """Read a word-sized pointer field as an integer address."""
    memory = interp.memory
    rcvr = frame.stack_value(1)
    arg = frame.stack_value(0)
    if not _is_external_address(memory, rcvr):
        return _fail("receiver must be an ExternalAddress")
    if not memory.is_integer_object(arg):
        return _fail("offset must be a SmallInteger")
    offset = memory.integer_value_of(arg)
    if offset < 0 or offset % 4 != 0:
        return _fail("offset must be word aligned")
    if offset + 4 > _buffer_byte_size(memory, rcvr):
        return _fail("read past end of external memory")
    value = memory.fetch_pointer(offset // 4, rcvr)
    if not memory.is_integer_value(value):
        return _fail("pointer does not fit a SmallInteger")
    frame.pop_then_push(2, memory.integer_object_of(value))
    return ExitResult.success()


@primitive(161, "primitiveFFIPointerAtPut", 2, "ffi")
def primitive_ffi_pointer_at_put(interp, frame, argc):
    memory = interp.memory
    rcvr = frame.stack_value(2)
    offset_oop = frame.stack_value(1)
    value_oop = frame.stack_value(0)
    if not _is_external_address(memory, rcvr):
        return _fail("receiver must be an ExternalAddress")
    if not memory.is_integer_object(offset_oop):
        return _fail("offset must be a SmallInteger")
    if not memory.is_integer_object(value_oop):
        return _fail("value must be a SmallInteger")
    offset = memory.integer_value_of(offset_oop)
    value = memory.integer_value_of(value_oop)
    if offset < 0 or offset % 4 != 0:
        return _fail("offset must be word aligned")
    if offset + 4 > _buffer_byte_size(memory, rcvr):
        return _fail("write past end of external memory")
    if value < 0:
        return _fail("address must be non-negative")
    memory.store_pointer(offset // 4, rcvr, value)
    frame.pop_then_push(3, value_oop)
    return ExitResult.success()
