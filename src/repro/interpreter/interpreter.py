"""The byte-code interpreter.

Each byte-code family has one handler method; dispatch goes through a
table indexed by opcode.  Handlers are written in the style of the
paper's Listing 1: they query the object memory through its semantic
protocol (``are_integers``, ``integer_value_of``, ``is_integer_value``,
...) and branch on the results.  Because both the values and the memory
can be concolic stand-ins, the *same code* doubles as the symbolic
specification during path exploration.

Two usage modes:

* :meth:`Interpreter.step` — execute exactly one instruction and report
  its :class:`~repro.interpreter.exits.ExitResult`.  This is the unit
  the differential tester compares against compiled code.
* :meth:`Interpreter.run` — full method execution with real message
  sends, method activation and primitive invocation, used by the
  examples and integration tests.
"""

from __future__ import annotations

from repro.bytecode.methods import CompiledMethod, SymbolTable
from repro.bytecode.opcodes import BYTECODE_TABLE, Bytecode
from repro.errors import (
    BytecodeError,
    InvalidFrameAccess,
    InvalidMemoryAccess,
    UntaggedValueError,
    VMError,
)
from repro.interpreter.exits import ExitCondition, ExitResult
from repro.interpreter.frame import Frame
from repro.memory.object_memory import ObjectMemory

#: Signed-byte helper for long-jump displacements.
def _signed_byte(value: int) -> int:
    return value - 256 if value >= 128 else value


class Interpreter:
    """A stack-machine byte-code interpreter over an object memory."""

    def __init__(self, memory: ObjectMemory, symbols: SymbolTable | None = None):
        self.memory = memory
        self.symbols = symbols or SymbolTable(memory)
        #: (class_index, selector name) -> CompiledMethod, for full runs.
        self.method_dictionary: dict[tuple[int, str], CompiledMethod] = {}
        self._handlers = self._build_dispatch_table()

    # ------------------------------------------------------------------
    # dispatch

    def _build_dispatch_table(self):
        handlers = {}
        for opcode, bytecode in BYTECODE_TABLE.items():
            name = "bc_" + bytecode.family.name
            handler = getattr(self, name, None)
            if handler is None:
                raise BytecodeError(f"no handler for family {bytecode.family.name}")
            handlers[opcode] = handler
        return handlers

    def step(self, frame: Frame) -> ExitResult:
        """Execute the instruction at ``frame.pc`` and report its exit.

        VM-level faults (invalid frame slots, out-of-bounds or untagged
        memory access) are converted into the corresponding exit
        conditions instead of propagating, exactly as the concolic test
        runner expects (paper Section 3.4).
        """
        code = frame.method.bytecodes
        if not 0 <= frame.pc < len(code):
            return ExitResult.method_return(self.memory.nil_object)
        opcode = code[frame.pc]
        bytecode = BYTECODE_TABLE.get(opcode)
        if bytecode is None:
            raise BytecodeError(f"unknown opcode {opcode:#04x} at pc {frame.pc}")
        operands = bytes(code[frame.pc + 1 : frame.pc + bytecode.size])
        if len(operands) != bytecode.family.operand_bytes:
            raise BytecodeError(f"truncated operands at pc {frame.pc}")
        frame.pc += bytecode.size  # fetchNextBytecode semantics
        try:
            return self._handlers[opcode](frame, bytecode, operands)
        except InvalidFrameAccess as error:
            return ExitResult.invalid_frame(str(error))
        except (InvalidMemoryAccess, UntaggedValueError) as error:
            return ExitResult.invalid_memory_access(str(error))
        except BytecodeError as error:
            return ExitResult.invalid_memory_access(str(error))

    # ------------------------------------------------------------------
    # full-method execution (examples / integration tests)

    def install_method(
        self, class_index: int, selector: str, method: CompiledMethod
    ) -> None:
        self.symbols.intern(selector)
        self.method_dictionary[(class_index, selector)] = method

    def lookup(self, class_index: int, selector: str) -> CompiledMethod | None:
        return self.method_dictionary.get((class_index, selector))

    def run(self, frame: Frame, max_steps: int = 100_000):
        """Run to completion, activating sends; returns the final value."""
        from repro.interpreter.primitives import PRIMITIVE_TABLE

        call_stack: list[Frame] = [frame]
        for _ in range(max_steps):
            current = call_stack[-1]
            exit_result = self.step(current)
            condition = exit_result.condition
            if condition == ExitCondition.SUCCESS:
                continue
            if condition == ExitCondition.METHOD_RETURN:
                call_stack.pop()
                if not call_stack:
                    return exit_result.returned_value
                call_stack[-1].push(exit_result.returned_value)
                continue
            if condition == ExitCondition.MESSAGE_SEND:
                argc = exit_result.argument_count or 0
                receiver = current.stack_value(argc)
                class_index = self.memory.class_index_of(receiver)
                method = self.lookup(class_index, exit_result.selector or "")
                if method is None:
                    raise VMError(
                        f"message not understood: {exit_result.selector} "
                        f"(class index {class_index})"
                    )
                arguments = [current.stack_value(argc - 1 - i) for i in range(argc)]
                current.pop_n(argc + 1)
                if method.primitive_index:
                    native = PRIMITIVE_TABLE.get(method.primitive_index)
                    if native is not None:
                        outcome = self._try_primitive(
                            native, receiver, arguments, current
                        )
                        if outcome:
                            continue
                callee = Frame(receiver, method, arguments)
                call_stack.append(callee)
                continue
            raise VMError(f"unhandled exit during run: {exit_result.describe()}")
        raise VMError("step budget exhausted")

    def _try_primitive(self, native, receiver, arguments, caller: Frame) -> bool:
        """Run a native method against the caller stack; True on success."""
        caller.push(receiver)
        for argument in arguments:
            caller.push(argument)
        result = self.call_primitive(native, caller, len(arguments))
        if result.condition == ExitCondition.SUCCESS:
            return True
        # Failure: restore the caller stack for byte-code fallback.
        caller.pop_n(len(arguments) + 1)
        return False

    def call_primitive(self, native, frame: Frame, argument_count: int) -> ExitResult:
        """Invoke a native method with receiver+args on the operand stack."""
        return native.function(self, frame, argument_count)

    # ------------------------------------------------------------------
    # send helper (Listing 1's ``normalSend``)

    def _normal_send(self, selector: str, argument_count: int) -> ExitResult:
        """Leave the instruction through a message send.

        Receiver and arguments stay on the operand stack: the send
        machinery (or the compiled code's trampoline) consumes them.
        """
        return ExitResult.message_send(selector, argument_count)

    # ==================================================================
    # push / pop / store family handlers

    def bc_pushReceiverVariable(self, frame, bytecode, operands) -> ExitResult:
        value = self.memory.fetch_pointer(bytecode.embedded_index, frame.receiver)
        frame.push(value)
        return ExitResult.success()

    def bc_pushTemporaryVariable(self, frame, bytecode, operands) -> ExitResult:
        frame.push(frame.temp_at(bytecode.embedded_index))
        return ExitResult.success()

    def bc_pushLiteralConstant(self, frame, bytecode, operands) -> ExitResult:
        frame.push(frame.method.literal_at(bytecode.embedded_index))
        return ExitResult.success()

    def bc_pushReceiver(self, frame, bytecode, operands) -> ExitResult:
        frame.push(frame.receiver)
        return ExitResult.success()

    def bc_pushTrue(self, frame, bytecode, operands) -> ExitResult:
        frame.push(self.memory.true_object)
        return ExitResult.success()

    def bc_pushFalse(self, frame, bytecode, operands) -> ExitResult:
        frame.push(self.memory.false_object)
        return ExitResult.success()

    def bc_pushNil(self, frame, bytecode, operands) -> ExitResult:
        frame.push(self.memory.nil_object)
        return ExitResult.success()

    def bc_pushZero(self, frame, bytecode, operands) -> ExitResult:
        frame.push(self.memory.integer_object_of(0))
        return ExitResult.success()

    def bc_pushOne(self, frame, bytecode, operands) -> ExitResult:
        frame.push(self.memory.integer_object_of(1))
        return ExitResult.success()

    def bc_pushMinusOne(self, frame, bytecode, operands) -> ExitResult:
        frame.push(self.memory.integer_object_of(-1))
        return ExitResult.success()

    def bc_pushTwo(self, frame, bytecode, operands) -> ExitResult:
        frame.push(self.memory.integer_object_of(2))
        return ExitResult.success()

    def bc_duplicateTop(self, frame, bytecode, operands) -> ExitResult:
        frame.push(frame.stack_value(0))
        return ExitResult.success()

    def bc_popStackTop(self, frame, bytecode, operands) -> ExitResult:
        frame.pop()
        return ExitResult.success()

    def bc_storeTemporaryVariable(self, frame, bytecode, operands) -> ExitResult:
        frame.temp_at_put(bytecode.embedded_index, frame.stack_value(0))
        return ExitResult.success()

    def bc_storeReceiverVariable(self, frame, bytecode, operands) -> ExitResult:
        self.memory.store_pointer(
            bytecode.embedded_index, frame.receiver, frame.stack_value(0)
        )
        return ExitResult.success()

    def bc_popIntoTemporaryVariable(self, frame, bytecode, operands) -> ExitResult:
        frame.temp_at_put(bytecode.embedded_index, frame.pop())
        return ExitResult.success()

    def bc_popIntoReceiverVariable(self, frame, bytecode, operands) -> ExitResult:
        value = frame.pop()
        self.memory.store_pointer(bytecode.embedded_index, frame.receiver, value)
        return ExitResult.success()

    def bc_nop(self, frame, bytecode, operands) -> ExitResult:
        return ExitResult.success()

    # ==================================================================
    # returns

    def bc_returnTop(self, frame, bytecode, operands) -> ExitResult:
        return ExitResult.method_return(frame.pop())

    def bc_returnReceiver(self, frame, bytecode, operands) -> ExitResult:
        return ExitResult.method_return(frame.receiver)

    def bc_returnNil(self, frame, bytecode, operands) -> ExitResult:
        return ExitResult.method_return(self.memory.nil_object)

    def bc_returnTrue(self, frame, bytecode, operands) -> ExitResult:
        return ExitResult.method_return(self.memory.true_object)

    def bc_returnFalse(self, frame, bytecode, operands) -> ExitResult:
        return ExitResult.method_return(self.memory.false_object)

    # ==================================================================
    # jumps

    def bc_shortJump(self, frame, bytecode, operands) -> ExitResult:
        frame.pc += bytecode.embedded_index + 1
        return ExitResult.success()

    def bc_shortJumpIfTrue(self, frame, bytecode, operands) -> ExitResult:
        return self._branch_if(frame, bytecode.embedded_index + 1, want_true=True)

    def bc_shortJumpIfFalse(self, frame, bytecode, operands) -> ExitResult:
        return self._branch_if(frame, bytecode.embedded_index + 1, want_true=False)

    def bc_longJump(self, frame, bytecode, operands) -> ExitResult:
        frame.pc += _signed_byte(operands[0])
        return ExitResult.success()

    def bc_longJumpIfTrue(self, frame, bytecode, operands) -> ExitResult:
        return self._branch_if(frame, _signed_byte(operands[0]), want_true=True)

    def bc_longJumpIfFalse(self, frame, bytecode, operands) -> ExitResult:
        return self._branch_if(frame, _signed_byte(operands[0]), want_true=False)

    def _branch_if(self, frame, displacement: int, want_true: bool) -> ExitResult:
        value = frame.stack_value(0)
        memory = self.memory
        if memory.is_true_object(value):
            frame.pop()
            if want_true:
                frame.pc += displacement
            return ExitResult.success()
        if memory.is_false_object(value):
            frame.pop()
            if not want_true:
                frame.pc += displacement
            return ExitResult.success()
        # Non-boolean condition: the value becomes the receiver of
        # #mustBeBoolean (it stays on the stack as the send receiver).
        return self._normal_send("mustBeBoolean", 0)

    # ==================================================================
    # statically type-predicted arithmetic (paper Listing 1)

    def bc_bytecodePrimAdd(self, frame, bytecode, operands) -> ExitResult:
        return self._arith_binary(frame, "+", lambda a, b: a + b, lambda a, b: a + b)

    def bc_bytecodePrimSubtract(self, frame, bytecode, operands) -> ExitResult:
        return self._arith_binary(frame, "-", lambda a, b: a - b, lambda a, b: a - b)

    def bc_bytecodePrimMultiply(self, frame, bytecode, operands) -> ExitResult:
        return self._arith_binary(frame, "*", lambda a, b: a * b, lambda a, b: a * b)

    def bc_bytecodePrimDivide(self, frame, bytecode, operands) -> ExitResult:
        rcvr = frame.stack_value(1)
        arg = frame.stack_value(0)
        memory = self.memory
        if memory.are_integers(rcvr, arg):
            divisor = memory.integer_value_of(arg)
            if divisor != 0:
                dividend = memory.integer_value_of(rcvr)
                if dividend % divisor == 0:
                    result = dividend // divisor
                    if memory.is_integer_value(result):
                        frame.pop_then_push(2, memory.integer_object_of(result))
                        return ExitResult.success()
        elif memory.is_float_object(rcvr) and memory.is_float_object(arg):
            divisor_value = memory.float_value_of(arg)
            if divisor_value != 0.0:
                result_value = memory.float_value_of(rcvr) / divisor_value
                frame.pop_then_push(2, memory.float_object_of(result_value))
                return ExitResult.success()
        return self._normal_send("/", 1)

    def bc_bytecodePrimModulo(self, frame, bytecode, operands) -> ExitResult:
        return self._int_division(frame, "\\\\", lambda a, b: a % b)

    def bc_bytecodePrimIntegerDivide(self, frame, bytecode, operands) -> ExitResult:
        return self._int_division(frame, "//", lambda a, b: a // b)

    def bc_bytecodePrimLessThan(self, frame, bytecode, operands) -> ExitResult:
        return self._compare(frame, "<", lambda a, b: a < b)

    def bc_bytecodePrimGreaterThan(self, frame, bytecode, operands) -> ExitResult:
        return self._compare(frame, ">", lambda a, b: a > b)

    def bc_bytecodePrimLessOrEqual(self, frame, bytecode, operands) -> ExitResult:
        return self._compare(frame, "<=", lambda a, b: a <= b)

    def bc_bytecodePrimGreaterOrEqual(self, frame, bytecode, operands) -> ExitResult:
        return self._compare(frame, ">=", lambda a, b: a >= b)

    def bc_bytecodePrimEqual(self, frame, bytecode, operands) -> ExitResult:
        return self._compare(frame, "=", lambda a, b: a == b)

    def bc_bytecodePrimNotEqual(self, frame, bytecode, operands) -> ExitResult:
        return self._compare(frame, "~=", lambda a, b: a != b)

    def bc_bytecodePrimIdenticalTo(self, frame, bytecode, operands) -> ExitResult:
        arg = frame.stack_value(0)
        rcvr = frame.stack_value(1)
        result = self.memory.boolean_object_of(self.memory.are_identical(rcvr, arg))
        frame.pop_then_push(2, result)
        return ExitResult.success()

    def bc_bytecodePrimBitAnd(self, frame, bytecode, operands) -> ExitResult:
        return self._bitwise(frame, "bitAnd:", lambda a, b: a & b)

    def bc_bytecodePrimBitOr(self, frame, bytecode, operands) -> ExitResult:
        return self._bitwise(frame, "bitOr:", lambda a, b: a | b)

    def bc_bytecodePrimBitXor(self, frame, bytecode, operands) -> ExitResult:
        return self._bitwise(frame, "bitXor:", lambda a, b: a ^ b)

    def bc_bytecodePrimBitShift(self, frame, bytecode, operands) -> ExitResult:
        rcvr = frame.stack_value(1)
        arg = frame.stack_value(0)
        memory = self.memory
        if memory.are_integers(rcvr, arg):
            value = memory.integer_value_of(rcvr)
            shift = memory.integer_value_of(arg)
            # Interpreter inlines only non-negative receivers (negative
            # receivers fall back to library code — the behavioural
            # difference the paper reports for bit-wise operations).
            if value >= 0 and -32 <= shift <= 32:
                result = value << shift if shift >= 0 else value >> -shift
                if memory.is_integer_value(result):
                    frame.pop_then_push(2, memory.integer_object_of(result))
                    return ExitResult.success()
        return self._normal_send("bitShift:", 1)

    # ------------------------------------------------------------------
    # arithmetic helpers

    def _arith_binary(self, frame, selector, int_op, float_op) -> ExitResult:
        """Listing 1 shape: int fast path, float fast path, else send."""
        rcvr = frame.stack_value(1)
        arg = frame.stack_value(0)
        memory = self.memory
        if memory.are_integers(rcvr, arg):
            result = int_op(memory.integer_value_of(rcvr), memory.integer_value_of(arg))
            if memory.is_integer_value(result):  # overflow check
                frame.pop_then_push(2, memory.integer_object_of(result))
                return ExitResult.success()
        elif memory.is_float_object(rcvr) and memory.is_float_object(arg):
            result_value = float_op(
                memory.float_value_of(rcvr), memory.float_value_of(arg)
            )
            frame.pop_then_push(2, memory.float_object_of(result_value))
            return ExitResult.success()
        return self._normal_send(selector, 1)

    def _int_division(self, frame, selector, int_op) -> ExitResult:
        rcvr = frame.stack_value(1)
        arg = frame.stack_value(0)
        memory = self.memory
        if memory.are_integers(rcvr, arg):
            divisor = memory.integer_value_of(arg)
            if divisor != 0:
                result = int_op(memory.integer_value_of(rcvr), divisor)
                if memory.is_integer_value(result):
                    frame.pop_then_push(2, memory.integer_object_of(result))
                    return ExitResult.success()
        return self._normal_send(selector, 1)

    def _compare(self, frame, selector, op) -> ExitResult:
        rcvr = frame.stack_value(1)
        arg = frame.stack_value(0)
        memory = self.memory
        if memory.are_integers(rcvr, arg):
            result = op(memory.integer_value_of(rcvr), memory.integer_value_of(arg))
            frame.pop_then_push(2, memory.boolean_object_of(result))
            return ExitResult.success()
        if memory.is_float_object(rcvr) and memory.is_float_object(arg):
            result = op(memory.float_value_of(rcvr), memory.float_value_of(arg))
            frame.pop_then_push(2, memory.boolean_object_of(result))
            return ExitResult.success()
        return self._normal_send(selector, 1)

    def _bitwise(self, frame, selector, op) -> ExitResult:
        rcvr = frame.stack_value(1)
        arg = frame.stack_value(0)
        memory = self.memory
        if memory.are_integers(rcvr, arg):
            a = memory.integer_value_of(rcvr)
            b = memory.integer_value_of(arg)
            # Negative operands fall back to library code in the
            # interpreter (paper Section 5.3, behavioural difference).
            if a >= 0 and b >= 0:
                frame.pop_then_push(2, memory.integer_object_of(op(a, b)))
                return ExitResult.success()
        return self._normal_send(selector, 1)

    # ==================================================================
    # sends

    def bc_sendAt(self, frame, bytecode, operands) -> ExitResult:
        return self._normal_send("at:", 1)

    def bc_sendAtPut(self, frame, bytecode, operands) -> ExitResult:
        return self._normal_send("at:put:", 2)

    def bc_sendSize(self, frame, bytecode, operands) -> ExitResult:
        return self._normal_send("size", 0)

    def bc_sendClass(self, frame, bytecode, operands) -> ExitResult:
        return self._normal_send("class", 0)

    def bc_sendValue(self, frame, bytecode, operands) -> ExitResult:
        return self._normal_send("value", 0)

    def bc_sendNew(self, frame, bytecode, operands) -> ExitResult:
        return self._normal_send("new", 0)

    def bc_sendIsNil(self, frame, bytecode, operands) -> ExitResult:
        # isNil is inlined: identity comparison against nil, no send.
        value = frame.stack_value(0)
        frame.pop_then_push(
            1, self.memory.boolean_object_of(self.memory.is_nil_object(value))
        )
        return ExitResult.success()

    def _send_literal_selector(self, frame, literal_index, argument_count):
        # Touch the argument positions first: a send with missing
        # operands is an invalid frame, not a send.
        frame.stack_value(argument_count)
        selector_oop = frame.method.literal_at(literal_index)
        name = self.symbols.name_of(selector_oop)
        if name is None:
            name = f"selector@{selector_oop:#x}"
        return self._normal_send(name, argument_count)

    def bc_sendLiteralSelector0Args(self, frame, bytecode, operands) -> ExitResult:
        return self._send_literal_selector(frame, bytecode.embedded_index, 0)

    def bc_sendLiteralSelector1Arg(self, frame, bytecode, operands) -> ExitResult:
        return self._send_literal_selector(frame, bytecode.embedded_index, 1)

    def bc_sendLiteralSelector2Args(self, frame, bytecode, operands) -> ExitResult:
        return self._send_literal_selector(frame, bytecode.embedded_index, 2)

    # ==================================================================
    # untestable families (still need handlers for full runs)

    def bc_callPrimitive(self, frame, bytecode, operands) -> ExitResult:
        # Preamble byte-code: in a full run the primitive was already
        # attempted at activation time, so this is a no-op fall-through.
        return ExitResult.success()

    def bc_pushThisContext(self, frame, bytecode, operands) -> ExitResult:
        # Stack-frame reification is unsupported (paper Section 4.3).
        return self._normal_send("thisContext", 0)

    # ==================================================================
    # long-form (operand byte) encodings

    def bc_pushIntegerByte(self, frame, bytecode, operands) -> ExitResult:
        frame.push(self.memory.integer_object_of(_signed_byte(operands[0])))
        return ExitResult.success()

    def bc_pushTemporaryVariableLong(self, frame, bytecode, operands) -> ExitResult:
        frame.push(frame.temp_at(operands[0]))
        return ExitResult.success()

    def bc_storeTemporaryVariableLong(self, frame, bytecode, operands) -> ExitResult:
        frame.temp_at_put(operands[0], frame.stack_value(0))
        return ExitResult.success()

    def bc_pushReceiverVariableLong(self, frame, bytecode, operands) -> ExitResult:
        frame.push(self.memory.fetch_pointer(operands[0], frame.receiver))
        return ExitResult.success()

    def bc_storeReceiverVariableLong(self, frame, bytecode, operands) -> ExitResult:
        self.memory.store_pointer(operands[0], frame.receiver, frame.stack_value(0))
        return ExitResult.success()

    def bc_popIntoTemporaryVariableLong(self, frame, bytecode, operands) -> ExitResult:
        frame.temp_at_put(operands[0], frame.pop())
        return ExitResult.success()
