"""Instruction exit conditions (paper Section 3.4).

An exit condition models *how* an instruction's execution finished.
Tracking it is what lets the differential tester check behavioural
equivalence between interpreted and compiled code: a compiled byte-code
must fall through on Success, call a trampoline on Message Send, return
on Method Return; a compiled native method must return to the caller on
Success and fall through to the user-defined body on Failure.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ExitCondition(enum.Enum):
    """The six exit conditions the paper's execution model tracks."""

    #: Correct execution of the instruction until its end.
    SUCCESS = "success"
    #: A safe native method detected invalid operands and failed.
    FAILURE = "failure"
    #: Execution leaves the instruction through a message send
    #: (main path or optimized slow path).
    MESSAGE_SEND = "message_send"
    #: Execution returns to the caller.
    METHOD_RETURN = "method_return"
    #: A frame slot that does not exist was touched — an *expected
    #: failure* telling the concolic engine to grow the stack.
    INVALID_FRAME = "invalid_frame"
    #: An out-of-bounds object access — expected failure for unsafe
    #: byte-codes, a genuine error for safe native methods.
    INVALID_MEMORY_ACCESS = "invalid_memory_access"
    #: An allocation did not fit the remaining heap: execution would
    #: activate the garbage collector.  The paper lists this as the
    #: canonical example of an *additional* exit condition its model
    #: can be extended with (Section 3.4); we implement it so that
    #: allocation-heavy paths are classified instead of crashing the
    #: exploration.
    NEEDS_GARBAGE_COLLECTION = "needs_garbage_collection"

    @property
    def is_expected_failure(self) -> bool:
        """Exits the test runner treats as expected rather than failures."""
        return self in (
            ExitCondition.INVALID_FRAME,
            ExitCondition.INVALID_MEMORY_ACCESS,
            ExitCondition.NEEDS_GARBAGE_COLLECTION,
        )


@dataclass(frozen=True)
class ExitResult:
    """How one instruction execution finished, with its payload.

    ``selector``/``argument_count`` are set for MESSAGE_SEND exits,
    ``returned_value`` for METHOD_RETURN exits, and ``detail`` carries
    free-form diagnostic context (e.g. the failing address).
    """

    condition: ExitCondition
    selector: str | None = None
    argument_count: int | None = None
    returned_value: object | None = None
    detail: str | None = None

    @classmethod
    def success(cls) -> "ExitResult":
        return cls(ExitCondition.SUCCESS)

    @classmethod
    def failure(cls, detail: str | None = None) -> "ExitResult":
        return cls(ExitCondition.FAILURE, detail=detail)

    @classmethod
    def message_send(cls, selector: str, argument_count: int) -> "ExitResult":
        return cls(
            ExitCondition.MESSAGE_SEND,
            selector=selector,
            argument_count=argument_count,
        )

    @classmethod
    def method_return(cls, value: object) -> "ExitResult":
        return cls(ExitCondition.METHOD_RETURN, returned_value=value)

    @classmethod
    def invalid_frame(cls, detail: str) -> "ExitResult":
        return cls(ExitCondition.INVALID_FRAME, detail=detail)

    @classmethod
    def invalid_memory_access(cls, detail: str) -> "ExitResult":
        return cls(ExitCondition.INVALID_MEMORY_ACCESS, detail=detail)

    @classmethod
    def needs_garbage_collection(cls, detail: str) -> "ExitResult":
        return cls(ExitCondition.NEEDS_GARBAGE_COLLECTION, detail=detail)

    def describe(self) -> str:
        """One-line human-readable rendering for reports."""
        parts = [self.condition.value]
        if self.selector is not None:
            parts.append(f"send:{self.selector}/{self.argument_count}")
        if self.detail:
            parts.append(self.detail)
        return " ".join(parts)
