"""Native methods (primitives): the VM's safe instruction set.

Native methods are "primitive operations exposed by the Virtual Machine
as methods ... by design safe: they check the types and shapes of all
their operands and fail with a failure code in case an operand is
incorrect" (paper Section 3.1).

Calling convention: receiver and arguments are on the operand stack with
the receiver at depth ``argument_count`` and the last argument on top.
On Success the primitive pops ``argument_count + 1`` values and pushes
its result; on Failure it leaves the stack untouched so the user-defined
fallback code sees the original operands.

Defect corpus notes (see DESIGN.md Section 6):

* ``primitiveAsFloat`` reproduces the paper's *missing interpreter type
  check* (Listing 5): its receiver check is a compile-time-removed
  assertion, so pointer receivers are silently coerced through untagging.
* The bit-wise primitives fail on negative operands (the interpreter
  falls back to library code); the JIT templates accept them as unsigned
  — the paper's *behavioural difference* family.
* The FFI family (indices 120+) exists only here; the 32-bit native-
  method compiler never implemented it — *missing functionality*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.errors import InvalidMemoryAccess
from repro.interpreter.exits import ExitResult
from repro.memory.layout import ObjectFormat

# NativeMethod.function signature: (interpreter, frame, argument_count).
PrimitiveFunction = Callable[[object, object, int], ExitResult]


@dataclass(frozen=True)
class NativeMethod:
    """One primitive: index, metadata, implementation."""

    index: int
    name: str
    argument_count: int
    function: PrimitiveFunction
    category: str
    #: False for primitives the test runner curates out.
    testable: bool = True


PRIMITIVE_TABLE: dict[int, NativeMethod] = {}
_BY_NAME: dict[str, NativeMethod] = {}


def primitive(index: int, name: str, argc: int, category: str, testable: bool = True):
    """Register a primitive implementation in the table."""

    def register(function: PrimitiveFunction) -> PrimitiveFunction:
        if index in PRIMITIVE_TABLE:
            raise ValueError(f"duplicate primitive index {index}")
        native = NativeMethod(index, name, argc, function, category, testable)
        PRIMITIVE_TABLE[index] = native
        _BY_NAME[name] = native
        return function

    return register


def primitive_named(name: str) -> NativeMethod:
    return _BY_NAME[name]


def testable_primitives() -> list[NativeMethod]:
    return sorted(
        (native for native in PRIMITIVE_TABLE.values() if native.testable),
        key=lambda native: native.index,
    )


# ======================================================================
# small helpers


def _fail(reason: str) -> ExitResult:
    return ExitResult.failure(reason)


def _receiver(frame, argc):
    return frame.stack_value(argc)


def _external_address_class_index(interp) -> int:
    return interp.memory.class_table.named("ExternalAddress").index


def _behavior_class_index(interp) -> int:
    return interp.memory.class_table.named("Behavior").index


# ======================================================================
# SmallInteger arithmetic (indices 1-17)


def _int_binary(op, overflow_checked: bool = True):
    def body(interp, frame, argc):
        memory = interp.memory
        rcvr = frame.stack_value(1)
        arg = frame.stack_value(0)
        if not memory.are_integers(rcvr, arg):
            return _fail("operands must be SmallIntegers")
        result = op(memory.integer_value_of(rcvr), memory.integer_value_of(arg))
        if result is None:
            return _fail("undefined operation")
        if overflow_checked and not memory.is_integer_value(result):
            return _fail("overflow")
        frame.pop_then_push(2, memory.integer_object_of(result))
        return ExitResult.success()

    return body


def _int_compare(op):
    def body(interp, frame, argc):
        memory = interp.memory
        rcvr = frame.stack_value(1)
        arg = frame.stack_value(0)
        if not memory.are_integers(rcvr, arg):
            return _fail("operands must be SmallIntegers")
        result = op(memory.integer_value_of(rcvr), memory.integer_value_of(arg))
        frame.pop_then_push(2, memory.boolean_object_of(result))
        return ExitResult.success()

    return body


primitive(1, "primitiveAdd", 1, "integer")(_int_binary(lambda a, b: a + b))
primitive(2, "primitiveSubtract", 1, "integer")(_int_binary(lambda a, b: a - b))
primitive(3, "primitiveLessThan", 1, "integer")(_int_compare(lambda a, b: a < b))
primitive(4, "primitiveGreaterThan", 1, "integer")(_int_compare(lambda a, b: a > b))
primitive(5, "primitiveLessOrEqual", 1, "integer")(_int_compare(lambda a, b: a <= b))
primitive(6, "primitiveGreaterOrEqual", 1, "integer")(_int_compare(lambda a, b: a >= b))
primitive(7, "primitiveEqual", 1, "integer")(_int_compare(lambda a, b: a == b))
primitive(8, "primitiveNotEqual", 1, "integer")(_int_compare(lambda a, b: a != b))
primitive(9, "primitiveMultiply", 1, "integer")(_int_binary(lambda a, b: a * b))


@primitive(10, "primitiveDivide", 1, "integer")
def primitive_divide(interp, frame, argc):
    """Exact division: fails on zero divisor or a non-integral quotient."""
    memory = interp.memory
    rcvr = frame.stack_value(1)
    arg = frame.stack_value(0)
    if not memory.are_integers(rcvr, arg):
        return _fail("operands must be SmallIntegers")
    divisor = memory.integer_value_of(arg)
    if divisor == 0:
        return _fail("division by zero")
    dividend = memory.integer_value_of(rcvr)
    if dividend % divisor != 0:
        return _fail("inexact division")
    result = dividend // divisor
    if not memory.is_integer_value(result):
        return _fail("overflow")
    frame.pop_then_push(2, memory.integer_object_of(result))
    return ExitResult.success()


def _int_division(op):
    def body(interp, frame, argc):
        memory = interp.memory
        rcvr = frame.stack_value(1)
        arg = frame.stack_value(0)
        if not memory.are_integers(rcvr, arg):
            return _fail("operands must be SmallIntegers")
        divisor = memory.integer_value_of(arg)
        if divisor == 0:
            return _fail("division by zero")
        result = op(memory.integer_value_of(rcvr), divisor)
        if not memory.is_integer_value(result):
            return _fail("overflow")
        frame.pop_then_push(2, memory.integer_object_of(result))
        return ExitResult.success()

    return body


def _truncated_quotient_and_remainder(a, b):
    """Truncated division built from non-negative operands, VM style.

    Written with explicit sign branches — like the C the production VM
    compiles to — so the concolic exploration discovers one path per
    sign combination and generates sign-differing witnesses.
    """
    negative_a = a < 0
    negative_b = b < 0
    magnitude_a = -a if negative_a else a
    magnitude_b = -b if negative_b else b
    quotient = magnitude_a // magnitude_b
    remainder = magnitude_a - quotient * magnitude_b
    if negative_a != negative_b:
        quotient = -quotient
    if negative_a:
        remainder = -remainder
    return quotient, remainder


@primitive(11, "primitiveMod", 1, "integer")
def primitive_mod(interp, frame, argc):
    """Floored modulo: truncated remainder plus a sign fixup branch."""
    memory = interp.memory
    rcvr = frame.stack_value(1)
    arg = frame.stack_value(0)
    if not memory.are_integers(rcvr, arg):
        return _fail("operands must be SmallIntegers")
    divisor = memory.integer_value_of(arg)
    if divisor == 0:
        return _fail("division by zero")
    dividend = memory.integer_value_of(rcvr)
    _, remainder = _truncated_quotient_and_remainder(dividend, divisor)
    if remainder != 0 and (dividend < 0) != (divisor < 0):
        remainder = remainder + divisor
    if not memory.is_integer_value(remainder):
        return _fail("overflow")
    frame.pop_then_push(2, memory.integer_object_of(remainder))
    return ExitResult.success()


@primitive(12, "primitiveDiv", 1, "integer")
def primitive_div(interp, frame, argc):
    """Floored division: truncated quotient plus a sign fixup branch."""
    memory = interp.memory
    rcvr = frame.stack_value(1)
    arg = frame.stack_value(0)
    if not memory.are_integers(rcvr, arg):
        return _fail("operands must be SmallIntegers")
    divisor = memory.integer_value_of(arg)
    if divisor == 0:
        return _fail("division by zero")
    dividend = memory.integer_value_of(rcvr)
    quotient, remainder = _truncated_quotient_and_remainder(dividend, divisor)
    if remainder != 0 and (dividend < 0) != (divisor < 0):
        quotient = quotient - 1
    if not memory.is_integer_value(quotient):
        return _fail("overflow")
    frame.pop_then_push(2, memory.integer_object_of(quotient))
    return ExitResult.success()


@primitive(13, "primitiveQuo", 1, "integer")
def primitive_quo(interp, frame, argc):
    memory = interp.memory
    rcvr = frame.stack_value(1)
    arg = frame.stack_value(0)
    if not memory.are_integers(rcvr, arg):
        return _fail("operands must be SmallIntegers")
    divisor = memory.integer_value_of(arg)
    if divisor == 0:
        return _fail("division by zero")
    dividend = memory.integer_value_of(rcvr)
    quotient, _ = _truncated_quotient_and_remainder(dividend, divisor)
    if not memory.is_integer_value(quotient):
        return _fail("overflow")
    frame.pop_then_push(2, memory.integer_object_of(quotient))
    return ExitResult.success()


def _bitwise(op):
    def body(interp, frame, argc):
        memory = interp.memory
        rcvr = frame.stack_value(1)
        arg = frame.stack_value(0)
        if not memory.are_integers(rcvr, arg):
            return _fail("operands must be SmallIntegers")
        a = memory.integer_value_of(rcvr)
        b = memory.integer_value_of(arg)
        # The interpreter primitives fail on negative operands and fall
        # back to (slow) library code — paper Section 5.3, behavioural
        # difference with the compiled versions.
        if a < 0 or b < 0:
            return _fail("negative operands take the slow path")
        frame.pop_then_push(2, memory.integer_object_of(op(a, b)))
        return ExitResult.success()

    return body


primitive(14, "primitiveBitAnd", 1, "integer")(_bitwise(lambda a, b: a & b))
primitive(15, "primitiveBitOr", 1, "integer")(_bitwise(lambda a, b: a | b))
primitive(16, "primitiveBitXor", 1, "integer")(_bitwise(lambda a, b: a ^ b))


@primitive(17, "primitiveBitShift", 1, "integer")
def primitive_bit_shift(interp, frame, argc):
    memory = interp.memory
    rcvr = frame.stack_value(1)
    arg = frame.stack_value(0)
    if not memory.are_integers(rcvr, arg):
        return _fail("operands must be SmallIntegers")
    value = memory.integer_value_of(rcvr)
    shift = memory.integer_value_of(arg)
    if value < 0:
        return _fail("negative receivers take the slow path")
    if shift > 31 or shift < -31:
        return _fail("shift amount out of range")
    result = value << shift if shift >= 0 else value >> -shift
    if not memory.is_integer_value(result):
        return _fail("overflow")
    frame.pop_then_push(2, memory.integer_object_of(result))
    return ExitResult.success()


@primitive(18, "primitiveMakePoint", 1, "integer")
def primitive_make_point(interp, frame, argc):
    memory = interp.memory
    rcvr = frame.stack_value(1)
    arg = frame.stack_value(0)
    if not memory.is_integer_object(rcvr):
        return _fail("receiver must be a SmallInteger")
    point_class = memory.class_table.named("Point")
    point = memory.instantiate(point_class)
    memory.store_pointer(0, point, rcvr)
    memory.store_pointer(1, point, arg)
    frame.pop_then_push(2, point)
    return ExitResult.success()


@primitive(19, "primitiveHighBit", 0, "integer")
def primitive_high_bit(interp, frame, argc):
    memory = interp.memory
    rcvr = frame.stack_value(0)
    if not memory.is_integer_object(rcvr):
        return _fail("receiver must be a SmallInteger")
    value = memory.integer_value_of(rcvr)
    if value <= 0:
        return _fail("receiver must be positive")
    frame.pop_then_push(1, memory.integer_object_of(value.bit_length()))
    return ExitResult.success()


@primitive(20, "primitiveLowBit", 0, "integer")
def primitive_low_bit(interp, frame, argc):
    memory = interp.memory
    rcvr = frame.stack_value(0)
    if not memory.is_integer_object(rcvr):
        return _fail("receiver must be a SmallInteger")
    value = memory.integer_value_of(rcvr)
    if value <= 0:
        return _fail("receiver must be positive")
    frame.pop_then_push(1, memory.integer_object_of((value & -value).bit_length()))
    return ExitResult.success()


@primitive(21, "primitiveNegated", 0, "integer")
def primitive_negated(interp, frame, argc):
    memory = interp.memory
    rcvr = frame.stack_value(0)
    if not memory.is_integer_object(rcvr):
        return _fail("receiver must be a SmallInteger")
    result = -memory.integer_value_of(rcvr)
    if not memory.is_integer_value(result):  # -MIN_SMALL_INT overflows
        return _fail("overflow")
    frame.pop_then_push(1, memory.integer_object_of(result))
    return ExitResult.success()


@primitive(22, "primitiveAbs", 0, "integer")
def primitive_abs(interp, frame, argc):
    memory = interp.memory
    rcvr = frame.stack_value(0)
    if not memory.is_integer_object(rcvr):
        return _fail("receiver must be a SmallInteger")
    value = memory.integer_value_of(rcvr)
    result = -value if value < 0 else value
    if not memory.is_integer_value(result):
        return _fail("overflow")
    frame.pop_then_push(1, memory.integer_object_of(result))
    return ExitResult.success()


@primitive(23, "primitiveSign", 0, "integer")
def primitive_sign(interp, frame, argc):
    memory = interp.memory
    rcvr = frame.stack_value(0)
    if not memory.is_integer_object(rcvr):
        return _fail("receiver must be a SmallInteger")
    value = memory.integer_value_of(rcvr)
    if value > 0:
        sign = 1
    elif value < 0:
        sign = -1
    else:
        sign = 0
    frame.pop_then_push(1, memory.integer_object_of(sign))
    return ExitResult.success()


# ======================================================================
# Float primitives (indices 40-59)


@primitive(40, "primitiveAsFloat", 0, "float")
def primitive_as_float(interp, frame, argc):
    """SmallInteger -> Float conversion.

    DEFECT (paper Listing 5, *missing interpreter type check*): the
    receiver check is an assertion removed in production builds, so a
    pointer receiver is coerced through untagging and produces a float
    from garbage bits instead of failing.
    """
    memory = interp.memory
    rcvr = frame.stack_value(0)
    # self assert: (objectMemory isIntegerObject: rcvr).
    # The assertion is removed in production builds so there is no
    # failure path — but it still *evaluates* under the concolic
    # tester, directing the exploration toward the pointer-receiver
    # case where interpreter and compiled code diverge.
    bool(memory.is_integer_object(rcvr))
    value = memory.integer_value_of(rcvr)
    frame.pop_then_push(1, memory.float_object_of(float(value)))
    return ExitResult.success()


def _float_receiver_check(memory, rcvr):
    return memory.is_float_object(rcvr)


def _float_binary(op):
    def body(interp, frame, argc):
        memory = interp.memory
        rcvr = frame.stack_value(1)
        arg = frame.stack_value(0)
        if not _float_receiver_check(memory, rcvr):
            return _fail("receiver must be a Float")
        if not memory.is_float_object(arg):
            return _fail("argument must be a Float")
        result = op(memory.float_value_of(rcvr), memory.float_value_of(arg))
        if result is None:
            return _fail("undefined float operation")
        frame.pop_then_push(2, memory.float_object_of(result))
        return ExitResult.success()

    return body


def _float_compare(op):
    def body(interp, frame, argc):
        memory = interp.memory
        rcvr = frame.stack_value(1)
        arg = frame.stack_value(0)
        if not _float_receiver_check(memory, rcvr):
            return _fail("receiver must be a Float")
        if not memory.is_float_object(arg):
            return _fail("argument must be a Float")
        result = op(memory.float_value_of(rcvr), memory.float_value_of(arg))
        frame.pop_then_push(2, memory.boolean_object_of(result))
        return ExitResult.success()

    return body


primitive(41, "primitiveFloatAdd", 1, "float")(_float_binary(lambda a, b: a + b))
primitive(42, "primitiveFloatSubtract", 1, "float")(_float_binary(lambda a, b: a - b))
primitive(43, "primitiveFloatLessThan", 1, "float")(_float_compare(lambda a, b: a < b))
primitive(44, "primitiveFloatGreaterThan", 1, "float")(
    _float_compare(lambda a, b: a > b)
)
primitive(45, "primitiveFloatLessOrEqual", 1, "float")(
    _float_compare(lambda a, b: a <= b)
)
primitive(46, "primitiveFloatGreaterOrEqual", 1, "float")(
    _float_compare(lambda a, b: a >= b)
)
primitive(47, "primitiveFloatEqual", 1, "float")(_float_compare(lambda a, b: a == b))
primitive(48, "primitiveFloatNotEqual", 1, "float")(_float_compare(lambda a, b: a != b))
primitive(49, "primitiveFloatMultiply", 1, "float")(_float_binary(lambda a, b: a * b))
primitive(50, "primitiveFloatDivide", 1, "float")(
    _float_binary(lambda a, b: None if b == 0.0 else a / b)
)


@primitive(51, "primitiveFloatTruncated", 0, "float")
def primitive_float_truncated(interp, frame, argc):
    memory = interp.memory
    rcvr = frame.stack_value(0)
    if not memory.is_float_object(rcvr):
        return _fail("receiver must be a Float")
    value = memory.float_value_of(rcvr)
    if math.isnan(value) or math.isinf(value):
        return _fail("not a finite float")
    truncated = int(value)
    if not memory.is_integer_value(truncated):
        return _fail("result does not fit a SmallInteger")
    frame.pop_then_push(1, memory.integer_object_of(truncated))
    return ExitResult.success()


@primitive(52, "primitiveFloatFractionPart", 0, "float")
def primitive_float_fraction_part(interp, frame, argc):
    memory = interp.memory
    rcvr = frame.stack_value(0)
    if not memory.is_float_object(rcvr):
        return _fail("receiver must be a Float")
    value = memory.float_value_of(rcvr)
    if math.isnan(value) or math.isinf(value):
        return _fail("not a finite float")
    frame.pop_then_push(1, memory.float_object_of(value - int(value)))
    return ExitResult.success()


@primitive(53, "primitiveFloatExponent", 0, "float")
def primitive_float_exponent(interp, frame, argc):
    memory = interp.memory
    rcvr = frame.stack_value(0)
    if not memory.is_float_object(rcvr):
        return _fail("receiver must be a Float")
    value = memory.float_value_of(rcvr)
    if value == 0.0 or math.isnan(value) or math.isinf(value):
        return _fail("exponent undefined")
    frame.pop_then_push(1, memory.integer_object_of(math.frexp(value)[1] - 1))
    return ExitResult.success()


@primitive(54, "primitiveFloatTimesTwoPower", 1, "float")
def primitive_float_times_two_power(interp, frame, argc):
    memory = interp.memory
    rcvr = frame.stack_value(1)
    arg = frame.stack_value(0)
    if not memory.is_float_object(rcvr):
        return _fail("receiver must be a Float")
    if not memory.is_integer_object(arg):
        return _fail("argument must be a SmallInteger")
    power = memory.integer_value_of(arg)
    if not -1024 <= power <= 1024:
        return _fail("power out of range")
    result = math.ldexp(memory.float_value_of(rcvr), int(power))
    frame.pop_then_push(2, memory.float_object_of(result))
    return ExitResult.success()


def _float_unary(op, domain=lambda v: True):
    def body(interp, frame, argc):
        memory = interp.memory
        rcvr = frame.stack_value(0)
        if not memory.is_float_object(rcvr):
            return _fail("receiver must be a Float")
        value = memory.float_value_of(rcvr)
        if math.isnan(value) or not domain(value):
            return _fail("outside domain")
        frame.pop_then_push(1, memory.float_object_of(op(value)))
        return ExitResult.success()

    return body


primitive(55, "primitiveFloatSquareRoot", 0, "float")(
    _float_unary(math.sqrt, domain=lambda v: v >= 0)
)
primitive(56, "primitiveFloatSin", 0, "float")(
    _float_unary(math.sin, domain=lambda v: not math.isinf(v))
)
primitive(57, "primitiveFloatArctan", 0, "float")(_float_unary(math.atan))
primitive(58, "primitiveFloatLogN", 0, "float")(
    _float_unary(math.log, domain=lambda v: v > 0)
)
primitive(59, "primitiveFloatExp", 0, "float")(
    _float_unary(math.exp, domain=lambda v: v <= 700)
)


primitive(60 - 30, "primitiveFloatAbs", 0, "float", testable=True)(
    _float_unary(abs)
)
primitive(31, "primitiveFloatNegated", 0, "float")(_float_unary(lambda v: -v))


# Curated out of the testable set: the byte-comparison loop records one
# constraint per character, and exploring every length/content
# combination exceeds the prototype's solver budget — the same class of
# path the paper curates because "they produce errors on the constraint
# solver" (Section 5.2).  The primitive itself is fully functional.
@primitive(32, "primitiveStringCompare", 1, "string", testable=False)
def primitive_string_compare(interp, frame, argc):
    """Lexicographic byte comparison: answers -1, 0 or 1."""
    memory = interp.memory
    rcvr = frame.stack_value(1)
    arg = frame.stack_value(0)
    for oop in (rcvr, arg):
        if memory.is_integer_object(oop):
            return _fail("operands must be byte objects")
        if memory.format_of(oop) != ObjectFormat.BYTES:
            return _fail("operands must be byte objects")
    left_size = memory.num_slots_of(rcvr)
    right_size = memory.num_slots_of(arg)
    limit = min(left_size, right_size)
    verdict = 0
    index = 0
    while index < limit:
        left = memory.fetch_pointer(index, rcvr)
        right = memory.fetch_pointer(index, arg)
        if left != right:
            verdict = -1 if left < right else 1
            break
        index += 1
    else:
        if left_size != right_size:
            verdict = -1 if left_size < right_size else 1
    frame.pop_then_push(2, memory.integer_object_of(verdict))
    return ExitResult.success()


@primitive(33, "primitiveStringHash", 0, "string")
def primitive_string_hash(interp, frame, argc):
    """A simple multiplicative byte hash (bounded to SmallInteger)."""
    memory = interp.memory
    rcvr = frame.stack_value(0)
    if memory.is_integer_object(rcvr):
        return _fail("receiver must be a byte object")
    if memory.format_of(rcvr) != ObjectFormat.BYTES:
        return _fail("receiver must be a byte object")
    accumulator = 5381
    for index in range(int(memory.num_slots_of(rcvr))):
        byte = memory.fetch_pointer(index, rcvr)
        accumulator = (accumulator * 33 + int(byte)) % (1 << 28)
    frame.pop_then_push(1, memory.integer_object_of(accumulator))
    return ExitResult.success()


@primitive(34, "primitiveConstantFill", 1, "array")
def primitive_constant_fill(interp, frame, argc):
    """Fill every indexable slot of a raw object with a word value."""
    memory = interp.memory
    rcvr = frame.stack_value(1)
    arg = frame.stack_value(0)
    if memory.is_integer_object(rcvr):
        return _fail("receiver must be a raw object")
    fmt = memory.format_of(rcvr)
    if fmt.is_pointers or fmt == ObjectFormat.COMPILED_METHOD:
        return _fail("receiver must be a raw object")
    if not memory.is_integer_object(arg):
        return _fail("fill value must be a SmallInteger")
    value = memory.integer_value_of(arg)
    if value < 0:
        return _fail("fill value must be non-negative")
    if fmt == ObjectFormat.BYTES and value > 255:
        return _fail("byte fill value out of range")
    for index in range(int(memory.num_slots_of(rcvr))):
        memory.store_pointer(index, rcvr, value)
    frame.pop_then_push(2, rcvr)
    return ExitResult.success()


# Curated out like primitiveStringCompare: one identity constraint per
# scanned slot makes full exploration solver-budget-prohibitive.
@primitive(35, "primitiveObjectPointsTo", 1, "object", testable=False)
def primitive_object_points_to(interp, frame, argc):
    """Does any slot of the receiver reference the argument?"""
    memory = interp.memory
    rcvr = frame.stack_value(1)
    arg = frame.stack_value(0)
    if memory.is_integer_object(rcvr):
        return _fail("SmallIntegers have no slots")
    if not memory.format_of(rcvr).is_pointers:
        return _fail("receiver slots are not pointers")
    found = False
    for index in range(int(memory.num_slots_of(rcvr))):
        slot = memory.fetch_pointer(index, rcvr)
        if memory.are_identical(slot, arg):
            found = True
            break
    frame.pop_then_push(2, memory.boolean_object_of(found))
    return ExitResult.success()


@primitive(36, "primitiveByteSize", 0, "object")
def primitive_byte_size(interp, frame, argc):
    """Size of the receiver's body in bytes (slots * word size)."""
    memory = interp.memory
    rcvr = frame.stack_value(0)
    if memory.is_integer_object(rcvr):
        return _fail("SmallIntegers are immediate")
    frame.pop_then_push(1, memory.integer_object_of(memory.num_slots_of(rcvr) * 4))
    return ExitResult.success()


# ======================================================================
# Indexed access and object primitives (indices 60-76, 105, 110-112)


@primitive(60, "primitiveAt", 1, "array")
def primitive_at(interp, frame, argc):
    """1-based indexed read on variable objects; type+bounds checked."""
    memory = interp.memory
    rcvr = frame.stack_value(1)
    arg = frame.stack_value(0)
    if memory.is_integer_object(rcvr):
        return _fail("receiver has no indexable slots")
    if not memory.is_integer_object(arg):
        return _fail("index must be a SmallInteger")
    fmt = memory.format_of(rcvr)
    if fmt == ObjectFormat.FIXED_POINTERS:
        return _fail("receiver has no indexable slots")
    index = memory.integer_value_of(arg)
    if index < 1 or index > memory.num_slots_of(rcvr):
        return _fail("index out of bounds")
    value = memory.fetch_pointer(index - 1, rcvr)
    if fmt == ObjectFormat.VARIABLE_POINTERS:
        frame.pop_then_push(2, value)
    else:
        # Raw formats answer the word/byte as a SmallInteger.
        if not memory.is_integer_value(value):
            return _fail("raw word does not fit a SmallInteger")
        frame.pop_then_push(2, memory.integer_object_of(value))
    return ExitResult.success()


@primitive(61, "primitiveAtPut", 2, "array")
def primitive_at_put(interp, frame, argc):
    memory = interp.memory
    rcvr = frame.stack_value(2)
    index_oop = frame.stack_value(1)
    value = frame.stack_value(0)
    if memory.is_integer_object(rcvr):
        return _fail("receiver has no indexable slots")
    if not memory.is_integer_object(index_oop):
        return _fail("index must be a SmallInteger")
    fmt = memory.format_of(rcvr)
    if fmt == ObjectFormat.FIXED_POINTERS:
        return _fail("receiver has no indexable slots")
    index = memory.integer_value_of(index_oop)
    if index < 1 or index > memory.num_slots_of(rcvr):
        return _fail("index out of bounds")
    if fmt == ObjectFormat.VARIABLE_POINTERS:
        memory.store_pointer(index - 1, rcvr, value)
    elif fmt == ObjectFormat.BYTES:
        if not memory.is_integer_object(value):
            return _fail("byte value must be a SmallInteger")
        byte = memory.integer_value_of(value)
        if byte < 0 or byte > 255:
            return _fail("byte value out of range")
        memory.store_pointer(index - 1, rcvr, byte)
    else:
        if not memory.is_integer_object(value):
            return _fail("word value must be a SmallInteger")
        word = memory.integer_value_of(value)
        if word < 0:
            return _fail("word value must be non-negative")
        memory.store_pointer(index - 1, rcvr, word)
    frame.pop_then_push(3, value)
    return ExitResult.success()


@primitive(62, "primitiveSize", 0, "array")
def primitive_size(interp, frame, argc):
    memory = interp.memory
    rcvr = frame.stack_value(0)
    if memory.is_integer_object(rcvr):
        return _fail("receiver has no indexable slots")
    if memory.format_of(rcvr) == ObjectFormat.FIXED_POINTERS:
        return _fail("receiver has no indexable slots")
    frame.pop_then_push(1, memory.integer_object_of(memory.num_slots_of(rcvr)))
    return ExitResult.success()


@primitive(63, "primitiveStringAt", 1, "array")
def primitive_string_at(interp, frame, argc):
    memory = interp.memory
    rcvr = frame.stack_value(1)
    arg = frame.stack_value(0)
    if memory.is_integer_object(rcvr):
        return _fail("receiver must be a byte object")
    if memory.format_of(rcvr) != ObjectFormat.BYTES:
        return _fail("receiver must be a byte object")
    if not memory.is_integer_object(arg):
        return _fail("index must be a SmallInteger")
    index = memory.integer_value_of(arg)
    if index < 1 or index > memory.num_slots_of(rcvr):
        return _fail("index out of bounds")
    frame.pop_then_push(
        2, memory.integer_object_of(memory.fetch_pointer(index - 1, rcvr))
    )
    return ExitResult.success()


@primitive(64, "primitiveStringAtPut", 2, "array")
def primitive_string_at_put(interp, frame, argc):
    memory = interp.memory
    rcvr = frame.stack_value(2)
    index_oop = frame.stack_value(1)
    value = frame.stack_value(0)
    if memory.is_integer_object(rcvr):
        return _fail("receiver must be a byte object")
    if memory.format_of(rcvr) != ObjectFormat.BYTES:
        return _fail("receiver must be a byte object")
    if not memory.is_integer_object(index_oop):
        return _fail("index must be a SmallInteger")
    if not memory.is_integer_object(value):
        return _fail("value must be a SmallInteger")
    index = memory.integer_value_of(index_oop)
    byte = memory.integer_value_of(value)
    if index < 1 or index > memory.num_slots_of(rcvr):
        return _fail("index out of bounds")
    if byte < 0 or byte > 255:
        return _fail("byte value out of range")
    memory.store_pointer(index - 1, rcvr, byte)
    frame.pop_then_push(3, value)
    return ExitResult.success()


@primitive(68, "primitiveObjectAt", 1, "object")
def primitive_object_at(interp, frame, argc):
    """CompiledMethod literal access (1-based, slot 1 is the header)."""
    memory = interp.memory
    rcvr = frame.stack_value(1)
    arg = frame.stack_value(0)
    if memory.is_integer_object(rcvr):
        return _fail("receiver must be a CompiledMethod")
    if memory.format_of(rcvr) != ObjectFormat.COMPILED_METHOD:
        return _fail("receiver must be a CompiledMethod")
    if not memory.is_integer_object(arg):
        return _fail("index must be a SmallInteger")
    index = memory.integer_value_of(arg)
    if index < 1 or index > memory.num_slots_of(rcvr):
        return _fail("index out of bounds")
    frame.pop_then_push(2, memory.fetch_pointer(index - 1, rcvr))
    return ExitResult.success()


@primitive(70, "primitiveNew", 0, "object")
def primitive_new(interp, frame, argc):
    """Instantiate a fixed-size class; receiver is a Behavior proxy."""
    memory = interp.memory
    rcvr = frame.stack_value(0)
    if memory.is_integer_object(rcvr):
        return _fail("receiver must be a Behavior")
    if memory.class_index_of(rcvr) != _behavior_class_index(interp):
        return _fail("receiver must be a Behavior")
    class_index_oop = memory.fetch_pointer(0, rcvr)
    if not memory.is_integer_object(class_index_oop):
        return _fail("malformed Behavior")
    class_index = memory.integer_value_of(class_index_oop)
    if not 0 <= class_index < len(memory.class_table):
        return _fail("class index out of range")
    target = memory.class_table.at(class_index)
    if target.is_variable:
        return _fail("variable classes need primitiveNewWithArg")
    frame.pop_then_push(1, memory.instantiate(target))
    return ExitResult.success()


@primitive(71, "primitiveNewWithArg", 1, "object")
def primitive_new_with_arg(interp, frame, argc):
    memory = interp.memory
    rcvr = frame.stack_value(1)
    arg = frame.stack_value(0)
    if memory.is_integer_object(rcvr):
        return _fail("receiver must be a Behavior")
    if memory.class_index_of(rcvr) != _behavior_class_index(interp):
        return _fail("receiver must be a Behavior")
    if not memory.is_integer_object(arg):
        return _fail("size must be a SmallInteger")
    size = memory.integer_value_of(arg)
    if size < 0 or size > 4096:
        return _fail("size out of range")
    class_index_oop = memory.fetch_pointer(0, rcvr)
    if not memory.is_integer_object(class_index_oop):
        return _fail("malformed Behavior")
    class_index = memory.integer_value_of(class_index_oop)
    if not 0 <= class_index < len(memory.class_table):
        return _fail("class index out of range")
    target = memory.class_table.at(class_index)
    if not target.is_variable:
        return _fail("fixed classes need primitiveNew")
    frame.pop_then_push(2, memory.instantiate(target, size))
    return ExitResult.success()


@primitive(73, "primitiveInstVarAt", 1, "object")
def primitive_inst_var_at(interp, frame, argc):
    memory = interp.memory
    rcvr = frame.stack_value(1)
    arg = frame.stack_value(0)
    if memory.is_integer_object(rcvr):
        return _fail("receiver has no instance variables")
    if not memory.is_integer_object(arg):
        return _fail("index must be a SmallInteger")
    index = memory.integer_value_of(arg)
    if index < 1 or index > memory.num_slots_of(rcvr):
        return _fail("index out of bounds")
    frame.pop_then_push(2, memory.fetch_pointer(index - 1, rcvr))
    return ExitResult.success()


@primitive(74, "primitiveInstVarAtPut", 2, "object")
def primitive_inst_var_at_put(interp, frame, argc):
    memory = interp.memory
    rcvr = frame.stack_value(2)
    index_oop = frame.stack_value(1)
    value = frame.stack_value(0)
    if memory.is_integer_object(rcvr):
        return _fail("receiver has no instance variables")
    if not memory.is_integer_object(index_oop):
        return _fail("index must be a SmallInteger")
    index = memory.integer_value_of(index_oop)
    if index < 1 or index > memory.num_slots_of(rcvr):
        return _fail("index out of bounds")
    if not memory.format_of(rcvr).is_pointers:
        return _fail("receiver slots are not pointers")
    memory.store_pointer(index - 1, rcvr, value)
    frame.pop_then_push(3, value)
    return ExitResult.success()


@primitive(75, "primitiveIdentityHash", 0, "object")
def primitive_identity_hash(interp, frame, argc):
    memory = interp.memory
    rcvr = frame.stack_value(0)
    if memory.is_integer_object(rcvr):
        return _fail("SmallIntegers hash to themselves in library code")
    # The oop itself is the identity hash in this VM (word-aligned,
    # shifted to fit the SmallInteger range).
    frame.pop_then_push(1, memory.integer_object_of(memory.identity_hash_of(rcvr)))
    return ExitResult.success()


@primitive(76, "primitiveShallowCopy", 0, "object")
def primitive_shallow_copy(interp, frame, argc):
    memory = interp.memory
    rcvr = frame.stack_value(0)
    if memory.is_integer_object(rcvr):
        return _fail("SmallIntegers are immediate")
    cls = memory.class_of(rcvr)
    total = memory.num_slots_of(rcvr)
    indexable = total - cls.fixed_slots if cls.is_variable else 0
    copy = memory.instantiate(cls, indexable)
    for index in range(total):
        memory.store_pointer(index, copy, memory.fetch_pointer(index, rcvr))
    frame.pop_then_push(1, copy)
    return ExitResult.success()


@primitive(105, "primitiveReplaceFromToWithStartingAt", 4, "array")
def primitive_replace_from_to(interp, frame, argc):
    """Bulk copy: receiver replaceFrom: start to: stop with: src startingAt: at."""
    memory = interp.memory
    rcvr = frame.stack_value(4)
    start_oop = frame.stack_value(3)
    stop_oop = frame.stack_value(2)
    source = frame.stack_value(1)
    at_oop = frame.stack_value(0)
    if memory.is_integer_object(rcvr) or memory.is_integer_object(source):
        return _fail("receiver and source must be objects")
    for oop in (start_oop, stop_oop, at_oop):
        if not memory.is_integer_object(oop):
            return _fail("indices must be SmallIntegers")
    if memory.format_of(rcvr) != memory.format_of(source):
        return _fail("format mismatch")
    if memory.format_of(rcvr) == ObjectFormat.FIXED_POINTERS:
        return _fail("receiver has no indexable slots")
    start = memory.integer_value_of(start_oop)
    stop = memory.integer_value_of(stop_oop)
    at = memory.integer_value_of(at_oop)
    count = stop - start + 1
    if count < 0:
        return _fail("empty range")
    if start < 1 or stop > memory.num_slots_of(rcvr):
        return _fail("destination range out of bounds")
    if at < 1 or at + count - 1 > memory.num_slots_of(source):
        return _fail("source range out of bounds")
    for offset in range(count):
        memory.store_pointer(
            start - 1 + offset, rcvr, memory.fetch_pointer(at - 1 + offset, source)
        )
    frame.pop_then_push(5, rcvr)
    return ExitResult.success()


@primitive(110, "primitiveIdentical", 1, "object")
def primitive_identical(interp, frame, argc):
    memory = interp.memory
    result = memory.are_identical(frame.stack_value(1), frame.stack_value(0))
    frame.pop_then_push(2, memory.boolean_object_of(result))
    return ExitResult.success()


@primitive(111, "primitiveNotIdentical", 1, "object")
def primitive_not_identical(interp, frame, argc):
    memory = interp.memory
    result = memory.are_identical(frame.stack_value(1), frame.stack_value(0))
    frame.pop_then_push(2, memory.boolean_object_of(not result))
    return ExitResult.success()


@primitive(112, "primitiveClass", 0, "object")
def primitive_class(interp, frame, argc):
    """Answer the receiver's class index as a SmallInteger."""
    memory = interp.memory
    rcvr = frame.stack_value(0)
    frame.pop_then_push(1, memory.integer_object_of(memory.class_index_of(rcvr)))
    return ExitResult.success()
