"""Shared exception hierarchy for the repro VM.

The exceptions here mirror the *exit conditions* of the paper (Section 3.4)
plus internal error classes.  ``InvalidFrameAccess`` and
``InvalidMemoryAccess`` are raised by the frame/heap substrates and caught
by the concolic engine, which converts them into exit conditions that feed
back into path exploration ("subsequent executions need extra elements").
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class VMError(ReproError):
    """Base class for errors raised while executing VM code."""


class InvalidMemoryAccess(VMError):
    """An out-of-bounds or misaligned heap access was attempted.

    The paper treats these as *expected failures* for (unsafe) byte-code
    instructions and as *errors* for (safe) native methods.
    """

    def __init__(self, address: int, reason: str = "") -> None:
        self.address = address
        self.reason = reason
        super().__init__(f"invalid memory access at {address:#x} {reason}".rstrip())


class InvalidFrameAccess(VMError):
    """A frame slot that no constraint has materialized yet was touched.

    During concolic exploration this signals that "subsequent executions
    need extra elements in the stack" (paper Section 3.4).
    """

    def __init__(self, slot: str, index: int) -> None:
        self.slot = slot
        self.index = index
        super().__init__(f"invalid frame access: {slot}[{index}]")


class UntaggedValueError(VMError):
    """A tagged-integer operation was applied to a non-integer oop."""


class HeapExhausted(VMError):
    """The bump allocator ran out of heap words."""


class BytecodeError(ReproError):
    """Malformed bytecode, unknown opcode, or assembler misuse."""


class CompilerError(ReproError):
    """A JIT front-end could not compile an instruction."""


class NotImplementedInCompiler(CompilerError):
    """The instruction exists in the interpreter but the compiler lacks it.

    This is the paper's "Missing Functionality" defect family: the
    difference is detected at run time by the differential tester.
    """


class MachineError(ReproError):
    """The CPU simulator hit an illegal instruction or machine state."""


class SimulationError(MachineError):
    """An error in the simulation environment itself (paper Section 5.3).

    The paper found two of these: reflective register accessor paths that
    were only reachable dynamically.
    """


class SolverError(ReproError):
    """The constraint solver failed (unsupported theory, precision, ...)."""


class UnsatisfiableError(SolverError):
    """The path condition has no model."""


class PrecisionExceeded(SolverError):
    """A constraint needs more integer precision than the solver supports.

    Mirrors the paper's 56-bit constraint-solver limitation (Section 4.3).
    """
