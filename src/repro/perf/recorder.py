"""The process-global performance recorder.

One recorder is active per process at most (``enable()``/``disable()``);
hot-path hooks are module-level functions that no-op when profiling is
off.  Parallel workers each enable their own recorder after fork and
ship :func:`snapshot` dicts back over the result pipe;
:func:`merge_snapshots` folds them into one campaign-wide view.
"""

from __future__ import annotations

import time
from collections import Counter
from contextlib import contextmanager
from typing import Iterable, Iterator


class PerfRecorder:
    """Counters, per-stage wall-clock timers, and point-in-time gauges."""

    __slots__ = ("counters", "timers", "timer_calls", "gauges")

    def __init__(self) -> None:
        self.counters: Counter = Counter()
        self.timers: dict = {}
        self.timer_calls: Counter = Counter()
        self.gauges: dict = {}

    def incr(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def observe(self, stage: str, seconds: float) -> None:
        self.timers[stage] = self.timers.get(stage, 0.0) + seconds
        self.timer_calls[stage] += 1

    def gauge(self, name: str, value) -> None:
        self.gauges[name] = value

    def snapshot(self) -> dict:
        """A plain JSON-serializable copy of everything recorded."""
        return {
            "counters": dict(self.counters),
            "timers": dict(self.timers),
            "timer_calls": dict(self.timer_calls),
            "gauges": dict(self.gauges),
        }


_ACTIVE: PerfRecorder | None = None


def enable() -> PerfRecorder:
    """Install a fresh recorder as the process-global one."""
    global _ACTIVE
    _ACTIVE = PerfRecorder()
    return _ACTIVE


def disable() -> None:
    global _ACTIVE
    _ACTIVE = None


def active() -> PerfRecorder | None:
    return _ACTIVE


def enabled() -> bool:
    return _ACTIVE is not None


def incr(name: str, amount: int = 1) -> None:
    rec = _ACTIVE
    if rec is not None:
        rec.counters[name] += amount


def observe(stage: str, seconds: float) -> None:
    rec = _ACTIVE
    if rec is not None:
        rec.observe(stage, seconds)


def gauge(name: str, value) -> None:
    rec = _ACTIVE
    if rec is not None:
        rec.gauges[name] = value


def gauge_max(name: str, value) -> None:
    """Record a gauge that keeps the largest value seen in-process.

    Per-instruction gauges (path-tree depth, node count) would otherwise
    report whichever instruction happened to run last; the campaign-wide
    number of interest is the peak, matching how :func:`merge_snapshots`
    folds gauges across workers.
    """
    rec = _ACTIVE
    if rec is not None:
        current = rec.gauges.get(name)
        if current is None or value > current:
            rec.gauges[name] = value


@contextmanager
def timer(stage: str) -> Iterator[None]:
    """Time a block; free when profiling is off."""
    rec = _ACTIVE
    if rec is None:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        rec.observe(stage, time.perf_counter() - start)


def snapshot() -> dict | None:
    """Snapshot the active recorder, or ``None`` when profiling is off."""
    rec = _ACTIVE
    if rec is None:
        return None
    return rec.snapshot()


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Fold worker snapshots: counters/timers sum, gauges take the max.

    Gauges are point-in-time sizes (intern table, memo table); summing
    them across processes would double-count shared structure, so the
    largest observed value is reported instead.
    """
    counters: Counter = Counter()
    timers: dict = {}
    timer_calls: Counter = Counter()
    gauges: dict = {}
    for snap in snapshots:
        if not snap:
            continue
        counters.update(snap.get("counters", {}))
        for stage, seconds in snap.get("timers", {}).items():
            timers[stage] = timers.get(stage, 0.0) + seconds
        timer_calls.update(snap.get("timer_calls", {}))
        for name, value in snap.get("gauges", {}).items():
            if name not in gauges or value > gauges[name]:
                gauges[name] = value
    return {
        "counters": dict(counters),
        "timers": timers,
        "timer_calls": dict(timer_calls),
        "gauges": gauges,
    }
