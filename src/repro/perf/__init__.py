"""Campaign instrumentation: cheap counters, stage timers, and gauges.

The performance work of the incremental-solving layer (term interning,
conjunction memoization, prefix warm-starting, the exploration cache)
is only trustworthy if its effect is *observable*: a silently broken
cache looks exactly like a working one, just slower.  This package is
the observation layer.

Design constraints, in order:

1. **Off by default, near-free when off.**  Every hot-path hook
   (:func:`incr`, :func:`observe`, :func:`timer`) is one module-global
   load and a ``None`` check when profiling is disabled — cheap enough
   to leave in the solver's inner loops.
2. **Numbers only, never behavior.**  The recorder observes counts and
   wall-clock; it must never influence which model a solver returns or
   which paths an explorer finds.  Campaign reports are byte-identical
   with profiling on and off (asserted by ``tests/perf``).
3. **Engine-agnostic.**  The sequential engine snapshots the
   process-global recorder; each parallel worker snapshots its own and
   ships the dict over its result pipe, where
   :func:`merge_snapshots` folds them (counters and timers sum,
   gauges take the max across workers).

Snapshots are plain dicts (JSON-serializable) with four sections:
``counters`` (monotonic event counts), ``timers`` (seconds per stage),
``timer_calls`` (observations per stage) and ``gauges`` (point-in-time
values such as the term-intern table size).  ``campaign --profile``
renders them via :func:`repro.perf.report.format_profile` and can dump
the raw dict with ``--profile-json``.
"""

from repro.perf.recorder import (
    PerfRecorder,
    active,
    disable,
    enable,
    enabled,
    gauge,
    gauge_max,
    incr,
    merge_snapshots,
    observe,
    snapshot,
    timer,
)

__all__ = [
    "PerfRecorder",
    "active",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "gauge_max",
    "incr",
    "merge_snapshots",
    "observe",
    "snapshot",
    "timer",
]
