"""Render a perf snapshot as the ``campaign --profile`` report section."""

from __future__ import annotations


def _hit_rate(hits: int, misses: int) -> str:
    total = hits + misses
    if total == 0:
        return "n/a"
    return f"{hits / total:.1%}"


#: (label, hits counter, misses counter) per cache tier, in report order.
_CACHE_TIERS = (
    # The persistent cross-run store: a hit skips the whole cell —
    # exploration, compilation, execution (docs/INCREMENTAL.md).
    ("result cache", "cache.hits", "cache.misses"),
    ("exploration cache", "explore.cache_hits", "explore.cache_misses"),
    ("solver memo", "solver.memo_hits", "solver.memo_misses"),
    ("warm-start", "solver.warm_hits", "solver.warm_fallbacks"),
    # A "hit" is a worklist entry the path tree answered without
    # re-executing (subsumed prefix or replayed model); a "miss" is a
    # fresh concolic execution (= snapshot.create).
    ("snapshot reuse", "snapshot.reuse", "snapshot.create"),
)


def format_profile(snapshot: dict) -> str:
    """Multi-line profile section for the campaign report."""
    counters = snapshot.get("counters", {})
    timers = snapshot.get("timers", {})
    timer_calls = snapshot.get("timer_calls", {})
    gauges = snapshot.get("gauges", {})
    lines = ["Profile (--profile)"]

    lines.append("  cache tiers:")
    for label, hit_key, miss_key in _CACHE_TIERS:
        hits = counters.get(hit_key, 0)
        misses = counters.get(miss_key, 0)
        lines.append(
            f"    {label:<20} hits={hits:>7} misses={misses:>7}"
            f" hit-rate={_hit_rate(hits, misses)}"
        )

    lines.append("  counters:")
    for name in sorted(counters):
        lines.append(f"    {name:<34} {counters[name]:>10}")

    if timers:
        lines.append("  timers:")
        for stage in sorted(timers):
            calls = timer_calls.get(stage, 0)
            lines.append(
                f"    {stage:<20} {timers[stage]:>10.3f}s"
                f" over {calls} call(s)"
            )

    if gauges:
        lines.append("  gauges:")
        for name in sorted(gauges):
            lines.append(f"    {name:<34} {gauges[name]:>10}")

    return "\n".join(lines)


def result_cache_hit_rate(snapshot: dict) -> float | None:
    """Persistent result-store hit rate in [0, 1], or None if detached.

    ``cache.hits`` / ``cache.misses`` count parent-side fingerprint
    lookups against the cross-run store (docs/INCREMENTAL.md).  Used
    by the CI incremental-smoke gate: a warm re-run of an identical
    campaign must hit on nearly every cell.
    """
    counters = snapshot.get("counters", {})
    hits = counters.get("cache.hits", 0)
    misses = counters.get("cache.misses", 0)
    if hits + misses == 0:
        return None
    return hits / (hits + misses)


def solver_memo_hit_rate(snapshot: dict) -> float | None:
    """Solver memo hit rate in [0, 1], or None if the tier never ran.

    Used by the CI perf-smoke gate: a rate of exactly 0 over a
    non-trivial campaign means the memo layer silently broke.
    """
    counters = snapshot.get("counters", {})
    hits = counters.get("solver.memo_hits", 0)
    misses = counters.get("solver.memo_misses", 0)
    if hits + misses == 0:
        return None
    return hits / (hits + misses)


def snapshot_reuse_rate(snapshot: dict) -> float | None:
    """Path-tree snapshot reuse rate in [0, 1], or None if idle.

    ``snapshot.reuse`` counts worklist entries the tree answered without
    a concolic execution (subsumed prefixes + replayed models);
    ``snapshot.create`` counts fresh executions.  Used by the CI
    perf-smoke gate next to :func:`solver_memo_hit_rate`: a rate of
    exactly 0 over a non-trivial campaign means the path tree silently
    stopped sharing prefixes.
    """
    counters = snapshot.get("counters", {})
    reused = counters.get("snapshot.reuse", 0)
    created = counters.get("snapshot.create", 0)
    if reused + created == 0:
        return None
    return reused / (reused + created)
