"""The JIT compilers under test and their machine substrate.

Mirrors the Pharo VM compiler stack the paper evaluates (Section 4.1):

* a common IR (:mod:`repro.jit.ir`) produced by all front-ends;
* three byte-code front-ends — :class:`SimpleStackBasedCogit`,
  :class:`StackToRegisterCogit`, :class:`RegisterAllocatingCogit` — that
  parse byte-code through abstract interpretation with different stack
  handling strategies;
* a template-based native-method compiler
  (:mod:`repro.jit.native_templates`);
* two machine back-ends (x86-like and ARM32-like encodings) and a CPU
  simulator (:mod:`repro.jit.machine`) standing in for Unicorn.

The compilers contain the *defect corpus* documented in DESIGN.md §6:
genuine code differences with the interpreter that the differential
tester must discover blindly.
"""

from repro.jit.ir import IRInstruction, IRBuilder
from repro.jit.compiler import CompiledCode, CompilationUnit
from repro.jit.simple_stack import SimpleStackBasedCogit
from repro.jit.stack_to_register import StackToRegisterCogit
from repro.jit.register_allocating import RegisterAllocatingCogit
from repro.jit.native_templates import NativeMethodCompiler

__all__ = [
    "IRInstruction",
    "IRBuilder",
    "CompiledCode",
    "CompilationUnit",
    "SimpleStackBasedCogit",
    "StackToRegisterCogit",
    "RegisterAllocatingCogit",
    "NativeMethodCompiler",
]
