"""Base byte-code compiler (Cogit) and the compilation-unit model.

Compilation schema (paper Section 4.2): the unit of compilation is a
method; the operand-stack shape required by the instruction under test
is guaranteed by *prepending push-literal IR* for each input stack
value; the instruction's own IR follows; an epilogue of per-pc Stop
markers detects where execution fell through (each byte-code pc ``p``
maps to marker ``100 + p``, so jump targets are observable).

Machine frame convention (set up by the differential tester):

* ``FP + 0`` — receiver oop; ``FP + 4(1+i)`` — temporary *i*;
* the operand stack is the machine stack below the return-address
  sentinel; input operands are *compiled in* as pushed literals.

Subclasses implement the operand-stack strategy (the very thing that
distinguishes SimpleStackBasedCogit from StackToRegisterCogit) and set
inlining flags; all byte-code family generators live here.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.bytecode.methods import CompiledMethod
from repro.bytecode.opcodes import Bytecode
from repro.errors import CompilerError
from repro.interpreter.primitives import NativeMethod
from repro.jit.ir import IRBuilder
from repro.jit.machine.codecache import CodeCache, CodeObject
from repro.jit.machine.simulator import TrampolineTable
from repro.memory.layout import MAX_SMALL_INT, MIN_SMALL_INT

#: Stop markers: native-method failure fall-through, plus 100 + pc for
#: byte-code fall-through points.
NATIVE_FAILURE_MARKER = 1
PC_MARKER_BASE = 100


def pc_marker(pc: int) -> int:
    return PC_MARKER_BASE + pc


@dataclass(frozen=True)
class CompilationUnit:
    """Everything a front-end needs to compile one instruction test."""

    method: CompiledMethod
    #: Byte-code under test (exclusive with native).
    bytecode: Bytecode | None = None
    #: Decoded operand bytes of the byte-code.
    operands: tuple = ()
    native: NativeMethod | None = None
    #: Concrete input operand stack, bottom to top (compiled as
    #: prepended push-literals for byte-code tests).
    input_stack: tuple = ()
    #: For sequence tests: ((bytecode, operands), ...) replacing the
    #: single instruction; jump targets resolve within the sequence.
    sequence: tuple = ()

    @property
    def instruction_name(self) -> str:
        if self.bytecode is not None:
            return self.bytecode.name
        return self.native.name


@dataclass(frozen=True)
class CompiledCode:
    """An installed compiled instruction test."""

    code_object: CodeObject
    compiler_name: str
    backend_name: str
    unit: CompilationUnit

    @property
    def entry(self) -> int:
        return self.code_object.base_address


def _signed_byte(value: int) -> int:
    return value - 256 if value >= 128 else value


class BytecodeCogit:
    """Shared machinery and byte-code generators for the three Cogits."""

    name = "abstract"
    #: Static type prediction for binary integer arithmetic (+ - * / \\ //).
    inline_int_arithmetic = True
    #: Inlined integer comparisons.
    inline_int_comparisons = True
    #: Inlined #isNil test.
    inline_is_nil = True
    # NOTE: none of the compilers inline *float* arithmetic/comparisons,
    # while the interpreter does — the paper's Optimisation Difference
    # defect family ("the productive StackToRegisterMappingCogit ...
    # inline only integer arithmetics but not floating point").

    # Register conventions within generated instruction code.
    RCVR = "R1"
    ARG = "R2"
    TMP_A = "R5"
    TMP_B = "R6"
    TMP_C = "R3"
    TMP_D = "R4"

    def __init__(self, memory, trampolines: TrampolineTable, code_cache: CodeCache,
                 backend, symbols=None) -> None:
        self.memory = memory
        self.trampolines = trampolines
        self.code_cache = code_cache
        self.backend = backend
        self.symbols = symbols
        self.ir: IRBuilder | None = None

    # ------------------------------------------------------------------
    # operand-stack strategy interface (subclass responsibility)

    def begin_stack(self) -> None:
        raise NotImplementedError

    def gen_push_literal(self, value: int) -> None:
        raise NotImplementedError

    def gen_push_register(self, reg: str) -> None:
        raise NotImplementedError

    def gen_pop_to(self, reg: str) -> None:
        raise NotImplementedError

    def gen_top_to(self, reg: str, depth: int = 0) -> None:
        raise NotImplementedError

    def gen_drop(self, count: int) -> None:
        raise NotImplementedError

    def gen_flush(self) -> None:
        """Materialize every deferred operand onto the machine stack."""
        raise NotImplementedError

    # "now" variants: raw machine-stack operations used inside
    # generators with internal runtime control flow.  They must only be
    # called after gen_flush() (nothing deferred), because code under a
    # conditional branch cannot update compile-time stack state.

    def gen_push_register_now(self, reg: str) -> None:
        self.ir.push(reg)
        self._note_spill(1)

    def gen_drop_now(self, count: int) -> None:
        if count:
            self.ir.drop(count)
            self._note_spill(-count)

    def gen_top_now(self, reg: str, depth: int = 0) -> None:
        self.ir.load_stack(reg, depth)

    def _note_spill(self, delta: int) -> None:
        """Hook for subclasses tracking materialized operand counts."""

    # ------------------------------------------------------------------
    # compilation driver

    def compile(self, unit: CompilationUnit) -> CompiledCode:
        if unit.bytecode is None and not unit.sequence:
            raise CompilerError("byte-code cogits compile byte-codes")
        self.ir = IRBuilder()
        self.begin_stack()
        self._current_pc = 0
        self._gen_method_entry(unit)
        for value in unit.input_stack:
            self.gen_push_literal(value)
        if unit.sequence:
            end_pc = self._compile_sequence(unit)
        else:
            self._dispatch(unit, unit.bytecode, unit.operands)
            end_pc = unit.bytecode.size
        self._gen_epilogue(unit, end_pc)
        lowered = self.ir.lower(self.trampolines, self._register_map())
        code_object = self.code_cache.install(lowered, self.backend)
        return CompiledCode(code_object, self.name, self.backend.name, unit)

    def _dispatch(self, unit: CompilationUnit, bytecode, operands) -> None:
        handler = getattr(self, "gen_" + bytecode.family.name, None)
        if handler is None:
            raise CompilerError(
                f"{self.name} has no generator for {bytecode.family.name}"
            )
        view = dataclasses.replace(unit, bytecode=bytecode, operands=operands)
        handler(view)

    def _compile_sequence(self, unit: CompilationUnit) -> int:
        """Compile every instruction of the sequence at its byte-code pc.

        Intra-sequence jump targets force a parse-time-stack flush at
        the target pc: control-flow merge points must agree on the
        machine stack state (Cog flushes at merge points too).
        """
        targets = self._jump_targets(unit.sequence)
        pc = 0
        for bytecode, operands in unit.sequence:
            if pc in targets:
                self.gen_flush()
            self.ir.label(f"pc{pc}")
            self._current_pc = pc
            self._dispatch(unit, bytecode, operands)
            pc += bytecode.size
        self._current_pc = 0
        return pc

    @staticmethod
    def _jump_targets(sequence) -> set:
        targets: set = set()
        pc = 0
        for bytecode, operands in sequence:
            family = bytecode.family.name
            if family.startswith("shortJump"):
                targets.add(pc + bytecode.size + bytecode.embedded_index + 1)
            elif family.startswith("longJump"):
                targets.add(pc + bytecode.size + _signed_byte(operands[0]))
            pc += bytecode.size
        return targets

    def _gen_method_entry(self, unit: CompilationUnit) -> None:
        """Hook for subclass preambles (e.g. temp-register loading)."""

    def _register_map(self) -> dict:
        return {}

    def _gen_epilogue(self, unit: CompilationUnit, end_pc: int) -> None:
        """Flush deferred operands, then one Stop marker per byte-code pc.

        Falling through the instruction's code lands on the marker of
        the next pc; taken jumps land on their target's marker.  The
        differential tester compares the marker with the interpreter's
        resulting pc.
        """
        self.gen_flush()
        for pc in range(end_pc, len(unit.method.bytecodes) + 1):
            self.ir.label(f"pc{pc}")
            self.ir.stop(pc_marker(pc))

    # ------------------------------------------------------------------
    # shared helpers

    def _load_receiver(self, reg: str) -> None:
        self.ir.load_frame_receiver(reg)

    def _send(self, selector: str, argc: int) -> None:
        """Flush and exit through a send trampoline (inline-cache stub)."""
        self.gen_flush()
        self.ir.call_trampoline(f"send:{selector}/{argc}")

    def _boolean_of_flags_to(self, reg: str, condition: str) -> None:
        """Materialize true/false into *reg* from the current flags."""
        ir = self.ir
        true_label = ir.fresh_label("true")
        done = ir.fresh_label("done")
        ir.jump_if(condition, true_label)
        ir.move_const(reg, self.memory.false_object)
        ir.jump(done)
        ir.label(true_label)
        ir.move_const(reg, self.memory.true_object)
        ir.label(done)

    def _push_boolean_of_flags(self, condition: str) -> None:
        """Push true/false depending on the current flags."""
        self._boolean_of_flags_to(self.TMP_A, condition)
        self.gen_push_register_now(self.TMP_A)

    # ==================================================================
    # push family generators

    def gen_pushReceiverVariable(self, unit) -> None:
        self._load_receiver(self.RCVR)
        self.ir.load_slot(self.TMP_A, self.RCVR, unit.bytecode.embedded_index)
        self.gen_push_register(self.TMP_A)

    def gen_pushTemporaryVariable(self, unit) -> None:
        self.ir.load_frame_temp(self.TMP_A, unit.bytecode.embedded_index)
        self.gen_push_register(self.TMP_A)

    def gen_pushLiteralConstant(self, unit) -> None:
        literal = unit.method.literal_at(unit.bytecode.embedded_index)
        self.gen_push_literal(literal)

    def gen_pushReceiver(self, unit) -> None:
        self._load_receiver(self.TMP_A)
        self.gen_push_register(self.TMP_A)

    def gen_pushTrue(self, unit) -> None:
        self.gen_push_literal(self.memory.true_object)

    def gen_pushFalse(self, unit) -> None:
        self.gen_push_literal(self.memory.false_object)

    def gen_pushNil(self, unit) -> None:
        self.gen_push_literal(self.memory.nil_object)

    def gen_pushZero(self, unit) -> None:
        self.gen_push_literal(self.memory.integer_object_of(0))

    def gen_pushOne(self, unit) -> None:
        self.gen_push_literal(self.memory.integer_object_of(1))

    def gen_pushMinusOne(self, unit) -> None:
        self.gen_push_literal(self.memory.integer_object_of(-1))

    def gen_pushTwo(self, unit) -> None:
        self.gen_push_literal(self.memory.integer_object_of(2))

    def gen_duplicateTop(self, unit) -> None:
        self.gen_top_to(self.TMP_A, 0)
        self.gen_push_register(self.TMP_A)

    def gen_popStackTop(self, unit) -> None:
        self.gen_drop(1)

    def gen_storeTemporaryVariable(self, unit) -> None:
        self.gen_top_to(self.TMP_A, 0)
        self.ir.store_frame_temp(self.TMP_A, unit.bytecode.embedded_index)

    def gen_storeReceiverVariable(self, unit) -> None:
        self.gen_top_to(self.TMP_A, 0)
        self._load_receiver(self.RCVR)
        self.ir.store_slot(self.TMP_A, self.RCVR, unit.bytecode.embedded_index)

    def gen_popIntoTemporaryVariable(self, unit) -> None:
        self.gen_pop_to(self.TMP_A)
        self.ir.store_frame_temp(self.TMP_A, unit.bytecode.embedded_index)

    def gen_popIntoReceiverVariable(self, unit) -> None:
        self.gen_pop_to(self.TMP_A)
        self._load_receiver(self.RCVR)
        self.ir.store_slot(self.TMP_A, self.RCVR, unit.bytecode.embedded_index)

    def gen_nop(self, unit) -> None:
        pass

    # ==================================================================
    # returns

    def gen_returnTop(self, unit) -> None:
        self.gen_pop_to("R0")
        self.ir.ret()

    def gen_returnReceiver(self, unit) -> None:
        self._load_receiver("R0")
        self.ir.ret()

    def gen_returnNil(self, unit) -> None:
        self.ir.move_const("R0", self.memory.nil_object)
        self.ir.ret()

    def gen_returnTrue(self, unit) -> None:
        self.ir.move_const("R0", self.memory.true_object)
        self.ir.ret()

    def gen_returnFalse(self, unit) -> None:
        self.ir.move_const("R0", self.memory.false_object)
        self.ir.ret()

    # ==================================================================
    # jumps

    def gen_shortJump(self, unit) -> None:
        target = (self._current_pc + unit.bytecode.size
                  + unit.bytecode.embedded_index + 1)
        self.gen_flush()
        self.ir.jump(f"pc{target}")

    def gen_shortJumpIfTrue(self, unit) -> None:
        self._gen_conditional_jump(
            unit, unit.bytecode.embedded_index + 1, want_true=True
        )

    def gen_shortJumpIfFalse(self, unit) -> None:
        self._gen_conditional_jump(
            unit, unit.bytecode.embedded_index + 1, want_true=False
        )

    def gen_longJump(self, unit) -> None:
        target = (self._current_pc + unit.bytecode.size
                  + _signed_byte(unit.operands[0]))
        self.gen_flush()
        self.ir.jump(f"pc{target}")

    def gen_longJumpIfTrue(self, unit) -> None:
        self._gen_conditional_jump(
            unit, _signed_byte(unit.operands[0]), want_true=True
        )

    def gen_longJumpIfFalse(self, unit) -> None:
        self._gen_conditional_jump(
            unit, _signed_byte(unit.operands[0]), want_true=False
        )

    def _gen_conditional_jump(self, unit, displacement: int, want_true: bool):
        # Control flow splits at run time: materialize the parse-time
        # stack first so both paths see the same machine state (Cog's
        # ssFlushTo discipline).
        self.gen_flush()
        ir = self.ir
        base = self._current_pc + unit.bytecode.size
        taken = f"pc{base + displacement}"
        fall = f"pc{base}"
        jump_label = ir.fresh_label("take")
        fall_label = ir.fresh_label("fall")
        self.gen_top_now(self.TMP_A, 0)
        ir.compare_const(self.TMP_A, self.memory.true_object)
        ir.jump_if("eq", jump_label if want_true else fall_label)
        ir.compare_const(self.TMP_A, self.memory.false_object)
        ir.jump_if("eq", fall_label if want_true else jump_label)
        # Neither boolean: the value stays on the stack as the receiver
        # of #mustBeBoolean.
        self._send("mustBeBoolean", 0)
        ir.label(jump_label)
        self.gen_drop_now(1)
        self.gen_flush()
        ir.jump(taken)
        ir.label(fall_label)
        self.gen_drop_now(1)
        ir.jump(fall)

    # ==================================================================
    # statically type-predicted arithmetic

    def gen_bytecodePrimAdd(self, unit) -> None:
        self._gen_int_binary_arith("+", "add")

    def gen_bytecodePrimSubtract(self, unit) -> None:
        self._gen_int_binary_arith("-", "sub")

    def gen_bytecodePrimMultiply(self, unit) -> None:
        self._gen_int_multiply()

    def gen_bytecodePrimDivide(self, unit) -> None:
        self._gen_int_division("/", exact=True, want="quotient")

    def gen_bytecodePrimModulo(self, unit) -> None:
        self._gen_int_division("\\\\", exact=False, want="remainder")

    def gen_bytecodePrimIntegerDivide(self, unit) -> None:
        self._gen_int_division("//", exact=False, want="quotient")

    def gen_bytecodePrimLessThan(self, unit) -> None:
        self._gen_int_comparison("<", "lt")

    def gen_bytecodePrimGreaterThan(self, unit) -> None:
        self._gen_int_comparison(">", "gt")

    def gen_bytecodePrimLessOrEqual(self, unit) -> None:
        self._gen_int_comparison("<=", "le")

    def gen_bytecodePrimGreaterOrEqual(self, unit) -> None:
        self._gen_int_comparison(">=", "ge")

    def gen_bytecodePrimEqual(self, unit) -> None:
        self._gen_int_comparison("=", "eq")

    def gen_bytecodePrimNotEqual(self, unit) -> None:
        self._gen_int_comparison("~=", "ne")

    def gen_bytecodePrimIdenticalTo(self, unit) -> None:
        self.gen_flush()
        ir = self.ir
        self.gen_top_now(self.ARG, 0)
        self.gen_top_now(self.RCVR, 1)
        self.gen_drop_now(2)
        ir.compare(self.RCVR, self.ARG)
        self._push_boolean_of_flags("eq")

    def gen_bytecodePrimBitAnd(self, unit) -> None:
        self._gen_bitwise("bitAnd:", "and")

    def gen_bytecodePrimBitOr(self, unit) -> None:
        self._gen_bitwise("bitOr:", "or")

    def gen_bytecodePrimBitXor(self, unit) -> None:
        self._gen_bitwise("bitXor:", "xor")

    def gen_bytecodePrimBitShift(self, unit) -> None:
        self.gen_flush()
        ir = self.ir
        slow = ir.fresh_label("slow")
        done = ir.fresh_label("done")
        right_shift = ir.fresh_label("rshift")
        finish = ir.fresh_label("finish")
        self.gen_top_now(self.ARG, 0)
        self.gen_top_now(self.RCVR, 1)
        ir.check_small_int(self.RCVR, slow)
        ir.check_small_int(self.ARG, slow)
        ir.move(self.TMP_A, self.RCVR)
        ir.untag(self.TMP_A)
        ir.move(self.TMP_B, self.ARG)
        ir.untag(self.TMP_B)
        # Mirror the interpreter: non-negative receiver, |shift| <= 32.
        ir.compare_const(self.TMP_A, 0)
        ir.jump_if("lt", slow)
        ir.compare_const(self.TMP_B, 32)
        ir.jump_if("gt", slow)
        ir.compare_const(self.TMP_B, -32)
        ir.jump_if("lt", slow)
        ir.compare_const(self.TMP_B, 0)
        ir.jump_if("lt", right_shift)
        # Left shift: wraps are detected by shifting back.
        ir.move(self.TMP_C, self.TMP_A)
        ir.alu("shl", self.TMP_C, self.TMP_B)
        ir.compare_const(self.TMP_C, MAX_SMALL_INT)
        ir.jump_if("gt", slow)
        ir.compare_const(self.TMP_C, 0)
        ir.jump_if("lt", slow)
        ir.move(self.TMP_D, self.TMP_C)
        ir.alu("sar", self.TMP_D, self.TMP_B)
        ir.compare(self.TMP_D, self.TMP_A)
        ir.jump_if("ne", slow)
        ir.jump(finish)
        ir.label(right_shift)
        ir.move(self.TMP_C, self.TMP_A)
        ir.alu("neg", self.TMP_B)
        ir.alu("sar", self.TMP_C, self.TMP_B)
        ir.label(finish)
        ir.tag(self.TMP_C)
        self.gen_drop_now(2)
        self.gen_push_register_now(self.TMP_C)
        ir.jump(done)
        ir.label(slow)
        self._send("bitShift:", 1)
        ir.label(done)

    # ------------------------------------------------------------------
    # arithmetic helper generators

    def _gen_int_binary_arith(self, selector: str, alu_op: str) -> None:
        if not self.inline_int_arithmetic:
            self._send(selector, 1)
            return
        self.gen_flush()
        ir = self.ir
        slow = ir.fresh_label("slow")
        done = ir.fresh_label("done")
        self.gen_top_now(self.ARG, 0)
        self.gen_top_now(self.RCVR, 1)
        ir.check_small_int(self.RCVR, slow)  # checkSmallInteger t0
        ir.check_small_int(self.ARG, slow)  # checkSmallInteger t1
        ir.move(self.TMP_A, self.RCVR)
        ir.untag(self.TMP_A)
        ir.move(self.TMP_B, self.ARG)
        ir.untag(self.TMP_B)
        ir.alu(alu_op, self.TMP_A, self.TMP_B)  # t2 := t0 + t1
        ir.compare_const(self.TMP_A, MAX_SMALL_INT)  # jumpIfNotOverflow
        ir.jump_if("gt", slow)
        ir.compare_const(self.TMP_A, MIN_SMALL_INT)
        ir.jump_if("lt", slow)
        ir.tag(self.TMP_A)
        self.gen_drop_now(2)
        self.gen_push_register_now(self.TMP_A)
        ir.jump(done)
        ir.label(slow)  # notsmi: slow case send
        self._send(selector, 1)
        ir.label(done)

    def _gen_int_multiply(self) -> None:
        if not self.inline_int_arithmetic:
            self._send("*", 1)
            return
        self.gen_flush()
        ir = self.ir
        slow = ir.fresh_label("slow")
        done = ir.fresh_label("done")
        check = ir.fresh_label("check")
        self.gen_top_now(self.ARG, 0)
        self.gen_top_now(self.RCVR, 1)
        ir.check_small_int(self.RCVR, slow)
        ir.check_small_int(self.ARG, slow)
        ir.move(self.TMP_A, self.RCVR)
        ir.untag(self.TMP_A)
        ir.move(self.TMP_B, self.ARG)
        ir.untag(self.TMP_B)
        ir.move(self.TMP_C, self.TMP_A)  # keep untagged receiver
        ir.alu("mul", self.TMP_A, self.TMP_B)
        # 32-bit wrap detection: product / arg must equal receiver.
        ir.compare_const(self.TMP_B, 0)
        ir.jump_if("eq", check)
        ir.move(self.TMP_D, self.TMP_A)
        ir.alu("div", self.TMP_D, self.TMP_B)
        ir.compare(self.TMP_D, self.TMP_C)
        ir.jump_if("ne", slow)
        ir.label(check)
        ir.compare_const(self.TMP_A, MAX_SMALL_INT)
        ir.jump_if("gt", slow)
        ir.compare_const(self.TMP_A, MIN_SMALL_INT)
        ir.jump_if("lt", slow)
        ir.tag(self.TMP_A)
        self.gen_drop_now(2)
        self.gen_push_register_now(self.TMP_A)
        ir.jump(done)
        ir.label(slow)
        self._send("*", 1)
        ir.label(done)

    def _gen_int_division(self, selector: str, exact: bool, want: str) -> None:
        if not self.inline_int_arithmetic:
            self._send(selector, 1)
            return
        self.gen_flush()
        ir = self.ir
        slow = ir.fresh_label("slow")
        done = ir.fresh_label("done")
        fixed = ir.fresh_label("fixed")
        self.gen_top_now(self.ARG, 0)
        self.gen_top_now(self.RCVR, 1)
        ir.check_small_int(self.RCVR, slow)
        ir.check_small_int(self.ARG, slow)
        ir.move(self.TMP_A, self.RCVR)
        ir.untag(self.TMP_A)
        ir.move(self.TMP_B, self.ARG)
        ir.untag(self.TMP_B)
        ir.compare_const(self.TMP_B, 0)
        ir.jump_if("eq", slow)
        # TMP_C = truncated quotient, TMP_D = truncated remainder.
        ir.move(self.TMP_C, self.TMP_A)
        ir.alu("div", self.TMP_C, self.TMP_B)
        ir.move(self.TMP_D, self.TMP_A)
        ir.alu("rem", self.TMP_D, self.TMP_B)
        if exact:
            ir.compare_const(self.TMP_D, 0)
            ir.jump_if("ne", slow)
            result = self.TMP_C
        else:
            # Floor fixup when signs differ and the remainder is nonzero.
            ir.compare_const(self.TMP_D, 0)
            ir.jump_if("eq", fixed)
            ir.move(self.RCVR, self.TMP_A)  # tagged values no longer needed
            ir.alu("xor", self.RCVR, self.TMP_B)
            ir.compare_const(self.RCVR, 0)
            ir.jump_if("ge", fixed)
            ir.alu_const("sub", self.TMP_C, 1)  # floor quotient
            ir.alu("add", self.TMP_D, self.TMP_B)  # floor remainder
            ir.label(fixed)
            result = self.TMP_C if want == "quotient" else self.TMP_D
        if exact:
            ir.label(fixed)  # unused but keeps labels defined
        ir.compare_const(result, MAX_SMALL_INT)
        ir.jump_if("gt", slow)
        ir.compare_const(result, MIN_SMALL_INT)
        ir.jump_if("lt", slow)
        ir.tag(result)
        self.gen_drop_now(2)
        self.gen_push_register_now(result)
        ir.jump(done)
        ir.label(slow)
        self._send(selector, 1)
        ir.label(done)

    def _gen_int_comparison(self, selector: str, condition: str) -> None:
        if not self.inline_int_comparisons:
            self._send(selector, 1)
            return
        self.gen_flush()
        ir = self.ir
        slow = ir.fresh_label("slow")
        done = ir.fresh_label("done")
        self.gen_top_now(self.ARG, 0)
        self.gen_top_now(self.RCVR, 1)
        ir.check_small_int(self.RCVR, slow)
        ir.check_small_int(self.ARG, slow)
        # Tagging is monotonic: compare the tagged values directly.
        # The boolean must be materialized before the drop: stack
        # adjustments are ALU operations and clobber the flags.
        ir.compare(self.RCVR, self.ARG)
        self._boolean_of_flags_to(self.TMP_A, condition)
        self.gen_drop_now(2)
        self.gen_push_register_now(self.TMP_A)
        ir.jump(done)
        ir.label(slow)
        self._send(selector, 1)
        ir.label(done)

    def _gen_bitwise(self, selector: str, alu_op: str) -> None:
        self.gen_flush()
        ir = self.ir
        slow = ir.fresh_label("slow")
        done = ir.fresh_label("done")
        self.gen_top_now(self.ARG, 0)
        self.gen_top_now(self.RCVR, 1)
        ir.check_small_int(self.RCVR, slow)
        ir.check_small_int(self.ARG, slow)
        ir.move(self.TMP_A, self.RCVR)
        ir.untag(self.TMP_A)
        ir.move(self.TMP_B, self.ARG)
        ir.untag(self.TMP_B)
        # Mirror the interpreter: negative operands take the slow path.
        ir.compare_const(self.TMP_A, 0)
        ir.jump_if("lt", slow)
        ir.compare_const(self.TMP_B, 0)
        ir.jump_if("lt", slow)
        ir.alu(alu_op, self.TMP_A, self.TMP_B)
        ir.tag(self.TMP_A)
        self.gen_drop_now(2)
        self.gen_push_register_now(self.TMP_A)
        ir.jump(done)
        ir.label(slow)
        self._send(selector, 1)
        ir.label(done)

    # ==================================================================
    # sends

    def gen_sendAt(self, unit) -> None:
        self._send("at:", 1)

    def gen_sendAtPut(self, unit) -> None:
        self._send("at:put:", 2)

    def gen_sendSize(self, unit) -> None:
        self._send("size", 0)

    def gen_sendClass(self, unit) -> None:
        self._send("class", 0)

    def gen_sendValue(self, unit) -> None:
        self._send("value", 0)

    def gen_sendNew(self, unit) -> None:
        self._send("new", 0)

    def gen_sendIsNil(self, unit) -> None:
        if not self.inline_is_nil:
            self._send("isNil", 0)
            return
        self.gen_flush()
        ir = self.ir
        self.gen_top_now(self.TMP_A, 0)
        self.gen_drop_now(1)
        ir.compare_const(self.TMP_A, self.memory.nil_object)
        self._push_boolean_of_flags("eq")

    def _gen_literal_send(self, unit, argc: int) -> None:
        selector_oop = unit.method.literal_at(unit.bytecode.embedded_index)
        name = self._selector_name(selector_oop)
        self._send(name, argc)

    def _selector_name(self, selector_oop: int) -> str:
        # Compiled send sites are linked by selector identity; for the
        # trampoline label we recover the interned name.
        if self.symbols is not None:
            name = self.symbols.name_of(selector_oop)
            if name is not None:
                return name
        return f"selector@{selector_oop:#x}"

    # ==================================================================
    # long-form (operand byte) encodings

    def gen_pushIntegerByte(self, unit) -> None:
        value = _signed_byte(unit.operands[0])
        self.gen_push_literal(self.memory.integer_object_of(value))

    def gen_pushTemporaryVariableLong(self, unit) -> None:
        self.ir.load_frame_temp(self.TMP_A, unit.operands[0])
        self.gen_push_register(self.TMP_A)

    def gen_storeTemporaryVariableLong(self, unit) -> None:
        self.gen_top_to(self.TMP_A, 0)
        self.ir.store_frame_temp(self.TMP_A, unit.operands[0])

    def gen_pushReceiverVariableLong(self, unit) -> None:
        self._load_receiver(self.RCVR)
        self.ir.load_slot(self.TMP_A, self.RCVR, unit.operands[0])
        self.gen_push_register(self.TMP_A)

    def gen_storeReceiverVariableLong(self, unit) -> None:
        self.gen_top_to(self.TMP_A, 0)
        self._load_receiver(self.RCVR)
        self.ir.store_slot(self.TMP_A, self.RCVR, unit.operands[0])

    def gen_popIntoTemporaryVariableLong(self, unit) -> None:
        self.gen_pop_to(self.TMP_A)
        self.ir.store_frame_temp(self.TMP_A, unit.operands[0])

    def gen_sendLiteralSelector0Args(self, unit) -> None:
        self._gen_literal_send(unit, 0)

    def gen_sendLiteralSelector1Arg(self, unit) -> None:
        self._gen_literal_send(unit, 1)

    def gen_sendLiteralSelector2Args(self, unit) -> None:
        self._gen_literal_send(unit, 2)
