"""Template-based native-method compiler.

"Native methods implementing primitive operations are translated to IR
using a hand-written template-based approach" (paper Section 4.1).
Convention: receiver in ``R0``, arguments in ``R1``-``R4``; a template
returns to the caller with the result in ``R0`` on success and *falls
through* to a Stop/breakpoint on failure — the differential tester
asserts "that the compiled code returns to the caller if we had
detected no error condition, or to hit the breakpoint instruction
otherwise" (paper Section 4.2).

Defect corpus carried by this compiler (DESIGN.md §6):

* **Missing compiled type check** — the float templates (41-52, 55)
  unbox the receiver *without* checking its class: "all floating-point
  related native methods do not perform a type check on the receiver.
  The compiled code proceeds to unbox a double from the receiver's body
  producing a segmentation fault on the wrong receiver type."
* **Behavioural difference** — the bit-wise templates accept negative
  operands by treating them as unsigned (logical untag), where the
  interpreter fails over to library code; the ``mod`` template returns
  the truncated remainder instead of the floored one.
* **Missing functionality** — the entire FFI family plus several object
  primitives were "never implemented in the 32 bit compiler version":
  compiling them raises :class:`NotImplementedInCompiler`.
* **Simulation error bait** — the ``truncated``/``fractionPart``
  templates address the unboxed receiver through ``R10``/``R11``, the
  registers the simulator's reflective fault describer cannot resolve.

``primitiveAsFloat`` (40) *does* check its receiver — the interpreter
side is the one missing the check (paper Listing 5).
"""

from __future__ import annotations

from repro.errors import CompilerError, NotImplementedInCompiler
from repro.jit.compiler import (
    CompilationUnit,
    CompiledCode,
    NATIVE_FAILURE_MARKER,
)
from repro.jit.ir import IRBuilder
from repro.memory.layout import MAX_SMALL_INT, MIN_SMALL_INT, ObjectFormat

RCVR = "R0"
ARG0, ARG1, ARG2, ARG3 = "R1", "R2", "R3", "R4"
TMP_A, TMP_B, TMP_C, TMP_D = "R5", "R6", "R7", "R8"


class NativeMethodCompiler:
    """Hand-written IR templates, one per implemented primitive."""

    name = "NativeMethodCompiler"

    def __init__(self, memory, trampolines, code_cache, backend, symbols=None):
        self.memory = memory
        self.trampolines = trampolines
        self.code_cache = code_cache
        self.backend = backend
        self.ir: IRBuilder | None = None
        self._fail_label = "primitive_failure"

    # ------------------------------------------------------------------

    def compile(self, unit: CompilationUnit) -> CompiledCode:
        if unit.native is None:
            raise CompilerError("the native-method compiler compiles primitives")
        template = getattr(self, "tpl_" + unit.native.name, None)
        if template is None:
            raise NotImplementedInCompiler(
                f"{unit.native.name} was never implemented in the 32-bit "
                f"native-method compiler"
            )
        self.ir = IRBuilder()
        template()
        # Listing 4: "Generate a break instruction to detect
        # fall-through cases" — every failure path lands here.
        self.ir.label(self._fail_label)
        self.ir.stop(NATIVE_FAILURE_MARKER)
        lowered = self.ir.lower(self.trampolines)
        code_object = self.code_cache.install(lowered, self.backend)
        return CompiledCode(code_object, self.name, self.backend.name, unit)

    # ------------------------------------------------------------------
    # small template helpers

    def _fail_if_not_small_int(self, reg: str) -> None:
        self.ir.check_small_int(reg, self._fail_label)

    def _fail_if_small_int(self, reg: str) -> None:
        self.ir.check_not_small_int(reg, self._fail_label)

    def _untag_into(self, dst: str, src: str) -> None:
        self.ir.move(dst, src)
        self.ir.untag(dst)

    def _untag_unsigned_into(self, dst: str, src: str) -> None:
        """Logical untag: negative oops become large unsigned values.

        This is the behavioural-difference defect: the template "works
        both with positive and negative integers by treating both as
        unsigned integers" where the interpreter fails.
        """
        self.ir.move(dst, src)
        self.ir.alu_const("shr", dst, 1)

    def _range_check(self, reg: str) -> None:
        self.ir.compare_const(reg, MAX_SMALL_INT)
        self.ir.jump_if("gt", self._fail_label)
        self.ir.compare_const(reg, MIN_SMALL_INT)
        self.ir.jump_if("lt", self._fail_label)

    def _return_tagged(self, reg: str) -> None:
        self.ir.tag(reg)
        self.ir.move(RCVR, reg)
        self.ir.ret()

    def _return_boolean_of_flags(self, condition: str) -> None:
        ir = self.ir
        true_label = ir.fresh_label("true")
        ir.jump_if(condition, true_label)
        ir.move_const(RCVR, self.memory.false_object)
        ir.ret()
        ir.label(true_label)
        ir.move_const(RCVR, self.memory.true_object)
        ir.ret()

    def _check_float_object(self, reg: str) -> None:
        """Full type check: not tagged, class is BoxedFloat64."""
        self._fail_if_small_int(reg)
        self.ir.load_class_index(TMP_D, reg)
        self.ir.compare_const(TMP_D, self.memory.float_class_index)
        self.ir.jump_if("ne", self._fail_label)

    def _box_float_and_return(self) -> None:
        """Box F0 through the ceAllocateFloat runtime helper -> R0."""
        self.ir.call_service("ceAllocateFloat")
        self.ir.ret()

    # ==================================================================
    # integer templates (correct, mirroring the interpreter)

    def _int_binary(self, alu_op: str) -> None:
        self._fail_if_not_small_int(RCVR)
        self._fail_if_not_small_int(ARG0)
        self._untag_into(TMP_A, RCVR)
        self._untag_into(TMP_B, ARG0)
        self.ir.alu(alu_op, TMP_A, TMP_B)
        self._range_check(TMP_A)
        self._return_tagged(TMP_A)

    def tpl_primitiveAdd(self):
        self._int_binary("add")

    def tpl_primitiveSubtract(self):
        self._int_binary("sub")

    def _int_compare(self, condition: str) -> None:
        self._fail_if_not_small_int(RCVR)
        self._fail_if_not_small_int(ARG0)
        self.ir.compare(RCVR, ARG0)  # tagging is monotonic
        self._return_boolean_of_flags(condition)

    def tpl_primitiveLessThan(self):
        self._int_compare("lt")

    def tpl_primitiveGreaterThan(self):
        self._int_compare("gt")

    def tpl_primitiveLessOrEqual(self):
        self._int_compare("le")

    def tpl_primitiveGreaterOrEqual(self):
        self._int_compare("ge")

    def tpl_primitiveEqual(self):
        self._int_compare("eq")

    def tpl_primitiveNotEqual(self):
        self._int_compare("ne")

    def tpl_primitiveMultiply(self):
        ir = self.ir
        self._fail_if_not_small_int(RCVR)
        self._fail_if_not_small_int(ARG0)
        self._untag_into(TMP_A, RCVR)
        self._untag_into(TMP_B, ARG0)
        ir.move(TMP_C, TMP_A)
        ir.alu("mul", TMP_A, TMP_B)
        no_wrap = ir.fresh_label("nowrap")
        ir.compare_const(TMP_B, 0)
        ir.jump_if("eq", no_wrap)
        ir.move(TMP_D, TMP_A)
        ir.alu("div", TMP_D, TMP_B)
        ir.compare(TMP_D, TMP_C)
        ir.jump_if("ne", self._fail_label)
        ir.label(no_wrap)
        self._range_check(TMP_A)
        self._return_tagged(TMP_A)

    def tpl_primitiveDivide(self):
        ir = self.ir
        self._fail_if_not_small_int(RCVR)
        self._fail_if_not_small_int(ARG0)
        self._untag_into(TMP_A, RCVR)
        self._untag_into(TMP_B, ARG0)
        ir.compare_const(TMP_B, 0)
        ir.jump_if("eq", self._fail_label)
        ir.move(TMP_C, TMP_A)
        ir.alu("rem", TMP_C, TMP_B)
        ir.compare_const(TMP_C, 0)
        ir.jump_if("ne", self._fail_label)  # inexact
        ir.alu("div", TMP_A, TMP_B)
        self._range_check(TMP_A)
        self._return_tagged(TMP_A)

    def tpl_primitiveMod(self):
        """DEFECT (behavioural): truncated remainder, no floor fixup.

        ``-7 \\\\ 2`` answers 1 in the interpreter (floored) but -1
        here (C semantics) — wrong results whenever the signs differ.
        """
        ir = self.ir
        self._fail_if_not_small_int(RCVR)
        self._fail_if_not_small_int(ARG0)
        self._untag_into(TMP_A, RCVR)
        self._untag_into(TMP_B, ARG0)
        ir.compare_const(TMP_B, 0)
        ir.jump_if("eq", self._fail_label)
        ir.alu("rem", TMP_A, TMP_B)
        self._range_check(TMP_A)
        self._return_tagged(TMP_A)

    def tpl_primitiveDiv(self):
        ir = self.ir
        self._fail_if_not_small_int(RCVR)
        self._fail_if_not_small_int(ARG0)
        self._untag_into(TMP_A, RCVR)
        self._untag_into(TMP_B, ARG0)
        ir.compare_const(TMP_B, 0)
        ir.jump_if("eq", self._fail_label)
        ir.move(TMP_C, TMP_A)
        ir.alu("div", TMP_C, TMP_B)
        ir.move(TMP_D, TMP_A)
        ir.alu("rem", TMP_D, TMP_B)
        fixed = ir.fresh_label("fixed")
        ir.compare_const(TMP_D, 0)
        ir.jump_if("eq", fixed)
        ir.alu("xor", TMP_A, TMP_B)  # sign test on the original operands
        ir.compare_const(TMP_A, 0)
        ir.jump_if("ge", fixed)
        ir.alu_const("sub", TMP_C, 1)
        ir.label(fixed)
        self._range_check(TMP_C)
        self._return_tagged(TMP_C)

    def tpl_primitiveQuo(self):
        ir = self.ir
        self._fail_if_not_small_int(RCVR)
        self._fail_if_not_small_int(ARG0)
        self._untag_into(TMP_A, RCVR)
        self._untag_into(TMP_B, ARG0)
        ir.compare_const(TMP_B, 0)
        ir.jump_if("eq", self._fail_label)
        ir.alu("div", TMP_A, TMP_B)
        self._range_check(TMP_A)
        self._return_tagged(TMP_A)

    def _bitwise_unsigned(self, alu_op: str) -> None:
        """DEFECT (behavioural): no negative-operand check."""
        self._fail_if_not_small_int(RCVR)
        self._fail_if_not_small_int(ARG0)
        self._untag_unsigned_into(TMP_A, RCVR)
        self._untag_unsigned_into(TMP_B, ARG0)
        self.ir.alu(alu_op, TMP_A, TMP_B)
        self._return_tagged(TMP_A)

    def tpl_primitiveBitAnd(self):
        self._bitwise_unsigned("and")

    def tpl_primitiveBitOr(self):
        self._bitwise_unsigned("or")

    def tpl_primitiveBitXor(self):
        self._bitwise_unsigned("xor")

    def tpl_primitiveBitShift(self):
        """DEFECT (behavioural): unsigned receiver, no overflow check."""
        ir = self.ir
        self._fail_if_not_small_int(RCVR)
        self._fail_if_not_small_int(ARG0)
        self._untag_unsigned_into(TMP_A, RCVR)
        self._untag_into(TMP_B, ARG0)
        ir.compare_const(TMP_B, 31)
        ir.jump_if("gt", self._fail_label)
        ir.compare_const(TMP_B, -31)
        ir.jump_if("lt", self._fail_label)
        right = ir.fresh_label("right")
        done = ir.fresh_label("done")
        ir.compare_const(TMP_B, 0)
        ir.jump_if("lt", right)
        ir.alu("shl", TMP_A, TMP_B)
        ir.jump(done)
        ir.label(right)
        ir.alu("neg", TMP_B)
        ir.alu("shr", TMP_A, TMP_B)  # logical: unsigned semantics
        ir.label(done)
        # No small-integer range check: tagging truncates to 31 bits.
        self._return_tagged(TMP_A)

    def tpl_primitiveMakePoint(self):
        self._fail_if_not_small_int(RCVR)
        self.ir.call_service("ceMakePoint")  # R0 = x, R1 = y -> R0 point
        self.ir.ret()

    def tpl_primitiveNegated(self):
        self._fail_if_not_small_int(RCVR)
        self._untag_into(TMP_A, RCVR)
        self.ir.alu("neg", TMP_A)
        self._range_check(TMP_A)
        self._return_tagged(TMP_A)

    def tpl_primitiveAbs(self):
        ir = self.ir
        self._fail_if_not_small_int(RCVR)
        self._untag_into(TMP_A, RCVR)
        positive = ir.fresh_label("positive")
        ir.compare_const(TMP_A, 0)
        ir.jump_if("ge", positive)
        ir.alu("neg", TMP_A)
        ir.label(positive)
        self._range_check(TMP_A)
        self._return_tagged(TMP_A)

    def tpl_primitiveSign(self):
        ir = self.ir
        self._fail_if_not_small_int(RCVR)
        self._untag_into(TMP_A, RCVR)
        negative = ir.fresh_label("negative")
        zero = ir.fresh_label("zero")
        ir.compare_const(TMP_A, 0)
        ir.jump_if("lt", negative)
        ir.jump_if("eq", zero)
        ir.move_const(TMP_A, 1)
        self._return_tagged(TMP_A)
        ir.label(negative)
        ir.move_const(TMP_A, -1)
        self._return_tagged(TMP_A)
        ir.label(zero)
        ir.move_const(TMP_A, 0)
        self._return_tagged(TMP_A)

    # ==================================================================
    # float templates

    def tpl_primitiveAsFloat(self):
        """Receiver *is* checked here — the interpreter's side is the
        one missing the check (paper Listing 5)."""
        self._fail_if_not_small_int(RCVR)
        self._untag_into(TMP_A, RCVR)
        self.ir.cvt_int_to_float("F0", TMP_A)
        self._box_float_and_return()

    def _float_binary(self, alu_op: str) -> None:
        """DEFECT (missing compiled type check): the receiver is
        unboxed with no class check; a non-float receiver reads garbage
        or segfaults."""
        self.ir.fload("F0", RCVR)  # unchecked unbox!
        self._check_float_object(ARG0)
        self.ir.fload("F1", ARG0)
        self.ir.falu(alu_op, "F0", "F1")
        self._box_float_and_return()

    def tpl_primitiveFloatAdd(self):
        self._float_binary("add")

    def tpl_primitiveFloatSubtract(self):
        self._float_binary("sub")

    def tpl_primitiveFloatMultiply(self):
        self._float_binary("mul")

    def tpl_primitiveFloatDivide(self):
        ir = self.ir
        ir.fload("F0", RCVR)  # unchecked unbox!
        self._check_float_object(ARG0)
        ir.fload("F1", ARG0)
        # Zero-divisor check via float compare against 0.0.
        ir.move_const(TMP_A, 0)
        ir.cvt_int_to_float("F2", TMP_A)
        ir.fcompare("F1", "F2")
        ir.jump_if("eq", self._fail_label)
        ir.falu("div", "F0", "F1")
        self._box_float_and_return()

    def _float_compare(self, condition: str) -> None:
        self.ir.fload("F0", RCVR)  # unchecked unbox!
        self._check_float_object(ARG0)
        self.ir.fload("F1", ARG0)
        self.ir.fcompare("F0", "F1")
        self._return_boolean_of_flags(condition)

    def tpl_primitiveFloatLessThan(self):
        self._float_compare("lt")

    def tpl_primitiveFloatGreaterThan(self):
        self._float_compare("gt")

    def tpl_primitiveFloatLessOrEqual(self):
        self._float_compare("le")

    def tpl_primitiveFloatGreaterOrEqual(self):
        self._float_compare("ge")

    def tpl_primitiveFloatEqual(self):
        self._float_compare("eq")

    def tpl_primitiveFloatNotEqual(self):
        self._float_compare("ne")

    def tpl_primitiveFloatTruncated(self):
        """Missing receiver check *and* unboxing through R10, one of the
        registers the simulator's fault describer cannot reflect on."""
        ir = self.ir
        ir.move("R10", RCVR)
        ir.fload("F0", "R10")  # unchecked unbox through R10
        ir.cvt_float_to_int(TMP_A, "F0")
        self._range_check(TMP_A)
        self._return_tagged(TMP_A)

    def tpl_primitiveFloatFractionPart(self):
        ir = self.ir
        ir.move("R11", RCVR)
        ir.fload("F0", "R11")  # unchecked unbox through R11
        ir.cvt_float_to_int(TMP_A, "F0")
        ir.cvt_int_to_float("F1", TMP_A)
        ir.falu("sub", "F0", "F1")
        self._box_float_and_return()

    def tpl_primitiveFloatAbs(self):
        ir = self.ir
        ir.fload("F0", RCVR)  # unchecked unbox!
        ir.move_const(TMP_A, 0)
        ir.cvt_int_to_float("F1", TMP_A)
        done = ir.fresh_label("done")
        ir.fcompare("F0", "F1")
        ir.jump_if("ge", done)
        ir.falu("sub", "F1", "F0")  # F1 = 0 - F0
        ir.fmov("F0", "F1")
        ir.label(done)
        self._box_float_and_return()

    def tpl_primitiveFloatNegated(self):
        ir = self.ir
        ir.fload("F0", RCVR)  # unchecked unbox!
        # Negate by multiplying with -1.0: unlike (0.0 - x) this keeps
        # IEEE signed-zero semantics (-(0.0) must be -0.0).
        ir.move_const(TMP_A, -1)
        ir.cvt_int_to_float("F1", TMP_A)
        ir.falu("mul", "F0", "F1")
        self._box_float_and_return()

    def tpl_primitiveFloatSquareRoot(self):
        ir = self.ir
        ir.fload("F0", RCVR)  # unchecked unbox!
        ir.move_const(TMP_A, 0)
        ir.cvt_int_to_float("F1", TMP_A)
        ir.fcompare("F0", "F1")
        ir.jump_if("lt", self._fail_label)
        ir.emit("fsqrt", "F0", "F0")
        self._box_float_and_return()

    # ==================================================================
    # indexed access and object templates (correct)

    def _check_indexable(self, reg: str) -> None:
        self._fail_if_small_int(reg)
        self.ir.load_format(TMP_D, reg)
        self.ir.compare_const(TMP_D, int(ObjectFormat.FIXED_POINTERS))
        self.ir.jump_if("eq", self._fail_label)

    def _checked_untagged_index(self, index_reg: str, obj: str, dst: str) -> None:
        """dst = 0-based index after type and bounds checks."""
        self._fail_if_not_small_int(index_reg)
        self._untag_into(dst, index_reg)
        self.ir.compare_const(dst, 1)
        self.ir.jump_if("lt", self._fail_label)
        self.ir.load_num_slots(TMP_D, obj)
        self.ir.compare(dst, TMP_D)
        self.ir.jump_if("gt", self._fail_label)
        self.ir.alu_const("sub", dst, 1)

    def tpl_primitiveAt(self):
        ir = self.ir
        self._check_indexable(RCVR)
        self._checked_untagged_index(ARG0, RCVR, TMP_A)
        ir.load_indexed(TMP_B, RCVR, TMP_A, TMP_C)
        # Pointer formats answer the slot; raw formats tag the word.
        pointers = ir.fresh_label("pointers")
        ir.load_format(TMP_D, RCVR)
        ir.compare_const(TMP_D, int(ObjectFormat.VARIABLE_POINTERS))
        ir.jump_if("le", pointers)
        self._range_check(TMP_B)
        self._return_tagged(TMP_B)
        ir.label(pointers)
        ir.move(RCVR, TMP_B)
        ir.ret()

    def tpl_primitiveAtPut(self):
        ir = self.ir
        self._check_indexable(RCVR)
        self._checked_untagged_index(ARG0, RCVR, TMP_A)
        raw = ir.fresh_label("raw")
        bytes_fmt = ir.fresh_label("bytes")
        store = ir.fresh_label("store")
        ir.load_format(TMP_D, RCVR)
        ir.compare_const(TMP_D, int(ObjectFormat.VARIABLE_POINTERS))
        ir.jump_if("gt", raw)
        ir.move(TMP_B, ARG1)
        ir.jump(store)
        ir.label(raw)
        self._fail_if_not_small_int(ARG1)
        self._untag_into(TMP_B, ARG1)
        ir.compare_const(TMP_B, 0)
        ir.jump_if("lt", self._fail_label)
        ir.compare_const(TMP_D, int(ObjectFormat.BYTES))
        ir.jump_if("ne", store)
        ir.label(bytes_fmt)
        ir.compare_const(TMP_B, 255)
        ir.jump_if("gt", self._fail_label)
        ir.label(store)
        ir.store_indexed(TMP_B, RCVR, TMP_A, TMP_C)
        ir.move(RCVR, ARG1)
        ir.ret()

    def tpl_primitiveSize(self):
        self._check_indexable(RCVR)
        self.ir.load_num_slots(TMP_A, RCVR)
        self._return_tagged(TMP_A)

    def _check_bytes(self, reg: str) -> None:
        self._fail_if_small_int(reg)
        self.ir.load_format(TMP_D, reg)
        self.ir.compare_const(TMP_D, int(ObjectFormat.BYTES))
        self.ir.jump_if("ne", self._fail_label)

    def tpl_primitiveStringAt(self):
        self._check_bytes(RCVR)
        self._checked_untagged_index(ARG0, RCVR, TMP_A)
        self.ir.load_indexed(TMP_B, RCVR, TMP_A, TMP_C)
        self._return_tagged(TMP_B)

    def tpl_primitiveStringAtPut(self):
        ir = self.ir
        self._check_bytes(RCVR)
        self._checked_untagged_index(ARG0, RCVR, TMP_A)
        self._fail_if_not_small_int(ARG1)
        self._untag_into(TMP_B, ARG1)
        ir.compare_const(TMP_B, 0)
        ir.jump_if("lt", self._fail_label)
        ir.compare_const(TMP_B, 255)
        ir.jump_if("gt", self._fail_label)
        ir.store_indexed(TMP_B, RCVR, TMP_A, TMP_C)
        ir.move(RCVR, ARG1)
        ir.ret()

    def _check_behavior(self) -> None:
        behavior = self.memory.class_table.named("Behavior")
        self._fail_if_small_int(RCVR)
        self.ir.load_class_index(TMP_D, RCVR)
        self.ir.compare_const(TMP_D, behavior.index)
        self.ir.jump_if("ne", self._fail_label)

    def tpl_primitiveNew(self):
        ir = self.ir
        self._check_behavior()
        ir.load_slot(TMP_A, RCVR, 0)  # Behavior slot 0: class index
        self._fail_if_not_small_int(TMP_A)
        ir.untag(TMP_A)
        ir.compare_const(TMP_A, 0)
        ir.jump_if("lt", self._fail_label)
        ir.compare_const(TMP_A, len(self.memory.class_table) - 1)
        ir.jump_if("gt", self._fail_label)
        ir.move(TMP_B, TMP_A)
        ir.call_service("ceNewFixedInstance")  # class idx in R6 -> R0
        ir.compare_const(RCVR, 0)
        ir.jump_if("eq", self._fail_label)
        ir.ret()

    def tpl_primitiveNewWithArg(self):
        ir = self.ir
        self._check_behavior()
        self._fail_if_not_small_int(ARG0)
        ir.load_slot(TMP_A, RCVR, 0)
        self._fail_if_not_small_int(TMP_A)
        ir.untag(TMP_A)
        ir.compare_const(TMP_A, 0)
        ir.jump_if("lt", self._fail_label)
        ir.compare_const(TMP_A, len(self.memory.class_table) - 1)
        ir.jump_if("gt", self._fail_label)
        self._untag_into(TMP_C, ARG0)
        ir.compare_const(TMP_C, 0)
        ir.jump_if("lt", self._fail_label)
        ir.compare_const(TMP_C, 4096)
        ir.jump_if("gt", self._fail_label)
        ir.move(TMP_B, TMP_A)
        ir.call_service("ceNewVariableInstance")  # R6 class, R7 size -> R0
        ir.compare_const(RCVR, 0)
        ir.jump_if("eq", self._fail_label)
        ir.ret()

    def tpl_primitiveInstVarAt(self):
        self._fail_if_small_int(RCVR)
        self._checked_untagged_index(ARG0, RCVR, TMP_A)
        self.ir.load_indexed(TMP_B, RCVR, TMP_A, TMP_C)
        self.ir.move(RCVR, TMP_B)
        self.ir.ret()

    def tpl_primitiveInstVarAtPut(self):
        ir = self.ir
        self._fail_if_small_int(RCVR)
        self._checked_untagged_index(ARG0, RCVR, TMP_A)
        ir.load_format(TMP_D, RCVR)
        ir.compare_const(TMP_D, int(ObjectFormat.VARIABLE_POINTERS))
        ir.jump_if("gt", self._fail_label)
        ir.store_indexed(ARG1, RCVR, TMP_A, TMP_C)
        ir.move(RCVR, ARG1)
        ir.ret()

    def tpl_primitiveIdentical(self):
        self.ir.compare(RCVR, ARG0)
        self._return_boolean_of_flags("eq")

    def tpl_primitiveNotIdentical(self):
        self.ir.compare(RCVR, ARG0)
        self._return_boolean_of_flags("ne")

    def tpl_primitiveClass(self):
        ir = self.ir
        tagged = ir.fresh_label("tagged")
        ir.check_not_small_int(RCVR, tagged)
        ir.load_class_index(TMP_A, RCVR)
        self._return_tagged(TMP_A)
        ir.label(tagged)
        ir.move_const(TMP_A, self.memory.small_integer_class_index)
        self._return_tagged(TMP_A)
