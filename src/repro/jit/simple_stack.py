"""SimpleStackBasedCogit: the naive, non-productive byte-code compiler.

"A simpler version of the compiler that maps push and pop byte-code
instructions to their equivalent push and pop machine-code
instructions" (paper Section 4.1).  Every operand lives on the machine
stack; no parse-time stack, no deferred constants.

Defect corpus (DESIGN.md §6, *Optimisation difference*): this compiler
"implements no static type predictions" for binary arithmetic — the six
arithmetic byte-codes compile to plain message sends, and so does the
``isNil`` test the interpreter inlines.  Integer *comparisons* are still
inlined (they predate the type-prediction work).
"""

from __future__ import annotations

from repro.jit.compiler import BytecodeCogit


class SimpleStackBasedCogit(BytecodeCogit):
    """Direct push/pop mapping; no simulation stack."""

    name = "SimpleStackBasedCogit"
    inline_int_arithmetic = False  # optimisation difference vs interpreter
    inline_int_comparisons = True
    inline_is_nil = False  # optimisation difference vs interpreter

    def begin_stack(self) -> None:
        pass  # all state is the machine stack itself

    def gen_push_literal(self, value: int) -> None:
        self.ir.push_const(value, self.TMP_D)

    def gen_push_register(self, reg: str) -> None:
        self.ir.push(reg)

    def gen_pop_to(self, reg: str) -> None:
        self.ir.pop(reg)

    def gen_top_to(self, reg: str, depth: int = 0) -> None:
        # Peek without popping: LOAD from SP.
        self.ir.emit("load_stack", reg, depth)

    def gen_drop(self, count: int) -> None:
        self.ir.drop(count)

    def gen_flush(self) -> None:
        pass  # nothing is ever deferred
